"""Tests for automorphism enumeration and total-exchange scheduling."""

import math

import pytest

from repro.graphs import (
    DiGraph,
    check_isomorphism,
    complete_digraph,
    enumerate_automorphisms,
    kautz_graph,
)
from repro.networks import POPSNetwork
from repro.routing import total_exchange_slots


class TestAutomorphisms:
    @pytest.mark.parametrize("d,k", [(2, 1), (2, 2), (2, 3), (3, 2)])
    def test_kautz_group_size_is_factorial(self, d, k):
        """|Aut(KG(d,k))| = (d+1)!: exactly the alphabet permutations.

        This is why the paper's Fig. 10 labeling and our explicit
        bijection can differ yet both be isomorphisms.
        """
        autos = enumerate_automorphisms(kautz_graph(d, k))
        assert len(autos) == math.factorial(d + 1)

    def test_every_result_is_an_automorphism(self):
        g = kautz_graph(2, 2)
        for m in enumerate_automorphisms(g):
            assert check_isomorphism(g, g, m)

    def test_identity_always_present(self):
        g = kautz_graph(2, 2)
        autos = enumerate_automorphisms(g)
        assert list(range(g.num_nodes)) in autos

    def test_complete_digraph_full_symmetric_group(self):
        assert len(enumerate_automorphisms(complete_digraph(4))) == 24

    def test_asymmetric_graph_trivial_group(self):
        g = DiGraph(4, [(0, 1), (1, 2), (2, 3), (0, 2)])
        assert enumerate_automorphisms(g) == [[0, 1, 2, 3]]

    def test_limit_respected(self):
        autos = enumerate_automorphisms(complete_digraph(5), limit=7)
        assert len(autos) == 7

    def test_empty_graph(self):
        assert enumerate_automorphisms(DiGraph(0, [])) == [[]]


class TestTotalExchange:
    @pytest.mark.parametrize("t,g,expected", [(4, 2, 16), (3, 3, 9), (2, 4, 4)])
    def test_t_squared_slots(self, t, g, expected):
        assert total_exchange_slots(POPSNetwork(t, g)) == expected

    def test_single_group_special_case(self):
        # one group: only the loop coupler, t*(t-1) messages serialize
        assert total_exchange_slots(POPSNetwork(5, 1)) == 20

    def test_exchange_beats_naive_serialization(self):
        net = POPSNetwork(4, 4)
        n = net.num_processors
        assert total_exchange_slots(net) == 16 < n * (n - 1)
