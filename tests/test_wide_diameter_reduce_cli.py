"""Unit tests for wide diameter, reduction schedules, and the CLI."""

import pytest

from repro.__main__ import main
from repro.analysis.wide_diameter import (
    disjoint_paths_within,
    fault_diameter,
    min_max_disjoint_path_length,
    wide_diameter,
)
from repro.comm import pops_reduce, stack_kautz_reduce
from repro.graphs import DiGraph, complete_digraph, kautz_graph
from repro.networks import POPSNetwork, StackKautzNetwork


class TestDisjointPathsWithin:
    def test_simple_diamond(self):
        g = DiGraph(4, [(0, 1), (1, 3), (0, 2), (2, 3)])
        assert disjoint_paths_within(g, 0, 3, 2) == 2
        assert disjoint_paths_within(g, 0, 3, 1) == 0

    def test_direct_arc_counts(self):
        g = DiGraph(3, [(0, 2), (0, 1), (1, 2)])
        assert disjoint_paths_within(g, 0, 2, 1) == 1
        assert disjoint_paths_within(g, 0, 2, 2) == 2

    def test_length_bound_is_respected(self):
        # second path has length 3; bound 2 admits only one path
        g = DiGraph(5, [(0, 4), (0, 1), (1, 2), (2, 4), (1, 4)])
        assert disjoint_paths_within(g, 0, 4, 2) == 2
        assert disjoint_paths_within(g, 0, 4, 3) == 2

    def test_same_node_rejected(self):
        with pytest.raises(ValueError):
            disjoint_paths_within(complete_digraph(3), 1, 1, 2)

    def test_complete_digraph_many_paths(self):
        g = complete_digraph(5)
        # direct + 3 two-hop detours
        assert disjoint_paths_within(g, 0, 4, 2) == 4


class TestWideDiameter:
    @pytest.mark.parametrize(
        "d,k,expected",
        [(2, 2, 4), (3, 2, 4), (2, 3, 5)],
    )
    def test_kautz_d_wide_diameter_is_k_plus_2(self, d, k, expected):
        """The structural fact behind the paper's k+2 routing claim."""
        assert wide_diameter(kautz_graph(d, k), d) == expected == k + 2

    def test_width_one_is_plain_diameter(self):
        from repro.graphs import diameter

        g = kautz_graph(2, 2)
        assert wide_diameter(g, 1) == diameter(g)

    def test_min_max_length_unreachable(self):
        g = DiGraph(2, [(0, 1)])
        assert min_max_disjoint_path_length(g, 1, 0, 1) is None

    def test_pair_restriction(self):
        g = kautz_graph(2, 2)
        assert wide_diameter(g, 2, pairs=[(0, 1)]) <= 4


class TestFaultDiameter:
    def test_kautz_fault_diameter_within_k_plus_2(self):
        for d, k in [(2, 2), (3, 2)]:
            fd = fault_diameter(kautz_graph(d, k), d - 1)
            assert k <= fd <= k + 2

    def test_zero_faults_is_diameter(self):
        from repro.graphs import diameter

        g = kautz_graph(2, 2)
        assert fault_diameter(g, 0) == diameter(g)

    def test_disconnection_detected(self):
        g = DiGraph(3, [(0, 1), (1, 2), (2, 0)])
        with pytest.raises(ValueError):
            fault_diameter(g, 1)  # removing any cycle node disconnects


class TestReduce:
    @pytest.mark.parametrize("t,g", [(2, 2), (4, 3), (1, 4)])
    def test_pops_reduce_t_slots(self, t, g):
        net = POPSNetwork(t, g)
        for root in (0, net.num_processors - 1):
            sched = pops_reduce(net, root)
            assert sched.num_slots == t
            assert sched.root == root

    def test_pops_reduce_no_collisions(self):
        sched = pops_reduce(POPSNetwork(3, 3), 4)
        for slot in sched.slots:
            keys = [c for _, c in slot]
            assert len(keys) == len(set(keys))

    @pytest.mark.parametrize("s,d,k", [(1, 2, 2), (2, 2, 3), (6, 3, 2), (4, 2, 2)])
    def test_stack_kautz_reduce_completes(self, s, d, k):
        net = StackKautzNetwork(s, d, k)
        sched = stack_kautz_reduce(net, 0)
        # local fold (s-1) + at least the tree depth
        assert sched.num_slots >= max(s - 1, 1)

    def test_stack_kautz_reduce_any_root(self):
        net = StackKautzNetwork(2, 2, 2)
        for root in range(net.num_processors):
            stack_kautz_reduce(net, root)  # raises on any lost value


class TestCLI:
    def test_design_sk(self, capsys):
        assert main(["design", "sk", "2", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "verified: True" in out
        assert "OTIS(2,6)" in out

    def test_design_pops(self, capsys):
        assert main(["design", "pops", "4", "2"]) == 0
        assert "OTIS(2,2)" in capsys.readouterr().out

    def test_design_pops_wrong_arity(self):
        assert main(["design", "pops", "4", "2", "9"]) == 2

    def test_design_sk_wrong_arity(self):
        assert main(["design", "sk", "4", "2"]) == 2

    def test_otis(self, capsys):
        assert main(["otis", "3", "6"]) == 0
        assert "lens plane" in capsys.readouterr().out

    def test_route(self, capsys):
        assert main(["route", "6", "3", "2", "0", "71"]) == 0
        out = capsys.readouterr().out
        assert "hops:" in out

    def test_route_bad_processor(self):
        assert main(["route", "6", "3", "2", "0", "999"]) == 2

    def test_simulate(self, capsys):
        assert main(["simulate", "2", "2", "2", "--messages", "40"]) == 0
        assert "msgs=" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "24"]) == 0
        out = capsys.readouterr().out
        assert "POPS" in out and "SK" in out

    def test_compare_impossible_n(self, capsys):
        # N must factor as t*g; every N >= 1 works with g = 1, so use the
        # return path by picking n with rows -- check exit code 0 shape.
        assert main(["compare", "7"]) == 0
