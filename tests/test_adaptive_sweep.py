"""The adaptive Monte-Carlo engine's determinism and safety contracts.

Four families of checks:

* **byte identity** -- an adaptive sweep (sequential stopping,
  stratified or importance sampling) serializes byte-identically at
  any worker count and across the batched/vectorized backends, and a
  fixed-trial sweep still reproduces the pre-adaptive golden outputs
  under ``tests/golden/`` byte for byte;
* **stopping discipline** -- the stopper never exceeds the ``trials``
  cap, spends whole waves, and spends monotonically more as the
  half-width target tightens;
* **algebraic properties** (hypothesis) -- stratum allocations
  conserve the total, the importance proposal is a distribution, and
  likelihood-ratio weights are positive, capped and integrate to 1;
* **door validation** -- bad ``trials`` / ``ci_target`` / ``sampling``
  and unsupported model/backend combinations fail fast with
  ``ValueError`` instead of deep in a worker.
"""

import json
import math
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build
from repro.resilience import (
    SAMPLING_MODES,
    BernoulliCouplerFaults,
    GroupBlockOutage,
    PersistentSweepExecutor,
    UniformCouplerFaults,
    UniformProcessorFaults,
    survivability_sweep,
)
from repro.resilience.adaptive import (
    CardinalityProfile,
    ImportanceSampler,
    StratifiedSampler,
    allocate_strata,
    build_strata,
    cardinality_profile,
    make_sampler,
    wave_schedule,
    wilson_interval,
)

GOLDEN = pathlib.Path(__file__).parent / "golden"

ADAPTIVE_KEYS = {
    "sampling",
    "ci_target",
    "trials_requested",
    "trials_spent",
    "rounds",
    "survival",
    "ci_low",
    "ci_high",
    "ci_half_width",
}


class TestWorkerAndBackendByteIdentity:
    @pytest.mark.parametrize("sampling", SAMPLING_MODES)
    def test_adaptive_json_identical_at_any_worker_count(self, sampling):
        model = BernoulliCouplerFaults(rate=0.2)
        texts = {}
        for workers in (None, 2, 4):
            summary = survivability_sweep(
                "sk(2,2,2)",
                model,
                trials=300,
                seed=11,
                metrics="connectivity",
                ci_target=0.05,
                sampling=sampling,
                workers=workers,
            )
            texts[workers] = summary.to_json()
        assert texts[None] == texts[2] == texts[4]
        assert json.loads(texts[None])["adaptive"]["sampling"] == sampling

    @pytest.mark.parametrize("sampling", SAMPLING_MODES)
    def test_vectorized_matches_batched(self, sampling):
        model = BernoulliCouplerFaults(rate=0.2)
        outs = [
            survivability_sweep(
                "sk(2,2,1)",
                model,
                trials=256,
                seed=5,
                metrics="connectivity",
                ci_target=0.06,
                sampling=sampling,
                backend=backend,
            ).as_dict()
            for backend in ("batched", "vectorized")
        ]
        # backend is recorded (and vectorized may legally downgrade),
        # everything else -- rows, quantiles, adaptive block -- is equal
        for out in outs:
            out.pop("backend", None)
        assert outs[0] == outs[1]

    def test_warm_executor_matches_cold_run(self):
        model = BernoulliCouplerFaults(rate=0.25)
        kwargs = dict(
            trials=200,
            seed=9,
            metrics="connectivity",
            ci_target=0.08,
            sampling="stratified",
        )
        cold = survivability_sweep("pops(2,3)", model, **kwargs)
        with PersistentSweepExecutor(2) as executor:
            warm = survivability_sweep(
                "pops(2,3)", model, _executor=executor, **kwargs
            )
        assert warm.to_json() == cold.to_json()


class TestFixedTrialGoldens:
    """Fixed-trial sweeps still produce the pre-adaptive bytes."""

    CASES = {
        "fixed_pops23_connectivity.json": dict(
            spec="pops(2,3)",
            model="coupler",
            faults=1,
            trials=7,
            seed=3,
            metrics="connectivity",
        ),
        "fixed_sk222_full.json": dict(
            spec="sk(2,2,2)",
            model="coupler",
            faults=2,
            trials=5,
            seed=1,
            messages=10,
            metrics="full",
        ),
        "fixed_sk221_paths_vectorized.json": dict(
            spec="sk(2,2,1)",
            model="processor",
            faults=1,
            trials=6,
            seed=2,
            metrics="paths",
            backend="vectorized",
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_bytes_match_golden(self, name):
        params = dict(self.CASES[name])
        spec = params.pop("spec")
        summary = survivability_sweep(spec, **params)
        assert summary.to_json() == (GOLDEN / name).read_text()
        assert summary.adaptive is None

    @pytest.mark.parametrize("workers", [2, 4])
    def test_golden_bytes_at_higher_worker_counts(self, workers):
        params = dict(self.CASES["fixed_pops23_connectivity.json"])
        spec = params.pop("spec")
        summary = survivability_sweep(spec, workers=workers, **params)
        golden = (GOLDEN / "fixed_pops23_connectivity.json").read_text()
        assert summary.to_json() == golden


class TestStoppingDiscipline:
    def _spent(self, ci_target, trials=2048, seed=21):
        summary = survivability_sweep(
            "sk(2,2,1)",
            BernoulliCouplerFaults(rate=0.2),
            trials=trials,
            seed=seed,
            metrics="connectivity",
            ci_target=ci_target,
        )
        return summary.adaptive

    def test_never_exceeds_cap_and_spends_whole_waves(self):
        block = self._spent(ci_target=0.0005, trials=300)
        waves = wave_schedule(300, ci_target=0.0005)
        assert block["trials_spent"] == 300  # unreachable target: spend cap
        assert block["rounds"] == len(waves)
        loose = self._spent(ci_target=0.5, trials=300)
        assert loose["trials_spent"] == waves[0]
        assert loose["rounds"] == 1

    def test_spent_monotone_in_ci_target(self):
        targets = [0.02, 0.04, 0.08, 0.2]
        spents = [self._spent(t)["trials_spent"] for t in targets]
        assert spents == sorted(spents, reverse=True)
        assert all(s <= 2048 for s in spents)

    def test_summary_trials_equals_trials_spent(self):
        summary = survivability_sweep(
            "sk(2,2,1)",
            BernoulliCouplerFaults(rate=0.2),
            trials=2048,
            seed=3,
            metrics="connectivity",
            ci_target=0.1,
        )
        assert summary.trials == summary.adaptive["trials_spent"]
        assert summary.adaptive["trials_requested"] == 2048
        assert summary.trials < 2048  # coarse target actually saves work


class TestAdaptiveBlockShape:
    def test_fixed_uniform_sweep_has_no_block(self):
        summary = survivability_sweep(
            "pops(2,2)", "coupler", trials=8, seed=1, metrics="connectivity"
        )
        assert summary.adaptive is None
        assert "adaptive" not in summary.as_dict()

    @pytest.mark.parametrize("sampling", ["stratified", "importance"])
    def test_fixed_trial_nonuniform_sampling_reports_block(self, sampling):
        summary = survivability_sweep(
            "pops(2,2)",
            BernoulliCouplerFaults(rate=0.3),
            trials=64,
            seed=4,
            metrics="connectivity",
            sampling=sampling,
        )
        block = summary.adaptive
        assert set(block) == ADAPTIVE_KEYS
        assert block["ci_target"] is None
        assert block["trials_spent"] == block["trials_requested"] == 64
        assert block["sampling"] == sampling
        assert 0.0 <= block["ci_low"] <= block["ci_high"] <= 1.0


class TestAllocationProperties:
    @given(
        total=st.integers(min_value=0, max_value=500),
        weights=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=12
        ).filter(lambda ws: sum(ws) > 0),
    )
    @settings(max_examples=200, deadline=None)
    def test_allocations_conserve_total(self, total, weights):
        counts = allocate_strata(total, weights)
        assert sum(counts) == total
        assert all(c >= 0 for c in counts)
        positives = sum(1 for w in weights if w > 0)
        if total >= positives:
            assert all(c >= 1 for c, w in zip(counts, weights) if w > 0)

    @given(
        trials=st.integers(min_value=1, max_value=5000),
        strata=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_wave_schedule_sums_to_trials(self, trials, strata):
        waves = wave_schedule(trials, strata=strata, ci_target=0.01)
        assert sum(waves) == trials
        assert all(w > 0 for w in waves)
        assert waves[0] == min(trials, max(64, 4 * strata))
        assert wave_schedule(trials, strata=strata) == (trials,)

    @given(
        m=st.integers(min_value=1, max_value=24),
        p=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=200, deadline=None)
    def test_importance_weights_positive_capped_and_normalized(self, m, p):
        profile = cardinality_profile(
            BernoulliCouplerFaults(rate=p), build("pops(2,2)")
        )
        # rebuild at the requested size: binomial over m couplers
        profile = CardinalityProfile(
            axis="coupler",
            size=m,
            pmf=tuple(
                math.comb(m, k) * p**k * (1 - p) ** (m - k)
                for k in range(m + 1)
            ),
        )
        sampler = ImportanceSampler.plan(
            BernoulliCouplerFaults(rate=p), profile
        )
        assert sum(sampler.proposal) == pytest.approx(1.0)
        support = profile.support()
        weights = [sampler.weight(k) for k in support]
        assert all(w > 0 for w in weights)
        assert max(weights) <= 1.0 / sampler.alpha + 1e-9
        # unbiasedness identity: E_Q[w] = sum Q(k) w(k) = sum pmf = 1
        total = sum(sampler.proposal[k] * sampler.weight(k) for k in support)
        assert total == pytest.approx(1.0)

    def test_stratified_plan_covers_every_index_once(self):
        net = build("sk(2,2,1)")
        model = BernoulliCouplerFaults(rate=0.2)
        sampler = make_sampler(
            model, net, sampling="stratified", trials=200, ci_target=0.02
        )
        assert isinstance(sampler, StratifiedSampler)
        counts = [0] * len(sampler.strata)
        for index in range(200):
            counts[sampler.stratum_of(index)] += 1
        per_wave = [
            tuple(alloc) for _, alloc in sampler.schedule
        ]
        expected = [sum(col) for col in zip(*per_wave)]
        assert counts == expected
        assert sum(counts) == 200

    def test_wilson_interval_brackets_the_proportion(self):
        for successes, n in [(0, 10), (10, 10), (7, 13), (499, 500)]:
            lo, hi = wilson_interval(successes, n)
            # at p-hat = 1 the upper bound is exactly 1 mathematically;
            # allow float rounding on the bracket
            assert 0.0 <= lo <= successes / n <= hi + 1e-12
            assert hi <= 1.0


class TestDoorValidation:
    def _sweep(self, **overrides):
        kwargs = dict(
            trials=32, seed=1, metrics="connectivity", faults=1
        )
        kwargs.update(overrides)
        return survivability_sweep("sk(2,2,1)", "coupler", **kwargs)

    @pytest.mark.parametrize("trials", [0, -3])
    def test_nonpositive_trials_rejected(self, trials):
        with pytest.raises(ValueError, match="trials must be >= 1"):
            self._sweep(trials=trials)

    @pytest.mark.parametrize("ci_target", [0, -0.5, 0.0])
    def test_nonpositive_ci_target_rejected(self, ci_target):
        with pytest.raises(ValueError, match="ci_target must be"):
            self._sweep(ci_target=ci_target)

    @pytest.mark.parametrize("ci_target", [True, "0.05", [0.05]])
    def test_nonnumeric_ci_target_rejected(self, ci_target):
        with pytest.raises(ValueError, match="ci_target must be a number"):
            self._sweep(ci_target=ci_target)

    def test_unknown_sampling_rejected(self):
        with pytest.raises(ValueError, match="unknown sampling mode"):
            self._sweep(sampling="sobol")

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(ci_target=0.05, metrics="full"),
            dict(sampling="stratified", metrics="full"),
        ],
    )
    def test_legacy_backend_cannot_run_adaptive(self, overrides):
        with pytest.raises(ValueError, match="legacy"):
            self._sweep(backend="legacy", **overrides)

    def test_stratified_needs_one_trial_per_stratum(self):
        with pytest.raises(ValueError, match="at least"):
            survivability_sweep(
                "sk(2,2,1)",
                BernoulliCouplerFaults(rate=0.2),
                trials=2,
                seed=1,
                metrics="connectivity",
                sampling="stratified",
            )

    @pytest.mark.parametrize("sampling", ["stratified", "importance"])
    def test_models_without_cardinality_profile_rejected(self, sampling):
        with pytest.raises(ValueError, match="cardinality distribution"):
            survivability_sweep(
                "sk(2,2,1)",
                GroupBlockOutage(faults=1),
                trials=64,
                seed=1,
                metrics="connectivity",
                sampling=sampling,
            )

    def test_cardinality_profile_supports_exactly_three_models(self):
        net = build("sk(2,2,1)")
        for model in (
            BernoulliCouplerFaults(rate=0.1),
            UniformCouplerFaults(faults=2),
            UniformProcessorFaults(faults=1),
        ):
            profile = cardinality_profile(model, net)
            assert sum(profile.pmf) == pytest.approx(1.0)
        with pytest.raises(ValueError, match="cardinality distribution"):
            cardinality_profile(GroupBlockOutage(faults=1), net)

    def test_strata_partition_the_support(self):
        profile = cardinality_profile(
            BernoulliCouplerFaults(rate=0.2), build("sk(2,2,2)")
        )
        strata = build_strata(profile)
        covered = [
            k for lo, hi in strata for k in range(lo, hi + 1)
        ]
        assert covered == sorted(set(covered))
        assert set(profile.support()) <= set(covered)
