"""Unit tests for optical components, OPS couplers and power budgets."""

import math

import pytest

from repro.optical import (
    NOMINAL,
    BeamSplitter,
    CollisionError,
    LensPair,
    OPSCoupler,
    OpticalFiber,
    OpticalMultiplexer,
    PowerBudget,
    Receiver,
    Transmitter,
    max_ops_degree,
    splitting_loss_db,
)


class TestSplittingLoss:
    def test_values(self):
        assert splitting_loss_db(1) == 0.0
        assert splitting_loss_db(2) == pytest.approx(10 * math.log10(2))
        assert splitting_loss_db(10) == pytest.approx(10.0)

    def test_monotone(self):
        assert splitting_loss_db(8) > splitting_loss_db(4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            splitting_loss_db(0)


class TestComponents:
    def test_negative_loss_rejected(self):
        with pytest.raises(ValueError):
            LensPair(insertion_loss_db=-0.1)

    def test_mux_fan_in(self):
        with pytest.raises(ValueError):
            OpticalMultiplexer(fan_in=0)

    def test_splitter_total_loss(self):
        s = BeamSplitter(insertion_loss_db=1.0, fan_out=4)
        assert s.total_loss_db() == pytest.approx(1.0 + splitting_loss_db(4))

    def test_fiber_total_loss_scales_with_length(self):
        short = OpticalFiber(length_m=1.0)
        long = OpticalFiber(length_m=1000.0)
        assert long.total_loss_db() > short.total_loss_db()
        assert long.total_loss_db() == pytest.approx(
            short.insertion_loss_db + short.attenuation_db_per_km
        )

    def test_fiber_invalid(self):
        with pytest.raises(ValueError):
            OpticalFiber(length_m=-1.0)

    def test_nominal_registry(self):
        assert set(NOMINAL) == {
            "transmitter",
            "receiver",
            "lens_pair",
            "multiplexer",
            "beam_splitter",
            "fiber",
        }


class TestOPSCoupler:
    def test_degree(self):
        assert OPSCoupler(4, 4).degree == 4

    def test_degree_requires_square(self):
        with pytest.raises(ValueError):
            _ = OPSCoupler(4, 5).degree

    def test_passive(self):
        assert OPSCoupler(2, 2).is_passive

    def test_broadcast_reaches_all_outputs(self):
        assert OPSCoupler(3, 5).broadcast(1) == (1,) * 5

    def test_broadcast_bad_input(self):
        with pytest.raises(IndexError):
            OPSCoupler(3, 3).broadcast(3)

    def test_arbitrate_empty(self):
        assert OPSCoupler(3, 3).arbitrate([]) == ()

    def test_arbitrate_single(self):
        assert OPSCoupler(3, 3).arbitrate([2, 2]) == (2, 2, 2)

    def test_arbitrate_collision(self):
        with pytest.raises(CollisionError):
            OPSCoupler(3, 3, label="x").arbitrate([0, 1])

    def test_arbitrate_bad_index(self):
        with pytest.raises(IndexError):
            OPSCoupler(3, 3).arbitrate([5])

    def test_loss_structure(self):
        ops = OPSCoupler(8, 8)
        assert ops.splitting_loss_db() == pytest.approx(splitting_loss_db(8))
        assert ops.total_loss_db() == pytest.approx(
            ops.multiplexer.insertion_loss_db
            + ops.splitter.insertion_loss_db
            + splitting_loss_db(8)
        )

    def test_mismatched_parts_rejected(self):
        with pytest.raises(ValueError):
            OPSCoupler(4, 4, multiplexer=OpticalMultiplexer(fan_in=3))
        with pytest.raises(ValueError):
            OPSCoupler(4, 4, splitter=BeamSplitter(fan_out=5))

    def test_str(self):
        assert "OPS(4,4)" in str(OPSCoupler(4, 4, label=(0, 1)))


class TestPowerBudget:
    def test_loss_sums_components(self):
        b = PowerBudget(
            Transmitter(),
            (LensPair(insertion_loss_db=1.0), BeamSplitter(insertion_loss_db=1.0, fan_out=4)),
            Receiver(),
        )
        assert b.total_loss_db() == pytest.approx(2.0 + splitting_loss_db(4))

    def test_received_power(self):
        b = PowerBudget(Transmitter(power_dbm=3.0), (LensPair(insertion_loss_db=1.0),), Receiver())
        assert b.received_power_dbm() == pytest.approx(2.0)

    def test_margin_and_feasibility(self):
        b = PowerBudget(
            Transmitter(power_dbm=0.0),
            (BeamSplitter(insertion_loss_db=0.0, fan_out=1000),),
            Receiver(sensitivity_dbm=-30.0),
        )
        # 10*log10(1000) = 30 dB of splitting eats the whole budget
        assert b.margin_db() == pytest.approx(0.0, abs=1e-9)
        assert b.is_feasible()
        assert not b.is_feasible(required_margin_db=1.0)

    def test_fiber_counts_distance(self):
        b = PowerBudget(Transmitter(), (OpticalFiber(length_m=2000.0),), Receiver())
        assert b.total_loss_db() == pytest.approx(0.5 + 0.35 * 2.0)


class TestMaxOPSDegree:
    def test_documented_value(self):
        assert max_ops_degree(Transmitter(power_dbm=0), 4.0, Receiver(sensitivity_dbm=-30)) == 158

    def test_zero_when_infeasible(self):
        assert max_ops_degree(Transmitter(power_dbm=0), 40.0, Receiver(sensitivity_dbm=-30)) == 0

    def test_monotone_in_power(self):
        lo = max_ops_degree(Transmitter(power_dbm=0), 4.0, Receiver())
        hi = max_ops_degree(Transmitter(power_dbm=3), 4.0, Receiver())
        assert hi > lo
