"""Tests for the core subsystem: specs, registry, facade, back-compat.

Three contracts the API redesign must honour:

1. spec strings round-trip (``str(parse(s)) == canonical(s)``) across
   every accepted input form;
2. registry completeness -- every registered family builds, routes,
   simulates and designs through the facade, satisfying the
   :class:`repro.core.Network` protocol;
3. back-compat -- every name in the pre-redesign public API still
   imports and works.
"""

import json

import pytest

import repro
from repro.__main__ import main
from repro.core import (
    Network,
    NetworkSpec,
    SpecError,
    build,
    describe,
    design,
    family_for_network,
    family_keys,
    get_family,
    get_workload,
    iter_families,
    route,
    simulate,
    sweep,
    workload_names,
)

# One modest, fast instance per family (>= 2 processors so every
# workload generator applies).
EXAMPLES = {
    "pops": "pops(4,2)",
    "sk": "sk(2,2,2)",
    "sii": "sii(2,3,10)",
    "sops": "sops(6)",
}


class TestSpecRoundTrip:
    CANONICAL = ["pops(4,2)", "sk(6,3,2)", "sii(4,3,10)", "sops(8)"]

    @pytest.mark.parametrize("text", CANONICAL)
    def test_canonical_round_trip(self, text):
        assert str(NetworkSpec.parse(text)) == text

    def test_loose_forms_normalize(self):
        for variant in ["sk 6 3 2", "sk,6,3,2", "sk(6, 3, 2)", " sk : 6 3 2 "]:
            assert str(NetworkSpec.parse(variant)) == "sk(6,3,2)"

    def test_dict_forms(self):
        by_name = NetworkSpec.parse({"family": "sk", "s": 6, "d": 3, "k": 2})
        by_params = NetworkSpec.parse({"family": "sk", "params": [6, 3, 2]})
        assert by_name == by_params == NetworkSpec("sk", (6, 3, 2))

    def test_argv_and_sequence_forms(self):
        assert NetworkSpec.from_argv(["pops", "4", "2"]) == NetworkSpec("pops", (4, 2))
        assert NetworkSpec.parse(("pops", 4, 2)) == NetworkSpec("pops", (4, 2))

    def test_spec_is_hashable_and_equal(self):
        a = NetworkSpec.parse("sk(6,3,2)")
        b = NetworkSpec.parse("sk 6 3 2")
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_aliases_resolve_to_canonical_key(self):
        assert NetworkSpec.parse("stack-kautz(6,3,2)").family == "sk"
        assert NetworkSpec.parse("SingleOPS(8)").family == "sops"

    def test_params_dict(self):
        assert NetworkSpec.parse("sii(4,3,10)").params_dict() == {
            "s": 4, "d": 3, "n": 10,
        }


class TestSpecValidation:
    def test_missing_parameter_is_named(self):
        with pytest.raises(SpecError, match="'k'"):
            NetworkSpec.parse("sk(6,3)")

    def test_extra_parameter_is_reported(self):
        with pytest.raises(SpecError, match="takes 2 parameters"):
            NetworkSpec.parse("pops(4,2,9)")

    def test_minimum_violation_names_parameter(self):
        with pytest.raises(SpecError, match="'d' must be >= 2"):
            NetworkSpec.parse("sii(4,1,10)")

    def test_unknown_family_lists_known(self):
        with pytest.raises(SpecError, match="known families"):
            NetworkSpec.parse("warp(3)")

    def test_non_integer_parameter_is_named(self):
        with pytest.raises(SpecError, match="'d'"):
            NetworkSpec.from_argv(["sk", "6", "x", "2"])

    def test_dict_missing_parameter_is_named(self):
        with pytest.raises(SpecError, match="'k'"):
            NetworkSpec.parse({"family": "sk", "s": 6, "d": 3})

    def test_spec_error_is_value_error(self):
        assert issubclass(SpecError, ValueError)


class TestRegistryCompleteness:
    def test_all_families_registered(self):
        assert set(family_keys()) == set(EXAMPLES)

    @pytest.mark.parametrize("key", sorted(EXAMPLES))
    def test_build_satisfies_protocol(self, key):
        net = build(EXAMPLES[key])
        assert isinstance(net, Network)
        assert net.num_processors >= 2
        assert net.num_groups >= 1
        assert net.diameter >= 1
        assert net.label_of(0) == (0, 0)
        assert net.hypergraph_model().num_nodes == net.num_processors

    @pytest.mark.parametrize("key", sorted(EXAMPLES))
    def test_route_within_diameter(self, key):
        net = build(EXAMPLES[key])
        n = net.num_processors
        for src, dst in [(0, n - 1), (n - 1, 0), (1, 1)]:
            rt = route(EXAMPLES[key], src, dst)
            assert rt.src == src and rt.dst == dst
            assert (rt.num_hops == 0) == (src == dst)
            assert rt.num_hops <= net.diameter
            assert rt.num_hops == net.hop_distance(src, dst)

    @pytest.mark.parametrize("key", sorted(EXAMPLES))
    def test_simulate_delivers(self, key):
        rep = simulate(EXAMPLES[key], "uniform", messages=40, seed=3)
        assert rep.num_messages == 40
        assert rep.throughput > 0

    @pytest.mark.parametrize("key", sorted(EXAMPLES))
    def test_design_verifies_with_bom(self, key):
        dsg = design(EXAMPLES[key])
        assert dsg.verify()
        bom = dsg.bill_of_materials()
        assert bom.couplers >= 1
        assert dsg.worst_case_power_budget().total_loss_db() > 0

    @pytest.mark.parametrize("key", sorted(EXAMPLES))
    def test_sizes_enumerator_hits_target(self, key):
        for spec in get_family(key).sizes(48):
            assert spec.family == key
            assert build(spec).num_processors == 48

    def test_family_for_network_instance(self):
        assert family_for_network(repro.POPSNetwork(4, 2)).key == "pops"
        assert family_for_network(repro.StackKautzNetwork(2, 2, 2)).key == "sk"
        with pytest.raises(SpecError):
            family_for_network(object())

    def test_iter_families_sorted(self):
        keys = [f.key for f in iter_families()]
        assert keys == sorted(keys)

    def test_register_rejects_key_colliding_with_alias(self):
        # Regression: a key equal to an existing alias would be
        # registered but unreachable (the alias resolves first).
        from repro.core import NetworkFamily, register_family

        with pytest.raises(ValueError, match="already taken"):
            @register_family
            class _Shadow(NetworkFamily):
                key = "stack-kautz"

    def test_register_rejects_duplicate_key(self):
        from repro.core import NetworkFamily, register_family

        with pytest.raises(ValueError, match="already taken"):
            @register_family
            class _Dup(NetworkFamily):
                key = "pops"

    def test_describe_shape(self):
        info = describe("sk(6,3,2)")
        assert info["processors"] == 72
        assert info["diameter"] == 2
        assert info["params"] == {"s": 6, "d": 3, "k": 2}

    def test_route_bounds_checked(self):
        with pytest.raises(IndexError, match="dst"):
            route("pops(4,2)", 0, 99)


class TestWorkloads:
    def test_registry_names(self):
        assert {"uniform", "permutation", "hotspot", "broadcast",
                "group-local", "bernoulli"} <= set(workload_names())

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError, match="known workloads"):
            get_workload("tsunami")

    @pytest.mark.parametrize("name", ["permutation", "hotspot", "broadcast",
                                      "group-local", "bernoulli"])
    def test_each_workload_simulates(self, name):
        rep = simulate("sk(2,2,2)", name, messages=24, seed=5)
        assert rep.slots > 0

    def test_explicit_triples_pass_through(self):
        rep = simulate("pops(4,2)", [(0, 5, 0), (1, 6, 0)])
        assert rep.num_messages == 2


class TestSweep:
    def test_matrix_shape_and_cells(self):
        specs = ["pops(4,2)", "sk(2,2,2)", "sops(6)"]
        result = sweep(specs, ["uniform", "permutation"], messages=30, seed=2)
        assert len(result) == 6
        assert len(result.as_dicts()) == 6
        for cell in result:
            assert cell.slots > 0
            assert cell.throughput > 0
        cell = result.cell("sk 2 2 2", "uniform")
        assert cell.messages == 30
        assert "sk(2,2,2)" in result.formatted()

    def test_missing_cell_raises(self):
        result = sweep(["pops(4,2)"], ["uniform"], messages=10)
        with pytest.raises(KeyError):
            result.cell("pops(4,2)", "hotspot")

    def test_workloads_may_be_a_generator(self):
        # Regression: a generator must not be exhausted building labels.
        result = sweep(
            ["pops(4,2)"], (w for w in ["uniform", "permutation"]), messages=10
        )
        assert len(result) == 2


class TestBackCompatShims:
    def test_all_public_names_still_import(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_legacy_entry_points_work(self):
        assert repro.POPSDesign(4, 2).verify()
        net = repro.StackKautzNetwork(2, 2, 2)
        sim = repro.stack_kautz_simulator(net)
        rep = repro.run_traffic(sim, repro.simulation.uniform_traffic(12, 20))
        assert rep.num_messages == 20
        assert repro.stack_kautz_route(net, 0, 11).num_hops <= 2

    def test_facade_and_legacy_agree(self):
        legacy = repro.StackKautzDesign(6, 3, 2).bill_of_materials()
        facade = design("sk(6,3,2)").bill_of_materials()
        assert legacy == facade

    def test_simulator_for_dispatches_by_instance(self):
        sim = repro.simulator_for(repro.POPSNetwork(4, 2))
        assert sim.network.num_hyperarcs == 4

    def test_comparison_shims(self):
        from repro.analysis import pops_row, stack_kautz_row, topology_row

        assert pops_row(4, 2) == topology_row("pops(4,2)")
        assert stack_kautz_row(6, 3, 2) == topology_row("sk(6,3,2)")


class TestCLISpecForms:
    def test_design_spec_string(self, capsys):
        assert main(["design", "sk(6,3,2)"]) == 0
        assert "verified: True" in capsys.readouterr().out

    def test_design_json(self, capsys):
        assert main(["design", "pops(4,2)", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["verified"] is True
        assert data["bill_of_materials"]["couplers"] == 4

    def test_design_missing_param_names_it(self, capsys):
        assert main(["design", "sk", "6", "3"]) == 2
        assert "'k'" in capsys.readouterr().err

    def test_design_sops(self, capsys):
        assert main(["design", "sops(8)"]) == 0
        assert "OPS coupler" in capsys.readouterr().out

    def test_route_spec_form(self, capsys):
        assert main(["route", "sii(4,3,10)", "0", "39"]) == 0
        assert "hops:" in capsys.readouterr().out

    def test_route_json(self, capsys):
        assert main(["route", "sk(6,3,2)", "0", "71", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_hops"] <= 2
        assert all("mux" in hop for hop in data["hops"])

    def test_simulate_spec_and_workload(self, capsys):
        assert main(["simulate", "pops(4,2)", "--workload", "hotspot",
                     "--messages", "30"]) == 0
        assert "msgs=" in capsys.readouterr().out

    def test_simulate_unknown_workload(self, capsys):
        assert main(["simulate", "pops(4,2)", "--workload", "nope"]) == 2
        assert "known workloads" in capsys.readouterr().err

    def test_sweep_matrix(self, capsys):
        assert main(["sweep", "pops(4,2)", "sk(2,2,2)", "sops(6)",
                     "--workloads", "uniform", "permutation",
                     "--messages", "20", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data) == 6
        assert {cell["workload"] for cell in data} == {"uniform", "permutation"}

    def test_compare_all_families(self, capsys):
        assert main(["compare", "24", "--families", "all"]) == 0
        out = capsys.readouterr().out
        assert "SII" in out and "SingleOPS" in out

    def test_compare_json(self, capsys):
        assert main(["compare", "24", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert all(row["processors"] == 24 for row in data)


class TestNumLoopsVectorized:
    def test_counts_match_multiplicity(self):
        from repro.graphs import DiGraph

        g = DiGraph(4, [(0, 0), (0, 0), (1, 2), (2, 2), (3, 0)])
        assert g.num_loops() == 3
        assert g.num_loops() == sum(
            g.arc_multiplicity(u, u) for u in range(4)
        )

    def test_no_loops(self):
        from repro.graphs import kautz_graph

        assert kautz_graph(3, 2).num_loops() == 0

    def test_with_extra_loops(self):
        from repro.graphs import kautz_graph

        assert kautz_graph(3, 2).with_extra_loops().num_loops() == 12
