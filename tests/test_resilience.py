"""Resilience subsystem: fault injection, degraded-mode ops, sweeps.

Covers the ISSUE-2 acceptance points: seeded-RNG reproducibility of
scenarios, the ``d - 1``-fault / length ``<= k + 2`` survival
guarantee on small stack-Kautz machines (exhaustive single-fault
sets), POPS single-fault partition detection, worker-count-independent
parallel sweeps, the engine's ``disabled_couplers`` drop path, and the
word-level ``FaultSet`` adapter shared with :mod:`repro.routing`.
"""

import itertools
import json

import pytest

import repro
from repro.core import build, degrade, resilience_sweep
from repro.resilience import (
    AdversarialFirstHopFaults,
    DegradedNetwork,
    FaultScenario,
    GroupBlockOutage,
    UniformCouplerFaults,
    UniformLinkFaults,
    UniformProcessorFaults,
    connectivity_ratio,
    coupler_endpoints,
    make_fault_model,
    measure,
    scenarios,
    survivability_sweep,
    trial_seed,
)
from repro.routing import FaultSet, kautz_route, route_survives
from repro.simulation.engine import SlottedSimulator
from repro.simulation.metrics import summarize


# ----------------------------------------------------------------------
# Fault models and scenarios
# ----------------------------------------------------------------------
class TestFaultModels:
    def test_same_seed_same_scenario(self):
        net = build("sk(2,2,3)")
        for model in (
            UniformCouplerFaults(2),
            UniformProcessorFaults(2),
            UniformLinkFaults(1),
            AdversarialFirstHopFaults(1),
            GroupBlockOutage(1),
        ):
            a = model.scenario("sk(2,2,3)", net, seed=42)
            b = model.scenario("sk(2,2,3)", net, seed=42)
            assert a == b

    def test_different_seeds_differ(self):
        net = build("sk(2,2,3)")
        model = UniformCouplerFaults(2)
        draws = {model.scenario("sk(2,2,3)", net, seed=s).couplers for s in range(8)}
        assert len(draws) > 1

    def test_trial_seed_stable_and_distinct(self):
        # platform-stable values: breaking these breaks sweep replays
        assert trial_seed(0, 0) == trial_seed(0, 0)
        seeds = [trial_seed(0, i) for i in range(100)]
        assert len(set(seeds)) == 100
        assert trial_seed(1, 0) != trial_seed(0, 0)

    def test_scenarios_generator_deterministic(self):
        a = [s.couplers for s in scenarios(UniformCouplerFaults(1), "sk(2,2,2)", trials=5, seed=3)]
        b = [s.couplers for s in scenarios(UniformCouplerFaults(1), "sk(2,2,2)", trials=5, seed=3)]
        assert a == b

    def test_model_intensity_and_registry(self):
        net = build("pops(2,3)")
        scen = UniformCouplerFaults(4).scenario("pops(2,3)", net, seed=0)
        assert len(scen.couplers) == 4
        assert make_fault_model("link", 2) == UniformLinkFaults(2)
        with pytest.raises(ValueError):
            make_fault_model("nope")

    def test_link_faults_kill_both_orientations(self):
        net = build("pops(2,3)")
        ends = coupler_endpoints(net)
        scen = UniformLinkFaults(1).scenario("pops(2,3)", net, seed=5)
        pairs = {tuple(sorted(ends[c])) for c in scen.couplers}
        assert len(pairs) == 1
        (u, v) = pairs.pop()
        assert {ends[c] for c in scen.couplers} == {(u, v), (v, u)}

    def test_group_outage_kills_block_and_incident_couplers(self):
        net = build("sk(2,2,2)")
        scen = GroupBlockOutage(1).scenario("sk(2,2,2)", net, seed=1)
        deg = DegradedNetwork(net, scen)
        (dead_group,) = deg.dead_groups
        assert set(scen.processors) == set(
            net.group_members(dead_group).tolist()
        )
        ends = coupler_endpoints(net)
        for c, (a, b) in enumerate(ends):
            assert (c in scen.couplers) == (dead_group in (a, b))

    def test_adversarial_hits_one_victims_out_couplers(self):
        net = build("sk(2,2,2)")
        ends = coupler_endpoints(net)
        scen = AdversarialFirstHopFaults(2).scenario("sk(2,2,2)", net, seed=9)
        sources = {ends[c][0] for c in scen.couplers}
        assert len(sources) == 1
        assert all(ends[c][0] != ends[c][1] for c in scen.couplers)


# ----------------------------------------------------------------------
# The d-1 / k+2 survival guarantee (exhaustive small fault sets)
# ----------------------------------------------------------------------
class TestSurvivalGuarantee:
    @pytest.mark.parametrize("spec", ["sk(2,2,2)", "sk(2,2,3)", "sk(3,2,2)"])
    def test_every_single_coupler_fault_survives_within_k_plus_2(self, spec):
        """d = 2: exhaustive d-1 = 1 coupler faults, all group pairs."""
        net = build(spec)
        k = net.diameter
        groups = range(net.num_groups)
        for c in range(net.num_couplers):
            deg = DegradedNetwork(
                net, FaultScenario(spec, "manual", c, couplers=frozenset({c}))
            )
            for gu, gv in itertools.permutations(groups, 2):
                path = deg.fault_route(gu, gv)
                assert path is not None, (c, gu, gv)
                assert len(path) - 1 <= k + 2, (c, gu, gv, path)

    @pytest.mark.parametrize("spec", ["sk(2,2,2)", "sk(3,2,2)"])
    def test_every_single_group_outage_survives_within_k_plus_2(self, spec):
        """d-1 = 1 node (whole-group) faults, all surviving pairs."""
        net = build(spec)
        k = net.diameter
        ends = coupler_endpoints(net)
        for dead in range(net.num_groups):
            couplers = frozenset(
                c for c, (a, b) in enumerate(ends) if dead in (a, b)
            )
            procs = frozenset(net.group_members(dead).tolist())
            deg = DegradedNetwork(
                net,
                FaultScenario(
                    spec, "manual", dead, couplers=couplers, processors=procs
                ),
            )
            live = [g for g in range(net.num_groups) if g != dead]
            for gu, gv in itertools.permutations(live, 2):
                path = deg.fault_route(gu, gv)
                assert path is not None, (dead, gu, gv)
                assert len(path) - 1 <= k + 2
                assert dead not in path

    def test_sweep_confirms_claim_on_sk222(self):
        s = survivability_sweep(
            "sk(2,2,2)", "coupler", faults=1, trials=50, seed=0, messages=20
        )
        assert s.within_bound_fraction == 1.0
        assert s.partitioned_fraction == 0.0
        assert s.quantiles["max_path_length"]["max"] <= s.bound
        assert s.quantiles["delivery_ratio"]["min"] == 1.0


# ----------------------------------------------------------------------
# POPS partition detection
# ----------------------------------------------------------------------
class TestPOPSPartition:
    def test_single_fault_partitions_two_group_pops(self):
        net = build("pops(2,2)")
        # coupler (0, 1) is hyperarc g*0 + 1 = 1: the only 0 -> 1 medium
        deg = DegradedNetwork(
            net, FaultScenario("pops(2,2)", "manual", 0, couplers=frozenset({1}))
        )
        assert deg.fault_route(0, 1) is None
        assert deg.fault_route(1, 0) == [1, 0]
        assert connectivity_ratio(deg) < 1.0
        # 0 -> 2 crosses the dead coupler; 2 -> 0 and the sibling hop live
        rep = deg.simulate([(0, 2, 0), (2, 0, 0), (0, 1, 0)])
        assert rep.num_dropped == 1
        assert rep.delivery_ratio == pytest.approx(2 / 3)

    def test_three_group_pops_reroutes_around_dead_coupler(self):
        """Degraded-mode routing turns single-hop POPS into 2-hop."""
        net = build("pops(2,3)")
        deg = DegradedNetwork(
            net, FaultScenario("pops(2,3)", "manual", 0, couplers=frozenset({1}))
        )
        path = deg.fault_route(0, 1)
        assert path is not None and len(path) - 1 == 2
        assert connectivity_ratio(deg) == 1.0
        rep = deg.simulate([(0, 2, 0)])  # group 0 -> 1 without coupler (0,1)
        assert rep.delivery_ratio == 1.0
        assert rep.max_hops == 2  # rerouted traffic took the detour

    def test_metrics_row_flags_partition(self):
        net = build("pops(2,2)")
        deg = DegradedNetwork(
            net, FaultScenario("pops(2,2)", "manual", 0, couplers=frozenset({1}))
        )
        row = measure(deg, workload="broadcast", messages=12, seed=1)
        assert row.connectivity < 1.0
        assert row.reachable_groups < 1.0
        assert row.delivery_ratio < 1.0


# ----------------------------------------------------------------------
# Parallel sweep determinism
# ----------------------------------------------------------------------
class TestSweepDeterminism:
    def test_same_seed_same_json_any_worker_count(self):
        kw = dict(faults=1, trials=8, seed=7, messages=12)
        inline = resilience_sweep("sk(2,2,2)", workers=None, **kw)
        two = resilience_sweep("sk(2,2,2)", workers=2, **kw)
        three = resilience_sweep("sk(2,2,2)", workers=3, **kw)
        assert inline.to_json() == two.to_json() == three.to_json()

    def test_different_seed_changes_aggregate(self):
        a = resilience_sweep("sk(2,2,3)", faults=3, trials=6, seed=0, messages=10)
        b = resilience_sweep("sk(2,2,3)", faults=3, trials=6, seed=1, messages=10)
        assert a.to_json() != b.to_json()

    def test_sweep_covers_every_registered_family(self):
        for spec in ("pops(2,3)", "sk(2,2,2)", "sii(2,2,6)", "sops(6)"):
            s = resilience_sweep(spec, faults=1, trials=3, seed=0, messages=8)
            assert s.trials == 3
            assert set(s.quantiles) >= {"connectivity", "delivery_ratio"}

    def test_summary_json_round_trips(self):
        s = resilience_sweep("pops(2,2)", faults=1, trials=4, seed=2, messages=8)
        data = json.loads(s.to_json())
        assert data["spec"] == "pops(2,2)"
        assert data["trials"] == 4
        assert 0.0 <= data["quantiles"]["delivery_ratio"]["mean"] <= 1.0


# ----------------------------------------------------------------------
# Engine: disabled couplers drop instead of wedging
# ----------------------------------------------------------------------
class TestDisabledCouplers:
    def _pops_sim(self, net, disabled):
        model = net.stack_graph_model()
        g = net.num_groups

        def next_coupler(holder, msg):
            return g * net.group_of(holder) + net.group_of(msg.dst)

        return SlottedSimulator(
            model, next_coupler, disabled_couplers=disabled
        )

    def test_dead_coupler_drops_and_run_terminates(self):
        net = build("pops(2,2)")
        sim = self._pops_sim(net, frozenset({1}))
        sim.inject([(0, 2, 0), (0, 1, 0)])  # 0->2 crosses dead (0,1)
        sim.run(max_slots=10)
        assert sim.all_settled() and not sim.all_delivered()
        assert sim.num_dropped() == 1
        assert sum(s.dropped for s in sim.slot_log) == 1
        rep = summarize(sim)
        assert rep.num_dropped == 1
        assert rep.delivery_ratio == 0.5
        assert rep.mean_latency == 0.0  # stats over delivered only

    def test_next_coupler_minus_one_drops_in_degraded_mode(self):
        net = build("pops(2,2)")
        model = net.stack_graph_model()
        sim = SlottedSimulator(
            model, lambda holder, msg: -1, disabled_couplers=frozenset()
        )
        sim.inject([(0, 3, 0)])
        sim.run(max_slots=5)
        assert sim.num_dropped() == 1
        assert sim.verify_conservation()

    def test_intact_engine_still_raises_on_bad_coupler(self):
        """Without opting into degraded mode, -1 is a loud routing bug."""
        net = build("pops(2,2)")
        model = net.stack_graph_model()
        sim = SlottedSimulator(model, lambda holder, msg: -1)
        sim.inject([(0, 3, 0)])
        with pytest.raises(RuntimeError, match="invalid coupler"):
            sim.run(max_slots=5)

    def test_intact_behaviour_unchanged(self):
        net = build("pops(2,2)")
        sim = self._pops_sim(net, frozenset())
        sim.inject([(0, 2, 0), (3, 1, 0)])
        sim.run()
        assert sim.all_delivered()
        rep = summarize(sim)
        assert rep.num_dropped == 0 and rep.delivery_ratio == 1.0


# ----------------------------------------------------------------------
# Word-level FaultSet adapter and link-orientation fix
# ----------------------------------------------------------------------
class TestFaultSetAdapter:
    def test_from_indices_maps_groups_to_words(self):
        net = build("sk(2,2,2)")
        fs = FaultSet.from_indices(net, groups=[0, 3])
        assert fs.nodes == {net.group_word(0), net.group_word(3)}

    def test_from_indices_maps_couplers_to_word_arcs(self):
        net = build("sk(2,2,2)")
        arcs = net.base_graph().arc_array()
        non_loop = next(
            i for i, (u, v) in enumerate(arcs.tolist()) if u != v
        )
        loop = next(i for i, (u, v) in enumerate(arcs.tolist()) if u == v)
        fs = FaultSet.from_indices(net, couplers=[non_loop, loop])
        u, v = arcs[non_loop]
        assert fs.arcs == {(net.group_word(int(u)), net.group_word(int(v)))}

    def test_blocks_arc_is_orientation_blind(self):
        d, k = 2, 3
        x, y = (0, 1, 0), (1, 2, 1)
        greedy = kautz_route(x, y, d)
        assert len(greedy) > 1
        reversed_fault = FaultSet.of(arcs=[(greedy[1], greedy[0])])
        assert reversed_fault.blocks(greedy)
        assert reversed_fault.blocks_arc(greedy[0], greedy[1])
        # the predicate still finds a surviving detour within k+2
        assert route_survives(x, y, d, reversed_fault, max_length=k + 2)

    def test_shared_representation_with_resilience(self):
        """sk fault_route consults the same word-level faults."""
        net = build("sk(2,2,2)")
        arcs = net.base_graph().arc_array().tolist()
        c = next(i for i, (u, v) in enumerate(arcs) if u != v)
        u, v = arcs[c]
        deg = DegradedNetwork(
            net,
            FaultScenario("sk(2,2,2)", "manual", 0, couplers=frozenset({c})),
        )
        path = deg.fault_route(int(u), int(v))
        assert path is not None
        assert (int(u), int(v)) not in set(zip(path, path[1:]))


# ----------------------------------------------------------------------
# Facade and CLI
# ----------------------------------------------------------------------
class TestFacadeAndCLI:
    def test_degrade_verb(self):
        deg = degrade("sk(2,2,2)", model="coupler", faults=2, seed=5)
        assert isinstance(deg, DegradedNetwork)
        assert len(deg.scenario.couplers) == 2
        replay = degrade("sk(2,2,2)", scenario=deg.scenario)
        assert replay.dead_couplers == deg.dead_couplers

    def test_degrade_rejects_bad_model(self):
        with pytest.raises(ValueError):
            degrade("sk(2,2,2)", model="meteor")
        with pytest.raises(TypeError):
            degrade("sk(2,2,2)", model=42)

    def test_top_level_exports(self):
        assert repro.degrade is degrade
        assert repro.resilience_sweep is resilience_sweep
        assert repro.survivability_sweep is survivability_sweep
        assert repro.make_fault_model("group", 1) == GroupBlockOutage(1)

    def test_cli_resilience_json(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "resilience",
                "sk(2,2,2)",
                "--faults",
                "1",
                "--trials",
                "4",
                "--messages",
                "10",
                "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["spec"] == "sk(2,2,2)"
        assert data["model"] == "coupler"
        assert data["within_bound_fraction"] == 1.0

    def test_cli_resilience_text_and_errors(self, capsys):
        from repro.__main__ import main

        assert (
            main(["resilience", "sk(2,2,2)", "--trials", "2", "--messages", "6"])
            == 0
        )
        assert "sk(2,2,2)" in capsys.readouterr().out
        assert main(["resilience", "nope(1)"]) == 2
        assert main(["resilience", "sk(2,2,2)", "--model", "meteor"]) == 2


# ----------------------------------------------------------------------
# Degraded views and edge cases
# ----------------------------------------------------------------------
class TestDegradedViews:
    def test_surviving_views_shrink_consistently(self):
        net = build("sk(2,2,2)")
        deg = degrade("sk(2,2,2)", faults=3, seed=11)
        assert len(deg.surviving_couplers) == net.num_couplers - 3
        assert deg.surviving_base().num_arcs == net.num_couplers - 3
        assert deg.surviving_hypergraph().num_hyperarcs == net.num_couplers - 3
        assert deg.surviving_hypergraph().num_nodes == net.num_processors

    def test_processor_faults_lower_connectivity(self):
        from repro.resilience import alive_connectivity_ratio

        net = build("pops(2,2)")
        deg = DegradedNetwork(
            net,
            FaultScenario("pops(2,2)", "manual", 0, processors=frozenset({3})),
        )
        assert 3 not in deg.alive_processors
        assert connectivity_ratio(deg) == pytest.approx(6 / 12)
        # the fabric itself is intact: survivors all still talk
        assert alive_connectivity_ratio(deg) == 1.0
        rep = deg.simulate("permutation", seed=0)
        assert rep.delivery_ratio < 1.0

    def test_processor_faults_are_not_partitions(self):
        """A dead endpoint is a casualty, not a severed fabric."""
        s = survivability_sweep(
            "sk(2,2,2)", "processor", faults=1, trials=6, seed=0, messages=10
        )
        assert s.partitioned_fraction == 0.0
        assert s.quantiles["connectivity"]["max"] < 1.0
        assert s.quantiles["alive_connectivity"]["min"] == 1.0

    def test_faults_with_model_instance_is_an_error(self):
        with pytest.raises(ValueError, match="intensity"):
            survivability_sweep(
                "sk(2,2,2)", UniformCouplerFaults(1), faults=3, trials=1
            )
        with pytest.raises(ValueError, match="intensity"):
            degrade("sk(2,2,2)", model=UniformCouplerFaults(1), faults=3)

    def test_dead_single_star_drops_everything(self):
        net = build("sops(4)")
        deg = DegradedNetwork(
            net, FaultScenario("sops(4)", "manual", 0, couplers=frozenset({0}))
        )
        row = measure(deg, messages=10, seed=0)
        assert row.connectivity == 0.0
        assert row.delivery_ratio == 0.0
        assert row.latency_inflation == 0.0

    def test_loop_coupler_fault_forces_sibling_detour(self):
        net = build("sk(2,2,2)")
        arcs = net.base_graph().arc_array().tolist()
        loop = next(i for i, (u, v) in enumerate(arcs) if u == v)
        g = arcs[loop][0]
        deg = DegradedNetwork(
            net,
            FaultScenario("sk(2,2,2)", "manual", 0, couplers=frozenset({loop})),
        )
        src, dst = net.group_members(g).tolist()[:2]
        rep = deg.simulate([(src, dst, 0)])
        assert rep.delivery_ratio == 1.0
        assert rep.max_hops > 1  # left the group and came back
