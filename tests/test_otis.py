"""Unit tests for the OTIS transpose architecture and lens layout (Fig. 1)."""

import numpy as np
import pytest

from repro.optical import OTIS, OTISLayout


class TestTransposeMap:
    def test_paper_formula(self):
        """(i, j) -> (T-1-j, G-1-i) for OTIS(3, 6)."""
        o = OTIS(3, 6)
        assert o.receiver_of(0, 0) == (5, 2)
        assert o.receiver_of(2, 5) == (0, 0)
        assert o.receiver_of(1, 3) == (2, 1)

    def test_inverse_map(self):
        o = OTIS(3, 6)
        for i in range(3):
            for j in range(6):
                a, b = o.receiver_of(i, j)
                assert o.transmitter_of(a, b) == (i, j)

    def test_sizes(self):
        o = OTIS(3, 6)
        assert o.num_inputs == o.num_outputs == 18
        assert o.num_lenses == 9  # 3 + 6, as drawn in Fig. 1

    def test_bad_params(self):
        with pytest.raises(ValueError):
            OTIS(0, 5)
        with pytest.raises(ValueError):
            OTIS(5, 0)

    def test_index_checks(self):
        o = OTIS(3, 6)
        with pytest.raises(IndexError):
            o.receiver_of(3, 0)
        with pytest.raises(IndexError):
            o.receiver_of(0, 6)
        with pytest.raises(IndexError):
            o.transmitter_of(6, 0)
        with pytest.raises(IndexError):
            o.flat_receiver_of(18)


class TestPermutation:
    @pytest.mark.parametrize("g,t", [(1, 1), (2, 3), (3, 6), (4, 4), (5, 2), (7, 7)])
    def test_is_permutation(self, g, t):
        perm = OTIS(g, t).permutation()
        assert np.array_equal(np.sort(perm), np.arange(g * t))

    def test_flat_formula(self):
        """Flat form: q = G*T - 1 - (j*G + i)."""
        o = OTIS(3, 6)
        for p in range(18):
            i, j = divmod(p, 6)
            assert o.flat_receiver_of(p) == 18 - 1 - (j * 3 + i)

    def test_permutation_matches_scalar(self):
        o = OTIS(4, 5)
        perm = o.permutation()
        for p in range(20):
            assert perm[p] == o.flat_receiver_of(p)

    def test_inverse_permutation(self):
        o = OTIS(3, 6)
        perm, inv = o.permutation(), o.inverse_permutation()
        assert np.array_equal(inv[perm], np.arange(18))

    def test_inverse_system_composition(self):
        o = OTIS(3, 6)
        back = o.inverse_system()
        assert back.num_groups == 6 and back.group_size == 3
        assert np.array_equal(back.permutation()[o.permutation()], np.arange(18))


class TestAlgebra:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_square_is_involution(self, n):
        assert OTIS(n, n).is_involution()

    def test_non_square_not_involution(self):
        assert not OTIS(2, 3).is_involution()

    def test_fixed_points_antidiagonal(self):
        o = OTIS(4, 4)
        fp = o.fixed_points()
        expected = [i * 4 + (3 - i) for i in range(4)]
        assert fp.tolist() == expected

    def test_str(self):
        assert str(OTIS(3, 6)) == "OTIS(3,6)"


class TestLayout:
    @pytest.fixture
    def layout(self):
        return OTISLayout(OTIS(3, 6))

    def test_positions(self, layout):
        assert layout.transmitter_position(0, 0) == 0.0
        assert layout.transmitter_position(2, 5) == 17.0
        assert layout.receiver_position(5, 2) == 17.0
        assert layout.plane1_lens_position(0) == 2.5
        assert layout.plane2_lens_position(0) == 1.0

    def test_position_bounds(self, layout):
        with pytest.raises(IndexError):
            layout.plane1_lens_position(3)
        with pytest.raises(IndexError):
            layout.plane2_lens_position(6)

    def test_trace_endpoints(self, layout):
        tr = layout.trace(0, 0)
        assert tr.transmitter == (0, 0)
        assert tr.receiver == (5, 2)
        assert tr.points[0] == (0.0, 0.0)
        assert tr.points[-1][0] == 3.0

    def test_trace_lens_assignment(self, layout):
        tr = layout.trace(1, 4)
        # beam uses plane-1 lens of its own group...
        assert tr.points[1][1] == layout.plane1_lens_position(1)
        # ...and plane-2 lens of its receiver block
        assert tr.points[2][1] == layout.plane2_lens_position(tr.receiver[0])

    @pytest.mark.parametrize("g,t", [(2, 2), (3, 6), (4, 3), (5, 5)])
    def test_geometry_realizes_transpose(self, g, t):
        assert OTISLayout(OTIS(g, t)).verify_transpose_geometry()

    def test_crossings_positive(self, layout):
        assert layout.crossing_count() > 0

    def test_trivial_crossings(self):
        assert OTISLayout(OTIS(1, 1)).crossing_count() == 0

    def test_ascii_render_mentions_every_lens(self, layout):
        art = layout.render_ascii()
        assert "OTIS(3,6)" in art
        for i in range(3):
            assert f"[lens1 #{i}]" in art
        for a in range(6):
            assert f"[lens2 #{a}]" in art
