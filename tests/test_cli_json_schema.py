"""Golden JSON-schema tests for the CLI's ``--json`` outputs.

Downstream tooling shells out to ``python -m repro ... --json`` and
indexes into the result; these tests pin the *shape* of that contract
-- exact top-level key sets and value types for ``describe``,
``sweep``, ``resilience``, ``temporal`` and ``design-search`` -- so a
key rename or
type drift fails loudly here instead of in someone's dashboard.
"""

import json

import pytest

from repro.__main__ import main


def cli_json(capsys, argv):
    """Run the CLI, assert success, return the parsed JSON payload."""
    rc = main(argv)
    out = capsys.readouterr().out
    assert rc == 0, out
    return json.loads(out)


def assert_schema(payload: dict, schema: dict[str, type | tuple]) -> None:
    """Exact key set + type check, one failure message per drift."""
    assert set(payload) == set(schema), (
        f"top-level keys drifted: extra={sorted(set(payload) - set(schema))} "
        f"missing={sorted(set(schema) - set(payload))}"
    )
    for key, typ in schema.items():
        assert isinstance(payload[key], typ), (
            f"{key!r} should be {typ}, got {type(payload[key]).__name__}: "
            f"{payload[key]!r}"
        )


#: quantile cells: every metric maps to exactly these six statistics
QUANTILE_KEYS = {"mean", "p05", "p50", "p95", "min", "max"}

DESCRIBE_SCHEMA = {
    "spec": str,
    "family": str,
    "params": dict,
    "processors": int,
    "groups": int,
    "couplers": int,
    "coupler_degree": int,
    "processor_degree": int,
    "diameter": int,
}

SWEEP_CELL_SCHEMA = {
    "spec": str,
    "workload": str,
    "processors": int,
    "messages": int,
    "slots": int,
    "mean_latency": (int, float),
    "p95_latency": (int, float),
    "max_latency": int,
    "mean_hops": (int, float),
    "throughput": (int, float),
    "coupler_utilization": (int, float),
}

RESILIENCE_SCHEMA = {
    "spec": str,
    "model": str,
    "faults": int,
    "trials": int,
    "seed": int,
    "workload": str,
    "messages": int,
    "bound": int,
    "quantiles": dict,
    "within_bound_fraction": (int, float, type(None)),
    "partitioned_fraction": (int, float),
}

DESIGN_SEARCH_SCHEMA = {
    "max_processors": int,
    "min_processors": int,
    "families": list,
    "model": str,
    "faults": int,
    "trials": int,
    "seed": int,
    "metrics": str,
    "rank_by": str,
    "cost_model": dict,
    "ci_target": (int, float, type(None)),
    "sampling": str,
    "pareto": list,
    "skipped_underfaulted": list,
    "candidates": list,
}

EXPERIMENT_SCHEMA = {
    "specs": list,
    "models": list,
    "metrics": list,
    "trials": list,
    "seed": int,
    "backend": str,
    "workload": str,
    "messages": int,
    "samplings": list,
    "ci_target": (int, float, type(None)),
    "cells": list,
}

EXPERIMENT_CELL_SCHEMA = {
    "spec": str,
    "model": str,
    "faults": int,
    "metrics": str,
    "backend": str,
    "sampling": str,
    "summary": dict,
}

CANDIDATE_SCHEMA = {
    "spec": str,
    "family": str,
    "processors": int,
    "groups": int,
    "coupler_degree": int,
    "diameter": int,
    "cost": (int, float),
    "link_margin_db": (int, float),
    "survivability": (int, float),
    "partitioned_fraction": (int, float),
    "within_bound_fraction": (int, float, type(None)),
    "mean_stretch": (int, float, type(None)),
    "survivability_per_kilocost": (int, float),
    "pareto": bool,
    "trials_spent": int,
    "early_discarded": bool,
}

TEMPORAL_SCHEMA = {
    "spec": str,
    "process": str,
    "faults": int,
    "mtbf": (int, float),
    "mttr": (int, float),
    "law": str,
    "horizon": int,
    "trials": int,
    "seed": int,
    "workload": str,
    "messages": int,
    "bound": int,
    "quantiles": dict,
    "availability_curve": list,
    "disconnected_fraction": (int, float, type(None)),
    "skipped_underfaulted": bool,
}

#: adaptive sweeps add exactly one key to the resilience summary
ADAPTIVE_BLOCK_SCHEMA = {
    "sampling": str,
    "ci_target": (int, float, type(None)),
    "trials_requested": int,
    "trials_spent": int,
    "rounds": int,
    "survival": (int, float),
    "ci_low": (int, float),
    "ci_high": (int, float),
    "ci_half_width": (int, float),
}


class TestDescribeSchema:
    @pytest.mark.parametrize(
        "spec", ["pops(4,2)", "sk(2,2,2)", "sii(2,3,10)", "sops(8)"]
    )
    def test_top_level_keys_and_types(self, capsys, spec):
        data = cli_json(capsys, ["describe", spec, "--json"])
        assert_schema(data, DESCRIBE_SCHEMA)
        assert data["spec"] == spec
        assert all(isinstance(v, int) for v in data["params"].values())


class TestSweepSchema:
    def test_cells_are_uniform_rows(self, capsys):
        data = cli_json(
            capsys,
            [
                "sweep",
                "pops(2,2)",
                "sk(2,2,2)",
                "--workloads",
                "uniform",
                "--messages",
                "20",
                "--json",
            ],
        )
        assert isinstance(data, list) and len(data) == 2
        for cell in data:
            assert_schema(cell, SWEEP_CELL_SCHEMA)

    def test_sweep_result_to_json_matches_cli_payload(self, capsys):
        """`SweepResult.to_json()` IS the CLI `sweep --json` contract."""
        import repro

        argv = [
            "sweep",
            "pops(2,2)",
            "sk(2,2,2)",
            "--workloads",
            "uniform",
            "--messages",
            "20",
            "--json",
        ]
        assert main(argv) == 0
        cli_text = capsys.readouterr().out
        result = repro.sweep(
            ["pops(2,2)", "sk(2,2,2)"], ["uniform"], messages=20
        )
        assert result.to_json() == cli_text.rstrip("\n")
        for cell in json.loads(result.to_json()):
            assert_schema(cell, SWEEP_CELL_SCHEMA)


class TestResilienceSchema:
    def test_full_metrics_summary(self, capsys):
        data = cli_json(
            capsys,
            [
                "resilience",
                "sk(2,2,2)",
                "--faults",
                "1",
                "--trials",
                "5",
                "--messages",
                "10",
                "--json",
            ],
        )
        assert_schema(data, RESILIENCE_SCHEMA)
        assert set(data["quantiles"]) == {
            "connectivity",
            "alive_connectivity",
            "reachable_groups",
            "max_path_length",
            "mean_stretch",
            "within_bound",
            "delivery_ratio",
            "latency_inflation",
            "mean_latency",
            "dropped",
            "slots",
        }
        for cell in data["quantiles"].values():
            assert set(cell) == QUANTILE_KEYS

    def test_connectivity_metrics_summary(self, capsys):
        data = cli_json(
            capsys,
            [
                "resilience",
                "pops(2,3)",
                "--trials",
                "5",
                "--metrics",
                "connectivity",
                "--json",
            ],
        )
        assert_schema(data, RESILIENCE_SCHEMA)
        assert set(data["quantiles"]) == {
            "connectivity",
            "alive_connectivity",
            "reachable_groups",
        }
        assert data["within_bound_fraction"] is None
        assert data["messages"] == 0

    def test_adaptive_summary_adds_exactly_one_key(self, capsys):
        data = cli_json(
            capsys,
            [
                "resilience",
                "pops(2,3)",
                "--trials",
                "512",
                "--metrics",
                "connectivity",
                "--ci-target",
                "0.05",
                "--json",
            ],
        )
        assert_schema(data, {**RESILIENCE_SCHEMA, "adaptive": dict})
        assert_schema(data["adaptive"], ADAPTIVE_BLOCK_SCHEMA)
        assert data["adaptive"]["trials_spent"] == data["trials"]
        assert data["adaptive"]["trials_requested"] == 512


class TestTemporalSchema:
    def test_connectivity_metrics_summary(self, capsys):
        data = cli_json(
            capsys,
            [
                "temporal",
                "sk(2,2,2)",
                "--faults",
                "2",
                "--mtbf",
                "60",
                "--mttr",
                "20",
                "--trials",
                "4",
                "--horizon",
                "200",
                "--json",
            ],
        )
        assert_schema(data, TEMPORAL_SCHEMA)
        assert set(data["quantiles"]) == {
            "availability",
            "survivability",
            "time_to_disconnect",
            "events",
        }
        for cell in data["quantiles"].values():
            assert set(cell) == QUANTILE_KEYS
        assert len(data["availability_curve"]) == 16
        assert data["messages"] == 0

    def test_full_metrics_summary(self, capsys):
        data = cli_json(
            capsys,
            [
                "temporal",
                "sk(2,2,2)",
                "--trials",
                "3",
                "--horizon",
                "150",
                "--metrics",
                "full",
                "--messages",
                "10",
                "--json",
            ],
        )
        assert_schema(data, TEMPORAL_SCHEMA)
        assert set(data["quantiles"]) == {
            "availability",
            "survivability",
            "time_to_disconnect",
            "events",
            "within_bound_time",
            "mean_stretch_time",
            "delivery_ratio",
            "dropped",
            "mean_latency",
            "slots",
        }
        assert data["messages"] == 10

    def test_summary_to_json_matches_cli_payload(self, capsys):
        """`TemporalSummary.to_json()` IS the CLI `temporal --json` contract."""
        import repro

        argv = [
            "temporal",
            "sk(2,2,2)",
            "--faults",
            "2",
            "--trials",
            "4",
            "--horizon",
            "200",
            "--seed",
            "7",
            "--json",
        ]
        assert main(argv) == 0
        cli_text = capsys.readouterr().out
        summary = repro.temporal_sweep(
            "sk(2,2,2)", faults=2, trials=4, horizon=200, seed=7
        )
        assert summary.to_json() == cli_text.rstrip("\n")


class TestExperimentSchema:
    def test_result_and_cell_rows(self, capsys):
        data = cli_json(
            capsys,
            [
                "experiment",
                "pops(2,2)",
                "sk(2,2,2)",
                "--models",
                "coupler:1",
                "processor",
                "--trials",
                "4",
                "--json",
            ],
        )
        assert_schema(data, EXPERIMENT_SCHEMA)
        assert len(data["cells"]) == 4  # 2 specs x 2 models
        for cell in data["cells"]:
            assert_schema(cell, EXPERIMENT_CELL_SCHEMA)
            assert_schema(cell["summary"], RESILIENCE_SCHEMA)
        assert data["models"] == ["coupler:1", "processor:1"]

    def test_cell_summaries_match_resilience_verb(self, capsys):
        """Each grid cell is byte-identical to a resilience_sweep call."""
        import repro

        result = repro.experiment(
            ["pops(2,2)"], models=["coupler:2"], trials=5, seed=3
        )
        direct = repro.resilience_sweep(
            "pops(2,2)",
            model="coupler",
            faults=2,
            trials=5,
            seed=3,
            metrics="connectivity",
        )
        assert result.cells[0].summary.to_json() == direct.to_json()


class TestDesignSearchSchema:
    def test_result_and_candidate_rows(self, capsys):
        data = cli_json(
            capsys,
            [
                "design-search",
                "--max-processors",
                "8",
                "--families",
                "pops",
                "sops",
                "--trials",
                "4",
                "--json",
            ],
        )
        assert_schema(data, DESIGN_SEARCH_SCHEMA)
        assert data["candidates"], "search window should not be empty"
        for cand in data["candidates"]:
            assert_schema(cand, CANDIDATE_SCHEMA)
        starred = {c["spec"] for c in data["candidates"] if c["pareto"]}
        assert set(data["pareto"]) == starred
