"""Unit tests for directed hypergraphs and stack-graphs (Defs. 1, Fig. 3-5)."""

import pytest

from repro.graphs import (
    complete_digraph_with_loops,
    kautz_graph_with_loops,
    DiGraph,
)
from repro.hypergraphs import DirectedHypergraph, Hyperarc, stack_graph


class TestHyperarc:
    def test_ops_shape(self):
        ha = Hyperarc((0, 1, 2, 3), (4, 5, 6, 7))
        assert ha.in_size == ha.out_size == 4
        assert ha.is_ops_of_degree(4)
        assert not ha.is_ops_of_degree(3)

    def test_sorted_storage(self):
        ha = Hyperarc((3, 1), (2, 0))
        assert ha.sources == (1, 3)
        assert ha.targets == (0, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Hyperarc((), (0,))
        with pytest.raises(ValueError):
            Hyperarc((0,), ())


class TestDirectedHypergraph:
    @pytest.fixture
    def h(self):
        return DirectedHypergraph(
            6,
            [
                Hyperarc((0, 1), (2, 3), label="a"),
                Hyperarc((2, 3), (4, 5), label="b"),
                Hyperarc((4, 5), (0, 1), label="c"),
            ],
        )

    def test_counts(self, h):
        assert h.num_nodes == 6
        assert h.num_hyperarcs == 3

    def test_membership_queries(self, h):
        assert h.out_hyperarcs(0) == [0]
        assert h.in_hyperarcs(4) == [1]
        assert h.out_degree(2) == 1
        assert h.in_degree(2) == 1

    def test_neighbors_out(self, h):
        assert h.neighbors_out(0).tolist() == [2, 3]

    def test_underlying_digraph(self, h):
        g = h.underlying_digraph()
        assert g.num_arcs == 3 * 4
        assert g.has_arc(0, 2)
        assert not g.has_arc(0, 4)

    def test_hop_distances(self, h):
        d = h.bfs_hop_distances(0)
        assert d[2] == 1 and d[4] == 2 and d[0] == 0

    def test_hop_diameter(self, h):
        # Reaching the co-source sharing your hyperarc (e.g. 0 -> 1)
        # takes the whole 3-hop cycle.
        assert h.hop_diameter() == 3
        assert not h.is_single_hop()

    def test_disconnected_diameter(self):
        h = DirectedHypergraph(3, [Hyperarc((0,), (1,))])
        assert h.hop_diameter() == -1

    def test_degree_set(self, h):
        assert h.degree_set() == {(2, 2)}

    def test_node_out_of_range(self, h):
        with pytest.raises(IndexError):
            h.out_hyperarcs(6)
        with pytest.raises(IndexError):
            DirectedHypergraph(2, [Hyperarc((0,), (5,))])


class TestStackGraph:
    def test_pops_model_shape(self):
        sg = stack_graph(4, complete_digraph_with_loops(2))
        assert sg.num_nodes == 8
        assert sg.num_hyperarcs == 4
        assert sg.degree_set() == {(4, 4)}
        assert sg.is_single_hop()

    def test_stack_kautz_model_shape(self):
        sg = stack_graph(6, kautz_graph_with_loops(3, 2))
        assert sg.num_nodes == 72
        assert sg.num_hyperarcs == 48
        assert sg.hop_diameter() == 2

    def test_node_numbering(self):
        sg = stack_graph(3, complete_digraph_with_loops(2))
        assert sg.node_id(0, 0) == 0
        assert sg.node_id(2, 1) == 5
        assert sg.copy_and_base(5) == (2, 1)
        assert sg.project(4) == 1

    def test_group_members(self):
        sg = stack_graph(3, complete_digraph_with_loops(2))
        assert sg.group_members(1).tolist() == [3, 4, 5]

    def test_hyperarc_labels_carry_base_labels(self):
        base = DiGraph(2, [(0, 1)], labels=["left", "right"])
        sg = stack_graph(2, base)
        assert sg.hyperarc(0).label == ("left", "right")

    def test_hyperarc_for_base_arc(self):
        base = complete_digraph_with_loops(3)
        sg = stack_graph(2, base)
        idx = sg.hyperarc_for_base_arc(1, 2)
        ha = sg.hyperarc(idx)
        assert ha.sources == (2, 3)
        assert ha.targets == (4, 5)

    def test_hyperarc_for_missing_arc(self):
        sg = stack_graph(2, DiGraph(2, [(0, 1)]))
        with pytest.raises(KeyError):
            sg.hyperarc_for_base_arc(1, 0)

    def test_validate_against_base(self):
        stack_graph(4, complete_digraph_with_loops(3)).validate_against_base()
        stack_graph(2, kautz_graph_with_loops(2, 2)).validate_against_base()

    def test_validate_without_loops(self):
        # groups cannot reach siblings in 1 hop without a loop: cycle len
        from repro.graphs import kautz_graph

        sg = stack_graph(2, kautz_graph(2, 2))
        sg.validate_against_base()

    def test_stacking_factor_one(self):
        base = complete_digraph_with_loops(3)
        sg = stack_graph(1, base)
        assert sg.num_nodes == 3
        ug = sg.underlying_digraph()
        assert ug == base

    def test_bad_stacking_factor(self):
        with pytest.raises(ValueError):
            stack_graph(0, complete_digraph_with_loops(2))

    def test_node_id_bounds(self):
        sg = stack_graph(2, complete_digraph_with_loops(2))
        with pytest.raises(IndexError):
            sg.node_id(2, 0)
        with pytest.raises(IndexError):
            sg.node_id(0, 2)
        with pytest.raises(IndexError):
            sg.group_members(5)
