"""Edge-case sweep across modules: degenerate sizes, custom hooks, errors."""

import pytest

from repro.__main__ import main
from repro.graphs import DiGraph, kautz_graph
from repro.hypergraphs import DirectedHypergraph, Hyperarc, stack_graph
from repro.networks import (
    POPSDesign,
    POPSNetwork,
    StackImaseItohDesign,
    StackKautzDesign,
    StackKautzNetwork,
)
from repro.optical import OTIS, OTISLayout
from repro.simulation import (
    Message,
    SlottedSimulator,
    run_traffic,
    summarize,
    uniform_traffic,
)


class TestDegenerateSizes:
    def test_otis_1_1(self):
        o = OTIS(1, 1)
        assert o.receiver_of(0, 0) == (0, 0)
        assert o.is_involution()
        lay = OTISLayout(o)
        assert lay.verify_transpose_geometry()
        assert "OTIS(1,1)" in lay.render_ascii()

    def test_pops_1_1(self):
        net = POPSNetwork(1, 1)
        assert net.num_processors == 1
        assert net.is_single_hop()
        assert POPSDesign(1, 1).verify()

    def test_stack_kautz_minimal(self):
        net = StackKautzNetwork(1, 1, 1)
        assert net.num_processors == 2
        net.verify_definition()

    def test_sk_design_k1(self):
        # KG(d, 1) = K_{d+1}: diameter-1 stack-Kautz machines
        assert StackKautzDesign(3, 2, 1).verify()

    def test_sii_design_n1(self):
        assert StackImaseItohDesign(2, 2, 1).verify()

    def test_stack_graph_single_node_base(self):
        base = DiGraph(1, [(0, 0)])
        sg = stack_graph(3, base)
        assert sg.num_nodes == 3
        assert sg.is_single_hop()


class TestCustomHooks:
    def test_custom_relay(self):
        net = DirectedHypergraph(4, [Hyperarc((0, 1), (2, 3))])

        def relay_highest(coupler, msg):
            return 3  # always the highest target

        sim = SlottedSimulator(net, lambda h, m: 0, relay_of=relay_highest)
        sim.inject([(0, 3, 0)])
        sim.run()
        assert sim.messages[0].current == 3

    def test_bad_relay_detected(self):
        net = DirectedHypergraph(4, [Hyperarc((0, 1), (2, 3))])
        sim = SlottedSimulator(net, lambda h, m: 0, relay_of=lambda c, m: 0)
        sim.inject([(0, 2, 0)])
        with pytest.raises(RuntimeError):
            sim.run()

    def test_message_latency_before_delivery_raises(self):
        m = Message(0, 0, 1, inject_slot=0)
        with pytest.raises(ValueError):
            _ = m.latency

    def test_contended_slot_fraction(self):
        net = DirectedHypergraph(4, [Hyperarc((0, 1), (2, 3))])
        sim = SlottedSimulator(net, lambda h, m: 0)
        sim.inject([(0, 2, 0), (1, 3, 0)])
        sim.run()
        rep = summarize(sim)
        assert rep.contended_slot_fraction == pytest.approx(0.5)


class TestCLIEdges:
    def test_design_sii(self, capsys):
        assert main(["design", "sii", "2", "2", "5"]) == 0
        assert "verified: True" in capsys.readouterr().out

    def test_compare_prime(self, capsys):
        assert main(["compare", "13"]) == 0
        out = capsys.readouterr().out
        # 13 = 13*1: at least POPS(13,1) exists
        assert "POPS(13,1)" in out


class TestRunTrafficGuards:
    def test_max_slots_guard(self):
        net = StackKautzNetwork(2, 2, 2)
        from repro.simulation import stack_kautz_simulator

        sim = stack_kautz_simulator(net)
        with pytest.raises(RuntimeError):
            run_traffic(sim, uniform_traffic(net.num_processors, 500, seed=0), max_slots=2)

    def test_empty_traffic(self):
        net = POPSNetwork(2, 2)
        from repro.simulation import pops_simulator

        rep = run_traffic(pops_simulator(net), [])
        assert rep.num_messages == 0
        assert rep.mean_latency == 0.0


class TestGraphEdges:
    def test_kautz_d1_is_two_cycle_family(self):
        # d = 1: alphabet {0,1}, words alternate; KG(1,k) is a 2-cycle
        g = kautz_graph(1, 3)
        assert g.num_nodes == 2
        assert g.num_arcs == 2
        assert g.has_arc(0, 1) and g.has_arc(1, 0)

    def test_digraph_single_node_loop_girth(self):
        from repro.graphs import girth

        assert girth(DiGraph(1, [(0, 0)])) == 1

    def test_distance_distribution_empty(self):
        from repro.graphs import distance_distribution

        h = distance_distribution(DiGraph(0, []))
        assert h.sum() == 0
