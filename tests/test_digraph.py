"""Unit tests for the CSR digraph kernel."""

import numpy as np
import pytest

from repro.graphs import DiGraph


@pytest.fixture
def triangle():
    return DiGraph(3, [(0, 1), (1, 2), (2, 0)], name="C3")


@pytest.fixture
def multi():
    # parallel arcs 0->1 (x2), loop at 2
    return DiGraph(3, [(0, 1), (0, 1), (1, 2), (2, 2)])


class TestConstruction:
    def test_basic_counts(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_arcs == 3

    def test_empty_graph(self):
        g = DiGraph(0, [])
        assert g.num_nodes == 0
        assert g.num_arcs == 0

    def test_nodes_without_arcs(self):
        g = DiGraph(5, [])
        assert g.num_nodes == 5
        assert g.out_degree(4) == 0

    def test_negative_num_nodes_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(-1, [])

    def test_arc_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(2, [(0, 2)])
        with pytest.raises(ValueError):
            DiGraph(2, [(-1, 0)])

    def test_bad_arc_shape_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(3, np.array([[0, 1, 2]]))

    def test_parallel_arcs_kept(self, multi):
        assert multi.num_arcs == 4
        assert multi.arc_multiplicity(0, 1) == 2

    def test_from_successor_function(self):
        g = DiGraph.from_successor_function(4, lambda u: [(u + 1) % 4])
        assert g.num_arcs == 4
        assert g.has_arc(3, 0)

    def test_from_adjacency_matrix(self):
        mat = np.array([[0, 2], [1, 1]])
        g = DiGraph.from_adjacency_matrix(mat)
        assert g.arc_multiplicity(0, 1) == 2
        assert g.arc_multiplicity(1, 1) == 1
        assert np.array_equal(g.adjacency_matrix(), mat)

    def test_from_adjacency_matrix_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            DiGraph.from_adjacency_matrix(np.zeros((2, 3)))

    def test_from_adjacency_matrix_rejects_negative(self):
        with pytest.raises(ValueError):
            DiGraph.from_adjacency_matrix(np.array([[0, -1], [0, 0]]))


class TestLabels:
    def test_labels_roundtrip(self):
        g = DiGraph(3, [(0, 1)], labels=["a", "b", "c"])
        assert g.label_of(1) == "b"
        assert g.node_of("c") == 2

    def test_unlabeled_uses_ids(self, triangle):
        assert triangle.label_of(2) == 2
        assert triangle.node_of(1) == 1

    def test_unlabeled_unknown_label(self, triangle):
        with pytest.raises(KeyError):
            triangle.node_of(7)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(2, [], labels=["x", "x"])

    def test_wrong_label_count_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(2, [], labels=["x"])

    def test_relabel(self, triangle):
        g = triangle.relabel(["x", "y", "z"])
        assert g.label_of(0) == "x"
        assert g == triangle  # structure untouched

    def test_relabel_to_none(self):
        g = DiGraph(2, [(0, 1)], labels=["a", "b"]).relabel(None)
        assert g.labels is None


class TestAccessors:
    def test_successors_sorted(self):
        g = DiGraph(4, [(0, 3), (0, 1), (0, 2)])
        assert g.successors(0).tolist() == [1, 2, 3]

    def test_predecessors(self, triangle):
        assert triangle.predecessors(0).tolist() == [2]

    def test_degrees(self, multi):
        assert multi.out_degree(0) == 2
        assert multi.in_degree(1) == 2
        assert multi.out_degrees().tolist() == [2, 1, 1]
        assert multi.in_degrees().tolist() == [0, 2, 2]

    def test_degree_vectors_empty_graph(self):
        g = DiGraph(3, [])
        assert g.in_degrees().tolist() == [0, 0, 0]

    def test_has_arc(self, triangle):
        assert triangle.has_arc(0, 1)
        assert not triangle.has_arc(1, 0)

    def test_arc_multiplicity_zero(self, triangle):
        assert triangle.arc_multiplicity(0, 2) == 0

    def test_num_loops(self, multi):
        assert multi.num_loops() == 1

    def test_out_of_range_node(self, triangle):
        with pytest.raises(IndexError):
            triangle.successors(3)
        with pytest.raises(IndexError):
            triangle.in_degree(-1)

    def test_arc_array_matches(self, multi):
        arr = multi.arc_array()
        assert arr.shape == (4, 2)
        assert arr.tolist() == [[0, 1], [0, 1], [1, 2], [2, 2]]


class TestArcView:
    def test_len_iter(self, triangle):
        assert len(triangle.arcs) == 3
        assert sorted(triangle.arcs) == [(0, 1), (1, 2), (2, 0)]

    def test_contains(self, triangle):
        assert (0, 1) in triangle.arcs
        assert (1, 0) not in triangle.arcs
        assert "nonsense" not in triangle.arcs

    def test_getitem(self, triangle):
        assert triangle.arcs[0] == (0, 1)
        assert triangle.arcs[-1] == (2, 0)

    def test_getitem_out_of_range(self, triangle):
        with pytest.raises(IndexError):
            triangle.arcs[3]


class TestDerived:
    def test_reverse(self, triangle):
        rev = triangle.reverse()
        assert rev.has_arc(1, 0)
        assert rev.reverse() == triangle

    def test_with_loops_adds_missing_only(self, multi):
        g = multi.with_loops()
        assert g.num_loops() == 3
        assert g.arc_multiplicity(2, 2) == 1  # existing loop not duplicated

    def test_with_extra_loops_always_adds(self, multi):
        g = multi.with_extra_loops()
        assert g.arc_multiplicity(2, 2) == 2
        assert g.num_loops() == 4

    def test_without_loops(self, multi):
        g = multi.without_loops()
        assert g.num_loops() == 0
        assert g.num_arcs == 3


class TestTraversal:
    def test_bfs_distances(self, triangle):
        assert triangle.bfs_distances(0).tolist() == [0, 1, 2]

    def test_bfs_unreachable(self):
        g = DiGraph(3, [(0, 1)])
        d = g.bfs_distances(0)
        assert d.tolist() == [0, 1, -1]

    def test_shortest_path(self, triangle):
        assert triangle.shortest_path(0, 2) == [0, 1, 2]
        assert triangle.shortest_path(1, 1) == [1]

    def test_shortest_path_none(self):
        g = DiGraph(3, [(0, 1)])
        assert g.shortest_path(2, 0) is None

    def test_shortest_path_deterministic_tiebreak(self):
        g = DiGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert g.shortest_path(0, 3) == [0, 1, 3]

    def test_strongly_connected(self, triangle):
        assert triangle.is_strongly_connected()
        assert not DiGraph(2, [(0, 1)]).is_strongly_connected()

    def test_empty_strongly_connected(self):
        assert DiGraph(0, []).is_strongly_connected()


class TestDunder:
    def test_equality(self, triangle):
        same = DiGraph(3, [(2, 0), (0, 1), (1, 2)])
        assert triangle == same
        assert hash(triangle) == hash(same)

    def test_inequality(self, triangle):
        assert triangle != DiGraph(3, [(0, 1), (1, 2), (2, 1)])
        assert triangle != "not a graph"

    def test_repr_contains_name(self, triangle):
        assert "C3" in repr(triangle)

    def test_to_networkx(self, multi):
        nx_g = multi.to_networkx()
        assert nx_g.number_of_nodes() == 3
        assert nx_g.number_of_edges() == 4
