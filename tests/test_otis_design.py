"""Unit tests for Proposition 1, Corollary 1 and the group blocks."""

import pytest

from repro.graphs import imase_itoh_graph, imase_itoh_successors, kautz_num_nodes
from repro.networks import (
    GroupReceiveBlock,
    GroupTransmitBlock,
    OTISImaseItohRealization,
    imase_itoh_view,
    otis_for_kautz,
)
from repro.optical import OTIS


class TestProposition1:
    @pytest.fixture
    def r(self):
        return OTISImaseItohRealization(3, 12)  # paper Fig. 10

    def test_input_association(self, r):
        """Input (i, j) -> node (n*i + j) // d, and its inverse."""
        assert r.node_of_input(0, 0) == 0
        assert r.node_of_input(0, 11) == 3
        assert r.node_of_input(2, 11) == 11
        assert r.inputs_of_node(0) == [(0, 0), (0, 1), (0, 2)]
        assert r.inputs_of_node(4) == [(1, 0), (1, 1), (1, 2)]

    def test_input_association_consistency(self, r):
        for i in range(3):
            for j in range(12):
                u = r.node_of_input(i, j)
                assert (i, j) in r.inputs_of_node(u)

    def test_output_association(self, r):
        assert r.node_of_output(5, 1) == 5
        assert r.outputs_of_node(5) == [(5, 0), (5, 1), (5, 2)]

    def test_realized_successors_match_definition(self, r):
        for u in range(12):
            assert r.realized_successors(u) == imase_itoh_successors(u, 3, 12)

    def test_realized_graph_equals_ii(self, r):
        assert r.realized_graph() == imase_itoh_graph(3, 12)

    @pytest.mark.parametrize(
        "d,n",
        [(1, 1), (2, 2), (2, 5), (2, 6), (3, 7), (3, 12), (4, 20), (5, 30), (3, 36), (2, 48)],
    )
    def test_verify_sweep(self, d, n):
        assert OTISImaseItohRealization(d, n).verify()

    def test_port_maps(self, r):
        assert r.input_port_of_arc(0, 1) == 0
        assert r.input_port_of_arc(4, 3) == 14
        # the arc of offset a out of u lands in output group (-3u-a) % 12
        for u in range(12):
            for a in range(1, 4):
                q = r.output_port_of_arc(u, a)
                assert q // 3 == (-3 * u - a) % 12

    def test_port_map_bounds(self, r):
        with pytest.raises(ValueError):
            r.input_port_of_arc(0, 0)
        with pytest.raises(ValueError):
            r.input_port_of_arc(0, 4)
        with pytest.raises(IndexError):
            r.inputs_of_node(12)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            OTISImaseItohRealization(0, 5)
        with pytest.raises(ValueError):
            OTISImaseItohRealization(3, 0)


class TestCorollaries:
    @pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (3, 2), (3, 3), (4, 2)])
    def test_corollary_1(self, d, k):
        """KG(d,k) realizable with OTIS(d, d^{k-1}(d+1))."""
        r = otis_for_kautz(d, k)
        assert r.otis.num_groups == d
        assert r.otis.group_size == kautz_num_nodes(d, k)
        assert r.verify()

    def test_conclusion_corollary(self):
        """OTIS(G, T) viewed as II(G, T)."""
        g = imase_itoh_view(OTIS(3, 12))
        assert g == imase_itoh_graph(3, 12)
        g2 = imase_itoh_view(OTIS(4, 7))
        assert g2 == imase_itoh_graph(4, 7)


class TestGroupBlocks:
    def test_fig8_transmit_block(self):
        """Fig. 8: 6 processors to 4 multiplexers via OTIS(6, 4)."""
        blk = GroupTransmitBlock(6, 4)
        assert blk.otis == OTIS(6, 4)
        assert len(blk.multiplexers) == 4
        assert all(m.fan_in == 6 for m in blk.multiplexers)
        assert blk.verify_full_reach()

    def test_fig9_receive_block(self):
        """Fig. 9: 3 beam-splitters to 5 processors via OTIS(3, 5)."""
        blk = GroupReceiveBlock(3, 5)
        assert blk.otis == OTIS(3, 5)
        assert len(blk.splitters) == 3
        assert all(s.fan_out == 5 for s in blk.splitters)
        assert blk.verify_full_reach()

    def test_transmit_port_mux_inverse(self):
        blk = GroupTransmitBlock(6, 4)
        for i in range(6):
            for m in range(4):
                j = blk.port_for_multiplexer(i, m)
                assert blk.multiplexer_of(i, j)[0] == m

    def test_receive_port_splitter_inverse(self):
        blk = GroupReceiveBlock(3, 5)
        for p in range(5):
            for b in range(3):
                port = blk.port_for_splitter(p, b)
                # splitter b must hit processor p on that port
                hits = [
                    blk.receiver_of(b, c) for c in range(5)
                ]
                assert (p, port) in hits

    @pytest.mark.parametrize("t,g", [(1, 1), (2, 3), (6, 4), (5, 5), (8, 2)])
    def test_full_reach_sweep(self, t, g):
        assert GroupTransmitBlock(t, g).verify_full_reach()
        assert GroupReceiveBlock(g, t).verify_full_reach()

    def test_mux_slot_distinct_per_processor(self):
        """No two processors collide on a multiplexer input slot."""
        blk = GroupTransmitBlock(6, 4)
        for m in range(4):
            slots = set()
            for i in range(6):
                j = blk.port_for_multiplexer(i, m)
                mux, slot = blk.multiplexer_of(i, j)
                assert mux == m
                slots.add(slot)
            assert slots == set(range(6))

    def test_bounds(self):
        blk = GroupTransmitBlock(6, 4)
        with pytest.raises(IndexError):
            blk.port_for_multiplexer(6, 0)
        with pytest.raises(IndexError):
            blk.port_for_multiplexer(0, 4)
        rblk = GroupReceiveBlock(3, 5)
        with pytest.raises(IndexError):
            rblk.port_for_splitter(5, 0)
        with pytest.raises(IndexError):
            rblk.port_for_splitter(0, 3)
        with pytest.raises(ValueError):
            GroupTransmitBlock(0, 4)
        with pytest.raises(ValueError):
            GroupReceiveBlock(3, 0)
