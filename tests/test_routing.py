"""Unit tests for routing: label-induced, fault-tolerant, POPS, stack."""

import itertools

import pytest

from repro.graphs import kautz_graph, kautz_words
from repro.networks import POPSNetwork, StackKautzNetwork
from repro.routing import (
    FaultSet,
    build_routing_table,
    candidate_paths,
    coupler_loads,
    fault_tolerant_route,
    kautz_distance,
    kautz_next_hop,
    kautz_route,
    longest_overlap,
    one_to_all_slots,
    permutation_slots,
    route_imase_itoh,
    route_survives,
    schedule_messages,
    stack_kautz_distance,
    stack_kautz_route,
)


class TestOverlap:
    def test_basic(self):
        assert longest_overlap((0, 1, 2), (1, 2, 0)) == 2
        assert longest_overlap((0, 1), (0, 1)) == 2
        assert longest_overlap((0, 1), (2, 0)) == 0

    def test_single_letters(self):
        assert longest_overlap((1,), (1,)) == 1
        assert longest_overlap((1,), (2,)) == 0


class TestKautzRoute:
    def test_identity(self):
        assert kautz_route((0, 1), (0, 1), 2) == [(0, 1)]
        assert kautz_distance((0, 1), (0, 1), 2) == 0

    def test_one_hop(self):
        assert kautz_route((0, 1), (1, 2), 2) == [(0, 1), (1, 2)]

    def test_example(self):
        assert kautz_route((0, 1), (2, 0), 2) == [(0, 1), (1, 2), (2, 0)]

    @pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (4, 2)])
    def test_route_valid_and_shortest_all_pairs(self, d, k):
        g = kautz_graph(d, k)
        table = build_routing_table(g)
        words = list(kautz_words(d, k))
        for u, wu in enumerate(words):
            for v, wv in enumerate(words):
                route = kautz_route(wu, wv, d)
                # valid consecutive arcs
                for a, b in zip(route, route[1:]):
                    assert b[:-1] == a[1:] and b[-1] != a[-1]
                # shortest
                assert len(route) - 1 == table.distance(u, v)
                assert len(route) - 1 <= k

    def test_next_hop(self):
        assert kautz_next_hop((0, 1), (2, 0), 2) == (1, 2)
        assert kautz_next_hop((0, 1), (0, 1), 2) == (0, 1)

    def test_rejects_invalid_words(self):
        with pytest.raises(ValueError):
            kautz_route((0, 0), (0, 1), 2)
        with pytest.raises(ValueError):
            kautz_route((0, 1), (0, 1, 2), 2)
        with pytest.raises(ValueError):
            kautz_distance((0, 1, 2), (0, 1), 2)

    @pytest.mark.parametrize("d,k", [(2, 3), (3, 2)])
    def test_route_imase_itoh_is_ii_walk(self, d, k):
        from repro.graphs import imase_itoh_graph, kautz_num_nodes

        n = kautz_num_nodes(d, k)
        ii = imase_itoh_graph(d, n)
        for u in range(0, n, 3):
            for v in range(n):
                path = route_imase_itoh(u, v, d, k)
                assert path[0] == u and path[-1] == v
                for a, b in zip(path, path[1:]):
                    assert ii.has_arc(a, b)


class TestFaultTolerant:
    def test_candidates_cover_first_hops(self):
        cands = candidate_paths((0, 1), (2, 0), 2)
        first_hops = {p[1] for p in cands if len(p) > 1}
        assert first_hops == {(1, 0), (1, 2)}

    def test_candidates_sorted_by_length(self):
        cands = candidate_paths((0, 1), (2, 0), 2)
        lengths = [len(p) for p in cands]
        assert lengths == sorted(lengths)

    def test_candidates_simple_paths(self):
        for p in candidate_paths((0, 1, 2), (2, 1, 0), 2):
            assert len(set(p)) == len(p)

    def test_identity(self):
        assert candidate_paths((0, 1), (0, 1), 2) == [[(0, 1)]]
        assert fault_tolerant_route((0, 1), (0, 1), 2, FaultSet.of()) == [(0, 1)]

    def test_no_faults_gives_greedy(self):
        p = fault_tolerant_route((0, 1), (2, 0), 2, FaultSet.of())
        assert p == kautz_route((0, 1), (2, 0), 2)

    def test_blocked_node_avoided(self):
        greedy = kautz_route((0, 1), (2, 0), 2)
        faults = FaultSet.of(nodes=[greedy[1]])
        p = fault_tolerant_route((0, 1), (2, 0), 2, faults)
        assert p is not None
        assert greedy[1] not in p[1:-1]

    def test_blocked_arc_avoided(self):
        greedy = kautz_route((0, 1), (2, 0), 2)
        faults = FaultSet.of(arcs=[(greedy[0], greedy[1])])
        p = fault_tolerant_route((0, 1), (2, 0), 2, faults)
        assert p is not None
        assert (p[0], p[1]) != (greedy[0], greedy[1])

    def test_faulty_endpoint_rejected(self):
        with pytest.raises(ValueError):
            fault_tolerant_route((0, 1), (2, 0), 2, FaultSet.of(nodes=[(0, 1)]))

    @pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (3, 2)])
    def test_paper_k_plus_2_bound_exhaustive(self, d, k):
        """d-1 node faults: a route of length <= k+2 always survives."""
        words = list(kautz_words(d, k))
        for x, y in itertools.permutations(words[: min(len(words), 8)], 2):
            others = [w for w in words if w not in (x, y)]
            for fs in itertools.combinations(others, d - 1):
                faults = FaultSet.of(nodes=list(fs))
                assert route_survives(x, y, d, faults, max_length=k + 2)

    def test_arc_faults_survive(self):
        d, k = 2, 2
        words = list(kautz_words(d, k))
        for x, y in itertools.permutations(words, 2):
            arcs = [(x, nb) for nb in [x[1:] + (z,) for z in range(3) if z != x[-1]]]
            faults = FaultSet.of(arcs=arcs[: d - 1])
            assert route_survives(x, y, d, faults, max_length=k + 2)

    def test_disconnection_returns_none(self):
        # kill both neighbors of the source: nothing survives
        d, k = 2, 2
        x, y = (0, 1), (2, 1)
        nbrs = [x[1:] + (z,) for z in range(3) if z != x[-1]]
        faults = FaultSet.of(nodes=nbrs)
        assert fault_tolerant_route(x, y, d, faults) is None

    def test_fault_set_size(self):
        fs = FaultSet.of(nodes=[(0, 1)], arcs=[((0, 1), (1, 2))])
        assert fs.size == 2


class TestPOPSRouting:
    @pytest.fixture
    def net(self):
        return POPSNetwork(4, 3)

    def test_coupler_loads(self, net):
        msgs = [(0, 4), (1, 5), (2, 0), (8, 11)]
        loads = coupler_loads(net, msgs)
        assert loads[0, 1] == 2
        assert loads[0, 0] == 1
        assert loads[2, 2] == 1
        assert loads.sum() == 4

    def test_schedule_no_collisions(self, net):
        msgs = [(0, 4), (1, 5), (2, 6), (3, 7)]  # all need coupler (0,1)
        slots = schedule_messages(net, msgs)
        assert len(slots) == 4
        for slot in slots:
            used = [net.route(s, t) for s, t in slot]
            assert len(used) == len(set(used))

    def test_schedule_parallel_couplers(self, net):
        msgs = [(0, 4), (4, 8), (8, 0)]  # three distinct couplers
        assert len(schedule_messages(net, msgs)) == 1

    def test_permutation_slots_identity_like(self, net):
        perm = [(p + 4) % 12 for p in range(12)]  # whole group shifts
        assert permutation_slots(net, perm) == 4

    def test_permutation_slots_group_preserving(self, net):
        # rotate within groups: every coupler (i, i) carries 4 messages
        perm = [(p // 4) * 4 + (p + 1) % 4 for p in range(12)]
        assert permutation_slots(net, perm) == 4

    def test_permutation_rejects_non_permutation(self, net):
        with pytest.raises(ValueError):
            permutation_slots(net, [0] * 12)

    def test_broadcast_slots(self, net):
        assert one_to_all_slots(net) == 1
        assert one_to_all_slots(net, simultaneous_ports=False) == 3


class TestStackRouting:
    @pytest.fixture
    def net(self):
        return StackKautzNetwork(4, 2, 3)

    def test_all_pairs_distance_consistency(self, net):
        for src in range(0, net.num_processors, 5):
            for dst in range(net.num_processors):
                r = stack_kautz_route(net, src, dst)
                assert r.num_hops == stack_kautz_distance(net, src, dst)
                assert r.num_hops == net.hop_distance(src, dst)
                assert r.num_hops <= net.diameter

    def test_hop_chain_contiguous(self, net):
        r = stack_kautz_route(net, 0, net.num_processors - 1)
        g = net.label_of(0)[0]
        for h in r.hops:
            assert h.src_group == g
            g = h.dst_group
        assert g == net.label_of(net.num_processors - 1)[0]

    def test_same_processor(self, net):
        r = stack_kautz_route(net, 3, 3)
        assert r.num_hops == 0

    def test_sibling_uses_loop(self, net):
        r = stack_kautz_route(net, 0, 1)
        assert r.num_hops == 1
        assert r.hops[0].is_loop
        assert r.hops[0].tx_port == 0

    def test_hop_ports_match_design_convention(self, net):
        from repro.networks import StackKautzDesign

        design = StackKautzDesign(4, 2, 3)
        for dst in range(0, net.num_processors, 7):
            r = stack_kautz_route(net, 0, dst)
            for h in r.hops:
                v, _b, fiber = design.coupler_destination(h.src_group, h.mux)
                assert v == h.dst_group
                assert fiber == h.is_loop
                assert design.port_of_mux(h.mux) == h.tx_port


class TestRoutingTable:
    def test_verify(self):
        assert build_routing_table(kautz_graph(2, 3)).verify()

    def test_path_reconstruction(self):
        t = build_routing_table(kautz_graph(2, 2))
        p = t.path(0, 5)
        assert p is not None and p[0] == 0 and p[-1] == 5

    def test_unreachable(self):
        from repro.graphs import DiGraph

        t = build_routing_table(DiGraph(2, [(0, 1)]))
        assert t.path(1, 0) is None
        assert t.distance(1, 0) == -1

    def test_diameter_from_table(self):
        t = build_routing_table(kautz_graph(3, 2))
        assert t.eccentricity_matrix_max == 2
