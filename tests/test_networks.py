"""Unit tests for POPS / stack-Kautz / stack-Imase-Itoh topologies."""

import pytest

from repro.graphs import is_kautz_word
from repro.networks import (
    POPSNetwork,
    StackImaseItohNetwork,
    StackKautzNetwork,
)


class TestPOPSNetwork:
    @pytest.fixture
    def net(self):
        return POPSNetwork(4, 2)  # paper Fig. 4

    def test_sizes(self, net):
        assert net.num_processors == 8
        assert net.num_couplers == 4
        assert net.transmitters_per_processor == 2
        assert net.receivers_per_processor == 2

    def test_processor_numbering(self, net):
        assert net.processor_id(0, 0) == 0
        assert net.processor_id(1, 3) == 7
        assert net.group_of(5) == 1
        assert net.group_members(0).tolist() == [0, 1, 2, 3]

    def test_coupler_labels(self, net):
        assert net.coupler_label_between(0, 1) == (0, 1)
        couplers = net.couplers()
        assert len(couplers) == 4
        assert [c.label for c in couplers] == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert all(c.degree == 4 for c in couplers)

    def test_single_hop(self, net):
        assert net.is_single_hop()

    def test_route(self, net):
        assert net.route(0, 7) == (0, 1)
        assert net.route(5, 2) == (1, 0)
        assert net.transmitter_port(0, 7) == 1

    def test_stack_model_is_complete_with_loops(self, net):
        model = net.stack_graph_model()
        assert model.num_hyperarcs == 4
        assert model.base.num_loops() == 2

    def test_bounds(self, net):
        with pytest.raises(IndexError):
            net.processor_id(2, 0)
        with pytest.raises(IndexError):
            net.processor_id(0, 4)
        with pytest.raises(IndexError):
            net.group_of(8)
        with pytest.raises(ValueError):
            POPSNetwork(0, 2)

    def test_str(self, net):
        assert str(net) == "POPS(4,2)"


class TestStackKautzNetwork:
    @pytest.fixture
    def net(self):
        return StackKautzNetwork(6, 3, 2)  # paper Fig. 7

    def test_paper_fig7_facts(self, net):
        """SK(6,3,2): 72 processors, 12 groups of 6, degree 4, diameter 2."""
        assert net.num_processors == 72
        assert net.num_groups == 12
        assert net.processor_degree == 4
        assert net.diameter == 2
        assert net.num_couplers == 48

    def test_labels(self, net):
        assert net.label_of(0) == (0, 0)
        assert net.label_of(71) == (11, 5)
        assert net.processor_id(11, 5) == 71

    def test_group_words(self, net):
        for x in range(net.num_groups):
            w = net.group_word(x)
            assert is_kautz_word(w, 3)
            assert net.group_of_word(w) == x

    def test_group_word_length_check(self, net):
        with pytest.raises(ValueError):
            net.group_of_word((0, 1, 2))

    def test_group_successors(self, net):
        for x in range(net.num_groups):
            succ = net.group_successors(x)
            assert len(succ) == 3
            assert x not in succ  # Kautz graphs are loopless

    def test_base_graph_is_kg_plus(self, net):
        base = net.base_graph()
        assert base.num_nodes == 12
        assert (base.out_degrees() == 4).all()
        assert base.num_loops() == 12

    def test_hop_distance(self, net):
        assert net.hop_distance(0, 0) == 0
        assert net.hop_distance(0, 1) == 1  # sibling via loop
        assert 1 <= net.hop_distance(0, 70) <= 2

    def test_verify_definition(self, net):
        net.verify_definition()

    def test_verify_definition_other_params(self):
        StackKautzNetwork(2, 2, 3).verify_definition()
        StackKautzNetwork(1, 2, 2).verify_definition()
        StackKautzNetwork(4, 4, 1).verify_definition()

    def test_couplers_match_model(self, net):
        couplers = net.couplers()
        model = net.stack_graph_model()
        assert len(couplers) == model.num_hyperarcs
        for c, ha in zip(couplers, model.hyperarcs):
            assert c.degree == 6
            u, v = c.label
            assert ha.sources == tuple(net.group_members(u).tolist())
            assert ha.targets == tuple(net.group_members(v).tolist())

    def test_bad_params(self):
        with pytest.raises(ValueError):
            StackKautzNetwork(0, 3, 2)
        with pytest.raises(ValueError):
            StackKautzNetwork(6, 0, 2)
        with pytest.raises(ValueError):
            StackKautzNetwork(6, 3, 0)

    def test_str(self, net):
        assert str(net) == "SK(6,3,2)"


class TestStackImaseItohNetwork:
    @pytest.fixture
    def net(self):
        return StackImaseItohNetwork(4, 3, 10)

    def test_sizes(self, net):
        assert net.num_processors == 40
        assert net.processor_degree == 4
        assert net.num_couplers == 40
        assert net.diameter_bound == 3

    def test_any_group_count_allowed(self):
        # sizes with no Kautz equivalent
        for n in (5, 7, 10, 11, 13):
            net = StackImaseItohNetwork(2, 2, n)
            assert net.num_groups == n

    def test_base_graph_has_extra_loops(self, net):
        base = net.base_graph()
        for u in range(net.num_groups):
            assert base.has_arc(u, u)
        assert (base.out_degrees() == 4).all()

    def test_labels(self, net):
        assert net.label_of(0) == (0, 0)
        assert net.processor_id(9, 3) == 39
        with pytest.raises(IndexError):
            net.label_of(40)

    def test_group_members(self, net):
        assert net.group_members(2).tolist() == [8, 9, 10, 11]

    def test_model_consistency(self, net):
        model = net.stack_graph_model()
        assert model.num_nodes == 40
        assert model.num_hyperarcs == 40
        model.validate_against_base()

    def test_d1_rejected(self):
        with pytest.raises(ValueError):
            StackImaseItohNetwork(2, 1, 5)
