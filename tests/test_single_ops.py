"""Unit tests for the single-OPS baseline network."""

import pytest

from repro.graphs import debruijn_graph
from repro.networks import SingleOPSNetwork, single_ops_simulator
from repro.simulation import run_traffic, uniform_traffic


class TestSingleOPSNetwork:
    def test_basic_shape(self):
        net = SingleOPSNetwork(8)
        assert net.num_couplers == 1
        assert net.coupler().degree == 8
        assert net.is_single_hop()

    def test_splitting_loss_grows_with_n(self):
        assert SingleOPSNetwork(64).splitting_loss_db() > SingleOPSNetwork(8).splitting_loss_db()

    def test_hypergraph_one_hyperarc(self):
        h = SingleOPSNetwork(5).hypergraph()
        assert h.num_hyperarcs == 1
        assert h.hyperarc(0).sources == tuple(range(5))
        assert h.is_single_hop()

    def test_hop_distance_flat(self):
        net = SingleOPSNetwork(6)
        assert net.hop_distance(0, 0) == 0
        assert net.hop_distance(0, 5) == 1

    def test_hop_distance_virtual(self):
        net = SingleOPSNetwork(8, virtual_topology=debruijn_graph(2, 3))
        assert net.hop_distance(0, 7) >= 1
        assert not net.is_single_hop()

    def test_virtual_topology_size_mismatch(self):
        with pytest.raises(ValueError):
            SingleOPSNetwork(5, virtual_topology=debruijn_graph(2, 3))

    def test_bounds(self):
        net = SingleOPSNetwork(4)
        with pytest.raises(IndexError):
            net.hop_distance(4, 0)
        with pytest.raises(ValueError):
            SingleOPSNetwork(0)

    def test_str(self):
        assert str(SingleOPSNetwork(8)) == "SingleOPS(8)"
        assert "virtual" in str(SingleOPSNetwork(8, virtual_topology=debruijn_graph(2, 3)))


class TestSingleOPSSimulation:
    def test_serialization_is_exact(self):
        """m single-hop messages need exactly m slots on one star."""
        net = SingleOPSNetwork(10)
        traffic = uniform_traffic(10, 37, seed=0)
        rep = run_traffic(single_ops_simulator(net), traffic)
        assert rep.slots == 37
        assert rep.throughput == pytest.approx(1.0)
        assert rep.max_hops == 1

    def test_virtual_topology_hops_cost_slots(self):
        n = 8
        flat = SingleOPSNetwork(n)
        shuffled = SingleOPSNetwork(n, virtual_topology=debruijn_graph(2, 3))
        traffic = uniform_traffic(n, 40, seed=1)
        flat_rep = run_traffic(single_ops_simulator(flat), traffic)
        shuf_rep = run_traffic(single_ops_simulator(shuffled), traffic, max_slots=10_000)
        assert shuf_rep.slots >= flat_rep.slots
        assert shuf_rep.mean_hops >= flat_rep.mean_hops

    def test_virtual_hops_match_topology_distance(self):
        vt = debruijn_graph(2, 3)
        net = SingleOPSNetwork(8, virtual_topology=vt)
        for dst in range(1, 8):
            sim = single_ops_simulator(net)
            run_traffic(sim, [(0, dst, 0)], max_slots=100)
            assert sim.messages[0].hops == int(vt.bfs_distances(0)[dst])

    def test_utilization_always_full(self):
        net = SingleOPSNetwork(12)
        rep = run_traffic(single_ops_simulator(net), uniform_traffic(12, 50, seed=2))
        assert rep.coupler_utilization == pytest.approx(1.0)
