"""Exact-enumeration oracles for the adaptive Monte-Carlo estimators.

The networks here are small enough that survival -- the probability
that ``alive_connectivity`` stays at 1.0 under the fault model -- can
be computed *exactly* by enumerating every fault set:

* ``pops(2,2)`` has 4 couplers: 2^4 = 16 Bernoulli outcomes;
* ``sk(2,2,1)`` has 9 couplers: 2^9 = 512 Bernoulli outcomes;
* ``sk(2,2,2)`` has 18 couplers: C(18, f) exact-cardinality sets.

Against that ground truth we check the three estimators (plain
proportion, stratified-by-cardinality, importance-sampled) for the two
properties the sweep engine promises: each estimate lands within its
own reported confidence interval, and all modes agree on the
expectation they estimate.

Budget knobs for the nightly statistical job::

    REPRO_ORACLE_SCALE   multiply every trial budget (default 1)
    REPRO_ORACLE_SEED    offset every sweep seed (default 0)

The shipped seed offsets (0 plus the nightly matrix 100/200/300) are
verified to pass; an arbitrary offset may trip a 95 % interval.
"""

import itertools
import math
import os
from functools import lru_cache

import pytest

from repro.core import build
from repro.resilience import (
    BernoulliCouplerFaults,
    UniformCouplerFaults,
    survivability_sweep,
)
from repro.resilience.degrade import degrade_network
from repro.resilience.faults import FaultScenario
from repro.resilience.metrics import alive_connectivity_ratio

SCALE = int(os.environ.get("REPRO_ORACLE_SCALE", "1"))
SEED0 = int(os.environ.get("REPRO_ORACLE_SEED", "0"))

#: (spec, Bernoulli coupler failure rate) pairs cheap enough to
#: enumerate exhaustively.  Rates are picked so survival is neither
#: ~0 nor ~1 -- both tails would make the CI checks vacuous.
BERNOULLI_CASES = [
    ("pops(2,2)", 0.25),
    ("sk(2,2,1)", 0.2),
]

SAMPLINGS = ["uniform", "stratified", "importance"]


@lru_cache(maxsize=None)
def _network(spec):
    return build(spec)


def _survives(spec, couplers) -> bool:
    """Exact survival indicator for one concrete coupler fault set."""
    scenario = FaultScenario(
        spec=spec, model="oracle", seed=0, couplers=frozenset(couplers)
    )
    degraded = degrade_network(_network(spec), scenario)
    return alive_connectivity_ratio(degraded) >= 1.0


@lru_cache(maxsize=None)
def exact_bernoulli_survival(spec: str, rate: float) -> float:
    """P(survive) under i.i.d. coupler failures, by full enumeration."""
    m = _network(spec).num_couplers
    total = 0.0
    for bits in range(2**m):
        subset = tuple(i for i in range(m) if bits >> i & 1)
        if _survives(spec, subset):
            k = len(subset)
            total += rate**k * (1.0 - rate) ** (m - k)
    return total


@lru_cache(maxsize=None)
def exact_uniform_survival(spec: str, faults: int) -> float:
    """P(survive) over all C(m, faults) equally likely fault sets."""
    m = _network(spec).num_couplers
    survived = sum(
        1
        for subset in itertools.combinations(range(m), faults)
        if _survives(spec, subset)
    )
    return survived / math.comb(m, faults)


def _adaptive_sweep(
    spec, model, *, sampling, seed, trials, ci_target=None, backend="batched"
):
    """One seeded sweep; returns the adaptive estimator block."""
    summary = survivability_sweep(
        spec,
        model,
        trials=trials,
        seed=seed,
        metrics="connectivity",
        sampling=sampling,
        ci_target=ci_target,
        backend=backend,
    )
    assert summary.adaptive is not None
    return summary.adaptive


class TestExactOracles:
    """Sanity on the ground truth itself, independent of any sweep."""

    def test_bernoulli_oracle_bounds_and_monotonicity(self):
        for spec, rate in BERNOULLI_CASES:
            p = exact_bernoulli_survival(spec, rate)
            assert 0.0 < p < 1.0
            # More failures can only hurt a monotone survival event.
            assert exact_bernoulli_survival(spec, rate + 0.2) < p

    def test_uniform_oracle_monotone_in_cardinality(self):
        values = [exact_uniform_survival("sk(2,2,2)", f) for f in (1, 2, 3)]
        assert values[0] >= values[1] >= values[2]
        assert values[0] == 1.0  # d-1 fault tolerance: one fault never cuts

    def test_zero_faults_always_survive(self):
        for spec, _ in BERNOULLI_CASES:
            assert _survives(spec, ())


def _assert_coverage(blocks: list[dict], exact: float, label: str) -> None:
    """Coverage check honest about sequentially-stopped 95 % intervals.

    Optional stopping makes the reported interval mildly
    anti-conservative (empirically ~90 % coverage on these nets), so:
    every replicate must land within twice its own half-width (a
    ~3-sigma event otherwise), and a majority strictly within the
    interval itself -- a couple of unlucky draws cannot flake the
    suite while a biased estimator still fails loudly.
    """
    misses = [
        b for b in blocks if not b["ci_low"] <= exact <= b["ci_high"]
    ]
    for block in blocks:
        assert (
            abs(block["survival"] - exact)
            <= 2.0 * block["ci_half_width"] + 1e-5
        ), f"{label}: gross miss {block} vs exact {exact}"
    assert len(misses) <= 2, (
        f"{label}: {len(misses)}/{len(blocks)} replicates missed their own "
        f"95% interval (exact {exact}): {misses}"
    )


class TestWithinReportedCI:
    """Each estimator's point estimate falls inside its own interval.

    Five seeded replicates per (case, mode); see
    :func:`_assert_coverage` for the exact acceptance rule.  The
    shipped seed offsets (0 and the nightly 100/200/300) are verified.
    """

    REPLICATES = 5

    @pytest.mark.parametrize("sampling", SAMPLINGS)
    @pytest.mark.parametrize("spec,rate", BERNOULLI_CASES)
    def test_bernoulli_estimates_cover_truth(self, spec, rate, sampling):
        exact = exact_bernoulli_survival(spec, rate)
        model = BernoulliCouplerFaults(rate=rate)
        blocks = [
            _adaptive_sweep(
                spec,
                model,
                sampling=sampling,
                seed=SEED0 + 17 * rep + 3,
                trials=400 * SCALE,
                ci_target=0.04,
            )
            for rep in range(self.REPLICATES)
        ]
        assert all(b["trials_spent"] <= 400 * SCALE for b in blocks)
        _assert_coverage(blocks, exact, f"{spec}/{sampling}/offset {SEED0}")

    def test_uniform_model_plain_estimator_covers_truth(self):
        exact = exact_uniform_survival("sk(2,2,2)", 2)
        model = UniformCouplerFaults(faults=2)
        blocks = [
            _adaptive_sweep(
                "sk(2,2,2)",
                model,
                sampling="uniform",
                seed=SEED0 + 29 * rep + 5,
                trials=500 * SCALE,
                ci_target=0.04,
            )
            for rep in range(self.REPLICATES)
        ]
        _assert_coverage(blocks, exact, f"sk(2,2,2)/uniform/offset {SEED0}")


class TestModesAgreeOnExpectation:
    """Stratified and importance sampling estimate the SAME quantity.

    Averaging a few seeded replicates per mode, all three estimators
    must agree with the exact enumeration (and hence each other) to
    well within Monte-Carlo noise at the given budget.
    """

    REPLICATES = 3
    TRIALS = 400
    TOLERANCE = 0.03

    @pytest.mark.parametrize("spec,rate", BERNOULLI_CASES)
    def test_mean_estimates_match_enumeration(self, spec, rate):
        exact = exact_bernoulli_survival(spec, rate)
        model = BernoulliCouplerFaults(rate=rate)
        means = {}
        for sampling in SAMPLINGS:
            estimates = []
            for rep in range(self.REPLICATES):
                seed = SEED0 + 1000 + 7 * rep
                if sampling == "uniform":
                    # fixed-trial uniform is the pre-existing engine:
                    # its survival estimate is the complement of the
                    # summary's partitioned fraction, no adaptive block
                    summary = survivability_sweep(
                        spec,
                        model,
                        trials=self.TRIALS * SCALE,
                        seed=seed,
                        metrics="connectivity",
                    )
                    assert summary.adaptive is None
                    estimates.append(1.0 - summary.partitioned_fraction)
                else:
                    estimates.append(
                        _adaptive_sweep(
                            spec,
                            model,
                            sampling=sampling,
                            seed=seed,
                            trials=self.TRIALS * SCALE,
                        )["survival"]
                    )
            means[sampling] = sum(estimates) / len(estimates)
        for sampling, mean in means.items():
            assert abs(mean - exact) < self.TOLERANCE, (
                f"{sampling} drifted from enumeration: "
                f"{mean:.4f} vs exact {exact:.4f} (means: {means})"
            )

    def test_fixed_trial_stratified_spends_full_budget(self):
        spec, rate = BERNOULLI_CASES[0]
        block = _adaptive_sweep(
            spec,
            BernoulliCouplerFaults(rate=rate),
            sampling="stratified",
            seed=SEED0 + 2,
            trials=128,
        )
        assert block["trials_spent"] == 128
        assert block["ci_target"] is None


RARE_RATE = 0.0075


@lru_cache(maxsize=None)
def exact_rare_survival_bracket() -> tuple[float, float]:
    """Bracket on survival at rate 0.0075 on ``sk(2,2,2)``.

    Exact enumeration over every fault set of cardinality <= 3 (987
    connectivity checks); the untouched binomial tail ``k >= 4``
    (mass ~9e-6) brackets the truth from below.
    """
    spec = "sk(2,2,2)"
    m = _network(spec).num_couplers
    pmf = [
        math.comb(m, k) * RARE_RATE**k * (1.0 - RARE_RATE) ** (m - k)
        for k in range(m + 1)
    ]
    failure = 0.0
    for k in range(1, 4):
        fails = sum(
            1
            for subset in itertools.combinations(range(m), k)
            if not _survives(spec, subset)
        )
        failure += pmf[k] * fails / math.comb(m, k)
    tail = sum(pmf[4:])
    return 1.0 - failure - tail, 1.0 - failure


class TestRareEventImportance:
    """The headline regime: survival ~0.999, +-0.001 interval.

    Importance sampling must reach the tight target while spending a
    small fraction of the plain-sampling requirement (~3.8k trials at
    this precision), with intervals that still cover the
    enumeration-derived truth.
    """

    REPLICATES = 5

    def test_tight_ci_with_few_trials_covers_truth(self):
        truth_lo, truth_hi = exact_rare_survival_bracket()
        assert 0.9985 < truth_lo <= truth_hi < 0.9995
        model = BernoulliCouplerFaults(rate=RARE_RATE)
        blocks = [
            _adaptive_sweep(
                "sk(2,2,2)",
                model,
                sampling="importance",
                seed=SEED0 + 41 * rep + 7,
                trials=50_000,
                ci_target=0.001,
                backend="vectorized",
            )
            for rep in range(self.REPLICATES)
        ]
        for block in blocks:
            assert block["ci_half_width"] <= 0.001
            # the stopper quits thousands of trials before the cap
            assert block["trials_spent"] <= 2048
        misses = [
            b
            for b in blocks
            if b["ci_high"] < truth_lo or b["ci_low"] > truth_hi
        ]
        assert len(misses) <= 1, (
            f"offset {SEED0}: {len(misses)}/{len(blocks)} rare-event "
            f"intervals missed [{truth_lo}, {truth_hi}]: {misses}"
        )

