"""The serving tier: protocol, coalescing, sharding, and the HTTP front.

End-to-end tests drive a real socket via the in-thread harness
(:func:`repro.serve.client.run_in_thread`); determinism tests pin the
ISSUE's acceptance bar -- sharded experiment output byte-identical to
single-host ``ExperimentResult.to_json()`` at any shard count, N
identical concurrent sweeps executing exactly once, and admission
overflow answering a structured 429.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.core.experiment import Experiment
from repro.serve.coalesce import RequestCoalescer
from repro.serve.protocol import (
    ServeError,
    request_key,
    validate_describe,
    validate_design_search,
    validate_experiment,
    validate_sweep,
)
from repro.serve.shard import (
    iter_sharded_cells,
    partition_indices,
    run_sharded_experiment,
    sharded_to_json,
)
from repro.serve.client import ServeHTTPError, run_in_thread


# ----------------------------------------------------------------------
# Protocol: normalization, defaults, canonical keys, structured errors.
# ----------------------------------------------------------------------
class TestProtocol:
    def test_describe_canonicalizes_spec(self):
        assert validate_describe({"spec": "sk 2 2 2"}) == {"spec": "sk(2,2,2)"}

    def test_sweep_fills_defaults_and_canonicalizes(self):
        normalized = validate_sweep({"spec": "pops 2 2"})
        assert normalized["spec"] == "pops(2,2)"
        assert normalized["trials"] == 100
        assert normalized["model"] == "coupler"
        assert normalized["faults"] == 1
        assert normalized["metrics"] == "full"
        assert normalized["backend"] == "batched"

    def test_equivalent_sweeps_share_a_key(self):
        loose = validate_sweep({"spec": "sk 2 2 2"})
        explicit = validate_sweep(
            {"spec": "sk(2,2,2)", "trials": 100, "seed": 0, "model": "coupler"}
        )
        assert request_key("sweep", loose) == request_key("sweep", explicit)

    def test_distinct_sweeps_never_share_a_key(self):
        base = validate_sweep({"spec": "sk(2,2,2)"})
        for field, value in [
            ("trials", 101), ("seed", 1), ("model", "processor"),
            ("metrics", "connectivity"), ("messages", 61),
        ]:
            other = validate_sweep({"spec": "sk(2,2,2)", field: value})
            assert request_key("sweep", base) != request_key("sweep", other)

    def test_unknown_field_rejected_with_allowed_list(self):
        with pytest.raises(ServeError) as err:
            validate_sweep({"spec": "pops(2,2)", "bogus": 1})
        assert err.value.code == "unknown_field"
        assert "trials" in err.value.details["allowed"]

    def test_invalid_spec_is_a_structured_error(self):
        with pytest.raises(ServeError) as err:
            validate_sweep({"spec": "nope(1)"})
        assert err.value.code == "invalid_spec"
        payload = err.value.payload()
        assert payload["error"]["code"] == "invalid_spec"

    def test_backend_metric_combos_rejected(self):
        with pytest.raises(ServeError):
            validate_sweep({"spec": "pops(2,2)", "backend": "vectorized"})
        with pytest.raises(ServeError):
            validate_sweep(
                {"spec": "pops(2,2)", "backend": "legacy",
                 "metrics": "connectivity"}
            )

    def test_type_errors_rejected(self):
        with pytest.raises(ServeError):
            validate_sweep({"spec": "pops(2,2)", "trials": "many"})
        with pytest.raises(ServeError):
            validate_sweep({"spec": "pops(2,2)", "trials": True})
        with pytest.raises(ServeError):
            validate_sweep({"spec": "pops(2,2)", "trials": 0})
        with pytest.raises(ServeError):
            validate_sweep([1, 2])

    def test_design_search_normalizes_families(self):
        normalized = validate_design_search(
            {"max_processors": 8, "families": ["pops"]}
        )
        assert normalized["families"] == ["pops"]
        assert normalized["metrics"] == "connectivity"
        with pytest.raises(ServeError) as err:
            validate_design_search(
                {"max_processors": 8, "families": ["nope"]}
            )
        assert err.value.code == "invalid_family"

    def test_design_search_requires_max_processors(self):
        with pytest.raises(ServeError):
            validate_design_search({})

    def test_experiment_roundtrips_plan(self):
        experiment, normalized = validate_experiment(
            {"specs": ["pops 2 2"], "trials": 4, "shards": 2}
        )
        assert normalized["shards"] == 2
        assert normalized["specs"] == ["pops(2,2)"]
        assert Experiment.from_payload(experiment.to_payload()) == experiment

    def test_experiment_unknown_field_rejected(self):
        with pytest.raises(ServeError) as err:
            validate_experiment({"specs": ["pops(2,2)"], "bogus": 1})
        assert err.value.code == "invalid_experiment"


# ----------------------------------------------------------------------
# Coalescer: single-flight semantics on a bare event loop.
# ----------------------------------------------------------------------
class TestCoalescer:
    def test_join_lead_resolve_cycle(self):
        async def scenario():
            c = RequestCoalescer()
            assert c.join("k") is None
            future = c.lead("k")
            followers = [c.join("k") for _ in range(3)]
            assert all(f is future for f in followers)
            c.resolve("k", future, result="answer")
            assert c.join("k") is None  # flight cleared
            results = [await f for f in followers]
            assert results == ["answer"] * 3
            assert c.stats() == {
                "leaders": 1, "followers": 3, "in_flight": 0,
            }

        asyncio.run(scenario())

    def test_double_lead_is_a_bug_not_a_duplicate(self):
        async def scenario():
            c = RequestCoalescer()
            c.lead("k")
            with pytest.raises(RuntimeError):
                c.lead("k")

        asyncio.run(scenario())

    def test_errors_propagate_to_every_follower(self):
        async def scenario():
            c = RequestCoalescer()
            future = c.lead("k")
            follower = c.join("k")
            c.resolve("k", future, error=ServeError("boom"))
            with pytest.raises(ServeError):
                await follower

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Sharding: deterministic partition and byte-identical merges.
# ----------------------------------------------------------------------
class TestSharding:
    def test_partition_round_robin_covers_everything(self):
        parts = partition_indices(7, 3)
        assert parts == [[0, 3, 6], [1, 4], [2, 5]]
        assert sorted(i for p in parts for i in p) == list(range(7))

    def test_partition_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            partition_indices(4, 0)

    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_sharded_merge_byte_identical(self, shards):
        experiment = Experiment(
            specs=("pops(2,2)", "sk(2,2,2)"),
            models=("coupler:1",),
            metrics=("connectivity", "full"),
            trials=(4,),
            seed=11,
        )
        single = experiment.run(workers=0).to_json()
        merged = run_sharded_experiment(experiment, shards=shards)
        assert sharded_to_json(merged) == single

    def test_cells_stream_in_index_order(self):
        experiment = Experiment(
            specs=("pops(2,2)", "sk(2,2,2)"), trials=(2, 4), seed=1
        )
        indices = [
            i for i, _ in iter_sharded_cells(experiment, shards=2)
        ]
        assert indices == list(range(len(experiment.compile())))

    def test_shards_capped_at_cell_count(self):
        experiment = Experiment(specs=("pops(2,2)",), trials=4)
        merged = run_sharded_experiment(experiment, shards=16)
        assert sharded_to_json(merged) == experiment.run(workers=0).to_json()


# ----------------------------------------------------------------------
# The HTTP front, end to end over a real socket.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    with run_in_thread(concurrency=4, queue_depth=8, workers=0) as client:
        yield client


class TestHTTP:
    def test_healthz(self, server):
        payload = server.healthz()
        assert payload["ok"] is True
        assert payload["uptime_seconds"] >= 0
        assert payload["rss_bytes"] >= 0
        assert isinstance(payload["version"], str) and payload["version"]

    def test_describe(self, server):
        info = server.describe("pops 2 2")
        assert info["spec"] == "pops(2,2)"
        assert info["processors"] == 4

    def test_sweep_matches_direct_call(self, server):
        from repro import resilience_sweep

        body, _ = server.sweep(
            "sk(2,2,2)", trials=6, seed=2, metrics="connectivity"
        )
        direct = resilience_sweep(
            "sk(2,2,2)", trials=6, seed=2, metrics="connectivity", workers=0
        ).as_dict()
        assert body == json.loads(json.dumps(direct))

    def test_design_search_over_http(self, server):
        body, _ = server.design_search(
            max_processors=8, families=["pops", "sops"], trials=4
        )
        assert body["candidates"]

    def test_experiment_single_vs_sharded_identical(self, server):
        plan = {"specs": ["pops(2,2)", "sk(2,2,2)"], "trials": [4], "seed": 5}
        single, _ = server.experiment({**plan, "shards": 0})
        sharded, _ = server.experiment({**plan, "shards": 2})
        assert json.dumps(single, sort_keys=True) == json.dumps(
            sharded, sort_keys=True
        )

    def test_experiment_stream_reconstructs_report(self, server):
        plan = {"specs": ["pops(2,2)", "sk(2,2,2)"], "trials": [4], "seed": 5}
        lines = list(server.stream_experiment({**plan, "shards": 2}))
        assert lines[-1]["done"] is True
        single, _ = server.experiment({**plan, "shards": 0})
        assert [line["cell"] for line in lines[1:-1]] == single["cells"]
        assert [line["index"] for line in lines[1:-1]] == list(
            range(len(single["cells"]))
        )

    def test_concurrent_identical_sweeps_execute_once(self, server):
        before = server.stats()["coalescer"]
        results = []

        def fire():
            results.append(
                server.sweep(
                    "sk(2,2,2)", trials=400, seed=99, metrics="connectivity"
                )
            )

        threads = [threading.Thread(target=fire) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roles = sorted(role for _, role in results)
        assert roles.count("leader") == 1
        assert roles.count("follower") == 7
        bodies = {json.dumps(body, sort_keys=True) for body, _ in results}
        assert len(bodies) == 1
        after = server.stats()["coalescer"]
        assert after["leaders"] - before["leaders"] == 1
        assert after["followers"] - before["followers"] == 7

    def test_bad_spec_maps_to_400(self, server):
        with pytest.raises(ServeHTTPError) as err:
            server.describe("nope(1)")
        assert err.value.status == 400
        assert err.value.code == "invalid_spec"

    def test_unknown_endpoint_404(self, server):
        with pytest.raises(ServeHTTPError) as err:
            server.get("/nope")
        assert err.value.status == 404

    def test_wrong_method_405(self, server):
        with pytest.raises(ServeHTTPError) as err:
            server.post("../healthz", {})
        assert err.value.status in (404, 405)
        with pytest.raises(ServeHTTPError) as err:
            server._request("GET", "/v1/sweep")
        assert err.value.status == 405

    def test_malformed_json_400(self, server):
        import http.client

        conn = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )
        try:
            conn.request(
                "POST", "/v1/sweep", body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["error"]["code"] == "bad_request"
        finally:
            conn.close()

    def test_stats_shape(self, server):
        stats = server.stats()
        assert set(stats) >= {
            "admission", "coalescer", "cache", "pools_started",
            "requests_served", "latency", "uptime_seconds", "rss_bytes",
            "version",
        }
        assert stats["admission"]["capacity"] == 12
        assert "candidate_hits" in stats["cache"]


class TestObservability:
    """``/metrics``, request ids, access logs, latency summaries."""

    def test_metrics_exposition_schema(self, server):
        server.healthz()  # at least one finished request to count
        body, headers = server.get_text("/metrics")
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )
        typed: dict[str, str] = {}
        for line in body.splitlines():
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split()
                typed[name] = kind
            elif line and not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])  # lines end in a number
        assert typed["repro_http_requests_total"] == "counter"
        assert typed["repro_http_request_seconds"] == "histogram"
        assert typed["repro_admission_active"] == "gauge"
        assert typed["repro_build_info"] == "gauge"
        # histogram expansion: cumulative buckets ending at +Inf
        buckets = [
            ln for ln in body.splitlines()
            if ln.startswith("repro_http_request_seconds_bucket")
        ]
        assert buckets and 'le="+Inf"' in buckets[-1]

    def test_metrics_count_requests_by_endpoint(self, server):
        before = server.metrics()
        server.healthz()
        server.healthz()
        after = server.metrics()

        def count(text):
            for line in text.splitlines():
                if line.startswith("repro_http_requests_total") and (
                    'endpoint="/healthz"' in line
                ):
                    return float(line.rsplit(" ", 1)[1])
            return 0.0

        assert count(after) >= count(before) + 2

    def test_unknown_target_collapses_to_other(self, server):
        with pytest.raises(ServeHTTPError):
            server.get("/no/such/path")
        body = server.metrics()
        assert 'endpoint="other"' in body

    def test_request_id_header_on_every_response(self, server):
        _, headers = server.get_text("/metrics")
        rid = headers["X-Repro-Request-Id"]
        assert len(rid) == 16 and int(rid, 16) >= 0
        _, headers2 = server.get_text("/metrics")
        assert headers2["X-Repro-Request-Id"] != rid

    def test_latency_summary_appears_in_stats(self, server):
        server.healthz()
        latency = server.stats()["latency"]
        assert "/healthz" in latency
        summary = latency["/healthz"]
        assert summary["count"] >= 1
        assert set(summary) == {"count", "sum", "mean", "p50", "p95", "p99"}

    def test_access_log_lines(self):
        import io

        sink = io.StringIO()
        with run_in_thread(workers=0, access_log=sink) as client:
            client.healthz()
            client.describe("pops(2,2)")
        lines = [
            json.loads(ln) for ln in sink.getvalue().strip().splitlines()
        ]
        assert [rec["target"] for rec in lines] == [
            "/healthz", "/v1/describe",
        ]
        for rec in lines:
            assert rec["status"] == 200
            assert rec["duration_ms"] >= 0
            assert len(rec["request_id"]) == 16
        assert lines[1]["coalesced"] == "leader"


class TestAdmissionControl:
    def test_overflow_rejected_with_structured_429(self):
        """Saturate a 1+1 server with blocked work: 3rd request -> 429."""
        with run_in_thread(concurrency=1, queue_depth=1, workers=0) as client:
            release = threading.Event()
            started = threading.Event()

            def blocked(_spec):
                started.set()
                release.wait(30)
                return {"ok": True}

            client.server.session.describe = blocked
            try:
                outcomes = []

                def fire(spec):
                    try:
                        outcomes.append(("ok", client.describe(spec)))
                    except ServeHTTPError as exc:
                        outcomes.append(("err", exc))

                first = threading.Thread(target=fire, args=("pops(2,2)",))
                first.start()
                assert started.wait(30)
                second = threading.Thread(target=fire, args=("sk(2,2,2)",))
                second.start()
                # distinct specs -> no coalescing; slot 2 of 2 is taken.
                deadline = time.monotonic() + 30
                while (
                    client.server.admission.active < 2
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.02)
                assert client.server.admission.active == 2
                with pytest.raises(ServeHTTPError) as err:
                    client.describe("sops(4)")
                assert err.value.status == 429
                assert err.value.code == "overloaded"
                assert err.value.payload["error"]["details"]["capacity"] == 2
            finally:
                release.set()
                first.join(30)
                second.join(30)
            assert client.stats()["admission"]["rejected"] >= 1

    def test_followers_bypass_admission(self):
        """Duplicates of a full server's in-flight request still succeed."""
        with run_in_thread(concurrency=1, queue_depth=0, workers=0) as client:
            release = threading.Event()
            started = threading.Event()

            def blocked(_spec):
                started.set()
                release.wait(30)
                return {"spec": "pops(2,2)"}

            client.server.session.describe = blocked
            results = []

            def fire():
                results.append(client.describe("pops(2,2)"))

            threads = [threading.Thread(target=fire) for _ in range(3)]
            threads[0].start()
            assert started.wait(30)
            for t in threads[1:]:
                t.start()
            # all three target the SAME key: 2 followers join the one
            # admitted flight even though capacity (1) is exhausted.
            deadline = time.monotonic() + 30
            while (
                client.server.coalescer.stats()["followers"] < 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert client.server.coalescer.stats()["followers"] == 2
            release.set()
            for t in threads:
                t.join(30)
            assert len(results) == 3
            assert client.server.admission.rejected == 0
