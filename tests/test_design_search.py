"""Design-search subsystem + batched sweep backend tests.

Covers the survivability-per-cost search end to end (enumeration,
costing, ranking, Pareto front, facade/CLI determinism) and the
batched sweep executor's regression contract: same seed => byte
identical ``SweepSummary.to_json()`` for 1/2/4 workers and for the
batched vs the legacy (PR 2, rebuild-per-trial) code path.
"""

import json

import pytest

import repro
from repro.__main__ import main
from repro.core import design_search
from repro.design_search import (
    DEFAULT_COST_MODEL,
    CostModel,
    enumerate_candidates,
    price_spec,
)
from repro.design_search.search import _dominates
from repro.resilience import METRICS_MODES, survivability_sweep


# ----------------------------------------------------------------------
# Batched backend: determinism regression (satellite)
# ----------------------------------------------------------------------
class TestBatchedSweepDeterminism:
    KW = dict(faults=1, trials=12, seed=7, messages=10)

    def test_batched_matches_legacy_byte_identical(self):
        legacy = survivability_sweep("sk(2,2,2)", "coupler", backend="legacy", **self.KW)
        batched = survivability_sweep("sk(2,2,2)", "coupler", backend="batched", **self.KW)
        assert batched.to_json() == legacy.to_json()

    @pytest.mark.parametrize("spec", ["sk(2,2,2)", "pops(2,3)"])
    def test_one_two_four_workers_byte_identical(self, spec):
        inline = survivability_sweep(spec, "coupler", workers=1, **self.KW)
        two = survivability_sweep(spec, "coupler", workers=2, **self.KW)
        four = survivability_sweep(spec, "coupler", workers=4, **self.KW)
        assert inline.to_json() == two.to_json() == four.to_json()

    def test_connectivity_mode_worker_count_independent(self):
        kw = dict(faults=2, trials=16, seed=3, metrics="connectivity")
        inline = survivability_sweep("sk(2,2,2)", "coupler", **kw)
        four = survivability_sweep("sk(2,2,2)", "coupler", workers=4, **kw)
        assert inline.to_json() == four.to_json()

    def test_legacy_workers_still_match_batched(self):
        legacy = survivability_sweep(
            "pops(2,3)", "coupler", backend="legacy", workers=2, **self.KW
        )
        batched = survivability_sweep(
            "pops(2,3)", "coupler", backend="batched", workers=3, **self.KW
        )
        assert legacy.to_json() == batched.to_json()


class TestMetricsModes:
    def test_connectivity_quantiles_match_full_mode(self):
        kw = dict(faults=1, trials=10, seed=5)
        full = survivability_sweep("sk(2,2,2)", "coupler", messages=10, **kw)
        conn = survivability_sweep(
            "sk(2,2,2)", "coupler", metrics="connectivity", **kw
        )
        for key in METRICS_MODES["connectivity"]:
            assert conn.quantiles[key] == full.quantiles[key], key
        assert conn.partitioned_fraction == full.partitioned_fraction

    def test_paths_mode_matches_full_on_path_metrics(self):
        kw = dict(faults=1, trials=10, seed=5)
        full = survivability_sweep("sk(2,2,2)", "coupler", messages=10, **kw)
        paths = survivability_sweep("sk(2,2,2)", "coupler", metrics="paths", **kw)
        for key in METRICS_MODES["paths"]:
            assert paths.quantiles[key] == full.quantiles[key], key
        assert paths.within_bound_fraction == full.within_bound_fraction

    def test_connectivity_mode_drops_simulation_fields(self):
        s = survivability_sweep(
            "pops(2,2)", "coupler", trials=4, seed=1, metrics="connectivity"
        )
        assert set(s.quantiles) == set(METRICS_MODES["connectivity"])
        assert s.within_bound_fraction is None
        assert s.messages == 0
        assert "path metrics not computed" in s.formatted()
        assert json.loads(s.to_json())["within_bound_fraction"] is None

    def test_invalid_mode_and_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown metrics mode"):
            survivability_sweep("pops(2,2)", trials=2, metrics="everything")
        with pytest.raises(ValueError, match="unknown sweep backend"):
            survivability_sweep("pops(2,2)", trials=2, backend="turbo")
        with pytest.raises(ValueError, match="legacy backend"):
            survivability_sweep(
                "pops(2,2)", trials=2, backend="legacy", metrics="connectivity"
            )


# ----------------------------------------------------------------------
# Costing
# ----------------------------------------------------------------------
class TestCosting:
    def test_price_is_positive_and_monotone_in_size(self):
        assert price_spec("sops(2)") > 0
        assert price_spec("sops(16)") > price_spec("sops(4)")
        assert price_spec("sk(2,2,3)") > price_spec("sk(2,2,2)")

    def test_custom_cost_model_reprices(self):
        free_lenses = CostModel(lens=0.0, otis_stage=0.0)
        assert price_spec("sk(2,2,2)", free_lenses) < price_spec("sk(2,2,2)")

    def test_defaults_follow_published_prices(self):
        from repro.design_search import prices

        defaults = DEFAULT_COST_MODEL.as_dict()
        assert defaults["transmitter"] == prices.TRANSMITTER_USD
        assert defaults["receiver"] == prices.RECEIVER_USD
        assert defaults["lens"] == prices.LENS_USD
        # the published ordering the paper argues qualitatively:
        # transceivers dominate, lenses and fiber jumpers are cheap
        assert (
            defaults["transmitter"]
            > defaults["receiver"]
            > defaults["multiplexer"]
            > defaults["beam_splitter"]
            > defaults["coupler"]
            > defaults["lens"]
            > defaults["loop_fiber"]
        )

    def test_price_matches_bom_arithmetic(self):
        bom = repro.design("pops(2,2)").bill_of_materials()
        m = DEFAULT_COST_MODEL
        expected = round(
            m.lens * bom.total_lenses
            + m.otis_stage * bom.total_otis_stages
            + m.multiplexer * bom.multiplexers
            + m.beam_splitter * bom.beam_splitters
            + m.loop_fiber * bom.loop_fibers
            + m.transmitter * bom.transmitters
            + m.receiver * bom.receivers
            + m.coupler * bom.couplers,
            2,
        )
        assert price_spec("pops(2,2)") == expected


# ----------------------------------------------------------------------
# The search
# ----------------------------------------------------------------------
SEARCH_KW = dict(
    max_processors=12, families=("pops", "sk", "sops"), trials=8, seed=11
)


class TestDesignSearch:
    def test_same_seed_byte_identical_json(self):
        a = design_search(**SEARCH_KW)
        b = design_search(**SEARCH_KW)
        assert a.to_json() == b.to_json()

    def test_worker_count_does_not_change_json(self):
        a = design_search(**SEARCH_KW)
        b = design_search(workers=2, **SEARCH_KW)
        assert a.to_json() == b.to_json()

    def test_ranking_is_by_survivability_per_kilocost(self):
        result = design_search(**SEARCH_KW)
        scores = [c.survivability_per_kilocost for c in result]
        assert scores == sorted(scores, reverse=True)
        assert result.best().spec == result.candidates[0].spec

    def test_pareto_front_is_exactly_the_nondominated_set(self):
        result = design_search(**SEARCH_KW)
        cands = result.candidates
        for c in cands:
            dominated = any(_dominates(o, c) for o in cands)
            assert c.pareto == (not dominated), c.spec
        assert set(result.pareto) == {c.spec for c in cands if c.pareto}

    def test_shape_windows_filter_candidates(self):
        result = design_search(
            max_processors=12,
            families=("pops",),
            trials=4,
            max_coupler_degree=2,
            max_groups=3,
        )
        for c in result:
            assert c.coupler_degree <= 2 and c.groups <= 3

    def test_min_groups_excludes_single_star_machines(self):
        result = design_search(
            max_processors=8,
            families=("pops", "sops"),
            trials=4,
            min_groups=2,
        )
        assert result.candidates
        for c in result:
            assert c.groups >= 2
            assert c.family != "sops"

    def test_min_margin_filter_drops_infeasible_designs(self):
        wide_open = design_search(
            max_processors=10, families=("pops",), trials=4
        )
        feasible = design_search(
            max_processors=10, families=("pops",), trials=4, min_margin_db=0.0
        )
        assert len(feasible) <= len(wide_open)
        for c in feasible:
            assert c.link_margin_db >= 0.0

    def test_top_truncates_after_ranking(self):
        full = design_search(**SEARCH_KW)
        trimmed = design_search(top=3, **SEARCH_KW)
        assert [c.spec for c in trimmed] == [c.spec for c in full][:3]
        # the front is computed before truncation: flags agree
        for c in trimmed:
            assert c.pareto == full.candidate(c.spec).pareto

    def test_top_does_not_shrink_the_reported_front(self):
        full = design_search(**SEARCH_KW)
        trimmed = design_search(top=1, **SEARCH_KW)
        assert trimmed.pareto == full.pareto
        assert len(full.pareto) > 1  # the regression is only visible then

    def test_underfaulted_candidates_are_skipped_not_crowned(self):
        # sops(n) has one coupler: a single coupler fault can never be
        # fully injected, so no sops spec may appear among candidates
        result = design_search(
            max_processors=24, families=("pops", "sops"), trials=4, faults=2
        )
        specs = {c.spec for c in result}
        assert not any(s.startswith("sops") for s in specs)
        assert any(s.startswith("sops") for s in result.skipped_underfaulted)
        # single-group pops machines (1 coupler) are skipped too
        assert "pops(4,1)" in result.skipped_underfaulted
        # and nothing skipped was handed a seat on the front
        assert not set(result.pareto) & set(result.skipped_underfaulted)

    def test_fault_model_capacity_hooks(self):
        from repro.resilience.faults import FaultModel, make_fault_model

        net = repro.build("sk(2,2,2)")
        assert make_fault_model("coupler").max_faults(net) == net.num_couplers - 1
        assert (
            make_fault_model("processor").max_faults(net)
            == net.num_processors - 2
        )
        assert make_fault_model("group").max_faults(net) == net.num_groups - 1
        # adversarial: bounded by the weakest victim's non-loop out-couplers
        assert make_fault_model("adversarial").max_faults(net) == net.degree
        assert make_fault_model("link").max_faults(net) >= 1
        assert FaultModel().max_faults(net) is None  # unknown by default

    def test_full_metrics_mode_populates_within_bound(self):
        result = design_search(
            max_processors=6,
            families=("pops",),
            trials=4,
            metrics="full",
            messages=8,
        )
        assert result.candidates
        for c in result:
            assert c.within_bound_fraction is not None

    def test_survivability_reflects_fault_pressure(self):
        calm = design_search(
            max_processors=8, families=("pops",), trials=10, faults=0, seed=2
        )
        stressed = design_search(
            max_processors=8,
            families=("pops",),
            trials=10,
            faults=3,
            seed=2,
            model="processor",
        )
        assert all(c.survivability == 1.0 for c in calm)
        assert any(c.survivability < 1.0 for c in stressed)

    def test_unknown_metrics_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown metrics mode"):
            design_search(max_processors=4, trials=2, metrics="psychic")

    def test_fault_model_instance_accepted_like_sibling_verbs(self):
        from repro.resilience.faults import UniformCouplerFaults

        by_key = design_search(
            max_processors=8, families=("pops",), trials=4, faults=1
        )
        by_instance = design_search(
            max_processors=8,
            families=("pops",),
            trials=4,
            model=UniformCouplerFaults(1),
        )
        assert by_key.to_json() == by_instance.to_json()
        with pytest.raises(ValueError, match="already carries"):
            design_search(
                max_processors=8,
                families=("pops",),
                trials=2,
                model=UniformCouplerFaults(1),
                faults=2,
            )

    def test_free_designs_are_rejected_not_buried(self):
        free = CostModel(
            lens=0.0,
            otis_stage=0.0,
            multiplexer=0.0,
            beam_splitter=0.0,
            loop_fiber=0.0,
            transmitter=0.0,
            receiver=0.0,
            coupler=0.0,
        )
        with pytest.raises(ValueError, match="priced > 0"):
            design_search(
                max_processors=6, families=("pops",), trials=2, cost_model=free
            )

    def test_bad_processor_windows_rejected_by_name(self):
        with pytest.raises(ValueError, match="min_processors"):
            design_search(max_processors=6, min_processors=0, trials=2)
        with pytest.raises(ValueError, match="max_processors"):
            design_search(max_processors=0, trials=2)

    def test_empty_window_raises_on_best(self):
        result = design_search(max_processors=2, families=("sk",), trials=2)
        assert len(result) == 0
        with pytest.raises(ValueError, match="no candidates"):
            result.best()

    def test_enumerate_candidates_rejects_bad_window(self):
        with pytest.raises(ValueError, match="max_processors"):
            enumerate_candidates(max_processors=0)


class TestFacadeAndCli:
    def test_callable_package_serves_both_verb_and_namespace(self):
        import repro.design_search as ds

        # every import form reaches both the verb and the namespace
        assert callable(repro.design_search)
        assert callable(ds)
        assert ds.CostModel is repro.CostModel
        from repro.design_search import design_search as fn

        assert callable(fn)
        assert isinstance(repro.DEFAULT_COST_MODEL, repro.CostModel)
        r = repro.design_search(
            max_processors=6, families=("pops",), trials=2
        )
        assert r.to_json() == fn(
            max_processors=6, families=("pops",), trials=2
        ).to_json()

    def test_cli_text_and_json_agree_on_ranking(self, capsys):
        argv = [
            "design-search",
            "--max-processors",
            "8",
            "--families",
            "pops",
            "--trials",
            "4",
        ]
        assert main(argv) == 0
        text = capsys.readouterr().out
        assert main([*argv, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        # the first row after the table header is the top-ranked spec
        header_at = next(
            i for i, line in enumerate(text.splitlines()) if line.startswith("* spec")
        )
        first_spec = data["candidates"][0]["spec"]
        assert first_spec in text.splitlines()[header_at + 1]

    def test_cli_empty_window_exits_nonzero(self, capsys):
        rc = main(
            [
                "design-search",
                "--max-processors",
                "2",
                "--families",
                "sk",
                "--trials",
                "2",
                "--json",
            ]
        )
        assert rc == 1
        assert json.loads(capsys.readouterr().out)["candidates"] == []

    def test_cli_rejects_unknown_family(self, capsys):
        rc = main(
            [
                "design-search",
                "--max-processors",
                "4",
                "--families",
                "toroid",
                "--trials",
                "2",
            ]
        )
        assert rc == 2
        assert "unknown network family" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Scale: the 10^4-trial contract runs nightly only
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestTenThousandTrials:
    def test_batched_connectivity_at_1e4_trials_worker_invariant(self):
        kw = dict(faults=1, trials=10_000, seed=0, metrics="connectivity")
        inline = survivability_sweep("sk(2,2,2)", "coupler", **kw)
        four = survivability_sweep("sk(2,2,2)", "coupler", workers=4, **kw)
        assert inline.trials == 10_000
        assert inline.to_json() == four.to_json()
