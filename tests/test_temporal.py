"""Temporal dynamics subsystem: processes, replay, traffic matrices.

The determinism bar is the same one every sweep in this repo carries:
the availability-over-time summary must be byte-identical at any
worker count and invariant to how the trial index range is chunked
(property-tested with hypothesis), and the exponential renewal law
must match its closed-form 2-state-Markov oracle -- stationary
availability ``mtbf / (mtbf + mttr)`` -- within a Wilson interval over
the observed renewal cycles.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core import build
from repro.resilience.adaptive import wilson_interval
from repro.temporal import (
    CascadeCouplerProcess,
    CouplerRenewalProcess,
    ProcessorRenewalProcess,
    TrafficMatrix,
    dimension,
    execute_temporal,
    fault_process_keys,
    make_fault_process,
    prepare_temporal_sweep,
    reroute_overloaded,
    served_fraction,
    stream_seed,
    summarize_temporal,
    utilization,
)
from repro.temporal.replay import _TemporalContext


class TestStreamSeed:
    def test_deterministic_and_distinct(self):
        assert stream_seed(7, "coupler", 3) == stream_seed(7, "coupler", 3)
        assert stream_seed(7, "coupler", 3) != stream_seed(7, "coupler", 4)
        assert stream_seed(7, "coupler", 3) != stream_seed(8, "coupler", 3)

    def test_registry_keys(self):
        assert fault_process_keys() == (
            "cascade",
            "coupler-renewal",
            "processor-renewal",
        )
        assert make_fault_process("cascade", 2, spread=0.3).spread == 0.3
        with pytest.raises(ValueError, match="unknown fault process"):
            make_fault_process("nope")


class TestTraceCompilation:
    def test_trace_is_pure_function_of_inputs(self):
        net = build("pops(2,2)")
        proc = CouplerRenewalProcess(faults=2, mtbf=40, mttr=10)
        a = proc.trace("pops(2,2)", net, seed=3, horizon=300)
        b = proc.trace("pops(2,2)", net, seed=3, horizon=300)
        assert a == b
        assert a != proc.trace("pops(2,2)", net, seed=4, horizon=300)

    def test_segments_partition_horizon_exactly(self):
        net = build("sk(2,2,2)")
        proc = CouplerRenewalProcess(faults=3, mtbf=30, mttr=15)
        trace = proc.trace("sk(2,2,2)", net, seed=1, horizon=400)
        segs = list(trace.segments())
        assert segs[0][0] == 0 and segs[-1][1] == 400
        for (_s0, stop, _c, _p), (start, _s1, _c2, _p2) in zip(
            segs, segs[1:]
        ):
            assert stop == start  # contiguous, no gaps or overlaps

    def test_events_sorted_and_paired(self):
        net = build("sk(2,2,2)")
        proc = CouplerRenewalProcess(faults=3, mtbf=30, mttr=15)
        trace = proc.trace("sk(2,2,2)", net, seed=2, horizon=400)
        keys = [(e.slot, e.component, e.index, e.kind) for e in trace.events]
        assert keys == sorted(keys)
        fails = sum(1 for e in trace.events if e.kind == "fail")
        repairs = sum(1 for e in trace.events if e.kind == "repair")
        # every repair matches an earlier fail; unrepaired faults ride
        # to the horizon
        assert repairs <= fails

    def test_downtime_matches_intervals(self):
        net = build("pops(2,2)")
        proc = CouplerRenewalProcess(faults=1, mtbf=40, mttr=10)
        (component, index), = proc.churning(net, seed=9)
        downs = proc.down_intervals(component, index, 9, 500)
        trace = proc.trace("pops(2,2)", net, seed=9, horizon=500)
        assert trace.component_downtime(component, index) == sum(
            b - a for a, b in downs
        )

    def test_deterministic_law_is_periodic(self):
        proc = CouplerRenewalProcess(faults=1, mtbf=30, mttr=10,
                                     law="deterministic")
        downs = proc.down_intervals("coupler", 0, seed=0, horizon=400)
        assert downs == [(30, 40), (70, 80), (110, 120), (150, 160),
                         (190, 200), (230, 240), (270, 280), (310, 320),
                         (350, 360), (390, 400)]

    def test_history_independent_of_co_churners(self):
        """A component's renewal history never depends on who else churns."""
        one = CouplerRenewalProcess(faults=1, mtbf=40, mttr=10)
        many = CouplerRenewalProcess(faults=5, mtbf=40, mttr=10)
        assert one.down_intervals("coupler", 2, 11, 300) == \
            many.down_intervals("coupler", 2, 11, 300)


class TestCascade:
    def test_full_spread_drags_in_siblings(self):
        net = build("sk(2,2,2)")
        calm = CascadeCouplerProcess(faults=2, mtbf=40, mttr=20, spread=0.0)
        storm = CascadeCouplerProcess(faults=2, mtbf=40, mttr=20, spread=1.0)
        touched_calm = {
            (e.component, e.index)
            for e in calm.trace("sk(2,2,2)", net, 4, 300).events
        }
        touched_storm = {
            (e.component, e.index)
            for e in storm.trace("sk(2,2,2)", net, 4, 300).events
        }
        # primaries share the seed stream; spread only ever adds
        assert touched_calm <= touched_storm
        assert touched_storm > touched_calm

    def test_spread_zero_adds_no_secondaries(self):
        net = build("sk(2,2,2)")
        casc = CascadeCouplerProcess(faults=2, mtbf=40, mttr=20, spread=0.0)
        members = set(casc.churning(net, seed=4))
        trace = casc.trace("sk(2,2,2)", net, 4, 300)
        assert {(e.component, e.index) for e in trace.events} <= members

    def test_spread_validated(self):
        with pytest.raises(ValueError, match="spread"):
            CascadeCouplerProcess(spread=1.5)


class TestMarkovOracle:
    """The exponential law against its closed-form stationary oracle."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stationary_availability_within_wilson_ci(self, seed):
        mtbf, mttr, horizon = 120.0, 40.0, 60_000
        proc = CouplerRenewalProcess(faults=1, mtbf=mtbf, mttr=mttr)
        downs = proc.down_intervals("coupler", 0, seed, horizon)
        cycles = len(downs)
        assert cycles > 100, "horizon too short to exercise the oracle"
        estimate = 1.0 - sum(b - a for a, b in downs) / horizon
        lo, hi = wilson_interval(round(estimate * cycles), cycles)
        closed_form = mtbf / (mtbf + mttr)
        assert lo <= closed_form <= hi

    def test_deterministic_law_is_exact(self):
        proc = CouplerRenewalProcess(faults=1, mtbf=30, mttr=10,
                                     law="deterministic")
        downs = proc.down_intervals("coupler", 0, seed=3, horizon=400)
        assert 1.0 - sum(b - a for a, b in downs) / 400 == 0.75


class TestReplayDeterminism:
    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=8, deadline=None)
    def test_chunk_boundary_invariance(self, seed):
        """Any stitching of the trial index range yields the same rows."""
        prepared = prepare_temporal_sweep(
            "pops(2,2)", faults=2, mtbf=40, mttr=10,
            horizon=120, trials=8, seed=seed,
        )
        ctx = _TemporalContext(prepared.plan, net=prepared.net)
        whole = ctx.run_range(0, 8)
        split = 1 + seed % 7
        assert ctx.run_range(0, split) + ctx.run_range(split, 8) == whole

    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=3, deadline=None)
    def test_summary_byte_identical_across_1_2_4_workers(self, seed):
        prepared = prepare_temporal_sweep(
            "sk(2,2,2)", faults=2, mtbf=50, mttr=15,
            horizon=150, trials=8, seed=seed,
        )
        reference = summarize_temporal(
            prepared, execute_temporal(prepared, workers=1)
        ).to_json()
        for workers in (2, 4):
            assert summarize_temporal(
                prepared, execute_temporal(prepared, workers=workers)
            ).to_json() == reference

    def test_facade_workers_match_inline(self):
        one = repro.temporal_sweep(
            "sk(2,2,2)", faults=2, trials=6, horizon=120, seed=5, workers=1
        )
        two = repro.temporal_sweep(
            "sk(2,2,2)", faults=2, trials=6, horizon=120, seed=5, workers=2
        )
        assert one.to_json() == two.to_json()

    def test_full_metrics_deterministic_across_workers(self):
        kwargs = dict(
            faults=2, mtbf=30, mttr=10, trials=4, horizon=120,
            seed=2, metrics="full", messages=12,
        )
        assert repro.temporal_sweep("sk(2,2,2)", workers=1, **kwargs).to_json() \
            == repro.temporal_sweep("sk(2,2,2)", workers=2, **kwargs).to_json()


class TestReplaySemantics:
    def test_intact_machine_is_fully_available(self):
        # mtbf far beyond the horizon: no event ever fires
        s = repro.temporal_sweep(
            "sk(2,2,2)", mtbf=1e9, mttr=10, trials=3, horizon=100, seed=0
        )
        assert s.quantiles["availability"]["mean"] == 1.0
        assert s.quantiles["survivability"]["min"] == 1.0
        assert s.quantiles["time_to_disconnect"]["min"] == 100.0
        assert s.disconnected_fraction == 0.0
        assert all(v == 1.0 for v in s.availability_curve)

    def test_availability_bounds_and_ordering(self):
        s = repro.temporal_sweep(
            "sk(2,2,2)", faults=3, mtbf=40, mttr=20, trials=6,
            horizon=200, seed=1, metrics="paths",
        )
        q = s.quantiles
        assert 0.0 <= q["availability"]["min"] <= q["availability"]["max"] <= 1.0
        # full connectivity is stricter than pairwise availability
        assert q["survivability"]["mean"] <= q["availability"]["mean"]
        assert 0.0 <= q["within_bound_time"]["mean"] <= 1.0
        assert len(s.availability_curve) == 16

    def test_curve_mean_matches_availability_mean(self):
        s = repro.temporal_sweep(
            "sk(2,2,2)", faults=2, mtbf=40, mttr=20, trials=5,
            horizon=160, seed=3, curve_points=16,
        )
        curve_mean = sum(s.availability_curve) / len(s.availability_curve)
        assert curve_mean == pytest.approx(
            s.quantiles["availability"]["mean"], abs=1e-4
        )

    def test_processor_process_churns_processors(self):
        s = repro.temporal_sweep(
            "pops(2,3)", process="processor-renewal", faults=2,
            mtbf=30, mttr=15, trials=4, horizon=150, seed=2,
        )
        assert s.process == "processor-renewal"
        assert s.quantiles["events"]["mean"] > 0

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="metrics"):
            repro.temporal_sweep("sk(2,2,2)", metrics="nope")
        with pytest.raises(ValueError, match="trials"):
            repro.temporal_sweep("sk(2,2,2)", trials=0)
        with pytest.raises(ValueError, match="not both"):
            repro.temporal_sweep(
                "sk(2,2,2)",
                process=CouplerRenewalProcess(faults=1),
                faults=2,
            )
        with pytest.raises(ValueError, match="curve_points"):
            repro.temporal_sweep("sk(2,2,2)", curve_points=0)


class TestCapacityAccounting:
    def test_oversized_churn_is_skipped_not_immune(self):
        s = repro.temporal_sweep(
            "pops(2,2)", faults=99, mtbf=40, mttr=10, trials=5, horizon=100
        )
        assert s.skipped_underfaulted
        assert s.trials == 0
        assert s.quantiles == {}
        assert s.disconnected_fraction is None
        assert s.availability_curve == ()
        assert "skipped" in s.formatted()

    def test_max_faults_mirrors_frozen_models(self):
        net = build("pops(2,2)")
        assert CouplerRenewalProcess().max_faults(net) == net.num_couplers - 1
        assert ProcessorRenewalProcess().max_faults(net) == \
            net.num_processors - 2

    def test_skip_counter_increments(self):
        from repro.obs.metrics import REGISTRY

        repro.temporal_sweep(
            "pops(2,2)", faults=99, trials=2, horizon=50
        )
        assert "repro_temporal_skips_total" in REGISTRY.render_prometheus()


class TestTrafficMatrix:
    def test_workload_protocol_counts_and_determinism(self):
        net = build("pops(2,2)")
        m = TrafficMatrix.uniform(2, rate=4.0)
        triples = m(net, messages=9, seed=1)
        assert len(triples) == 9
        assert triples == m(net, messages=9, seed=1)
        assert all(slot == 0 for _s, _d, slot in triples)

    def test_apportioning_follows_rates(self):
        from repro.resilience.faults import group_of

        net = build("pops(2,3)")
        m = TrafficMatrix(demands=((0, 1, 3.0), (1, 2, 1.0)))
        triples = m(net, messages=8, seed=0)
        groups = [
            (group_of(net, s), group_of(net, d)) for s, d, _slot in triples
        ]
        assert groups.count((0, 1)) == 6 and groups.count((1, 2)) == 2

    def test_constructors_and_validation(self):
        u = TrafficMatrix.uniform(3)
        assert u.total_rate == pytest.approx(1.0)
        h = TrafficMatrix.hotspot(3, hot=1, fraction=0.5)
        toward_hot = sum(r for _s, d, r in h.demands if d == 1)
        assert toward_hot == pytest.approx(0.5)
        with pytest.raises(ValueError):
            TrafficMatrix(demands=())
        with pytest.raises(ValueError):
            TrafficMatrix(demands=((0, 1, 0.0),))
        with pytest.raises(ValueError):
            TrafficMatrix.hotspot(3, hot=5)

    def test_dict_round_trip(self):
        m = TrafficMatrix.hotspot(4, hot=2, fraction=0.7, rate=3.0)
        assert TrafficMatrix.from_dict(m.as_dict()) == m

    def test_utilization_conserves_offered_load(self):
        net = build("sk(2,2,2)")
        m = TrafficMatrix.uniform(net.num_groups, rate=2.0)
        report = utilization(net, m)
        assert report.unserved_rate == 0.0
        assert report.max_utilization >= report.mean_utilization >= 0.0
        # every served demand deposits its full rate on each hop
        assert sum(report.loads) > 0.0

    def test_dimension_hits_target(self):
        net = build("sk(2,2,2)")
        m = TrafficMatrix.uniform(net.num_groups, rate=2.0)
        plan = dimension(net, m, target_utilization=0.5)
        report = utilization(net, m)
        assert plan["max_capacity"] == pytest.approx(
            max(report.loads) / 0.5, abs=1e-6
        )

    def test_reroute_overloaded_report(self):
        net = build("sk(2,2,2)")
        m = TrafficMatrix.uniform(net.num_groups, rate=50.0)
        out = reroute_overloaded(net, m, capacity=1.0)
        assert set(out) == {
            "overloaded", "before", "after", "served_fraction", "total_rate"
        }
        assert out["overloaded"], "a 50x overload should trip couplers"
        assert 0.0 <= out["served_fraction"] <= 1.0

    def test_served_fraction_intact_is_one(self):
        from repro.resilience.degrade import DegradedNetwork
        from repro.resilience.faults import FaultScenario

        net = build("sk(2,2,2)")
        m = TrafficMatrix.uniform(net.num_groups)
        view = DegradedNetwork(
            net, FaultScenario(spec="intact", model="none", seed=0)
        )
        assert served_fraction(m, view) == 1.0

    def test_matrix_drives_temporal_sweep(self):
        m = TrafficMatrix.uniform(6, rate=2.0)
        s = repro.temporal_sweep(
            "sk(2,2,2)", faults=2, mtbf=40, mttr=20, trials=4,
            horizon=120, seed=1, traffic=m,
        )
        assert "demand_served" in s.quantiles
        assert 0.0 <= s.quantiles["demand_served"]["mean"] <= 1.0


class TestExperimentIntegration:
    def test_process_axis_cell_matches_direct_sweep(self):
        result = repro.experiment(
            ["sk(2,2,2)"], models=["coupler-renewal:2"], trials=[5], seed=3
        )
        assert len(result.cells) == 1
        cell = result.cells[0]
        assert cell.model == "coupler-renewal" and cell.faults == 2
        direct = repro.temporal_sweep(
            "sk(2,2,2)", faults=2, trials=5, seed=3,
        )
        assert cell.summary.to_json() == direct.to_json()

    def test_mixed_grid_keeps_cell_order(self):
        result = repro.experiment(
            ["pops(2,2)"],
            models=["coupler:1", "coupler-renewal:1", "processor"],
            trials=[4],
        )
        assert [c.model for c in result.cells] == [
            "coupler", "coupler-renewal", "processor"
        ]
        payload = json.loads(result.to_json())
        assert payload["models"] == [
            "coupler:1", "coupler-renewal:1", "processor:1"
        ]

    def test_plan_round_trips_process_models(self):
        from repro.core.experiment import Experiment

        plan = Experiment(
            specs=["pops(2,2)"], models=["cascade:2"], trials=[3]
        )
        rebuilt = Experiment.from_payload(plan.as_dict())
        assert rebuilt.as_dict() == plan.as_dict()

    def test_sharded_experiment_matches_in_process(self):
        from repro.core.experiment import Experiment
        from repro.core.session import Session
        from repro.serve.shard import run_sharded_experiment

        plan = Experiment(
            specs=["pops(2,2)", "sk(2,2,2)"],
            models=["coupler-renewal:1"],
            trials=[4],
            seed=2,
        )
        sharded = run_sharded_experiment(plan, shards=2)
        with Session() as session:
            direct = session.run_experiment(plan).as_dict()
        assert sharded == direct


class TestServeTemporal:
    def test_post_temporal_end_to_end(self):
        from repro.serve.client import run_in_thread

        with run_in_thread() as client:
            result, role = client.temporal(
                "sk 2 2 2", trials=3, horizon=100, faults=2,
                mtbf=40, mttr=10,
            )
            assert role == "leader"
            assert result["spec"] == "sk(2,2,2)"
            assert result["process"] == "coupler-renewal"
            assert result["trials"] == 3
            # loose vs canonical spelling coalesce to the same answer
            again, _role = client.temporal(
                "sk(2,2,2)", trials=3, horizon=100, faults=2,
                mtbf=40, mttr=10,
            )
            assert again == result

    def test_validation_rejected_at_the_door(self):
        from repro.serve.client import ServeHTTPError, run_in_thread

        with run_in_thread() as client:
            with pytest.raises(ServeHTTPError) as exc:
                client.temporal("sk(2,2,2)", metrics="nope")
            assert exc.value.status == 400
            with pytest.raises(ServeHTTPError) as exc:
                client.temporal("sk(2,2,2)", bogus_field=1)
            assert exc.value.status == 400
            with pytest.raises(ServeHTTPError) as exc:
                client.temporal("sk(2,2,2)", process="unknown-process")
            assert exc.value.status == 400


class TestCacheSpill:
    def test_evicted_arrays_spill_and_reload(self):
        import numpy as np

        from repro.core.cache import SpecCache

        cache = SpecCache(maxsize=2)
        first = cache.entry("pops(2,2)")
        original = first.arrays()
        cache.entry("sops(4)")
        cache.entry("sk(2,2,2)")  # evicts pops(2,2) -> spill to disk
        assert cache.stats.spills == 1
        reloaded = cache.entry("pops(2,2)").arrays()
        assert cache.stats.spill_hits == 1
        for field in (
            "endpoints", "proc_group", "src_indptr",
            "src_indices", "tgt_indptr", "tgt_indices",
        ):
            assert np.array_equal(
                getattr(original, field), getattr(reloaded, field)
            )
        for field in ("num_processors", "num_groups", "num_couplers"):
            assert getattr(original, field) == getattr(reloaded, field)

    def test_consulted_store_without_file_counts_a_miss(self):
        from repro.core.cache import SpecCache

        cache = SpecCache(maxsize=2)
        cache.entry("pops(2,2)").arrays()
        cache.entry("sops(4)")
        cache.entry("sk(2,2,2)")  # spill store now exists
        cache.entry("sops(4)").arrays()  # never spilled -> miss + export
        assert cache.stats.spill_misses >= 1

    def test_invalidate_removes_spill_store(self):
        import os

        from repro.core.cache import SpecCache

        cache = SpecCache(maxsize=1)
        cache.entry("pops(2,2)").arrays()
        cache.entry("sops(4)")  # evicts and spills
        spill_dir = cache._spill_dir
        assert spill_dir is not None and os.path.isdir(spill_dir)
        cache.invalidate()
        assert not os.path.exists(spill_dir)
        assert cache._spill_dir is None

    def test_stats_dict_exposes_spill_counters(self):
        from repro.core.cache import SpecCache

        stats = SpecCache().stats_dict()
        for key in ("spills", "spill_hits", "spill_misses"):
            assert stats[key] == 0
