"""Unit tests for collectives (broadcast, gossip) and embeddings."""

import pytest

from repro.comm import (
    embed_guest,
    hypercube_embedding,
    hypercube_graph,
    pops_broadcast,
    pops_gossip,
    pops_scatter,
    ring_embedding,
    stack_kautz_broadcast,
    stack_kautz_gossip,
)
from repro.graphs import DiGraph
from repro.networks import POPSNetwork, StackKautzNetwork


class TestPOPSBroadcast:
    @pytest.mark.parametrize("t,g", [(1, 1), (4, 2), (3, 3), (2, 5)])
    def test_one_slot_from_every_source(self, t, g):
        net = POPSNetwork(t, g)
        for src in range(net.num_processors):
            sched = pops_broadcast(net, src)
            assert sched.num_slots == 1
            assert sched.informed == net.num_processors

    def test_schedule_contents(self):
        net = POPSNetwork(4, 2)
        sched = pops_broadcast(net, 5)
        senders = {s for s, _ in sched.slots[0]}
        assert senders == {5}
        couplers = {c for _, c in sched.slots[0]}
        assert couplers == {(1, 0), (1, 1)}


class TestPOPSScatter:
    @pytest.mark.parametrize("t,g", [(1, 1), (4, 2), (3, 3), (2, 5)])
    def test_t_slots_every_source(self, t, g):
        net = POPSNetwork(t, g)
        for src in range(0, net.num_processors, max(1, net.num_processors // 5)):
            sched = pops_scatter(net, src)
            assert sched.num_slots <= t
            assert sched.informed == net.num_processors

    def test_scatter_costs_t_while_broadcast_costs_one(self):
        """Personalized data defeats the one-to-many shortcut."""
        net = POPSNetwork(8, 2)
        assert pops_broadcast(net, 0).num_slots == 1
        assert pops_scatter(net, 0).num_slots == 8

    def test_no_coupler_reuse_within_slot(self):
        sched = pops_scatter(POPSNetwork(4, 3), 5)
        for slot in sched.slots:
            keys = [c for _, c in slot]
            assert len(keys) == len(set(keys))

    def test_single_processor(self):
        sched = pops_scatter(POPSNetwork(1, 1), 0)
        assert sched.num_slots == 0
        assert sched.informed == 1


class TestStackKautzBroadcast:
    @pytest.mark.parametrize("s,d,k", [(2, 2, 2), (6, 3, 2), (2, 2, 3), (1, 3, 2)])
    def test_at_most_k_slots(self, s, d, k):
        net = StackKautzNetwork(s, d, k)
        for src in range(0, net.num_processors, max(1, net.num_processors // 6)):
            sched = stack_kautz_broadcast(net, src)
            assert sched.informed == net.num_processors
            assert sched.num_slots <= k or (s > 1 and sched.num_slots <= k + 1)

    def test_no_coupler_reuse_within_slot(self):
        net = StackKautzNetwork(4, 2, 3)
        sched = stack_kautz_broadcast(net, 10)
        for slot in sched.slots:
            keys = [c for _, c in slot]
            assert len(keys) == len(set(keys))

    def test_senders_already_informed(self):
        net = StackKautzNetwork(3, 2, 2)
        sched = stack_kautz_broadcast(net, 0)
        informed = {0}
        base = net.base_graph()
        for slot in sched.slots:
            for sender, (_u, v) in slot:
                assert sender in informed
            for _sender, (_u, v) in slot:
                informed.update(net.group_members(v).tolist())
        assert len(informed) == net.num_processors

    def test_trivial_single_processor(self):
        net = StackKautzNetwork(1, 2, 1)
        sched = stack_kautz_broadcast(net, 0)
        assert sched.informed == net.num_processors


class TestGossip:
    @pytest.mark.parametrize("t,g", [(2, 2), (4, 2), (4, 3), (1, 4)])
    def test_pops_gossip_t_slots(self, t, g):
        assert pops_gossip(POPSNetwork(t, g)).num_slots == t

    def test_pops_gossip_no_collision(self):
        sched = pops_gossip(POPSNetwork(3, 3))
        for slot in sched.slots:
            keys = [c for _, c in slot]
            assert len(keys) == len(set(keys))

    @pytest.mark.parametrize("s,d,k", [(1, 2, 2), (2, 2, 2), (3, 2, 2), (2, 3, 2)])
    def test_stack_kautz_gossip_completes(self, s, d, k):
        net = StackKautzNetwork(s, d, k)
        sched = stack_kautz_gossip(net)
        assert sched.num_slots >= k

    def test_stack_gossip_diameter_lower_bound(self):
        # Gossip can never beat the hop diameter: the farthest pair
        # must exchange data across k hops.  (POPS gossip airs one
        # datum per slot; SK gossip combines payloads, so raw slot
        # counts between the two are not directly comparable.)
        net = StackKautzNetwork(2, 2, 3)
        assert stack_kautz_gossip(net).num_slots >= net.diameter


class TestEmbeddings:
    def test_ring_in_pops(self):
        host = POPSNetwork(4, 3).stack_graph_model()
        ring = ring_embedding(host)
        assert sorted(ring) == list(range(host.num_nodes))
        for a, b in zip(ring, ring[1:] + ring[:1]):
            # consecutive processors share a coupler (one-hop)
            assert host.bfs_hop_distances(a)[b] == 1

    def test_ring_in_stack_kautz(self):
        host = StackKautzNetwork(3, 2, 2).stack_graph_model()
        ring = ring_embedding(host)
        assert sorted(ring) == list(range(host.num_nodes))
        for a, b in zip(ring, ring[1:] + ring[:1]):
            assert host.bfs_hop_distances(a)[b] == 1

    def test_ring_needs_loops_for_s_gt_1(self):
        from repro.graphs import kautz_graph
        from repro.hypergraphs import stack_graph

        host = stack_graph(2, kautz_graph(2, 2))  # no loops
        with pytest.raises(ValueError):
            ring_embedding(host)

    def test_hypercube_graph(self):
        q3 = hypercube_graph(3)
        assert q3.num_nodes == 8
        assert q3.num_arcs == 24
        assert (q3.out_degrees() == 3).all()

    def test_hypercube_into_pops_dilation_one(self):
        host = POPSNetwork(4, 4).stack_graph_model()
        rep = hypercube_embedding(host, 4)
        assert rep.dilation == 1
        assert rep.congestion >= 1

    def test_hypercube_into_stack_kautz_dilation_at_most_k(self):
        net = StackKautzNetwork(4, 2, 2)
        rep = hypercube_embedding(net.stack_graph_model(), 4)
        assert 1 <= rep.dilation <= net.diameter

    def test_hypercube_too_big(self):
        host = POPSNetwork(2, 2).stack_graph_model()
        with pytest.raises(ValueError):
            hypercube_embedding(host, 4)

    def test_embed_guest_validations(self):
        host = POPSNetwork(2, 2).stack_graph_model()
        guest = hypercube_graph(1)
        with pytest.raises(ValueError):
            embed_guest(host, guest, [0])       # wrong size
        with pytest.raises(ValueError):
            embed_guest(host, guest, [1, 1])    # not injective
        with pytest.raises(ValueError):
            embed_guest(host, guest, [0, 99])   # out of range

    def test_embed_guest_loop_free(self):
        host = POPSNetwork(2, 2).stack_graph_model()
        guest = DiGraph(2, [(0, 0), (0, 1)])
        rep = embed_guest(host, guest, [0, 1])
        assert rep.dilation == 1  # the guest loop costs nothing

    def test_report_row(self):
        host = POPSNetwork(4, 4).stack_graph_model()
        rep = hypercube_embedding(host, 3)
        assert "dilation=" in rep.row()
        assert rep.expansion == pytest.approx(2.0)
