"""Docs-site integrity tests.

The docs under ``docs/`` are part of the deliverable: the reference
pages are *generated* from the code by ``docs/gen_ref.py`` and
committed, so these tests pin three contracts:

* **freshness** -- regenerating the API and CLI reference pages
  reproduces the committed files byte for byte (if a docstring or the
  argparse tree changes, the pages must be regenerated);
* **golden cross-check** -- the ``--json`` key sets the CLI page
  documents equal the golden schemas in ``test_cli_json_schema.py``
  for the pinned subcommands, and match the live CLI output for the
  rest;
* **coverage** -- every facade verb and every CLI subcommand appears
  in the site, and every page in the mkdocs nav exists on disk.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest
import yaml

import test_cli_json_schema as golden
from repro.__main__ import build_parser, main
from repro.core import facade

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"


@pytest.fixture(scope="module")
def gen_ref():
    """The ``docs/gen_ref.py`` module, loaded from its file path."""
    spec = importlib.util.spec_from_file_location(
        "gen_ref", DOCS / "gen_ref.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("gen_ref", module)
    spec.loader.exec_module(module)
    return module


def _subcommands() -> list[str]:
    import argparse

    parser = build_parser()
    subactions = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    return list(subactions.choices)


class TestGeneratedPagesAreFresh:
    def test_api_page_matches_generator(self, gen_ref):
        committed = (DOCS / "reference" / "api.md").read_text()
        assert gen_ref.render_api() == committed, (
            "docs/reference/api.md is stale -- regenerate with "
            "`PYTHONPATH=src python docs/gen_ref.py`"
        )

    def test_cli_page_matches_generator(self, gen_ref):
        committed = (DOCS / "reference" / "cli.md").read_text()
        assert gen_ref.render_cli() == committed, (
            "docs/reference/cli.md is stale -- regenerate with "
            "`PYTHONPATH=src python docs/gen_ref.py`"
        )


class TestCliSchemaCrossCheck:
    """CLI_JSON_KEYS in the generator == the golden schema tests."""

    @pytest.mark.parametrize(
        "subcommand,schema_name",
        [
            ("describe", "DESCRIBE_SCHEMA"),
            ("sweep", "SWEEP_CELL_SCHEMA"),
            ("resilience", "RESILIENCE_SCHEMA"),
            ("temporal", "TEMPORAL_SCHEMA"),
            ("design-search", "DESIGN_SEARCH_SCHEMA"),
            ("experiment", "EXPERIMENT_SCHEMA"),
        ],
    )
    def test_documented_keys_equal_goldens(self, gen_ref, subcommand, schema_name):
        documented = set(gen_ref.CLI_JSON_KEYS[subcommand])
        assert documented == set(getattr(golden, schema_name)), subcommand

    def test_design_search_candidate_keys_equal_golden(self, gen_ref):
        assert set(gen_ref.DESIGN_SEARCH_CANDIDATE_KEYS) == set(
            golden.CANDIDATE_SCHEMA
        )

    @pytest.mark.parametrize(
        "argv,subcommand,is_list",
        [
            (["design", "pops(2,2)", "--json"], "design", False),
            (["route", "pops(2,2)", "0", "3", "--json"], "route", False),
            (
                ["simulate", "pops(2,2)", "--messages", "8", "--json"],
                "simulate",
                False,
            ),
            (["compare", "8", "--json"], "compare", True),
        ],
    )
    def test_unpinned_subcommands_checked_live(
        self, gen_ref, capsys, argv, subcommand, is_list
    ):
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        row = payload[0] if is_list else payload
        assert set(row) == set(gen_ref.CLI_JSON_KEYS[subcommand]), subcommand

    def test_every_json_subcommand_is_documented(self, gen_ref):
        # every subcommand carries --json except those the generator
        # explicitly lists as having no JSON form
        assert set(gen_ref.CLI_JSON_KEYS) == set(_subcommands()) - set(
            gen_ref.CLI_NO_JSON
        )


class TestSiteCoverage:
    def test_every_facade_verb_on_the_api_page(self):
        page = (DOCS / "reference" / "api.md").read_text()
        for name in facade.__all__:
            assert f"`repro.{name}`" in page, name

    def test_every_subcommand_on_the_cli_page(self):
        page = (DOCS / "reference" / "cli.md").read_text()
        for name in _subcommands():
            assert f"## `repro {name}`" in page, name

    def test_mkdocs_nav_pages_exist(self):
        config = yaml.safe_load((REPO / "mkdocs.yml").read_text())
        assert config["strict"] is True

        def walk(node):
            if isinstance(node, str):
                yield node
            elif isinstance(node, list):
                for item in node:
                    yield from walk(item)
            elif isinstance(node, dict):
                for value in node.values():
                    yield from walk(value)

        pages = list(walk(config["nav"]))
        assert pages, "mkdocs nav must not be empty"
        for page in pages:
            assert (DOCS / page).is_file(), f"nav references missing {page}"

    def test_backend_guide_documents_all_three_backends(self):
        from repro.resilience import SWEEP_BACKENDS

        guide = (DOCS / "guides" / "sweep-backends.md").read_text()
        for backend in SWEEP_BACKENDS:
            assert f"`{backend}`" in guide, backend
        assert 'parallelism="candidates"' in guide

    def test_internal_links_resolve(self):
        """Every relative .md link in the hand-written pages exists."""
        import re

        for page in DOCS.rglob("*.md"):
            text = page.read_text()
            for target in re.findall(r"\]\((?!https?://)([^)#]+\.md)", text):
                resolved = (page.parent / target).resolve()
                assert resolved.is_file(), f"{page.name} links missing {target}"
