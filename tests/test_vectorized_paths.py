"""Vectorized ``paths`` metric mode: kernel byte-identity + downgrades.

The PR 8 contract: ``backend="vectorized"`` with ``metrics="paths"``
(batched all-pairs distances from level-synchronous frontier
expansion) must reproduce the ``batched`` backend's paths-mode
aggregate JSON **byte for byte** for every family whose
``fault_route`` is the generic-BFS default, at any worker count and
chunking.  Families with structured routing hooks (stack-Kautz) are
*downgraded* to ``batched`` with a recorded reason -- never silently
different numbers.
"""

import json

import pytest

from repro.__main__ import main
from repro.core import design_search
from repro.core.experiment import Experiment
from repro.core.session import Session
from repro.design_search.search import RANKINGS
from repro.obs.metrics import REGISTRY
from repro.resilience import survivability_sweep
from repro.resilience.sweep import _VECTOR_BATCH

PATHS = dict(trials=18, seed=5, metrics="paths")

#: Families whose default generic-BFS ``fault_route`` the kernel covers.
KERNEL_SPECS = ["pops(2,3)", "sops(6)", "sii(2,2,6)"]


@pytest.fixture(autouse=True)
def _clean_registry():
    REGISTRY.reset()
    yield
    REGISTRY.reset()


# ----------------------------------------------------------------------
# Byte-identity on kernel-path families
# ----------------------------------------------------------------------
class TestPathsByteIdentity:
    @pytest.mark.parametrize("spec", KERNEL_SPECS)
    @pytest.mark.parametrize(
        "model,faults",
        [
            ("coupler", 1),
            ("processor", 2),
            ("link", 1),
            ("group", 1),
            ("adversarial", 1),
        ],
    )
    def test_kernel_families_byte_identical(self, spec, model, faults):
        batched = survivability_sweep(
            spec, model, faults=faults, backend="batched", **PATHS
        )
        vectorized = survivability_sweep(
            spec, model, faults=faults, backend="vectorized", **PATHS
        )
        assert vectorized.to_json() == batched.to_json()
        assert vectorized.backend == "vectorized"
        assert vectorized.downgrade_reason is None

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_counts_byte_identical(self, workers):
        batched = survivability_sweep(
            "pops(2,3)", "coupler", faults=1, **PATHS
        )
        vectorized = survivability_sweep(
            "pops(2,3)",
            "coupler",
            faults=1,
            backend="vectorized",
            workers=workers,
            **PATHS,
        )
        assert vectorized.to_json() == batched.to_json()

    def test_chunk_boundaries_do_not_change_rows(self, monkeypatch):
        import repro.resilience.sweep as sweep_mod

        baseline = survivability_sweep(
            "pops(2,3)", "coupler", faults=1, backend="vectorized", **PATHS
        )
        assert _VECTOR_BATCH > 5
        monkeypatch.setattr(sweep_mod, "_VECTOR_BATCH", 5)
        tiny = survivability_sweep(
            "pops(2,3)", "coupler", faults=1, backend="vectorized", **PATHS
        )
        assert tiny.to_json() == baseline.to_json()

    def test_kernel_obs_counters_recorded_inline(self):
        survivability_sweep(
            "pops(2,3)", "coupler", faults=1, backend="vectorized", **PATHS
        )
        snap = REGISTRY.snapshot()
        assert "repro_sweep_paths_kernel_trials_total" in snap
        trials = snap["repro_sweep_paths_kernel_trials_total"]["series"]
        assert trials[0][1] == PATHS["trials"]
        assert "repro_sweep_paths_kernel_hops" in snap

    def test_cli_paths_backend_flag(self, capsys):
        argv = [
            "resilience",
            "pops(2,3)",
            "--trials",
            "6",
            "--metrics",
            "paths",
            "--json",
        ]
        assert main([*argv, "--backend", "vectorized"]) == 0
        fast = capsys.readouterr().out
        assert main([*argv, "--backend", "batched"]) == 0
        assert fast == capsys.readouterr().out
        assert "mean_stretch" in json.loads(fast)["quantiles"]


# ----------------------------------------------------------------------
# Structured-hook families: recorded downgrade, never silent drift
# ----------------------------------------------------------------------
class TestStructuredHookDowngrade:
    def test_stack_kautz_paths_downgrades_with_reason(self):
        vectorized = survivability_sweep(
            "sk(2,2,2)", "coupler", faults=1, backend="vectorized", **PATHS
        )
        assert vectorized.backend == "batched"
        assert "fault_route" in vectorized.downgrade_reason
        assert "backend='batched'" in vectorized.downgrade_reason
        batched = survivability_sweep(
            "sk(2,2,2)", "coupler", faults=1, backend="batched", **PATHS
        )
        assert vectorized.to_json() == batched.to_json()

    def test_downgrade_never_leaks_into_json(self):
        summary = survivability_sweep(
            "sk(2,2,2)", "coupler", faults=1, backend="vectorized", **PATHS
        )
        data = summary.as_dict()
        assert "backend" not in data
        assert "downgrade_reason" not in data
        assert "note:" in summary.formatted()

    def test_downgrade_counter_incremented(self):
        survivability_sweep(
            "sk(2,2,2)", "coupler", faults=1, backend="vectorized", **PATHS
        )
        snap = REGISTRY.snapshot()
        series = snap["repro_sweep_backend_downgrades_total"]["series"]
        labels = dict(series[0][0])
        assert labels == {"from": "vectorized", "to": "batched"}
        assert series[0][1] == 1

    def test_connectivity_mode_not_downgraded(self):
        summary = survivability_sweep(
            "sk(2,2,2)",
            "coupler",
            faults=1,
            trials=6,
            metrics="connectivity",
            backend="vectorized",
        )
        assert summary.backend == "vectorized"
        assert summary.downgrade_reason is None

    def test_experiment_cells_record_executed_backend(self):
        exp = Experiment(
            specs=("pops(2,3)", "sk(2,2,2)"),
            models="coupler",
            metrics=("paths",),
            backend="vectorized",
            trials=4,
        )
        with Session() as s:
            result = s.run_experiment(exp)
        by_spec = {cell.spec: cell for cell in result}
        assert by_spec["pops(2,3)"].backend == "vectorized"
        assert by_spec["sk(2,2,2)"].backend == "batched"


# ----------------------------------------------------------------------
# Cross-family invariant: paths vs connectivity reachability agree
# ----------------------------------------------------------------------
class TestCrossFamilyReachabilityInvariant:
    """``reachable_groups`` is the same fact in both metric modes.

    Paths mode counts routed ordered pairs, connectivity mode counts
    BFS-reachable ordered pairs; on every registered family the
    ``fault_route`` contract guarantees they coincide.
    """

    EXAMPLES = ["pops(4,2)", "sk(2,2,2)", "sii(2,3,10)", "sops(6)"]

    @pytest.mark.parametrize("spec", EXAMPLES)
    @pytest.mark.parametrize(
        "model", ["coupler", "processor", "link", "group", "adversarial"]
    )
    def test_reachable_groups_agrees(self, spec, model):
        kwargs = dict(faults=1, trials=10, seed=3)
        paths = survivability_sweep(spec, model, metrics="paths", **kwargs)
        conn = survivability_sweep(
            spec, model, metrics="connectivity", **kwargs
        )
        assert (
            paths.quantiles["reachable_groups"]
            == conn.quantiles["reachable_groups"]
        )


# ----------------------------------------------------------------------
# design_search ranking on path metrics
# ----------------------------------------------------------------------
class TestRankBy:
    KW = dict(max_processors=8, families=("pops",), trials=6, seed=2)

    def test_rankings_registry(self):
        assert RANKINGS == (
            "survivability-per-cost",
            "within-bound",
            "mean-stretch",
        )

    def test_default_ranking_unchanged(self):
        result = design_search(**self.KW)
        assert result.rank_by == "survivability-per-cost"
        assert result.as_dict()["rank_by"] == "survivability-per-cost"

    def test_path_rankings_need_path_metrics(self):
        with pytest.raises(ValueError, match="rank_by"):
            design_search(rank_by="within-bound", **self.KW)
        with pytest.raises(ValueError, match="unknown"):
            design_search(rank_by="alphabetical", **self.KW)

    @pytest.mark.parametrize("rank_by", ["within-bound", "mean-stretch"])
    def test_path_rankings_order_the_table(self, rank_by):
        result = design_search(
            metrics="paths",
            backend="vectorized",
            rank_by=rank_by,
            **self.KW,
        )
        assert result.rank_by == rank_by
        candidates = result.candidates
        assert len(candidates) > 1
        assert all(c.mean_stretch is not None for c in candidates)
        if rank_by == "within-bound":
            keys = [-(c.within_bound_fraction or 0.0) for c in candidates]
        else:
            keys = [c.mean_stretch for c in candidates]
        assert keys == sorted(keys)

    def test_connectivity_candidates_have_no_stretch(self):
        result = design_search(**self.KW)
        assert all(c.mean_stretch is None for c in result.candidates)
        assert '"mean_stretch": null' in result.to_json()

    def test_cli_rank_by_flag(self, capsys):
        argv = [
            "design-search",
            "--max-processors",
            "8",
            "--families",
            "pops",
            "--trials",
            "4",
            "--metrics",
            "paths",
            "--backend",
            "vectorized",
            "--rank-by",
            "mean-stretch",
            "--json",
        ]
        assert main(argv) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["rank_by"] == "mean-stretch"

    def test_serve_validator_normalizes_rank_by(self):
        from repro.serve.protocol import ServeError, validate_design_search

        normalized = validate_design_search(
            {
                "max_processors": 8,
                "metrics": "paths",
                "backend": "vectorized",
                "rank_by": "within-bound",
            }
        )
        assert normalized["rank_by"] == "within-bound"
        with pytest.raises(ServeError, match="path metrics"):
            validate_design_search(
                {"max_processors": 8, "rank_by": "mean-stretch"}
            )
        with pytest.raises(ServeError, match="unknown ranking"):
            validate_design_search(
                {"max_processors": 8, "rank_by": "best-first"}
            )
