"""Unit tests for the 2-D lenslet-array OTIS layout."""

import pytest

from repro.optical import OTIS2DLayout


class TestReceiverMap:
    def test_documented_example(self):
        lay = OTIS2DLayout(2, 2, 3, 2)
        assert lay.receiver_of((0, 0), (0, 0)) == ((2, 1), (1, 1))

    def test_corner_cases(self):
        lay = OTIS2DLayout(2, 2, 3, 2)
        assert lay.receiver_of((1, 1), (2, 1)) == ((0, 0), (0, 0))

    def test_bounds(self):
        lay = OTIS2DLayout(2, 2, 3, 2)
        with pytest.raises(IndexError):
            lay.receiver_of((2, 0), (0, 0))
        with pytest.raises(IndexError):
            lay.receiver_of((0, 0), (3, 0))

    def test_bad_params(self):
        with pytest.raises(ValueError):
            OTIS2DLayout(0, 2, 3, 2)


class TestFactorization:
    @pytest.mark.parametrize(
        "gx,gy,tx,ty",
        [(1, 1, 1, 1), (2, 2, 3, 2), (1, 3, 6, 2), (3, 2, 2, 3), (4, 1, 1, 5), (2, 3, 3, 4)],
    )
    def test_flattening_reproduces_abstract_otis(self, gx, gy, tx, ty):
        assert OTIS2DLayout(gx, gy, tx, ty).verify_factorization()

    def test_sizes(self):
        lay = OTIS2DLayout(2, 3, 4, 5)
        assert lay.num_groups == 6
        assert lay.group_size == 20
        assert lay.abstract.num_inputs == 120

    def test_flatten_inverses_are_consistent(self):
        lay = OTIS2DLayout(2, 2, 2, 2)
        seen = set()
        for ix in range(2):
            for iy in range(2):
                for jx in range(2):
                    for jy in range(2):
                        seen.add(lay.flatten_tx((ix, iy), (jx, jy)))
        assert len(seen) == 16


class TestFiguresOfMerit:
    def test_aperture(self):
        lay = OTIS2DLayout(2, 2, 3, 2)
        assert lay.aperture_shape() == (6, 4)
        assert lay.aspect_ratio() == pytest.approx(1.5)
        assert lay.max_transverse_throw() == 6.0

    def test_best_factorization_beats_strip(self):
        strip = OTIS2DLayout(1, 3, 1, 12)  # the 1-D drawing of Fig. 1
        best = OTIS2DLayout.best_factorization(3, 12)
        assert best.aspect_ratio() <= strip.aspect_ratio()
        assert best.verify_factorization()

    def test_best_factorization_square_when_possible(self):
        best = OTIS2DLayout.best_factorization(4, 4)
        assert best.aspect_ratio() == pytest.approx(1.0)

    def test_best_preserves_shape(self):
        best = OTIS2DLayout.best_factorization(5, 7)  # primes: strip only
        assert best.num_groups == 5
        assert best.group_size == 7
        assert best.verify_factorization()
