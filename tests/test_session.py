"""Session/engine semantics: caches, persistent pools, experiments.

Pins the PR's three contracts:

* **byte-identity** -- session-routed verbs (warm or cold, any worker
  count, any backend) return byte-identical output to the stateless
  module-level path for the same seed;
* **cache semantics** -- spec-keyed LRU with hit/miss/eviction
  counters and explicit ``invalidate``;
* **pool reuse** -- one persistent pool serves many sweeps /
  experiments / design searches, re-initializing worker contexts only
  when the plan changes, without moving a single result.
"""

import json

import pytest

import repro
from repro.core.cache import SpecCache
from repro.core.experiment import Experiment
from repro.core.session import Session, default_session, reset_default_session
from repro.design_search.search import design_search as raw_design_search
from repro.resilience import PersistentSweepExecutor
from repro.resilience.sweep import (
    pooled_survivability_sweeps,
    survivability_sweep,
)


# ----------------------------------------------------------------------
# SpecCache
# ----------------------------------------------------------------------
class TestSpecCache:
    def test_hit_returns_the_same_network_object(self):
        cache = SpecCache(maxsize=4)
        assert cache.network("pops(2,2)") is cache.network("pops(2,2)")
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_canonicalization_shares_entries(self):
        cache = SpecCache(maxsize=4)
        a = cache.network("sk(2,2,2)")
        b = cache.network("sk 2 2 2")  # loose token form, same machine
        c = cache.network({"family": "sk", "s": 2, "d": 2, "k": 2})
        assert a is b is c
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = SpecCache(maxsize=2)
        cache.network("pops(2,2)")
        cache.network("sops(4)")
        cache.network("pops(2,2)")  # refresh: sops(4) is now LRU-oldest
        cache.network("sk(2,2,2)")  # evicts sops(4)
        assert "pops(2,2)" in cache and "sk(2,2,2)" in cache
        assert "sops(4)" not in cache
        assert cache.stats.evictions == 1

    def test_invalidate_one_and_all(self):
        cache = SpecCache(maxsize=4)
        cache.network("pops(2,2)")
        cache.network("sops(4)")
        assert cache.invalidate("pops(2,2)") == 1
        assert cache.invalidate("pops(2,2)") == 0  # already gone
        assert cache.invalidate() == 1  # drops the rest
        assert len(cache) == 0

    def test_rejects_degenerate_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            SpecCache(maxsize=0)

    def test_entry_lazy_views(self):
        cache = SpecCache(maxsize=4)
        entry = cache.entry("sk(2,2,2)")
        assert entry.design().verify()
        assert entry.design() is entry.design()  # built once
        arrays = entry.arrays()
        assert arrays is entry.arrays()
        assert arrays.num_processors == entry.network.num_processors
        table = entry.routing_table()
        assert table is entry.routing_table()
        assert table.verify()

    def test_routing_table_without_base_graph(self):
        # single-OPS machines have no base digraph; the group digraph
        # derived from coupler endpoints stands in
        table = SpecCache(maxsize=2).entry("sops(4)").routing_table()
        assert table.distance(0, 0) == 0

    def test_baseline_cached_per_workload_config(self):
        entry = SpecCache(maxsize=2).entry("pops(2,2)")
        a = entry.baseline(workload="uniform", messages=10, seed=0)
        b = entry.baseline(workload="uniform", messages=10, seed=0)
        c = entry.baseline(workload="uniform", messages=12, seed=0)
        assert a == b
        assert len(entry._baselines) == 2
        assert isinstance(c, float)


# ----------------------------------------------------------------------
# Session lifecycle + cached verbs
# ----------------------------------------------------------------------
class TestSessionLifecycle:
    def test_context_manager_closes(self):
        with Session() as s:
            s.build("pops(2,2)")
        assert s.closed
        with pytest.raises(RuntimeError, match="closed"):
            s.build("pops(2,2)")

    def test_close_is_idempotent(self):
        s = Session()
        s.close()
        s.close()
        assert s.closed

    def test_cache_stats_shape(self):
        with Session(cache_size=8) as s:
            s.build("pops(2,2)")
            s.build("pops(2,2)")
            stats = s.cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1 and stats["maxsize"] == 8

    def test_invalidate_forces_rebuild(self):
        with Session() as s:
            first = s.build("pops(2,2)")
            assert s.invalidate("pops(2,2)") == 1
            second = s.build("pops(2,2)")
            assert first is not second
            # identical structure either way
            assert first.num_processors == second.num_processors

    def test_verbs_match_stateless_results(self):
        with Session() as s:
            assert s.describe("sk(2,2,2)") == repro.describe("sk(2,2,2)")
            assert (
                s.route("sk(2,2,2)", 0, 5).num_hops
                == repro.route("sk(2,2,2)", 0, 5).num_hops
            )
            assert (
                s.simulate("pops(2,2)", messages=8).num_messages == 8
            )
            assert s.degrade("pops(2,2)", faults=1, seed=3).scenario == (
                repro.degrade("pops(2,2)", faults=1, seed=3).scenario
            )
            matrix = s.sweep(["pops(2,2)"], ["uniform"], messages=10)
            assert matrix.to_json() == repro.sweep(
                ["pops(2,2)"], ["uniform"], messages=10
            ).to_json()

    def test_route_validates_endpoints(self):
        with Session() as s:
            with pytest.raises(IndexError, match="out of range"):
                s.route("pops(2,2)", 0, 99)


# ----------------------------------------------------------------------
# Byte-identity: session-routed sweeps vs the stateless path
# ----------------------------------------------------------------------
class TestSweepByteIdentity:
    @pytest.mark.parametrize(
        "metrics,backend",
        [
            ("connectivity", "batched"),
            ("connectivity", "vectorized"),
            ("paths", "batched"),
            ("full", "batched"),
            ("full", "legacy"),
        ],
    )
    def test_warm_session_equals_cold_module_path(self, metrics, backend):
        kw = dict(
            model="coupler",
            faults=1,
            trials=6,
            seed=2,
            messages=8,
            metrics=metrics,
            backend=backend,
        )
        cold = survivability_sweep("sk(2,2,2)", **{
            k: v for k, v in kw.items() if k != "model"
        })
        with Session() as s:
            first = s.resilience_sweep("sk(2,2,2)", **kw)
            second = s.resilience_sweep("sk(2,2,2)", **kw)  # fully warm
        assert first.to_json() == cold.to_json()
        assert second.to_json() == cold.to_json()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pool_reuse_determinism_across_worker_counts(self, workers):
        """Warm persistent pools at 1/2/4 workers all match inline."""
        kw = dict(faults=1, trials=10, seed=5, metrics="connectivity")
        inline = survivability_sweep("sk(2,2,2)", "coupler", **kw)
        with Session(workers=workers) as s:
            warm_up = s.resilience_sweep("pops(2,2)", **kw)  # other spec
            first = s.resilience_sweep("sk(2,2,2)", **kw)
            second = s.resilience_sweep("sk(2,2,2)", **kw)
            pools = s.pools_started
        assert warm_up.spec == "pops(2,2)"
        assert first.to_json() == inline.to_json()
        assert second.to_json() == inline.to_json()
        # one executor serves every call of this worker count
        assert pools == (1 if workers > 1 else 0)

    def test_full_metrics_baseline_reuse_is_exact(self):
        """The cached intact baseline reproduces per-call computation."""
        kw = dict(faults=1, trials=5, seed=1, messages=10, metrics="full")
        cold = survivability_sweep("pops(2,3)", "coupler", **kw)
        with Session() as s:
            a = s.resilience_sweep("pops(2,3)", **kw)
            b = s.resilience_sweep("pops(2,3)", **kw)
        assert a.to_json() == cold.to_json() == b.to_json()

    def test_facade_verb_routes_through_default_session(self):
        reset_default_session()
        try:
            assert repro.build("pops(2,2)") is repro.build("pops(2,2)")
            session = default_session()
            assert session.cache_stats()["hits"] >= 1
            summary = repro.resilience_sweep(
                "pops(2,2)", trials=4, metrics="connectivity"
            )
            direct = survivability_sweep(
                "pops(2,2)", "coupler", trials=4, metrics="connectivity"
            )
            assert summary.to_json() == direct.to_json()
        finally:
            reset_default_session()

    def test_reset_default_session_starts_cold(self):
        reset_default_session()
        first = default_session()
        first.build("pops(2,2)")
        reset_default_session()
        assert first.closed
        second = default_session()
        assert second is not first
        assert second.cache_stats()["size"] == 0


# ----------------------------------------------------------------------
# Persistent executor internals
# ----------------------------------------------------------------------
class TestPersistentExecutor:
    def test_pool_starts_lazily_and_survives_plan_changes(self):
        with PersistentSweepExecutor(workers=2) as ex:
            assert not ex.pool_started
            a = survivability_sweep(
                "pops(2,2)", "coupler", trials=6,
                metrics="connectivity", _executor=ex,
            )
            assert ex.pool_started
            pool = ex._pool
            b = survivability_sweep(
                "sk(2,2,2)", "processor", trials=6,
                metrics="connectivity", _executor=ex,
            )
            assert ex._pool is pool  # reused, not respawned
        assert a.spec == "pops(2,2)" and b.spec == "sk(2,2,2)"
        assert not ex.pool_started

    def test_closed_executor_refuses_work(self):
        ex = PersistentSweepExecutor(workers=2)
        ex.close()
        with pytest.raises(RuntimeError, match="closed"):
            survivability_sweep(
                "pops(2,2)", trials=2, metrics="connectivity", _executor=ex
            )

    def test_pooled_sweeps_executor_matches_oneshot(self):
        requests = [
            dict(spec="pops(2,2)", trials=5, metrics="connectivity"),
            dict(spec="sk(2,2,2)", trials=7, metrics="connectivity",
                 backend="vectorized"),
        ]
        oneshot = pooled_survivability_sweeps(requests, workers=2)
        with PersistentSweepExecutor(workers=2) as ex:
            persistent = pooled_survivability_sweeps(requests, executor=ex)
        with PersistentSweepExecutor() as inline:
            serial = pooled_survivability_sweeps(requests, executor=inline)
        for a, b, c in zip(oneshot, persistent, serial):
            assert a.to_json() == b.to_json() == c.to_json()

    def test_inline_context_cache_is_bounded(self):
        with PersistentSweepExecutor(context_cache=2) as ex:
            for spec in ("pops(2,2)", "sops(4)", "sk(2,2,2)"):
                survivability_sweep(
                    spec, trials=2, metrics="connectivity", _executor=ex
                )
            assert len(ex._inline_ctxs) == 2

    def test_rejects_degenerate_context_cache(self):
        with pytest.raises(ValueError, match="context_cache"):
            PersistentSweepExecutor(context_cache=0)


# ----------------------------------------------------------------------
# Design search through the session
# ----------------------------------------------------------------------
class TestSessionDesignSearch:
    KW = dict(
        max_processors=10,
        families=("pops", "sops"),
        trials=6,
        seed=4,
    )

    def test_session_matches_module_search(self):
        cold = raw_design_search(**self.KW)
        with Session() as s:
            warm = s.design_search(**self.KW)
            again = s.design_search(**self.KW)
        assert warm.to_json() == cold.to_json() == again.to_json()

    @pytest.mark.parametrize("parallelism", ["sweeps", "candidates"])
    def test_parallel_session_search_is_worker_invariant(self, parallelism):
        cold = raw_design_search(**self.KW)
        with Session(workers=2) as s:
            warm = s.design_search(parallelism=parallelism, **self.KW)
        assert warm.to_json() == cold.to_json()


# ----------------------------------------------------------------------
# Experiments
# ----------------------------------------------------------------------
class TestExperiment:
    def test_grid_compiles_spec_major(self):
        exp = Experiment(
            specs=("pops(2,2)", "sk(2,2,2)"),
            models=("coupler", "link:2"),
            metrics=("connectivity",),
            trials=(4, 8),
        )
        plan = exp.compile()
        assert len(plan) == 8
        assert [p["spec"] for p in plan[:4]] == ["pops(2,2)"] * 4
        assert [p["trials"] for p in plan[:4]] == [4, 8, 4, 8]
        assert plan[0]["model"].key == "coupler"
        assert plan[2]["model"].faults == 2

    def test_single_entries_normalize(self):
        exp = Experiment(specs="pops(2,2)", models="coupler:3", trials=5)
        assert len(exp.compile()) == 1
        assert exp.models[0].faults == 3

    def test_backend_downgrades_where_unscorable(self):
        exp = Experiment(
            specs="pops(2,2)",
            metrics=("connectivity", "full"),
            backend="vectorized",
            trials=2,
        )
        backends = [p["backend"] for p in exp.compile()]
        assert backends == ["vectorized", "batched"]

    @pytest.mark.parametrize(
        "bad,match",
        [
            (dict(specs=()), "at least one spec"),
            (dict(specs="pops(2,2)", metrics=("nope",)), "metrics mode"),
            (dict(specs="pops(2,2)", trials=0), "trial counts"),
            (dict(specs="pops(2,2)", backend="warp"), "backend"),
            (dict(specs="pops(2,2)", models=("coupler:x",)), "malformed"),
            (dict(specs="pops(2,2)", models=(3.5,)), "cannot parse"),
        ],
    )
    def test_validation_names_the_culprit(self, bad, match):
        with pytest.raises(ValueError, match=match):
            Experiment(**bad)

    def test_cells_match_individual_sweeps_any_worker_count(self):
        exp = Experiment(
            specs=("pops(2,2)", "sk(2,2,2)"),
            models=("coupler", "processor:2"),
            metrics=("connectivity",),
            trials=6,
            seed=9,
        )
        with Session() as s:
            inline = s.run_experiment(exp)
        with Session() as s:
            pooled = s.run_experiment(exp, workers=2)
        assert inline.to_json() == pooled.to_json()
        for cell in inline:
            direct = survivability_sweep(
                cell.spec,
                cell.model,
                faults=cell.faults,
                trials=6,
                seed=9,
                metrics="connectivity",
            )
            assert cell.summary.to_json() == direct.to_json()

    def test_result_report_shapes(self):
        result = repro.experiment(
            "pops(2,2)", models=["coupler"], trials=3, seed=1
        )
        assert len(result) == 1
        (cell,) = list(result)
        assert cell.as_dict()["summary"]["trials"] == 3
        payload = json.loads(result.to_json())
        assert payload["specs"] == ["pops(2,2)"]
        assert payload["cells"][0]["spec"] == "pops(2,2)"
        assert "pops(2,2)" in result.formatted()
        with pytest.raises(KeyError):
            result.cell("pops(2,2)", model="link")

    def test_experiment_run_uses_given_session(self):
        exp = Experiment(specs="pops(2,2)", trials=2)
        with Session() as s:
            result = exp.run(session=s)
            assert s.cache_stats()["misses"] >= 1
        assert result.cells[0].summary.trials == 2

    def test_experiment_run_defers_to_session_worker_default(self):
        """Omitted workers means the session default, not inline."""
        exp = Experiment(specs="pops(2,2)", trials=4)
        with Session(workers=2) as s:
            via_run = exp.run(session=s)
            assert s.pools_started == 1  # the 2-worker pool, not inline
            via_session = s.run_experiment(exp)
        assert via_run.to_json() == via_session.to_json()

    def test_single_non_iterable_grid_entries(self):
        """A spec dict / NetworkSpec / FaultModel each count as ONE entry."""
        from repro.core.spec import NetworkSpec
        from repro.resilience.faults import UniformCouplerFaults

        exp = Experiment(
            specs={"family": "pops", "t": 2, "g": 2},
            models=UniformCouplerFaults(faults=1),
            trials=2,
        )
        assert [s.canonical() for s in exp.specs] == ["pops(2,2)"]
        assert exp.models[0].faults == 1
        parsed = Experiment(specs=NetworkSpec.parse("sops(4)"), trials=2)
        assert [s.canonical() for s in parsed.specs] == ["sops(4)"]
        assert repro.experiment(
            {"family": "pops", "t": 2, "g": 2}, trials=2
        ).cells[0].spec == "pops(2,2)"

    def test_invalid_request_never_computes_the_baseline(self):
        """Validation precedes the (cached) intact-baseline simulation."""
        with Session() as s:
            with pytest.raises(ValueError, match="vectorized"):
                s.resilience_sweep(
                    "pops(2,2)", metrics="full", backend="vectorized"
                )
            with pytest.raises(ValueError, match="trials"):
                s.resilience_sweep("pops(2,2)", trials=0, metrics="full")
            assert s.cache.entry("pops(2,2)")._baselines == {}

    def test_mixed_metrics_grid_runs_full_cells(self):
        result = repro.experiment(
            "pops(2,2)",
            models=["coupler"],
            metrics=["connectivity", "full"],
            trials=3,
            messages=8,
        )
        by_mode = {c.metrics: c for c in result}
        assert by_mode["connectivity"].summary.messages == 0
        assert by_mode["full"].summary.messages == 8


# ----------------------------------------------------------------------
# CLI batch mode
# ----------------------------------------------------------------------
class TestBatchCli:
    def test_batch_runs_commands_on_one_session(self, tmp_path, capsys):
        from repro.__main__ import main

        script = tmp_path / "commands.txt"
        script.write_text(
            "# warm the cache, then query twice\n"
            'describe "pops(2,2)" --json\n'
            'repro describe "pops(2,2)" --json\n'
        )
        assert main(["batch", str(script), "--reuse-session"]) == 0
        out = capsys.readouterr().out.strip()
        decoder = json.JSONDecoder()
        payloads, pos = [], 0
        while pos < len(out):
            payload, end = decoder.raw_decode(out, pos)
            payloads.append(payload)
            pos = end + 1  # skip the newline between payloads
        assert len(payloads) == 2
        assert all(p["spec"] == "pops(2,2)" for p in payloads)

    def test_batch_stops_on_failure(self, tmp_path, capsys):
        from repro.__main__ import main

        script = tmp_path / "commands.txt"
        script.write_text(
            'describe "nope(1)" --json\ndescribe "pops(2,2)" --json\n'
        )
        assert main(["batch", str(script)]) == 2
        assert "stopped" in capsys.readouterr().err

    def test_batch_refuses_nesting(self, tmp_path, capsys):
        from repro.__main__ import main

        script = tmp_path / "commands.txt"
        script.write_text("batch other.txt\n")
        assert main(["batch", str(script)]) == 2
        assert "nest" in capsys.readouterr().err

    def test_batch_missing_file(self, capsys):
        from repro.__main__ import main

        assert main(["batch", "/nonexistent/commands.txt"]) == 2

    def test_batch_contains_argparse_exits(self, tmp_path, capsys):
        """An unknown flag in a line returns a code, never SystemExit."""
        from repro.__main__ import main

        script = tmp_path / "commands.txt"
        script.write_text('describe "pops(2,2)" --bogus-flag\n')
        assert main(["batch", str(script)]) == 2
        assert "stopped" in capsys.readouterr().err
