"""Unit tests for hot-potato (deflection) routing (ref [25])."""

import pytest

from repro.hypergraphs import DirectedHypergraph, Hyperarc
from repro.networks import StackKautzNetwork
from repro.simulation import (
    DeflectionSimulator,
    run_traffic,
    stack_kautz_deflection_simulator,
    stack_kautz_simulator,
    uniform_traffic,
)


def two_group_network():
    """Groups {0,1} and {2,3}; couplers both ways plus loops."""
    return DirectedHypergraph(
        4,
        [
            Hyperarc((0, 1), (2, 3)),  # 0: A -> B
            Hyperarc((2, 3), (0, 1)),  # 1: B -> A
            Hyperarc((0, 1), (0, 1)),  # 2: A loop
            Hyperarc((2, 3), (2, 3)),  # 3: B loop
        ],
    )


def preferred(holder, msg):
    same_side = (holder < 2) == (msg.dst < 2)
    if same_side:
        return 2 if holder < 2 else 3
    return 0 if holder < 2 else 1


def outs(holder):
    return [0, 2] if holder < 2 else [1, 3]


class TestDeflectionEngine:
    def test_uncontended_delivery(self):
        sim = DeflectionSimulator(two_group_network(), preferred, outs)
        sim.inject([(0, 2, 0)])
        sim.run()
        m = sim.messages[0]
        assert m.delivered and m.hops == 1 and m.latency == 0
        assert sim.deflections == 0

    def test_loser_deflects_instead_of_waiting(self):
        sim = DeflectionSimulator(two_group_network(), preferred, outs)
        # both processors of group A want coupler 0 in slot 0
        sim.inject([(0, 2, 0), (1, 3, 0)])
        sim.run()
        assert all(m.delivered for m in sim.messages)
        assert sim.deflections >= 1
        # the deflected message took extra hops
        assert max(m.hops for m in sim.messages) > 1

    def test_deflection_rate(self):
        sim = DeflectionSimulator(two_group_network(), preferred, outs)
        sim.inject([(0, 2, 0), (1, 3, 0)])
        sim.run()
        assert sim.deflection_rate() == sim.deflections / 2

    def test_self_message(self):
        sim = DeflectionSimulator(two_group_network(), preferred, outs)
        sim.inject([(2, 2, 0)])
        sim.run()
        assert sim.messages[0].hops == 0

    def test_inject_past_rejected(self):
        sim = DeflectionSimulator(two_group_network(), preferred, outs)
        sim.inject([(0, 2, 0)])
        sim.run()
        with pytest.raises(ValueError):
            sim.inject([(0, 2, 0)])

    def test_livelock_guard(self):
        net = two_group_network()
        sim = DeflectionSimulator(
            net, lambda h, m: 2 if h < 2 else 3, outs, max_hops=10
        )  # router that never leaves the group
        sim.inject([(0, 2, 0)])
        with pytest.raises(RuntimeError):
            sim.run(max_slots=50)


class TestStackKautzDeflection:
    @pytest.mark.parametrize("s,d,k", [(2, 2, 2), (4, 2, 3), (3, 3, 2)])
    def test_all_delivered(self, s, d, k):
        net = StackKautzNetwork(s, d, k)
        sim = stack_kautz_deflection_simulator(net)
        sim.inject(uniform_traffic(net.num_processors, 120, seed=3))
        sim.run()
        assert sim.all_delivered()

    def test_deflection_increases_hops_vs_store_forward(self):
        net = StackKautzNetwork(4, 2, 3)
        traffic = uniform_traffic(net.num_processors, 300, seed=5)

        defl = stack_kautz_deflection_simulator(net)
        defl.inject(traffic)
        defl.run()
        mean_defl_hops = sum(m.hops for m in defl.messages) / len(defl.messages)

        rep = run_traffic(stack_kautz_simulator(net), traffic)
        assert mean_defl_hops >= rep.mean_hops

    def test_uncontended_matches_shortest_path(self):
        net = StackKautzNetwork(3, 2, 2)
        for dst in range(0, net.num_processors, 4):
            sim = stack_kautz_deflection_simulator(net)
            sim.inject([(0, dst, 0)])
            sim.run()
            assert sim.messages[0].hops == net.hop_distance(0, dst)
            assert sim.deflections == 0
