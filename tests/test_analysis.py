"""Unit tests for Moore bounds and comparison tables."""

import pytest

from repro.analysis import (
    TopologyRow,
    best_known_nodes,
    debruijn_moore_ratio,
    equal_size_comparison,
    imase_itoh_efficiency,
    kautz_moore_ratio,
    moore_bound_digraph,
    pops_row,
    stack_kautz_row,
)
from repro.graphs import kautz_num_nodes


class TestMooreBounds:
    def test_values(self):
        assert moore_bound_digraph(2, 3) == 15
        assert moore_bound_digraph(3, 2) == 13
        assert moore_bound_digraph(1, 4) == 5

    def test_kautz_below_moore(self):
        for d in (2, 3, 4, 5):
            for k in (1, 2, 3, 4):
                assert kautz_num_nodes(d, k) <= moore_bound_digraph(d, k)

    def test_kautz_ratio_approaches_limit(self):
        # KG(d,1) = K_{d+1} attains the Moore bound (ratio 1); for
        # larger k the ratio decreases toward 1 - 1/d**2.
        assert kautz_moore_ratio(3, 1) == pytest.approx(1.0)
        assert kautz_moore_ratio(3, 4) < kautz_moore_ratio(3, 2)
        assert kautz_moore_ratio(3, 6) > 1 - 1 / 9

    def test_kautz_beats_debruijn(self):
        for d in (2, 3, 4):
            for k in (2, 3):
                assert kautz_moore_ratio(d, k) > debruijn_moore_ratio(d, k)

    def test_kautz_diameter1_attains_moore(self):
        # KG(d,1) = K_{d+1} attains 1 + d exactly
        assert kautz_num_nodes(4, 1) == moore_bound_digraph(4, 1)

    def test_best_known(self):
        assert best_known_nodes(3, 2) == 12

    def test_imase_itoh_efficiency_bounds(self):
        for d, n in [(2, 5), (3, 12), (4, 100)]:
            eff = imase_itoh_efficiency(d, n)
            assert 0 < eff <= 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            moore_bound_digraph(0, 2)
        with pytest.raises(ValueError):
            debruijn_moore_ratio(2, 0)


class TestComparison:
    def test_pops_row_facts(self):
        row = pops_row(4, 2)
        assert row.processors == 8
        assert row.diameter == 1
        assert row.transceivers_per_processor == 2
        assert row.couplers == 4
        assert row.coupler_degree == 4

    def test_stack_kautz_row_facts(self):
        row = stack_kautz_row(6, 3, 2)
        assert row.processors == 72
        assert row.diameter == 2
        assert row.transceivers_per_processor == 4
        assert row.couplers == 48
        assert row.coupler_degree == 6

    def test_formatted_and_header(self):
        row = pops_row(4, 2)
        assert "POPS(4,2)" in row.formatted()
        assert "topology" in TopologyRow.header()

    def test_equal_size_rows_match_target(self):
        rows = equal_size_comparison(24)
        assert rows, "expected at least one configuration"
        for row in rows:
            assert row.processors == 24

    def test_equal_size_contains_both_families(self):
        names = [r.name for r in equal_size_comparison(24)]
        assert any(n.startswith("POPS") for n in names)
        assert any(n.startswith("SK") for n in names)

    def test_margin_decreases_with_coupler_degree(self):
        # bigger splitting factor = less margin
        small = pops_row(4, 2)
        large = pops_row(64, 2)
        assert large.link_margin_db < small.link_margin_db
