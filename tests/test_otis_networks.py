"""Tests for OTIS-G swap networks (Zane et al. [24], paper Sec. 2.1)."""

import pytest

from repro.comm import hypercube_graph
from repro.graphs import DiGraph, complete_digraph, diameter, kautz_graph
from repro.networks import (
    otis_network,
    otis_network_size,
    swap_distance_bound,
    verify_swap_arcs_match_otis,
)


class TestConstruction:
    def test_size(self):
        factor = complete_digraph(3)
        net = otis_network(factor)
        assert net.num_nodes == otis_network_size(factor) == 9

    def test_arc_count(self):
        # n copies of the factor + n*(n-1) swap arcs
        factor = complete_digraph(3)
        net = otis_network(factor)
        assert net.num_arcs == 3 * factor.num_arcs + 3 * 2

    def test_labels_are_group_processor_pairs(self):
        net = otis_network(complete_digraph(2))
        assert net.label_of(0) == (0, 0)
        assert net.label_of(3) == (1, 1)

    def test_intra_group_arcs_copy_factor(self):
        factor = kautz_graph(2, 2)
        net = otis_network(factor)
        n = factor.num_nodes
        for g in range(n):
            for p, q in factor.arcs:
                assert net.has_arc(g * n + p, g * n + q)

    def test_swap_arcs(self):
        factor = complete_digraph(3)
        net = otis_network(factor)
        for g in range(3):
            for p in range(3):
                if g != p:
                    assert net.has_arc(g * 3 + p, p * 3 + g)
        # no self-swap arc
        assert not net.has_arc(0, 0)

    def test_degree(self):
        # degree of G + 1 optical port (except the diagonal, which has
        # no swap partner)
        factor = complete_digraph(3)
        net = otis_network(factor)
        for g in range(3):
            for p in range(3):
                expected = 2 + (0 if g == p else 1)
                assert net.out_degree(g * 3 + p) == expected

    def test_empty_factor_rejected(self):
        with pytest.raises(ValueError):
            otis_network(DiGraph(0, []))


class TestProperties:
    @pytest.mark.parametrize(
        "factor_builder",
        [
            lambda: complete_digraph(3),
            lambda: complete_digraph(4),
            lambda: kautz_graph(2, 2),
            lambda: hypercube_graph(2),
            lambda: hypercube_graph(3),
        ],
    )
    def test_diameter_within_swap_bound(self, factor_builder):
        factor = factor_builder()
        net = otis_network(factor)
        assert 0 < diameter(net) <= swap_distance_bound(factor)

    def test_bound_tight_for_hypercube(self):
        """OTIS-Q3: the 2*diam+1 bound of [24] is attained."""
        q3 = hypercube_graph(3)
        assert diameter(otis_network(q3)) == swap_distance_bound(q3) == 7

    def test_bound_requires_strong_connectivity(self):
        with pytest.raises(ValueError):
            swap_distance_bound(DiGraph(2, [(0, 1)]))

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_swap_arcs_are_the_otis_hardware(self, n):
        assert verify_swap_arcs_match_otis(complete_digraph(n))
