"""Vectorized sweep backend + candidate-level parallelism tests.

The PR 4 contract: the ``vectorized`` backend (shared-memory topology
arrays, batched numpy fault masks and reachability) must reproduce the
``batched`` backend's connectivity-mode aggregate JSON **byte for
byte** -- same SHA-256 trial-seed stream, same metrics -- for any
worker count, fault model and family; and the design search's
``parallelism="candidates"`` mode (one pool across all candidate
sweeps) must return a ranked table identical to per-sweep execution.
"""

import json

import pytest

from repro.__main__ import main
from repro.core import design_search
from repro.resilience import (
    SWEEP_BACKENDS,
    pooled_survivability_sweeps,
    survivability_sweep,
)
from repro.resilience.sweep import _TopologyArrays, _VECTOR_BATCH

CONN = dict(trials=24, seed=7, metrics="connectivity")


# ----------------------------------------------------------------------
# Vectorized backend: byte-identity vs batched
# ----------------------------------------------------------------------
class TestVectorizedMatchesBatched:
    @pytest.mark.parametrize(
        "spec", ["sk(2,2,2)", "sk(3,2,2)", "pops(2,3)", "sops(6)", "sii(2,2,6)"]
    )
    @pytest.mark.parametrize(
        "model,faults",
        [
            ("coupler", 1),
            ("processor", 2),
            ("link", 1),
            ("adversarial", 1),
            ("group", 1),
        ],
    )
    def test_every_family_and_model_byte_identical(self, spec, model, faults):
        batched = survivability_sweep(
            spec, model, faults=faults, backend="batched", **CONN
        )
        vectorized = survivability_sweep(
            spec, model, faults=faults, backend="vectorized", **CONN
        )
        assert vectorized.to_json() == batched.to_json()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_counts_byte_identical_to_batched(self, workers):
        """The satellite contract: 1/2/4 workers all agree with batched."""
        batched = survivability_sweep("sk(2,2,2)", "coupler", faults=1, **CONN)
        vectorized = survivability_sweep(
            "sk(2,2,2)",
            "coupler",
            faults=1,
            backend="vectorized",
            workers=workers,
            **CONN,
        )
        assert vectorized.to_json() == batched.to_json()

    def test_chunk_boundaries_do_not_change_rows(self, monkeypatch):
        """Sub-batching is invisible: a tiny batch size gives the same JSON."""
        import repro.resilience.sweep as sweep_mod

        baseline = survivability_sweep(
            "pops(2,3)", "coupler", faults=1, backend="vectorized", **CONN
        )
        assert _VECTOR_BATCH > 5  # the monkeypatch below must shrink it
        monkeypatch.setattr(sweep_mod, "_VECTOR_BATCH", 5)
        tiny = survivability_sweep(
            "pops(2,3)", "coupler", faults=1, backend="vectorized", **CONN
        )
        assert tiny.to_json() == baseline.to_json()

    def test_vectorized_rejects_full_but_accepts_paths(self):
        with pytest.raises(ValueError, match="vectorized backend"):
            survivability_sweep(
                "pops(2,2)", trials=2, backend="vectorized", metrics="full"
            )
        summary = survivability_sweep(
            "pops(2,2)", trials=2, backend="vectorized", metrics="paths"
        )
        assert "mean_stretch" in summary.quantiles

    def test_backend_registry_names_all_three(self):
        assert SWEEP_BACKENDS == ("batched", "vectorized", "legacy")

    def test_cli_backend_flag_reaches_the_vectorized_path(self, capsys):
        argv = [
            "resilience",
            "sk(2,2,2)",
            "--trials",
            "6",
            "--metrics",
            "connectivity",
            "--json",
        ]
        assert main([*argv, "--backend", "vectorized"]) == 0
        fast = capsys.readouterr().out
        assert main([*argv, "--backend", "batched"]) == 0
        assert fast == capsys.readouterr().out
        assert json.loads(fast)["trials"] == 6


class TestTopologyArrays:
    def test_export_matches_network_surface(self):
        import repro
        from repro.resilience.faults import coupler_endpoints

        net = repro.build("sk(2,2,2)")
        arrays = _TopologyArrays.from_network(net)
        assert arrays.num_processors == net.num_processors
        assert arrays.num_groups == net.num_groups
        assert arrays.num_couplers == net.num_couplers
        assert arrays.endpoints.tolist() == [
            list(pair) for pair in coupler_endpoints(net)
        ]
        assert arrays.proc_group.tolist() == [
            int(net.label_of(p)[0]) for p in range(net.num_processors)
        ]
        # CSR incidence covers every hyperarc endpoint exactly
        model = net.hypergraph_model()
        assert arrays.src_indptr[-1] == sum(
            len(ha.sources) for ha in model.hyperarcs
        )
        assert arrays.tgt_indptr[-1] == sum(
            len(ha.targets) for ha in model.hyperarcs
        )

    def test_proxy_draws_the_same_scenarios(self):
        """The worker-side proxy replays scenario() draws exactly."""
        import random

        import repro
        from repro.resilience.faults import make_fault_model, trial_seed
        from repro.resilience.sweep import _ArrayNetworkProxy

        net = repro.build("pops(2,3)")
        proxy = _ArrayNetworkProxy(_TopologyArrays.from_network(net))
        for key in ("coupler", "processor", "link", "adversarial", "group"):
            model = make_fault_model(key, 1)
            for index in range(5):
                seed = trial_seed(3, index)
                scenario = model.scenario("pops(2,3)", net, seed)
                couplers, processors = model.sample_faults(
                    proxy, random.Random(seed)
                )
                assert frozenset(couplers) == scenario.couplers, key
                assert frozenset(processors) == scenario.processors, key


# ----------------------------------------------------------------------
# Pooled sweeps + design-search candidate parallelism
# ----------------------------------------------------------------------
class TestPooledSweeps:
    REQUESTS = [
        dict(spec="sk(2,2,2)", model="coupler", faults=1, **CONN),
        dict(
            spec="pops(2,3)",
            model="link",
            faults=1,
            backend="vectorized",
            **CONN,
        ),
        dict(spec="pops(2,2)", model="coupler", faults=1, trials=8, seed=7,
             messages=8),
    ]

    def _solo(self):
        out = []
        for request in self.REQUESTS:
            request = dict(request)
            out.append(
                survivability_sweep(
                    request.pop("spec"), request.pop("model"), **request
                )
            )
        return out

    @pytest.mark.parametrize("workers", [None, 2, 4])
    def test_matches_per_sweep_execution(self, workers):
        pooled = pooled_survivability_sweeps(self.REQUESTS, workers=workers)
        for mine, solo in zip(pooled, self._solo()):
            assert mine.to_json() == solo.to_json()

    def test_order_is_request_order(self):
        pooled = pooled_survivability_sweeps(self.REQUESTS, workers=2)
        assert [s.spec for s in pooled] == ["sk(2,2,2)", "pops(2,3)", "pops(2,2)"]

    def test_legacy_backend_has_no_pooled_form(self):
        with pytest.raises(ValueError, match="legacy"):
            pooled_survivability_sweeps(
                [dict(spec="pops(2,2)", trials=2, backend="legacy")]
            )


SEARCH_KW = dict(
    max_processors=12, families=("pops", "sk", "sops"), trials=8, seed=11
)


class TestCandidateParallelism:
    def test_candidates_mode_identical_to_per_sweep_mode(self):
        """The satellite contract: the ranked table does not move."""
        per_sweep = design_search(**SEARCH_KW)
        pooled = design_search(
            parallelism="candidates", workers=2, **SEARCH_KW
        )
        assert pooled.to_json() == per_sweep.to_json()

    def test_candidates_mode_inline_identical_too(self):
        per_sweep = design_search(**SEARCH_KW)
        inline = design_search(parallelism="candidates", **SEARCH_KW)
        assert inline.to_json() == per_sweep.to_json()

    def test_vectorized_backend_identical_ranked_table(self):
        batched = design_search(**SEARCH_KW)
        vectorized = design_search(backend="vectorized", **SEARCH_KW)
        assert vectorized.to_json() == batched.to_json()

    def test_candidates_plus_vectorized_identical(self):
        baseline = design_search(**SEARCH_KW)
        combined = design_search(
            parallelism="candidates",
            backend="vectorized",
            workers=2,
            **SEARCH_KW,
        )
        assert combined.to_json() == baseline.to_json()

    def test_unknown_parallelism_and_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown parallelism"):
            design_search(max_processors=4, trials=2, parallelism="threads")
        with pytest.raises(ValueError, match="unknown sweep backend"):
            design_search(max_processors=4, trials=2, backend="quantum")

    def test_cli_parallelism_flag_is_result_invariant(self, capsys):
        argv = [
            "design-search",
            "--max-processors",
            "8",
            "--families",
            "pops",
            "--trials",
            "4",
            "--json",
        ]
        assert main(argv) == 0
        baseline = capsys.readouterr().out
        assert (
            main([*argv, "--parallelism", "candidates", "--workers", "2"]) == 0
        )
        assert capsys.readouterr().out == baseline
        assert main([*argv, "--backend", "vectorized"]) == 0
        assert capsys.readouterr().out == baseline
