"""Integration tests: designs, routing and simulation working together.

These tests cross module boundaries on purpose -- each one executes a
pipeline a user of the library would run, end to end.
"""

import pytest

from repro.comm import pops_broadcast, stack_kautz_broadcast
from repro.graphs import diameter, kautz_graph
from repro.networks import (
    POPSDesign,
    POPSNetwork,
    StackKautzDesign,
    StackKautzNetwork,
    otis_for_kautz,
)
from repro.routing import stack_kautz_route
from repro.simulation import (
    pops_simulator,
    run_traffic,
    stack_kautz_simulator,
    uniform_traffic,
)


class TestDesignRealizesNetwork:
    """The optical design's light paths == the network's stack-graph."""

    @pytest.mark.parametrize("s,d,k", [(2, 2, 2), (6, 3, 2), (3, 2, 3)])
    def test_stack_kautz_design_vs_network_model(self, s, d, k):
        net = StackKautzNetwork(s, d, k)
        design = StackKautzDesign(s, d, k)
        model = net.stack_graph_model()
        realized = sorted(design.realized_hyperarcs())
        want = sorted((ha.sources, ha.targets) for ha in model.hyperarcs)
        assert realized == want

    @pytest.mark.parametrize("t,g", [(4, 2), (2, 3), (3, 3)])
    def test_pops_design_vs_network_model(self, t, g):
        net = POPSNetwork(t, g)
        design = POPSDesign(t, g)
        model = net.stack_graph_model()
        realized = sorted(design.realized_hyperarcs())
        want = sorted((ha.sources, ha.targets) for ha in model.hyperarcs)
        assert realized == want


class TestRoutesExecuteOnDesign:
    """Routes computed by the routing layer drive actual design ports."""

    def test_every_route_traces_through_hardware(self):
        net = StackKautzNetwork(3, 2, 2)
        design = StackKautzDesign(3, 2, 2)
        for src in range(net.num_processors):
            for dst in range(net.num_processors):
                route = stack_kautz_route(net, src, dst)
                holder_group, holder_idx = net.label_of(src)
                for hop in route.hops:
                    path = design.trace(holder_group, holder_idx, hop.tx_port)
                    assert path.coupler == (hop.src_group, hop.mux)
                    assert path.dst_group == hop.dst_group
                    # every processor of the target group hears it
                    assert len(path.receivers) == net.stacking_factor
                    holder_group = path.dst_group
                    holder_idx = net.label_of(dst)[1] if holder_group == net.label_of(dst)[0] else 0
                assert holder_group == net.label_of(dst)[0]


class TestSimulatorAgreesWithTheory:
    def test_pops_single_message_latency_zero(self):
        net = POPSNetwork(4, 4)
        sim = pops_simulator(net)
        rep = run_traffic(sim, [(0, 15, 0)])
        assert rep.max_latency == 0
        assert rep.max_hops == 1

    def test_sk_single_message_hops_equal_distance(self):
        net = StackKautzNetwork(4, 2, 3)
        for dst in range(0, net.num_processors, 5):
            sim = stack_kautz_simulator(net)
            rep = run_traffic(sim, [(0, dst, 0)])
            hops = net.hop_distance(0, dst)
            assert rep.max_hops == hops
            # uncontended: first hop fires at the injection slot
            assert rep.max_latency == max(hops - 1, 0)

    def test_sk_uncontended_latency_is_hops_minus_one(self):
        """A lone message delivered at slot inject+hops-1 (first hop at
        its injection slot)."""
        net = StackKautzNetwork(2, 2, 2)
        for dst in range(1, net.num_processors):
            sim = stack_kautz_simulator(net)
            run_traffic(sim, [(0, dst, 0)])
            m = sim.messages[0]
            assert m.latency == m.hops - 1

    def test_broadcast_schedule_beats_unicast_simulation(self):
        """One-to-many couplers make collective broadcast much cheaper
        than N unicasts."""
        net = StackKautzNetwork(4, 2, 2)
        sched = stack_kautz_broadcast(net, 0)
        sim = stack_kautz_simulator(net)
        from repro.simulation import broadcast_traffic

        rep = run_traffic(sim, broadcast_traffic(net.num_processors, src=0))
        assert sched.num_slots < rep.slots

    def test_pops_broadcast_one_slot_vs_simulation(self):
        net = POPSNetwork(8, 2)
        sched = pops_broadcast(net, 0)
        sim = pops_simulator(net)
        from repro.simulation import broadcast_traffic

        rep = run_traffic(sim, broadcast_traffic(net.num_processors, src=0))
        assert sched.num_slots == 1
        assert rep.slots >= net.group_size  # unicast serializes per coupler


class TestCorollary1EndToEnd:
    """OTIS(d, n) wiring == Kautz graph == network group topology."""

    @pytest.mark.parametrize("d,k", [(2, 2), (3, 2), (2, 3)])
    def test_chain(self, d, k):
        r = otis_for_kautz(d, k)
        realized = r.realized_graph()
        net = StackKautzNetwork(1, d, k)
        base_no_loops = net.base_graph().without_loops()
        assert realized == base_no_loops
        assert diameter(realized) == diameter(kautz_graph(d, k)) == k


class TestScaleSanity:
    def test_medium_design_verifies(self):
        # SK(4, 3, 3): 36 groups, 144 processors -- beyond figure scale
        design = StackKautzDesign(4, 3, 3)
        assert design.verify()
        bom = design.bill_of_materials()
        assert bom.otis_units[(3, 36)] == 1
        assert bom.couplers == 144

    def test_medium_simulation(self):
        net = StackKautzNetwork(4, 3, 2)  # 48 processors
        rep = run_traffic(
            stack_kautz_simulator(net),
            uniform_traffic(net.num_processors, 400, seed=9),
        )
        assert rep.num_messages == 400
        assert rep.max_hops <= net.diameter
