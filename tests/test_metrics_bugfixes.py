"""Survivability-metrics bugfix pins (PR 8 satellites).

Three regressions, each pinned so it cannot quietly return:

1. ``resolve_workload`` materializes callable/registered workloads --
   a one-shot generator must not be drained by the degraded run and
   leave the intact baseline with empty traffic.
2. ``_sample_masks`` only translates exceptions that originate from
   the array proxy's *missing* surface; a bug inside a fault model's
   own ``sample_faults`` propagates untouched.
3. ``path_survival`` leaves routed pairs whose intact distance is
   undefined (BFS ``-1``) out of the ``mean_stretch`` average instead
   of counting them as stretch 1.0.
"""

import random

import pytest

import repro
from repro.core.workloads import resolve_workload
from repro.resilience.degrade import DegradedNetwork
from repro.resilience.faults import FaultModel, FaultScenario
from repro.resilience.metrics import measure, path_survival
from repro.resilience.sweep import (
    _ArrayNetworkProxy,
    _SweepPlan,
    _TopologyArrays,
    _VectorContext,
)


# ----------------------------------------------------------------------
# 1. Workload materialization
# ----------------------------------------------------------------------
def _triples(net, *, messages, seed, **_):
    rng = random.Random(seed)
    n = net.num_processors
    return [
        (rng.randrange(n), rng.randrange(n), t) for t in range(messages)
    ]


def _generator_workload(net, *, messages, seed, **_):
    return iter(_triples(net, messages=messages, seed=seed))


class TestWorkloadMaterialization:
    def test_callable_generator_result_is_materialized(self):
        net = repro.build("pops(2,2)")
        traffic = resolve_workload(
            _generator_workload, net, messages=12, seed=4
        )
        assert isinstance(traffic, list)
        assert traffic == _triples(net, messages=12, seed=4)
        # iterating twice sees the same triples -- the old bug left a
        # one-shot iterator here
        assert list(traffic) == list(traffic)

    def test_measure_baseline_survives_generator_workloads(self):
        """Degraded run must not drain the baseline's traffic."""
        net = repro.build("pops(2,2)")
        scenario = FaultScenario("pops(2,2)", "coupler", seed=0)
        from_list = measure(
            DegradedNetwork(net, scenario),
            workload=_triples(net, messages=12, seed=4),
            messages=12,
            seed=4,
        )
        from_generator = measure(
            DegradedNetwork(net, scenario),
            workload=_generator_workload,
            messages=12,
            seed=4,
        )
        assert from_generator.as_dict() == from_list.as_dict()
        assert from_generator.latency_inflation > 0.0

    def test_non_iterable_workload_result_is_named(self):
        net = repro.build("pops(2,2)")
        with pytest.raises(TypeError, match="workload returned int"):
            resolve_workload(
                lambda *a, **k: 7, net, messages=4, seed=0
            )


# ----------------------------------------------------------------------
# 2. Proxy-surface exception translation
# ----------------------------------------------------------------------
class _NeedsMissingSurface(FaultModel):
    """Touches network surface the array proxy does not carry."""

    key = "needs-missing-surface"

    def sample_faults(self, net, rng):
        net.routing_table()  # not part of the proxy's surface
        return set(), set()


class _BuggyAttrModel(FaultModel):
    """AttributeError on a non-proxy object: a genuine model bug."""

    key = "buggy-attr"

    def sample_faults(self, net, rng):
        return {}.no_such_method()


class _BuggyIndexModel(FaultModel):
    """IndexError raised by the model's own code."""

    key = "buggy-index"

    def sample_faults(self, net, rng):
        return ([0][5], set())


class _OutOfRangeLookupModel(FaultModel):
    """IndexError raised *inside* the proxy's ``label_of``."""

    key = "out-of-range-lookup"

    def sample_faults(self, net, rng):
        net.label_of(net.num_processors + 10**6)
        return set(), set()


def _context(model: FaultModel) -> _VectorContext:
    net = repro.build("pops(2,3)")
    plan = _SweepPlan(
        canonical="pops(2,3)",
        model=model,
        seed=0,
        workload="uniform",
        messages=8,
        bound=net.diameter + 2,
        max_slots=1000,
        baseline_mean_latency=None,
        metrics="connectivity",
        backend="vectorized",
    )
    return _VectorContext(plan, _TopologyArrays.from_network(net))


class TestProxySurfaceTranslation:
    def test_missing_surface_is_translated_and_named(self):
        ctx = _context(_NeedsMissingSurface(1))
        with pytest.raises(ValueError, match="backend='batched'") as info:
            ctx._sample_masks(0, 1)
        assert "_NeedsMissingSurface" in str(info.value)

    def test_proxy_internal_index_error_is_translated(self):
        ctx = _context(_OutOfRangeLookupModel(1))
        with pytest.raises(ValueError, match="array proxy"):
            ctx._sample_masks(0, 1)

    def test_model_bug_attribute_error_propagates(self):
        ctx = _context(_BuggyAttrModel(1))
        with pytest.raises(AttributeError, match="no_such_method"):
            ctx._sample_masks(0, 1)

    def test_model_bug_index_error_propagates(self):
        ctx = _context(_BuggyIndexModel(1))
        with pytest.raises(IndexError):
            ctx._sample_masks(0, 1)

    def test_registered_models_sample_without_translation(self):
        from repro.resilience.faults import make_fault_model

        ctx = _context(make_fault_model("adversarial", 1))
        dead_proc, direct = ctx._sample_masks(0, 4)
        assert dead_proc.shape[0] == 4 and direct.shape[0] == 4
        assert direct.any()

    def test_proxy_surface_matches_real_network(self):
        net = repro.build("pops(2,3)")
        proxy = _ArrayNetworkProxy(_TopologyArrays.from_network(net))
        assert proxy.num_processors == net.num_processors
        assert proxy.label_of(3)[0] == int(net.label_of(3)[0])


# ----------------------------------------------------------------------
# 3. Undefined intact distance stays out of the stretch mean
# ----------------------------------------------------------------------
class _StubIntact:
    def __init__(self, dist):
        self._dist = dist

    def without_loops(self):
        return self

    def bfs_distances(self, group):
        return self._dist[group]


class _StubNet:
    diameter = 2
    num_groups = 3

    def __init__(self, dist):
        self._intact = _StubIntact(dist)

    def base_graph(self):
        return self._intact


class _StubDegraded:
    dead_groups = frozenset()

    def __init__(self, net, routes):
        self.net = net
        self._routes = routes

    def fault_route(self, src, dst):
        return self._routes.get((src, dst))


class TestUndefinedBaselineStretch:
    def test_unreachable_intact_pairs_excluded_from_stretch(self):
        # group 2 is intact-unreachable from 0 and 1 (and vice versa),
        # but the routing hook still finds degraded paths to it
        dist = {
            0: [0, 1, -1],
            1: [1, 0, -1],
            2: [-1, -1, 0],
        }
        routes = {
            (0, 1): [0, 9, 1],  # length 2, d0=1 -> stretch 2.0
            (1, 0): [1, 9, 0],  # length 2, d0=1 -> stretch 2.0
            (0, 2): [0, 8, 9, 2],  # length 3, d0=-1 -> no stretch term
        }
        degraded = _StubDegraded(_StubNet(dist), routes)
        reachable, max_len, stretch, within = path_survival(degraded)
        assert reachable == 3 / 6
        assert max_len == 3
        assert within == 1.0  # bound = diameter + 2 = 4 covers length 3
        # the old bug counted (0, 2) as stretch 1.0 -> mean 5/3
        assert stretch == 2.0

    def test_all_baselines_undefined_defaults_to_one(self):
        dist = {g: [-1, -1, -1] for g in range(3)}
        routes = {(0, 1): [0, 1], (1, 2): [1, 9, 2]}
        degraded = _StubDegraded(_StubNet(dist), routes)
        _, _, stretch, within = path_survival(degraded)
        assert stretch == 1.0
        assert within == 1.0

    def test_real_networks_unaffected(self):
        """On real machines degraded routes imply intact reachability."""
        net = repro.build("pops(2,3)")
        scenario = FaultScenario(
            "pops(2,3)", "coupler", seed=0, couplers=frozenset({0})
        )
        reachable, _, stretch, _ = path_survival(
            DegradedNetwork(net, scenario)
        )
        assert reachable > 0.0
        assert stretch >= 1.0
