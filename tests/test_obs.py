"""The observability layer: metrics, tracing, logs, and its invariants.

The load-bearing guarantees pinned here:

* the registry's merge is commutative (worker deltas join in any
  order), histogram quantiles are deterministic, and the Prometheus
  exposition follows the text format 0.0.4 (cumulative ``_bucket``
  lines with ``+Inf`` last, ``_sum``/``_count``, escaped labels);
* tracing is a strict side channel -- sweep, design-search and
  experiment results are byte-identical with tracing on or off, at
  any worker or shard count;
* worker subprocesses ship their metrics home: parent-side totals
  count every trial regardless of how the chunks were distributed.
"""

import io
import json

import pytest

from repro.core.session import Session
from repro.obs.logging import AccessLogger, new_request_id
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.process import process_info
from repro.obs.trace import (
    Tracer,
    add_complete_event,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_observability():
    """Each test starts with no tracer and an empty global registry."""
    disable_tracing()
    REGISTRY.reset()
    yield
    disable_tracing()
    REGISTRY.reset()


# ----------------------------------------------------------------------
# MetricsRegistry: instruments, snapshots, merge semantics.
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        r = MetricsRegistry()
        r.counter("jobs_total", "jobs").inc()
        r.counter("jobs_total").inc(2)
        assert r.counter("jobs_total").value == 3
        with pytest.raises(ValueError, match="only go up"):
            r.counter("jobs_total").inc(-1)

    def test_gauge_set_and_merge_max(self):
        r = MetricsRegistry()
        g = r.gauge("depth", "queue depth")
        g.set(4)
        g.merge_max(2)
        assert g.value == 4
        g.merge_max(9)
        assert g.value == 9

    def test_labels_distinguish_series(self):
        r = MetricsRegistry()
        r.counter("ops", "", {"outcome": "hit"}).inc(5)
        r.counter("ops", "", {"outcome": "miss"}).inc(1)
        series = r.series("ops")
        assert series[(("outcome", "hit"),)].value == 5
        assert series[(("outcome", "miss"),)].value == 1

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x", "a counter").inc()
        with pytest.raises(ValueError, match="is a counter"):
            r.gauge("x")

    def test_merge_is_commutative(self):
        def build(n):
            r = MetricsRegistry()
            r.counter("c", "h").inc(n)
            r.gauge("g", "h").set(n)
            r.histogram("h", "h").observe(n / 4)  # exact binary floats
            return r.snapshot()

        snaps = [build(n) for n in (1, 2, 3)]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in snaps:
            forward.merge(snap)
        for snap in reversed(snaps):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()
        assert forward.counter("c").value == 6
        assert forward.gauge("g").value == 3  # gauges merge by max
        assert forward.histogram("h").summary()["count"] == 3

    def test_drain_resets(self):
        r = MetricsRegistry()
        r.counter("c", "h").inc(7)
        snap = r.drain()
        assert snap["c"]["series"][0][1] == 7
        assert r.snapshot() == {}

    def test_snapshot_roundtrip_is_json_safe(self):
        r = MetricsRegistry()
        r.counter("c", "h", {"k": "v"}).inc(2)
        r.histogram("h", "h").observe(0.3)
        snap = json.loads(json.dumps(r.snapshot()))
        other = MetricsRegistry()
        other.merge(snap)
        assert other.snapshot() == r.snapshot()


class TestHistogram:
    def test_bucket_edges_are_inclusive(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1.0)  # lands in the first bucket (le="1")
        counts, _, _ = h.state()
        assert counts == [1, 0, 0]

    def test_quantiles_are_order_independent(self):
        values = [0.004, 0.09, 0.004, 2.0, 0.03]
        a, b = Histogram(), Histogram()
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        assert a.summary() == b.summary()
        assert a.summary()["count"] == 5

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram(buckets=(1.0, 2.0))
        for _ in range(4):
            h.observe(1.5)  # all in (1.0, 2.0]
        # rank q*4 sits inside the second bucket; linear interpolation
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_inf_bucket_reports_last_finite_bound(self):
        h = Histogram(buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == pytest.approx(1.0)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram(buckets=(2.0, 1.0))

    def test_merge_rejects_mismatched_buckets(self):
        h = Histogram(buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="merge"):
            h.merge_counts([1, 0], 0.5, 1)


# ----------------------------------------------------------------------
# Prometheus text exposition: the golden schema.
# ----------------------------------------------------------------------
class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        r = MetricsRegistry()
        r.counter("jobs_total", "jobs run", {"kind": "fast"}).inc(3)
        r.gauge("depth", "queue depth").set(2.5)
        text = r.render_prometheus()
        assert "# HELP jobs_total jobs run\n" in text
        assert "# TYPE jobs_total counter\n" in text
        assert 'jobs_total{kind="fast"} 3\n' in text
        assert "# TYPE depth gauge\n" in text
        assert "depth 2.5\n" in text

    def test_histogram_expands_cumulative_with_inf_last(self):
        r = MetricsRegistry()
        h = r.histogram("lat", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        lines = r.render_prometheus().splitlines()
        buckets = [ln for ln in lines if ln.startswith("lat_bucket")]
        assert buckets == [
            'lat_bucket{le="0.1"} 1',
            'lat_bucket{le="1"} 2',
            'lat_bucket{le="+Inf"} 3',
        ]
        assert "lat_sum 5.55" in lines
        assert "lat_count 3" in lines

    def test_label_values_are_escaped(self):
        r = MetricsRegistry()
        r.counter("c", "h", {"spec": 'a"b\\c\nd'}).inc()
        text = r.render_prometheus()
        assert 'c{spec="a\\"b\\\\c\\nd"} 1' in text

    def test_every_sample_line_parses(self):
        r = MetricsRegistry()
        r.counter("a_total", "h", {"x": "1"}).inc(2)
        r.histogram("b_seconds", "h").observe(0.2)
        r.gauge("c", "h").set(7)
        for line in r.render_prometheus().splitlines():
            if line.startswith("#") or not line:
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # parses as a number
            assert name_part[0].isalpha()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


# ----------------------------------------------------------------------
# Tracing: spans, exports, the disabled fast path.
# ----------------------------------------------------------------------
class TestTracing:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing_enabled()
        assert span("anything") is span("something-else")

    def test_span_records_complete_event(self):
        tracer = enable_tracing()
        with span("phase.one", detail="x"):
            pass
        add_complete_event("shipped", 100, 50, args={"n": 1}, pid=7, tid=0)
        events = disable_tracing().events()
        assert [e["name"] for e in events] == ["shipped", "phase.one"]
        shipped = events[0]
        assert (shipped["ts"], shipped["dur"]) == (100, 50)
        assert (shipped["pid"], shipped["tid"]) == (7, 0)
        assert all(e["ph"] == "X" for e in events)
        assert tracer is not None

    def test_chrome_export_schema(self, tmp_path):
        tracer = Tracer()
        tracer.add_complete("a", 10, 5, args={"k": "v"})
        path = tmp_path / "trace.json"
        tracer.export_chrome(str(path))
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        (event,) = payload["traceEvents"]
        assert set(event) == {"name", "ph", "ts", "dur", "pid", "tid", "args"}

    def test_ndjson_export(self, tmp_path):
        tracer = Tracer()
        tracer.add_complete("b", 20, 1)
        tracer.add_complete("a", 10, 1)
        path = tmp_path / "trace.ndjson"
        tracer.export_ndjson(str(path))
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert [e["name"] for e in lines] == ["a", "b"]  # start-time order

    def test_negative_duration_clamped(self):
        tracer = Tracer()
        tracer.add_complete("x", 10, -5)
        assert tracer.events()[0]["dur"] == 0


# ----------------------------------------------------------------------
# Access logs and process facts.
# ----------------------------------------------------------------------
class TestLoggingAndProcess:
    def test_request_ids_are_unique_hex(self):
        ids = {new_request_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)

    def test_access_logger_emits_sorted_json_lines(self):
        sink = io.StringIO()
        logger = AccessLogger(sink)
        logger.log(status=200, method="GET", target="/healthz")
        line = sink.getvalue()
        assert line.endswith("\n")
        assert json.loads(line) == {
            "method": "GET", "status": 200, "target": "/healthz",
        }
        assert line.index('"method"') < line.index('"status"')

    def test_access_logger_appends_to_path(self, tmp_path):
        path = tmp_path / "access.log"
        logger = AccessLogger(str(path))
        logger.log(a=1)
        logger.close()
        logger = AccessLogger(str(path))
        logger.log(a=2)
        logger.close()
        lines = path.read_text().splitlines()
        assert [json.loads(ln)["a"] for ln in lines] == [1, 2]

    def test_process_info_keys(self):
        info = process_info()
        assert info["uptime_seconds"] >= 0
        assert info["rss_bytes"] >= 0
        assert isinstance(info["version"], str) and info["version"]


# ----------------------------------------------------------------------
# The hard constraint: instrumentation is a timing side channel only.
# ----------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize("workers", [0, 1, 2, 4])
    def test_sweep_identical_with_tracing_on_and_off(self, workers):
        def run():
            with Session(workers=workers) as session:
                return session.resilience_sweep(
                    "sk(2,2,2)", trials=32, seed=3, backend="batched"
                ).to_json()

        plain = run()
        enable_tracing()
        try:
            traced = run()
        finally:
            tracer = disable_tracing()
        assert traced == plain
        assert len(tracer) > 0  # spans actually recorded

    def test_vectorized_sweep_identical_under_tracing(self):
        def run():
            with Session(workers=2) as session:
                return session.resilience_sweep(
                    "pops(4,2)",
                    trials=64,
                    seed=1,
                    metrics="connectivity",
                    backend="vectorized",
                ).to_json()

        plain = run()
        enable_tracing()
        try:
            traced = run()
        finally:
            disable_tracing()
        assert traced == plain

    def test_experiment_identical_across_shards_and_tracing(self):
        from repro.core.experiment import Experiment
        from repro.serve.shard import run_sharded_experiment, sharded_to_json

        exp = Experiment(specs=("pops(2,2)", "sk(2,2,2)"), trials=8)
        single = exp.run(workers=0).to_json()
        enable_tracing()
        try:
            sharded = sharded_to_json(run_sharded_experiment(exp, shards=2))
        finally:
            disable_tracing()
        assert sharded == single

    def test_worker_metrics_account_for_every_trial(self):
        REGISTRY.reset()
        with Session(workers=2) as session:
            session.resilience_sweep(
                "sk(2,2,2)", trials=48, seed=0, backend="batched"
            )
        series = REGISTRY.series("repro_sweep_trials_total")
        total = sum(counter.value for counter in series.values())
        assert total == 48
        chunk_series = REGISTRY.series("repro_sweep_chunk_run_seconds")
        chunk_count = sum(
            histogram.summary()["count"]
            for histogram in chunk_series.values()
        )
        assert chunk_count >= 2  # really split across workers

    def test_inline_sweep_records_parent_side(self):
        REGISTRY.reset()
        with Session(workers=0) as session:
            session.resilience_sweep("sk(2,2,2)", trials=16, seed=0)
        series = REGISTRY.series("repro_sweep_trials_total")
        assert sum(c.value for c in series.values()) == 16

    def test_cache_ops_counted(self):
        REGISTRY.reset()
        with Session(workers=0) as session:
            session.describe("pops(2,2)")
            session.describe("pops(2,2)")
        series = REGISTRY.series("repro_cache_ops_total")
        by_outcome = {
            dict(labels)["outcome"]: counter.value
            for labels, counter in series.items()
        }
        assert by_outcome["miss"] >= 1
        assert by_outcome["hit"] >= 1

    def test_default_buckets_cover_sweep_scales(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 100
