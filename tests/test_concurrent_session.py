"""Concurrent Session use: the serving tier's thread-safety contract.

The HTTP front runs every request on a thread pool against ONE shared
:class:`~repro.core.session.Session`, so the session's cache get-or-
build, executor creation and stats snapshots must hold under
concurrency: one build per spec no matter how many threads race,
identical sweep results from any thread, never a torn stats dict.

Also the shutdown contract: closing a session (or dying to SIGINT with
the atexit hook) must take its worker pools down without
BrokenProcessPool noise or resource-tracker warnings.
"""

import json
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.session import Session


BARRIER_THREADS = 8


class TestThreadSafeCache:
    def test_racing_builds_produce_one_entry(self):
        """N threads build the same cold spec; exactly one miss, one object."""
        with Session(workers=0) as session:
            barrier = threading.Barrier(BARRIER_THREADS)
            entries = []

            def build():
                barrier.wait()
                entries.append(session.cache.entry("sk(2,2,2)"))

            threads = [
                threading.Thread(target=build)
                for _ in range(BARRIER_THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(entries) == BARRIER_THREADS
            assert all(e is entries[0] for e in entries)
            stats = session.cache_stats()
            assert stats["misses"] == 1
            assert stats["hits"] == BARRIER_THREADS - 1

    def test_racing_distinct_specs_each_build_once(self):
        specs = ["pops(2,2)", "sk(2,2,2)", "sops(4)", "pops(2,3)"]
        with Session(workers=0) as session:
            barrier = threading.Barrier(len(specs) * 2)

            def build(spec):
                barrier.wait()
                session.describe(spec)

            threads = [
                threading.Thread(target=build, args=(spec,))
                for spec in specs for _ in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = session.cache_stats()
            assert stats["misses"] == len(specs)
            assert stats["size"] == len(specs)

    def test_concurrent_sweeps_identical_results(self):
        """The same sweep from many threads equals the single-thread run."""
        with Session(workers=0) as session:
            expected = session.resilience_sweep(
                "sk(2,2,2)", trials=20, seed=7, metrics="connectivity"
            ).as_dict()
            results = []
            barrier = threading.Barrier(BARRIER_THREADS)

            def sweep():
                barrier.wait()
                results.append(
                    session.resilience_sweep(
                        "sk(2,2,2)", trials=20, seed=7,
                        metrics="connectivity",
                    ).as_dict()
                )

            threads = [
                threading.Thread(target=sweep)
                for _ in range(BARRIER_THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r == expected for r in results)

    def test_stats_snapshot_never_torn(self):
        """cache_stats() readers racing builders always see a full dict."""
        with Session(workers=0) as session:
            stop = threading.Event()
            seen = []
            errors = []

            def reader():
                while not stop.is_set():
                    try:
                        stats = session.cache_stats()
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return
                    seen.append(set(stats))

            readers = [threading.Thread(target=reader) for _ in range(2)]
            for t in readers:
                t.start()
            for spec in ["pops(2,2)", "sk(2,2,2)", "sops(4)", "pops(3,2)"]:
                session.describe(spec)
            stop.set()
            for t in readers:
                t.join()
            assert not errors
            expected_keys = set(session.cache_stats())
            assert all(keys == expected_keys for keys in seen)


class TestCandidateMemo:
    def test_design_search_enumeration_memoized(self):
        with Session(workers=0) as session:
            kwargs = dict(
                max_processors=8, families=("pops", "sops"), trials=2
            )
            first = session.design_search(**kwargs)
            stats = session.cache_stats()
            assert stats["candidate_misses"] == 1
            assert stats["candidate_hits"] == 0
            second = session.design_search(**kwargs)
            stats = session.cache_stats()
            assert stats["candidate_misses"] == 1
            assert stats["candidate_hits"] == 1
            assert first.to_json() == second.to_json()

    def test_memoized_search_matches_module_level(self):
        from repro import design_search

        cold = design_search(
            max_processors=8, families=("pops", "sops"), trials=2, workers=0
        )
        with Session(workers=0) as session:
            for _ in range(2):  # second run hits the memo
                warm = session.design_search(
                    max_processors=8, families=("pops", "sops"), trials=2
                )
                assert warm.to_json() == cold.to_json()

    def test_distinct_windows_memoized_separately(self):
        with Session(workers=0) as session:
            session.design_search(max_processors=8, families=("pops",),
                                  trials=2)
            session.design_search(max_processors=6, families=("pops",),
                                  trials=2)
            stats = session.cache_stats()
            assert stats["candidate_misses"] == 2
            assert stats["candidate_hits"] == 0

    def test_full_invalidate_clears_candidate_memo(self):
        with Session(workers=0) as session:
            session.design_search(max_processors=8, families=("pops",),
                                  trials=2)
            session.invalidate()
            session.design_search(max_processors=8, families=("pops",),
                                  trials=2)
            assert session.cache_stats()["candidate_misses"] == 2

    def test_racing_searches_enumerate_at_most_twice(self):
        """Concurrent identical searches: the memo close behind the race.

        The enumeration itself runs outside the cache lock (it can be
        slow), so two racing threads may both miss -- but the result
        list is deterministic, every caller gets equal specs, and the
        counters stay consistent (hits + misses == calls).
        """
        with Session(workers=0) as session:
            barrier = threading.Barrier(4)
            results = []

            def search():
                barrier.wait()
                results.append(
                    session.design_search(
                        max_processors=8, families=("pops",), trials=2
                    ).to_json()
                )

            threads = [threading.Thread(target=search) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(set(results)) == 1
            stats = session.cache_stats()
            assert stats["candidate_hits"] + stats["candidate_misses"] == 4


class TestGracefulShutdown:
    def test_close_shuts_pools_without_noise(self):
        """close() on a session with a live pool exits cleanly (subprocess)."""
        code = (
            "from repro.core.session import Session\n"
            "s = Session(workers=2)\n"
            "s.resilience_sweep('sk(2,2,2)', trials=8,"
            " metrics='connectivity')\n"
            "assert s.pools_started == 1\n"
            "s.close()\n"
            "print('CLOSED')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "CLOSED" in result.stdout
        assert result.stderr.strip() == ""

    def test_sigint_mid_run_exits_without_pool_warnings(self):
        """SIGINT: atexit closes the default session's pools quietly."""
        code = (
            "import sys, time\n"
            "import repro\n"
            "repro.resilience_sweep('sk(2,2,2)', trials=8, workers=2,"
            " metrics='connectivity')\n"
            "print('READY', flush=True)\n"
            "time.sleep(60)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", code],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            assert "READY" in proc.stdout.readline()
            proc.send_signal(signal.SIGINT)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        stderr = proc.stderr.read()
        for marker in (
            "BrokenProcessPool", "resource_tracker", "Exception ignored",
            "leaked", "Traceback (most recent call last)",
        ):
            if marker == "Traceback (most recent call last)":
                # the KeyboardInterrupt traceback itself is expected;
                # anything else echoing a traceback is not
                assert stderr.count(marker) <= 1, stderr
            else:
                assert marker not in stderr, stderr

    def test_serve_cli_sigterm_clean_exit(self):
        """`python -m repro serve` + SIGTERM: graceful stop, silent stderr."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("serving on http://")
            port = int(banner.rsplit(":", 1)[-1])
            import urllib.request

            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/sweep",
                data=json.dumps(
                    {"spec": "sk(2,2,2)", "trials": 8,
                     "metrics": "connectivity"}
                ).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                assert json.load(response)["trials"] == 8
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert proc.stderr.read().strip() == ""

    def test_terminate_close_is_fast_and_quiet(self):
        """close(terminate=True) kills a live pool without draining it."""
        with Session(workers=2) as probe:
            probe.resilience_sweep(
                "sk(2,2,2)", trials=8, metrics="connectivity"
            )
            start = time.monotonic()
            probe.close(terminate=True)
            assert time.monotonic() - start < 30
        assert probe.closed
