"""Unit tests for isomorphism search and connectivity/max-flow."""

import pytest

from repro.graphs import (
    DiGraph,
    arc_connectivity,
    are_isomorphic,
    check_isomorphism,
    complete_digraph,
    debruijn_graph,
    find_isomorphism,
    imase_itoh_graph,
    kautz_graph,
    max_arc_disjoint_paths,
    max_node_disjoint_paths,
    node_connectivity,
)


class TestCheckIsomorphism:
    def test_identity(self):
        g = kautz_graph(2, 2)
        assert check_isomorphism(g, g, list(range(g.num_nodes)))

    def test_rejects_non_bijection(self):
        g = complete_digraph(3)
        assert not check_isomorphism(g, g, [0, 0, 1])

    def test_rejects_wrong_size(self):
        assert not check_isomorphism(complete_digraph(3), complete_digraph(4), [0, 1, 2])

    def test_rejects_non_isomorphism(self):
        g = DiGraph(3, [(0, 1), (1, 2), (2, 0)])
        h = DiGraph(3, [(0, 1), (1, 2), (1, 0)])
        assert not check_isomorphism(g, h, [0, 1, 2])

    def test_respects_multiplicity(self):
        g = DiGraph(2, [(0, 1), (0, 1)])
        h = DiGraph(2, [(0, 1), (1, 0)])
        assert not check_isomorphism(g, h, [0, 1])
        assert not check_isomorphism(g, h, [1, 0])


class TestFindIsomorphism:
    def test_cycle_relabeled(self):
        g = DiGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        h = DiGraph(4, [(2, 0), (0, 3), (3, 1), (1, 2)])
        m = find_isomorphism(g, h)
        assert m is not None
        assert check_isomorphism(g, h, m)

    def test_negative_different_structure(self):
        g = DiGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        h = DiGraph(4, [(0, 1), (1, 0), (2, 3), (3, 2)])
        assert find_isomorphism(g, h) is None

    def test_kautz_vs_imase_itoh_searched(self):
        assert are_isomorphic(kautz_graph(2, 2), imase_itoh_graph(2, 6))

    def test_kautz_not_debruijn(self):
        # same degree, different node counts
        assert not are_isomorphic(kautz_graph(2, 2), debruijn_graph(2, 3))

    def test_loop_placement_matters(self):
        g = DiGraph(2, [(0, 0), (0, 1), (1, 0)])
        h = DiGraph(2, [(1, 1), (0, 1), (1, 0)])
        m = find_isomorphism(g, h)
        assert m == [1, 0]

    def test_empty_graphs(self):
        assert find_isomorphism(DiGraph(0, []), DiGraph(0, [])) == []


class TestFlows:
    def test_arc_disjoint_simple(self):
        g = DiGraph(4, [(0, 1), (1, 3), (0, 2), (2, 3)])
        assert max_arc_disjoint_paths(g, 0, 3) == 2

    def test_arc_disjoint_bottleneck(self):
        g = DiGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3), (1, 2)])
        assert max_arc_disjoint_paths(g, 0, 3) == 2

    def test_node_disjoint_vs_arc_disjoint(self):
        # node 3 is a cut vertex crossed by two arc-disjoint paths
        g = DiGraph(
            6, [(0, 1), (1, 3), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]
        )
        assert max_arc_disjoint_paths(g, 0, 5) == 2
        assert max_node_disjoint_paths(g, 0, 5) == 1

    def test_same_node_rejected(self):
        g = complete_digraph(3)
        with pytest.raises(ValueError):
            max_arc_disjoint_paths(g, 1, 1)
        with pytest.raises(ValueError):
            max_node_disjoint_paths(g, 1, 1)

    @pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (3, 2)])
    def test_kautz_arc_connectivity_is_d(self, d, k):
        assert arc_connectivity(kautz_graph(d, k)) == d

    @pytest.mark.parametrize("d,k", [(2, 2), (3, 2)])
    def test_kautz_node_connectivity_is_d(self, d, k):
        # Kautz digraphs are maximally connected (Imase-Soneoka-Okada).
        assert node_connectivity(kautz_graph(d, k)) == d

    def test_complete_convention(self):
        assert node_connectivity(complete_digraph(4)) == 3

    def test_sampled_connectivity_upper_bound(self):
        g = kautz_graph(2, 3)
        exact = arc_connectivity(g)
        sampled = arc_connectivity(g, sample_pairs=3, seed=1)
        assert sampled >= exact

    def test_connectivity_needs_two_nodes(self):
        with pytest.raises(ValueError):
            arc_connectivity(DiGraph(1, []))
