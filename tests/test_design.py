"""Unit tests for the full optical designs (paper Sec. 4, Figs. 11-12)."""

import pytest

from repro.networks import (
    POPSDesign,
    StackImaseItohDesign,
    StackKautzDesign,
)
from repro.optical import Receiver, Transmitter


class TestPOPSDesign:
    @pytest.fixture
    def design(self):
        return POPSDesign(4, 2)  # paper Fig. 11

    def test_fig11_bill_of_materials(self, design):
        """Fig. 11 hardware: OTIS(4,2) stages, OTIS(2,4) stages, OTIS(2,2)."""
        bom = design.bill_of_materials()
        assert bom.otis_units == {(4, 2): 2, (2, 4): 2, (2, 2): 1}
        assert bom.multiplexers == 4
        assert bom.beam_splitters == 4
        assert bom.loop_fibers == 0
        assert bom.couplers == 4
        assert bom.transmitters == 16  # 8 processors x 2 ports
        assert bom.receivers == 16

    def test_verify(self, design):
        assert design.verify()

    @pytest.mark.parametrize("t,g", [(1, 1), (2, 2), (3, 5), (5, 3), (4, 4)])
    def test_verify_sweep(self, t, g):
        assert POPSDesign(t, g).verify()

    def test_coupler_for_label_delivers_right_group(self, design):
        for i in range(2):
            for j in range(2):
                u, m = design.coupler_for_label(i, j)
                v, _b, fiber = design.coupler_destination(u, m)
                assert (u, v) == (i, j)
                assert not fiber

    def test_trace_single_hop(self, design):
        path = design.trace(0, 2, port=1)
        assert path.src_group == 0
        assert not path.via_loop_fiber
        assert len(path.receivers) == 4
        assert all(g == path.dst_group for g, _, _ in path.receivers)

    def test_every_port_reaches_every_group(self, design):
        for y in range(4):
            reached = {design.trace(0, y, j).dst_group for j in range(2)}
            assert reached == {0, 1}

    def test_no_loop_budget(self, design):
        with pytest.raises(ValueError):
            design.loop_power_budget()


class TestStackKautzDesign:
    @pytest.fixture
    def design(self):
        return StackKautzDesign(6, 3, 2)  # paper Fig. 12

    def test_fig12_bill_of_materials(self, design):
        """Fig. 12: 12 OTIS(6,4), 12 OTIS(4,6), 48 mux, 48 splitters,
        one OTIS(3,12) -- exactly as the paper counts them."""
        bom = design.bill_of_materials()
        assert bom.otis_units == {(6, 4): 12, (4, 6): 12, (3, 12): 1}
        assert bom.multiplexers == 48
        assert bom.beam_splitters == 48
        assert bom.loop_fibers == 12
        assert bom.couplers == 48
        assert bom.transmitters == 72 * 4
        assert bom.receivers == 72 * 4
        assert bom.total_otis_stages == 25

    def test_summary_text(self, design):
        text = design.bill_of_materials().summary()
        assert "12 x OTIS(6,4)" in text
        assert "1 x OTIS(3,12)" in text
        assert "48 x optical multiplexer" in text

    def test_verify(self, design):
        assert design.verify()

    @pytest.mark.parametrize("s,d,k", [(1, 2, 2), (2, 2, 3), (4, 2, 2), (3, 4, 2), (2, 3, 3)])
    def test_verify_sweep(self, s, d, k):
        assert StackKautzDesign(s, d, k).verify()

    def test_loop_coupler_via_fiber(self, design):
        # port 0 = mux d = the loop
        path = design.trace(5, 2, port=0)
        assert path.via_loop_fiber
        assert path.dst_group == 5
        assert path.dst_splitter == 3

    def test_kautz_ports_via_interconnect(self, design):
        for port in (1, 2, 3):
            path = design.trace(5, 2, port=port)
            assert not path.via_loop_fiber
            assert path.dst_group != 5

    def test_trace_stage_narrative(self, design):
        path = design.trace(0, 0, port=3)
        stages = " ".join(path.stages)
        assert "OTIS(6,4)" in stages
        assert "OTIS(3,12)" in stages
        assert "OTIS(4,6)" in stages

    def test_processor_degree(self, design):
        assert design.processor_degree == 4
        assert design.num_processors == 72

    def test_power_budgets_close(self, design):
        wc = design.worst_case_power_budget(Transmitter(), Receiver())
        loop = design.loop_power_budget(Transmitter(), Receiver())
        assert wc.is_feasible()
        assert loop.is_feasible()
        # loop path swaps a lens pair for fiber: slightly lower loss
        assert loop.total_loss_db() < wc.total_loss_db()

    def test_bad_diameter(self):
        with pytest.raises(ValueError):
            StackKautzDesign(6, 3, 0)


class TestStackImaseItohDesign:
    @pytest.mark.parametrize("s,d,n", [(4, 3, 10), (2, 2, 7), (3, 2, 9), (1, 3, 5)])
    def test_verify_any_size(self, s, d, n):
        assert StackImaseItohDesign(s, d, n).verify()

    def test_bom_shape(self):
        bom = StackImaseItohDesign(4, 3, 10).bill_of_materials()
        assert bom.otis_units == {(4, 4): 20, (3, 10): 1}
        assert bom.loop_fibers == 10
        assert bom.couplers == 40

    def test_ii_loops_ride_interconnect_fiber_loops_separate(self):
        """II(3,10) has loops at nodes 2 and 7; those arcs go through the
        interconnect while the dedicated loop coupler uses fiber."""
        design = StackImaseItohDesign(4, 3, 10)
        # node 2's II successors include 2 itself
        dests = [design.coupler_destination(2, m) for m in range(3)]
        assert any(v == 2 and not fiber for v, _b, fiber in dests)
        v, _b, fiber = design.coupler_destination(2, 3)
        assert v == 2 and fiber


class TestDesignInternals:
    def test_mux_port_duality(self):
        design = StackKautzDesign(6, 3, 2)
        for m in range(4):
            port = design.port_of_mux(m)
            assert design.mux_of_port(0, 0, port) == (0, m)

    def test_receiver_port_of_splitter(self):
        design = StackKautzDesign(6, 3, 2)
        assert design.receiver_port_of_splitter(0) == 3
        assert design.receiver_port_of_splitter(3) == 0

    def test_bounds(self):
        design = StackKautzDesign(6, 3, 2)
        with pytest.raises(IndexError):
            design.port_of_mux(4)
        with pytest.raises(IndexError):
            design.receiver_port_of_splitter(4)
        with pytest.raises(IndexError):
            design.trace(12, 0, 0)
        with pytest.raises(IndexError):
            design.trace(0, 6, 0)
        with pytest.raises(IndexError):
            design.coupler_destination(0, 5)

    def test_realized_hyperarcs_count(self):
        design = StackKautzDesign(2, 2, 2)
        arcs = design.realized_hyperarcs()
        assert len(arcs) == design.num_groups * design.processor_degree

    def test_render_ascii(self):
        design = StackKautzDesign(6, 3, 2)
        art = design.render_ascii(max_groups=2)
        assert "OTIS(3,12)" in art
        assert "loop fiber" in art
        assert "... (10 more groups" in art
        # every drawn mux destination must match coupler_destination
        pops = POPSDesign(4, 2).render_ascii()
        assert "loop fiber" not in pops  # POPS loops ride the interconnect
