"""Property-based round-trip tests for `NetworkSpec`.

The spec string is the toolkit's one name for a network: every facade
verb, the CLI and the sweep matrix parse it.  These properties pin the
contract over parameter grids for all four families: parse -> str ->
parse is the identity, every accepted input form (canonical string,
loose tokens, named dict, params dict, argv list) lands on the same
spec, and malformed inputs are rejected with a :class:`SpecError`
naming the culprit.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import NetworkSpec, SpecError, family_keys, get_family

# Parameter grids per family: small-but-diverse, every value buildable.
SPECS = {
    "pops": st.tuples(st.integers(1, 12), st.integers(1, 12)),
    "sk": st.tuples(st.integers(1, 6), st.integers(2, 5), st.integers(1, 3)),
    "sii": st.tuples(st.integers(1, 6), st.integers(2, 4), st.integers(5, 40)),
    "sops": st.tuples(st.integers(1, 64)),
}

any_spec = st.one_of(
    *(
        st.tuples(st.just(fam), params)
        for fam, params in sorted(SPECS.items())
    )
).map(lambda t: NetworkSpec(t[0], t[1]))


class TestRoundTrip:
    @given(any_spec)
    def test_parse_str_parse_identity(self, spec):
        assert NetworkSpec.parse(str(spec)) == spec
        assert NetworkSpec.parse(spec.canonical()) == spec
        assert str(NetworkSpec.parse(str(spec))) == str(spec)

    @given(any_spec)
    def test_loose_token_forms_equivalent(self, spec):
        tokens = " ".join(map(str, spec.params))
        assert NetworkSpec.parse(f"{spec.family} {tokens}") == spec
        assert NetworkSpec.parse(
            ",".join([spec.family, *map(str, spec.params)])
        ) == spec
        assert NetworkSpec.parse(f"{spec.family}: {tokens}") == spec

    @given(any_spec)
    def test_dict_forms_equivalent(self, spec):
        named = spec.as_dict()
        assert NetworkSpec.parse(named) == spec
        positional = {"family": spec.family, "params": list(spec.params)}
        assert NetworkSpec.parse(positional) == spec
        assert NetworkSpec.parse(spec.params_dict() | {"family": spec.family}) == spec

    @given(any_spec)
    def test_argv_form_equivalent(self, spec):
        argv = [spec.family, *map(str, spec.params)]
        assert NetworkSpec.from_argv(argv) == spec
        assert NetworkSpec.parse(argv) == spec
        # ints in the sequence form parse the same as strings
        assert NetworkSpec.parse((spec.family, *spec.params)) == spec

    @given(any_spec)
    def test_aliases_resolve_to_canonical_family(self, spec):
        family = get_family(spec.family)
        for alias in family.aliases:
            alias_spec = NetworkSpec.parse(
                f"{alias}({','.join(map(str, spec.params))})"
            )
            assert alias_spec == spec
            assert alias_spec.family == family.key

    @given(any_spec)
    def test_params_dict_matches_schema_order(self, spec):
        family = get_family(spec.family)
        assert list(spec.params_dict()) == [p.name for p in family.params]
        assert tuple(spec.params_dict().values()) == spec.params

    @given(any_spec)
    def test_spec_is_hashable_and_self_parseable(self, spec):
        assert NetworkSpec.parse(spec) is spec
        assert len({spec, NetworkSpec.parse(str(spec))}) == 1


class TestRejection:
    @given(any_spec)
    def test_wrong_arity_rejected(self, spec):
        family = get_family(spec.family)
        short = spec.params[:-1]
        with pytest.raises(SpecError, match="missing"):
            NetworkSpec(family.key, short)
        long = spec.params + (2,)
        with pytest.raises(SpecError, match="unexpected extra"):
            NetworkSpec(family.key, long)

    @given(any_spec, st.integers(0, 10))
    def test_below_minimum_rejected(self, spec, position):
        family = get_family(spec.family)
        i = position % len(spec.params)
        bad = list(spec.params)
        bad[i] = family.params[i].minimum - 1
        with pytest.raises(SpecError, match="must be >="):
            NetworkSpec(family.key, tuple(bad))

    @given(any_spec, st.integers(0, 10))
    def test_negative_params_rejected(self, spec, position):
        i = position % len(spec.params)
        bad = list(spec.params)
        bad[i] = -bad[i]
        with pytest.raises(SpecError):
            NetworkSpec(spec.family, tuple(bad))

    @given(
        st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz_",
            min_size=1,
            max_size=12,
        ).filter(
            lambda s: s not in family_keys()
            and all(s not in (f, *get_family(f).aliases) for f in family_keys())
        )
    )
    def test_unknown_family_rejected(self, name):
        with pytest.raises(SpecError, match="unknown network family"):
            NetworkSpec.parse(f"{name}(2,2)")

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "sk(6;3;2)",
            "sk[6,3,2]",
            "sk(6,3,2",  # tokens still parse: unbalanced paren is fine...
            "42",
            "(6,3,2)",
            "sk(6,x,2)",
            "sk(6,3,2.5)",
            "pops(4 2) extra!",
        ],
    )
    def test_malformed_strings_rejected(self, text):
        # "sk(6,3,2" parses (token form); everything else must raise.
        if text == "sk(6,3,2":
            assert NetworkSpec.parse(text) == NetworkSpec("sk", (6, 3, 2))
            return
        with pytest.raises(SpecError):
            NetworkSpec.parse(text)

    def test_bool_and_float_params_rejected(self):
        with pytest.raises(SpecError, match="must be an integer"):
            NetworkSpec("pops", (True, 2))
        with pytest.raises(SpecError, match="must be an integer"):
            NetworkSpec("pops", (2.5, 2))
        # integral floats coerce (documented leniency of _coerce_int)
        assert NetworkSpec("pops", (2.0, 2)).params == (2, 2)

    def test_dict_rejections_name_the_culprit(self):
        with pytest.raises(SpecError, match="'family'"):
            NetworkSpec.parse({"t": 4, "g": 2})
        with pytest.raises(SpecError, match="missing parameter 'g'"):
            NetworkSpec.parse({"family": "pops", "t": 4})
        with pytest.raises(SpecError, match="unknown key"):
            NetworkSpec.parse({"family": "pops", "t": 4, "g": 2, "zz": 1})
        with pytest.raises(SpecError, match="mixes 'params'"):
            NetworkSpec.parse({"family": "pops", "params": [4, 2], "t": 4})

    def test_non_parseable_types_rejected(self):
        with pytest.raises(SpecError, match="cannot parse"):
            NetworkSpec.parse(42)
        with pytest.raises(SpecError, match="empty network spec"):
            NetworkSpec.from_argv([])
