"""Unit tests for Kautz graphs (paper Sec. 2.5, Definition 2, Fig. 6)."""

import pytest

from repro.graphs import (
    diameter,
    is_kautz_word,
    is_regular,
    kautz_graph,
    kautz_graph_with_loops,
    kautz_index_to_word,
    kautz_num_nodes,
    kautz_word_to_index,
    kautz_words,
)


class TestWordValidation:
    def test_valid_words(self):
        assert is_kautz_word((0, 1, 0), 2)
        assert is_kautz_word((2,), 2)

    def test_repeated_letter_invalid(self):
        assert not is_kautz_word((0, 0), 2)
        assert not is_kautz_word((1, 2, 2), 2)

    def test_letter_out_of_alphabet_invalid(self):
        assert not is_kautz_word((0, 3), 2)   # alphabet {0,1,2} for d=2
        assert not is_kautz_word((-1, 0), 2)

    def test_empty_word_invalid(self):
        assert not is_kautz_word((), 2)


class TestCounting:
    @pytest.mark.parametrize(
        "d,k,n",
        [(1, 1, 2), (2, 1, 3), (2, 2, 6), (2, 3, 12), (3, 2, 12), (3, 3, 36), (4, 3, 80), (5, 5, 3750)],
    )
    def test_num_nodes_formula(self, d, k, n):
        assert kautz_num_nodes(d, k) == n

    def test_paper_example_erratum(self):
        """The paper claims KG(5,4) has 3750 nodes; its own formula gives
        750 (3750 is KG(5,5)).  Recorded as an erratum in EXPERIMENTS.md."""
        assert kautz_num_nodes(5, 4) == 750
        assert kautz_num_nodes(5, 5) == 3750

    def test_bad_params(self):
        with pytest.raises(ValueError):
            kautz_num_nodes(0, 2)
        with pytest.raises(ValueError):
            kautz_num_nodes(2, 0)


class TestIndexing:
    @pytest.mark.parametrize("d,k", [(1, 3), (2, 2), (2, 4), (3, 3), (4, 2)])
    def test_roundtrip_all_indices(self, d, k):
        n = kautz_num_nodes(d, k)
        for i in range(n):
            w = kautz_index_to_word(i, d, k)
            assert is_kautz_word(w, d)
            assert len(w) == k
            assert kautz_word_to_index(w, d) == i

    def test_words_iterator_order(self):
        ws = list(kautz_words(2, 2))
        assert len(ws) == 6
        assert len(set(ws)) == 6
        assert ws[0] == kautz_index_to_word(0, 2, 2)

    def test_invalid_word_rejected(self):
        with pytest.raises(ValueError):
            kautz_word_to_index((0, 0), 2)

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            kautz_index_to_word(6, 2, 2)
        with pytest.raises(ValueError):
            kautz_index_to_word(-1, 2, 2)


class TestGraph:
    @pytest.mark.parametrize("d,k", [(2, 1), (2, 2), (2, 3), (3, 2), (4, 2)])
    def test_sizes_and_regularity(self, d, k):
        g = kautz_graph(d, k)
        assert g.num_nodes == kautz_num_nodes(d, k)
        assert g.num_arcs == d * g.num_nodes
        assert is_regular(g, d)

    @pytest.mark.parametrize("d,k", [(2, 1), (2, 2), (2, 3), (3, 2), (3, 3)])
    def test_diameter_is_k(self, d, k):
        assert diameter(kautz_graph(d, k)) == k

    def test_kg21_is_k3(self):
        """Fig. 6: KG(2,1) is the complete digraph on 3 nodes."""
        g = kautz_graph(2, 1)
        assert g.num_nodes == 3
        for u in range(3):
            assert sorted(g.successors(u).tolist()) == [v for v in range(3) if v != u]

    def test_arcs_follow_definition(self):
        """Definition 2: (x1..xk) -> (x2..xk, z), z != xk."""
        d, k = 3, 2
        g = kautz_graph(d, k)
        for u in range(g.num_nodes):
            w = g.label_of(u)
            expected = sorted(
                kautz_word_to_index(w[1:] + (z,), d)
                for z in range(d + 1)
                if z != w[-1]
            )
            assert g.successors(u).tolist() == expected

    def test_no_loops(self):
        assert kautz_graph(3, 2).num_loops() == 0

    def test_labels_are_words(self):
        g = kautz_graph(2, 3)
        for u in range(g.num_nodes):
            assert is_kautz_word(g.label_of(u), 2)

    def test_fig6_kg22_contains_pictured_arcs(self):
        """Spot-check arcs drawn in Fig. 6 for KG(2,2)."""
        g = kautz_graph(2, 2)
        for a, b in [((2, 0), (0, 2)), ((0, 2), (2, 1)), ((1, 0), (0, 1))]:
            assert g.has_arc(g.node_of(a), g.node_of(b))


class TestWithLoops:
    def test_degree_rises_by_one(self):
        g = kautz_graph_with_loops(3, 2)
        assert is_regular(g, 4)
        assert g.num_loops() == g.num_nodes

    def test_loop_at_every_node(self):
        g = kautz_graph_with_loops(2, 2)
        for u in range(g.num_nodes):
            assert g.has_arc(u, u)

    def test_name(self):
        assert "KG+" in kautz_graph_with_loops(2, 2).name
