"""Unit tests for the line-digraph operator (Fig. 6 identity)."""

import pytest

from repro.graphs import (
    are_isomorphic,
    complete_digraph,
    diameter,
    is_regular,
    iterated_line_digraph,
    kautz_graph,
    line_digraph,
)
from repro.graphs.digraph import DiGraph


class TestSizeLaws:
    def test_node_count_equals_arc_count(self):
        g = complete_digraph(4)
        lg = line_digraph(g)
        assert lg.num_nodes == g.num_arcs

    def test_arc_count_sum_indeg_outdeg(self):
        g = DiGraph(3, [(0, 1), (0, 2), (1, 2), (2, 0), (2, 2)])
        lg = line_digraph(g)
        expected = sum(g.in_degree(v) * g.out_degree(v) for v in range(3))
        assert lg.num_arcs == expected

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_regular_scaling(self, d):
        g = complete_digraph(d + 1)
        lg = line_digraph(g)
        assert lg.num_nodes == d * g.num_nodes
        assert is_regular(lg, d)

    def test_diameter_increases_by_one(self):
        g = kautz_graph(2, 2)
        assert diameter(line_digraph(g)) == diameter(g) + 1


class TestLabels:
    def test_labels_are_arc_pairs(self):
        g = DiGraph(2, [(0, 1)], labels=["a", "b"])
        lg = line_digraph(g)
        assert lg.label_of(0) == ("a", "b")

    def test_parallel_arcs_get_counters(self):
        g = DiGraph(2, [(0, 1), (0, 1), (1, 0)])
        lg = line_digraph(g)
        labels = set(lg.labels)
        assert (0, 1, 0) in labels and (0, 1, 1) in labels

    def test_loop_becomes_loop(self):
        g = DiGraph(1, [(0, 0)])
        lg = line_digraph(g)
        assert lg.num_nodes == 1
        assert lg.has_arc(0, 0)


class TestKautzIdentity:
    """Fig. 6: KG(d, k) == L^{k-1}(K_{d+1})."""

    @pytest.mark.parametrize("d,k", [(2, 1), (2, 2), (2, 3), (3, 2), (3, 3), (4, 2)])
    def test_iterated_line_of_complete_is_kautz(self, d, k):
        lg = iterated_line_digraph(complete_digraph(d + 1), k - 1)
        assert are_isomorphic(lg, kautz_graph(d, k))

    def test_zero_iterations_identity(self):
        g = complete_digraph(3)
        assert iterated_line_digraph(g, 0) == g

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            iterated_line_digraph(complete_digraph(3), -1)

    def test_line_of_kautz_is_next_kautz(self):
        assert are_isomorphic(line_digraph(kautz_graph(2, 2)), kautz_graph(2, 3))
