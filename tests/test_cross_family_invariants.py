"""Exhaustive cross-family invariants over the candidate windows.

For every buildable spec the registry can enumerate, three layers must
agree on the machine's shape: the registry's enumerators
(``sizes`` / ``candidate_specs``), the built network object, and its
directed-hypergraph model.  Routes must respect the advertised
diameter.  Tier-1 sweeps every spec up to 64 processors; the full
<= 200-processor window (3000+ specs) runs in the nightly job under
the ``slow`` marker.
"""

import pytest

from repro.core import NetworkSpec, describe, get_family, iter_families
from repro.core.registry import NetworkFamily
from repro.design_search import enumerate_candidates

TIER1_MAX_N = 64
FULL_MAX_N = 200


def _sample_pairs(n: int) -> list[tuple[int, int]]:
    """A few deterministic (src, dst) probes incl. loops and extremes."""
    pairs = {(0, 0), (0, n - 1), (n - 1, 0), (n // 2, n // 3)}
    return sorted(pairs)


def check_spec(spec: NetworkSpec) -> None:
    """All shape invariants of one spec, one assertion message each."""
    family = get_family(spec.family)
    net = spec.build()
    # registry <-> network: the equal-N enumerator must name this spec
    assert spec in set(family.sizes(net.num_processors)), (
        f"{spec}: sizes({net.num_processors}) does not list the spec"
    )
    info = describe(spec)
    for key, value in (
        ("processors", net.num_processors),
        ("groups", net.num_groups),
        ("couplers", net.num_couplers),
        ("coupler_degree", net.coupler_degree),
        ("processor_degree", net.processor_degree),
        ("diameter", net.diameter),
    ):
        assert info[key] == value, f"{spec}: describe()[{key!r}] != network"
    # network <-> hypergraph model
    model = net.hypergraph_model()
    assert model.num_nodes == net.num_processors, f"{spec}: model node count"
    assert model.num_hyperarcs == net.num_couplers, f"{spec}: model arc count"
    for ha in model.hyperarcs:
        assert len(ha.sources) == net.coupler_degree, (
            f"{spec}: hyperarc source block != coupler degree"
        )
        assert len(ha.targets) == net.coupler_degree, (
            f"{spec}: hyperarc target block != coupler degree"
        )
    # routes respect the advertised diameter
    for src, dst in _sample_pairs(net.num_processors):
        route = family.route(net, src, dst)
        limit = 0 if src == dst else max(net.diameter, 1)
        assert route.num_hops <= limit, (
            f"{spec}: route {src}->{dst} took {route.num_hops} hops, "
            f"diameter {net.diameter}"
        )


def _window(max_n: int) -> list[NetworkSpec]:
    return enumerate_candidates(max_processors=max_n, min_processors=2)


class TestCandidateEnumeration:
    def test_window_is_respected_everywhere(self):
        for spec in _window(TIER1_MAX_N):
            n = spec.build().num_processors
            assert 2 <= n <= TIER1_MAX_N, f"{spec} outside the window"

    def test_every_family_contributes(self):
        families = {s.family for s in _window(TIER1_MAX_N)}
        assert families == set(f.key for f in iter_families())

    def test_enumeration_is_deterministic_and_deduplicated(self):
        a = _window(TIER1_MAX_N)
        b = _window(TIER1_MAX_N)
        assert a == b
        assert len(a) == len(set(a))

    def test_sk_override_matches_generic_default(self):
        family = get_family("sk")
        override = set(
            family.candidate_specs(max_processors=TIER1_MAX_N, min_processors=2)
        )
        generic = set(
            NetworkFamily.candidate_specs(
                family, max_processors=TIER1_MAX_N, min_processors=2
            )
        )
        assert override == generic

    def test_empty_window_yields_nothing(self):
        family = get_family("sk")
        assert list(family.candidate_specs(max_processors=1)) == []


class TestShapeInvariantsTier1:
    @pytest.mark.parametrize(
        "family_key", sorted(f.key for f in iter_families())
    )
    def test_every_spec_up_to_64_processors(self, family_key):
        specs = [s for s in _window(TIER1_MAX_N) if s.family == family_key]
        assert specs, f"no candidates for {family_key} up to N={TIER1_MAX_N}"
        for spec in specs:
            check_spec(spec)


@pytest.mark.slow
class TestShapeInvariantsExhaustive:
    @pytest.mark.parametrize(
        "family_key", sorted(f.key for f in iter_families())
    )
    def test_every_spec_up_to_200_processors(self, family_key):
        for spec in (
            s for s in _window(FULL_MAX_N) if s.family == family_key
        ):
            check_spec(spec)
