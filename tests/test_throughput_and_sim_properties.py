"""Capacity bounds + property-based simulator invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    pops_capacity,
    single_ops_capacity,
    stack_kautz_capacity,
    stack_kautz_mean_hops_uniform,
)
from repro.graphs import debruijn_graph
from repro.networks import (
    POPSNetwork,
    SingleOPSNetwork,
    StackKautzNetwork,
    single_ops_simulator,
)
from repro.simulation import (
    pops_simulator,
    run_traffic,
    stack_kautz_simulator,
    uniform_traffic,
)


class TestCapacityBounds:
    def test_single_ops_capacity(self):
        assert single_ops_capacity(SingleOPSNetwork(48)) == 1.0

    def test_single_ops_virtual_capacity_below_one(self):
        net = SingleOPSNetwork(8, virtual_topology=debruijn_graph(2, 3))
        assert single_ops_capacity(net) < 1.0

    def test_pops_capacity(self):
        assert pops_capacity(POPSNetwork(12, 4)) == 16.0

    def test_sk_mean_hops_matches_exhaustive(self):
        net = StackKautzNetwork(3, 2, 2)
        from repro.routing import stack_kautz_distance

        total = 0
        n = net.num_processors
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    total += stack_kautz_distance(net, src, dst)
        assert stack_kautz_mean_hops_uniform(net) == pytest.approx(
            total / (n * (n - 1))
        )

    def test_measured_throughput_below_capacity(self):
        """The simulator can never beat the analytic coupler bound."""
        pops = POPSNetwork(12, 4)
        rep = run_traffic(pops_simulator(pops), uniform_traffic(48, 480, seed=41))
        assert rep.throughput <= pops_capacity(pops) + 1e-9

        sk = StackKautzNetwork(4, 2, 3)
        rep = run_traffic(stack_kautz_simulator(sk), uniform_traffic(48, 480, seed=42))
        assert rep.throughput <= stack_kautz_capacity(sk) + 1e-9

        star = SingleOPSNetwork(16)
        rep = run_traffic(single_ops_simulator(star), uniform_traffic(16, 100, seed=43))
        assert rep.throughput <= single_ops_capacity(star) + 1e-9


class TestSimulatorProperties:
    """Hypothesis invariants over random traffic batches."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 23), st.integers(0, 23), st.integers(0, 5)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=25)
    def test_pops_conservation_and_bounds(self, raw):
        net = POPSNetwork(4, 6)  # 24 processors
        sim = pops_simulator(net)
        traffic = sorted(raw, key=lambda x: x[2])
        sim.inject(traffic)
        sim.run(max_slots=5000)
        assert sim.verify_conservation()
        for m in sim.messages:
            assert m.hops == (0 if m.src == m.dst else 1)
            assert m.deliver_slot >= m.inject_slot

    @given(
        st.lists(
            st.tuples(st.integers(0, 23), st.integers(0, 23), st.integers(0, 3)),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=20)
    def test_stack_kautz_conservation_and_bounds(self, raw):
        net = StackKautzNetwork(2, 2, 3)  # 24 processors
        sim = stack_kautz_simulator(net)
        traffic = sorted(raw, key=lambda x: x[2])
        sim.inject(traffic)
        sim.run(max_slots=5000)
        assert sim.verify_conservation()
        for m in sim.messages:
            assert m.hops <= net.diameter
            assert m.hops >= net.hop_distance(m.src, m.dst)
            assert m.latency >= m.hops - 1

    @given(st.integers(0, 1000))
    @settings(max_examples=15)
    def test_seeded_runs_are_reproducible(self, seed):
        net = StackKautzNetwork(2, 2, 2)
        t = uniform_traffic(net.num_processors, 30, seed=seed)
        rep1 = run_traffic(stack_kautz_simulator(net), t)
        rep2 = run_traffic(stack_kautz_simulator(net), t)
        assert rep1 == rep2
