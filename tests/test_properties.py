"""Unit tests for whole-graph property analysis."""

import pytest

from repro.graphs import (
    DiGraph,
    average_distance,
    complete_digraph,
    degree_summary,
    diameter,
    distance_distribution,
    eccentricities,
    eulerian_circuit,
    find_hamiltonian_cycle,
    girth,
    is_eulerian,
    is_hamiltonian,
    is_in_regular,
    is_out_regular,
    is_regular,
    kautz_graph,
)


@pytest.fixture
def cycle5():
    return DiGraph(5, [(i, (i + 1) % 5) for i in range(5)])


class TestDegrees:
    def test_summary(self, cycle5):
        s = degree_summary(cycle5)
        assert (s.min_out, s.max_out, s.min_in, s.max_in) == (1, 1, 1, 1)
        assert s.regular_degree == 1

    def test_summary_irregular(self):
        g = DiGraph(3, [(0, 1), (0, 2)])
        s = degree_summary(g)
        assert s.regular_degree is None

    def test_empty_graph_summary(self):
        s = degree_summary(DiGraph(0, []))
        assert s.regular_degree == 0

    def test_regularity_predicates(self, cycle5):
        assert is_out_regular(cycle5, 1)
        assert is_in_regular(cycle5, 1)
        assert is_regular(cycle5, 1)
        assert not is_regular(cycle5, 2)


class TestDistances:
    def test_diameter_cycle(self, cycle5):
        assert diameter(cycle5) == 4

    def test_diameter_disconnected(self):
        assert diameter(DiGraph(2, [(0, 1)])) == -1

    def test_diameter_trivial(self):
        assert diameter(DiGraph(0, [])) == 0
        assert diameter(DiGraph(1, [])) == 0

    def test_eccentricities(self, cycle5):
        assert eccentricities(cycle5).tolist() == [4] * 5

    def test_average_distance_cycle(self, cycle5):
        # distances 1..4 from each node: mean = 2.5
        assert average_distance(cycle5) == pytest.approx(2.5)

    def test_average_distance_disconnected_raises(self):
        with pytest.raises(ValueError):
            average_distance(DiGraph(2, [(0, 1)]))

    def test_average_distance_single_node(self):
        assert average_distance(DiGraph(1, [])) == 0.0

    def test_distance_distribution(self, cycle5):
        h = distance_distribution(cycle5)
        assert h.tolist() == [5, 5, 5, 5, 5]
        assert h.sum() == 25

    def test_distribution_counts_unreachable_by_omission(self):
        g = DiGraph(2, [(0, 1)])
        h = distance_distribution(g)
        assert h.sum() == 3  # (0,0),(1,1),(0,1); (1,0) missing


class TestEuler:
    @pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (3, 2)])
    def test_kautz_is_eulerian(self, d, k):
        assert is_eulerian(kautz_graph(d, k))

    def test_unbalanced_not_eulerian(self):
        assert not is_eulerian(DiGraph(3, [(0, 1), (0, 2), (1, 0), (2, 0), (0, 1)]))

    def test_empty_not_eulerian(self):
        assert not is_eulerian(DiGraph(3, []))

    def test_circuit_covers_every_arc_once(self):
        g = kautz_graph(2, 2)
        circuit = eulerian_circuit(g)
        assert len(circuit) == g.num_arcs + 1
        assert circuit[0] == circuit[-1]
        used = list(zip(circuit, circuit[1:]))
        assert len(used) == len(set(used)) == g.num_arcs
        for a, b in used:
            assert g.has_arc(a, b)

    def test_circuit_rejects_non_eulerian(self):
        with pytest.raises(ValueError):
            eulerian_circuit(DiGraph(2, [(0, 1)]))


class TestHamilton:
    @pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (3, 2)])
    def test_kautz_is_hamiltonian(self, d, k):
        cycle = find_hamiltonian_cycle(kautz_graph(d, k))
        assert cycle is not None
        g = kautz_graph(d, k)
        assert len(cycle) == g.num_nodes + 1
        assert sorted(cycle[:-1]) == list(range(g.num_nodes))
        for a, b in zip(cycle, cycle[1:]):
            assert g.has_arc(a, b)

    def test_complete_is_hamiltonian(self):
        assert is_hamiltonian(complete_digraph(5))

    def test_dag_not_hamiltonian(self):
        assert not is_hamiltonian(DiGraph(3, [(0, 1), (1, 2)]))

    def test_single_node_with_loop(self):
        assert find_hamiltonian_cycle(DiGraph(1, [(0, 0)])) == [0, 0]

    def test_single_node_without_loop(self):
        assert find_hamiltonian_cycle(DiGraph(1, [])) is None

    def test_empty(self):
        assert find_hamiltonian_cycle(DiGraph(0, [])) is None


class TestGirth:
    def test_loop_gives_one(self):
        assert girth(DiGraph(2, [(0, 0), (0, 1)])) == 1

    def test_two_cycle(self):
        assert girth(kautz_graph(2, 2)) == 2  # 01 <-> 10

    def test_long_cycle(self):
        assert girth(DiGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])) == 4

    def test_acyclic(self):
        assert girth(DiGraph(3, [(0, 1), (1, 2)])) == -1
