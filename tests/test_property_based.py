"""Property-based tests (hypothesis) on core invariants.

Each property encodes a law the paper's constructions must satisfy for
*every* parameter choice, not just the figure-sized examples.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    DiGraph,
    check_isomorphism,
    imase_itoh_graph,
    imase_itoh_index_to_kautz_word,
    imase_itoh_successors,
    is_kautz_word,
    kautz_graph,
    kautz_index_to_word,
    kautz_num_nodes,
    kautz_word_to_imase_itoh_index,
    kautz_word_to_index,
    line_digraph,
)
from repro.networks import OTISImaseItohRealization, POPSDesign, StackKautzDesign
from repro.optical import OTIS
from repro.routing import FaultSet, fault_tolerant_route, kautz_distance, kautz_route

# Small-but-diverse parameter strategies; sizes stay test-suite friendly.
dims = st.tuples(st.integers(2, 5), st.integers(1, 3)).filter(
    lambda dk: kautz_num_nodes(*dk) <= 150
)
otis_shapes = st.tuples(st.integers(1, 12), st.integers(1, 12))


class TestOTISProperties:
    @given(otis_shapes)
    def test_permutation_is_bijection(self, shape):
        g, t = shape
        perm = OTIS(g, t).permutation()
        assert np.array_equal(np.sort(perm), np.arange(g * t))

    @given(otis_shapes)
    def test_inverse_system_inverts(self, shape):
        g, t = shape
        o = OTIS(g, t)
        perm = o.permutation()
        back = o.inverse_system().permutation()
        assert np.array_equal(back[perm], np.arange(g * t))

    @given(st.integers(1, 12))
    def test_square_involution(self, n):
        assert OTIS(n, n).is_involution()

    @given(otis_shapes)
    def test_scalar_matches_vector(self, shape):
        g, t = shape
        o = OTIS(g, t)
        perm = o.permutation()
        for p in range(0, g * t, max(1, (g * t) // 7)):
            assert perm[p] == o.flat_receiver_of(p)


class TestKautzWordProperties:
    @given(dims, st.data())
    def test_index_word_roundtrip(self, dk, data):
        d, k = dk
        n = kautz_num_nodes(d, k)
        i = data.draw(st.integers(0, n - 1))
        w = kautz_index_to_word(i, d, k)
        assert is_kautz_word(w, d)
        assert kautz_word_to_index(w, d) == i

    @given(dims, st.data())
    def test_ii_isomorphism_roundtrip(self, dk, data):
        d, k = dk
        n = kautz_num_nodes(d, k)
        w_idx = data.draw(st.integers(0, n - 1))
        word = imase_itoh_index_to_kautz_word(w_idx, d, k)
        assert kautz_word_to_imase_itoh_index(word, d) == w_idx

    @given(dims, st.data())
    def test_word_arcs_map_to_ii_arcs(self, dk, data):
        d, k = dk
        n = kautz_num_nodes(d, k)
        u = data.draw(st.integers(0, n - 1))
        word = imase_itoh_index_to_kautz_word(u, d, k)
        for z in range(d + 1):
            if z != word[-1]:
                v = kautz_word_to_imase_itoh_index(word[1:] + (z,), d)
                assert v in imase_itoh_successors(u, d, n)


class TestProposition1Property:
    @given(st.tuples(st.integers(1, 5), st.integers(1, 40)))
    @settings(max_examples=40)
    def test_otis_realizes_ii(self, dn):
        d, n = dn
        assert OTISImaseItohRealization(d, n).verify()


class TestLineDigraphProperties:
    @given(st.integers(2, 8), st.integers(0, 40), st.data())
    @settings(max_examples=30)
    def test_size_laws_random_graphs(self, n, m, data):
        arcs = [
            (data.draw(st.integers(0, n - 1)), data.draw(st.integers(0, n - 1)))
            for _ in range(m)
        ]
        g = DiGraph(n, arcs)
        lg = line_digraph(g)
        assert lg.num_nodes == g.num_arcs
        assert lg.num_arcs == sum(
            g.in_degree(v) * g.out_degree(v) for v in range(n)
        )

    @given(dims)
    @settings(max_examples=15)
    def test_line_of_kautz_is_kautz(self, dk):
        d, k = dk
        lg = line_digraph(kautz_graph(d, k))
        target = kautz_graph(d, k + 1)
        assert lg.num_nodes == target.num_nodes
        assert lg.num_arcs == target.num_arcs
        assert sorted(lg.out_degrees().tolist()) == sorted(
            target.out_degrees().tolist()
        )


class TestRoutingProperties:
    @given(dims, st.data())
    @settings(max_examples=60)
    def test_route_valid_and_bounded(self, dk, data):
        d, k = dk
        n = kautz_num_nodes(d, k)
        x = kautz_index_to_word(data.draw(st.integers(0, n - 1)), d, k)
        y = kautz_index_to_word(data.draw(st.integers(0, n - 1)), d, k)
        route = kautz_route(x, y, d)
        assert route[0] == x and route[-1] == y
        assert len(route) - 1 <= k
        for a, b in zip(route, route[1:]):
            assert b[:-1] == a[1:] and b[-1] != a[-1]
        assert len(route) - 1 == kautz_distance(x, y, d)

    @given(dims, st.data())
    @settings(max_examples=30)
    def test_fault_tolerant_route_avoids_faults(self, dk, data):
        d, k = dk
        n = kautz_num_nodes(d, k)
        idxs = st.integers(0, n - 1)
        x = kautz_index_to_word(data.draw(idxs), d, k)
        y = kautz_index_to_word(data.draw(idxs), d, k)
        if x == y:
            return
        pool = [
            kautz_index_to_word(i, d, k)
            for i in range(n)
            if kautz_index_to_word(i, d, k) not in (x, y)
        ]
        count = data.draw(st.integers(0, min(d - 1, len(pool))))
        faults = FaultSet.of(nodes=pool[:count])
        path = fault_tolerant_route(x, y, d, faults, max_length=k + 2)
        assert path is not None
        assert not faults.blocks(path)
        assert len(path) - 1 <= k + 2


class TestDesignProperties:
    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=16, deadline=None)
    def test_pops_design_always_verifies(self, t, g):
        assert POPSDesign(t, g).verify()

    @given(st.integers(1, 3), st.integers(2, 3), st.integers(1, 2))
    @settings(max_examples=12, deadline=None)
    def test_stack_kautz_design_always_verifies(self, s, d, k):
        assert StackKautzDesign(s, d, k).verify()


class TestIsomorphismProperty:
    @given(dims, st.data())
    @settings(max_examples=10, deadline=None)
    def test_explicit_kautz_ii_iso(self, dk, data):
        _ = data
        d, k = dk
        kg = kautz_graph(d, k)
        ii = imase_itoh_graph(d, kautz_num_nodes(d, k))
        mapping = [
            kautz_word_to_imase_itoh_index(kg.label_of(u), d)
            for u in range(kg.num_nodes)
        ]
        assert check_isomorphism(kg, ii, mapping)
