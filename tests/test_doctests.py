"""Run every docstring example in the library as a test.

The public API's docstrings carry ``>>>`` examples (sizes from the
paper's figures, mostly); this keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = ["repro"] + sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"


def test_doctests_exist_somewhere():
    """Guard: the sweep above must actually exercise examples."""
    total = 0
    for name in MODULES:
        module = importlib.import_module(name)
        finder = doctest.DocTestFinder()
        total += sum(len(t.examples) for t in finder.find(module))
    assert total > 40, f"expected a rich example set, found {total}"
