"""Unit tests for the slotted simulator, policies, traffic and metrics."""

import pytest

from repro.hypergraphs import DirectedHypergraph, Hyperarc
from repro.networks import POPSNetwork, StackImaseItohNetwork, StackKautzNetwork
from repro.simulation import (
    FurthestFirst,
    Message,
    OldestFirst,
    RandomChoice,
    SlottedSimulator,
    bernoulli_stream,
    broadcast_traffic,
    group_local_traffic,
    hotspot_traffic,
    permutation_traffic,
    pops_simulator,
    run_traffic,
    stack_imase_itoh_simulator,
    stack_kautz_simulator,
    summarize,
    uniform_traffic,
)


def tiny_network():
    """Two couplers: 0,1 -> 2,3 and 2,3 -> 0,1."""
    return DirectedHypergraph(
        4,
        [Hyperarc((0, 1), (2, 3)), Hyperarc((2, 3), (0, 1))],
    )


def tiny_router(holder, msg):
    return 0 if holder in (0, 1) else 1


class TestEngine:
    def test_single_message_delivery(self):
        sim = SlottedSimulator(tiny_network(), tiny_router)
        sim.inject([(0, 2, 0)])
        sim.run()
        m = sim.messages[0]
        assert m.delivered and m.latency == 0 and m.hops == 1

    def test_self_message_zero_slots(self):
        sim = SlottedSimulator(tiny_network(), tiny_router)
        sim.inject([(0, 0, 0)])
        sim.run()
        assert sim.messages[0].hops == 0
        assert sim.messages[0].latency == 0

    def test_contention_serializes(self):
        sim = SlottedSimulator(tiny_network(), tiny_router)
        sim.inject([(0, 2, 0), (1, 3, 0)])
        sim.run()
        lats = sorted(m.latency for m in sim.messages)
        assert lats == [0, 1]  # one waits a slot

    def test_oldest_first_priority(self):
        sim = SlottedSimulator(tiny_network(), tiny_router, policy=OldestFirst())
        sim.inject([(0, 2, 1), (1, 3, 0)])
        sim.run()
        early = next(m for m in sim.messages if m.inject_slot == 0)
        assert early.latency == 0

    def test_two_hop_route(self):
        sim = SlottedSimulator(tiny_network(), tiny_router)
        sim.inject([(0, 1, 0)])  # 0 -> (2|3) -> 1
        sim.run()
        m = sim.messages[0]
        assert m.hops == 2
        assert m.trace == [0, 1]

    def test_future_injection(self):
        sim = SlottedSimulator(tiny_network(), tiny_router)
        sim.inject([(0, 2, 5)])
        sim.run()
        m = sim.messages[0]
        assert m.deliver_slot == 5 and m.latency == 0

    def test_inject_into_past_rejected(self):
        sim = SlottedSimulator(tiny_network(), tiny_router)
        sim.inject([(0, 2, 0)])
        sim.run()
        with pytest.raises(ValueError):
            sim.inject([(0, 2, 0)])

    def test_bad_router_detected(self):
        sim = SlottedSimulator(tiny_network(), lambda h, m: 1)  # wrong side
        sim.inject([(0, 2, 0)])
        with pytest.raises(RuntimeError):
            sim.run()

    def test_slot_cap_raises(self):
        net = DirectedHypergraph(3, [Hyperarc((0,), (1,)), Hyperarc((1,), (0,))])

        def ping_pong(holder, msg):
            return 0 if holder == 0 else 1

        sim = SlottedSimulator(net, ping_pong)
        sim.inject([(0, 2, 0)])  # 2 is unreachable
        with pytest.raises(RuntimeError):
            sim.run(max_slots=20)

    def test_conservation(self):
        sim = SlottedSimulator(tiny_network(), tiny_router)
        sim.inject([(0, 2, 0), (1, 0, 0), (2, 1, 0)])
        sim.run()
        assert sim.verify_conservation()

    def test_slot_log(self):
        sim = SlottedSimulator(tiny_network(), tiny_router)
        sim.inject([(0, 2, 0), (1, 3, 0)])
        sim.run()
        assert sim.slot_log[0].contended_couplers == 1
        assert sim.slot_log[0].delivered == 1


class TestPolicies:
    def _msgs(self):
        return [
            Message(0, 0, 2, inject_slot=3),
            Message(1, 1, 2, inject_slot=1),
            Message(2, 1, 3, inject_slot=1),
        ]

    def test_oldest_first(self):
        assert OldestFirst().pick(self._msgs(), 5).ident == 1

    def test_furthest_first_prefers_hops(self):
        msgs = self._msgs()
        msgs[2].hops = 2
        assert FurthestFirst().pick(msgs, 5).ident == 2

    def test_random_choice_reproducible(self):
        a = RandomChoice(seed=7).pick(self._msgs(), 0).ident
        b = RandomChoice(seed=7).pick(self._msgs(), 0).ident
        assert a == b


class TestAdapters:
    def test_pops_always_one_hop(self):
        rep = run_traffic(pops_simulator(POPSNetwork(3, 3)), uniform_traffic(9, 60, seed=0))
        assert rep.max_hops == 1
        assert rep.num_messages == 60

    def test_stack_kautz_hops_bounded_by_diameter(self):
        net = StackKautzNetwork(3, 2, 3)
        rep = run_traffic(stack_kautz_simulator(net), uniform_traffic(net.num_processors, 120, seed=1))
        assert rep.max_hops <= net.diameter

    def test_stack_kautz_latency_at_least_hops(self):
        net = StackKautzNetwork(2, 2, 2)
        sim = stack_kautz_simulator(net)
        run_traffic(sim, uniform_traffic(net.num_processors, 40, seed=2))
        for m in sim.messages:
            assert m.latency >= m.hops - 1

    def test_stack_imase_itoh_runs(self):
        net = StackImaseItohNetwork(3, 2, 7)
        rep = run_traffic(stack_imase_itoh_simulator(net), uniform_traffic(net.num_processors, 50, seed=3))
        assert rep.num_messages == 50

    def test_run_traffic_summary_consistency(self):
        net = POPSNetwork(4, 2)
        rep = run_traffic(pops_simulator(net), permutation_traffic(8, seed=4))
        assert rep.num_messages == 8
        assert rep.throughput == pytest.approx(8 / rep.slots)


class TestTraffic:
    def test_uniform_no_self_messages(self):
        for src, dst, _ in uniform_traffic(10, 200, seed=0):
            assert src != dst
            assert 0 <= src < 10 and 0 <= dst < 10

    def test_uniform_needs_two(self):
        with pytest.raises(ValueError):
            uniform_traffic(1, 5)

    def test_permutation_covers_all_sources(self):
        t = permutation_traffic(16, seed=1)
        assert sorted(s for s, _, _ in t) == list(range(16))
        assert all(s != d for s, d, _ in t)

    def test_hotspot_fraction(self):
        t = hotspot_traffic(20, 1000, hotspot=5, fraction=0.5, seed=2)
        hits = sum(1 for _, d, _ in t if d == 5)
        assert 350 < hits < 650

    def test_hotspot_bad_fraction(self):
        with pytest.raises(ValueError):
            hotspot_traffic(10, 10, fraction=1.5)

    def test_broadcast_traffic(self):
        t = broadcast_traffic(6, src=2)
        assert len(t) == 5
        assert all(s == 2 for s, _, _ in t)

    def test_group_local_majority_local(self):
        t = group_local_traffic(24, 4, 1000, local_fraction=0.9, seed=3)
        local = sum(1 for s, d, _ in t if s // 4 == d // 4)
        assert local > 700

    def test_group_local_divisibility(self):
        with pytest.raises(ValueError):
            group_local_traffic(10, 3, 5)

    def test_bernoulli_rate(self):
        t = bernoulli_stream(10, 100, 0.1, seed=4)
        assert 40 < len(t) < 170
        assert all(0 <= slot < 100 for _, _, slot in t)

    def test_bernoulli_bad_rate(self):
        with pytest.raises(ValueError):
            bernoulli_stream(10, 10, 1.5)


class TestMetrics:
    def test_summarize_requires_completion(self):
        sim = SlottedSimulator(tiny_network(), tiny_router)
        sim.inject([(0, 2, 0)])
        with pytest.raises(ValueError):
            summarize(sim)

    def test_report_row_formats(self):
        sim = SlottedSimulator(tiny_network(), tiny_router)
        sim.inject([(0, 2, 0)])
        sim.run()
        rep = summarize(sim)
        assert "msgs=" in rep.row()
        assert rep.mean_hops == 1.0
        assert 0 < rep.coupler_utilization <= 1.0
