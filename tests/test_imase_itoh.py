"""Unit tests for Imase-Itoh graphs and the explicit Kautz isomorphism."""

import pytest

from repro.graphs import (
    check_isomorphism,
    diameter,
    imase_itoh_diameter_bound,
    imase_itoh_graph,
    imase_itoh_index_to_kautz_word,
    imase_itoh_successors,
    is_kautz_word,
    is_regular,
    kautz_graph,
    kautz_num_nodes,
    kautz_word_to_imase_itoh_index,
    line_digraph_arc_index,
)


class TestSuccessors:
    def test_definition_3(self):
        """Definition 3: arcs u -> (-d*u - a) mod n."""
        assert imase_itoh_successors(0, 3, 12) == [11, 10, 9]
        assert imase_itoh_successors(1, 3, 12) == [8, 7, 6]
        assert imase_itoh_successors(11, 3, 12) == [2, 1, 0]

    def test_small_n_parallel_arcs(self):
        # II(3, 2): offsets collide mod 2 -> parallel arcs
        succ = imase_itoh_successors(0, 3, 2)
        assert len(succ) == 3
        g = imase_itoh_graph(3, 2)
        assert g.num_arcs == 6

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            imase_itoh_successors(12, 3, 12)
        with pytest.raises(ValueError):
            imase_itoh_successors(0, 0, 12)


class TestGraph:
    @pytest.mark.parametrize("d,n", [(2, 5), (2, 6), (3, 12), (3, 13), (4, 9), (5, 30)])
    def test_regular_degree_d(self, d, n):
        g = imase_itoh_graph(d, n)
        assert g.num_nodes == n
        assert g.num_arcs == d * n
        assert is_regular(g, d)

    @pytest.mark.parametrize("d,n", [(2, 5), (2, 8), (3, 12), (3, 20), (4, 17)])
    def test_diameter_within_bound(self, d, n):
        g = imase_itoh_graph(d, n)
        assert diameter(g) <= imase_itoh_diameter_bound(d, n)

    def test_ii_gg_is_complete_with_loops(self):
        """II(g, g) == K+_g: the identity POPS's interconnect relies on."""
        for g_size in (2, 3, 4, 5):
            g = imase_itoh_graph(g_size, g_size)
            for u in range(g_size):
                assert sorted(g.successors(u).tolist()) == list(range(g_size))

    def test_diameter_bound_d1_rejected(self):
        with pytest.raises(ValueError):
            imase_itoh_diameter_bound(1, 5)


class TestLineDigraphRecursion:
    def test_arc_index_formula(self):
        assert line_digraph_arc_index(0, 1, 3, 12) == 0
        assert line_digraph_arc_index(2, 3, 3, 12) == 8

    def test_arc_index_bijection(self):
        d, n = 3, 4
        images = {
            line_digraph_arc_index(u, a, d, n)
            for u in range(n)
            for a in range(1, d + 1)
        }
        assert images == set(range(d * n))

    def test_rejects_bad_offset(self):
        with pytest.raises(ValueError):
            line_digraph_arc_index(0, 0, 3, 12)
        with pytest.raises(ValueError):
            line_digraph_arc_index(0, 4, 3, 12)

    @pytest.mark.parametrize("d,n", [(2, 3), (2, 6), (3, 4), (3, 12)])
    def test_recursion_is_isomorphism(self, d, n):
        """L(II(d,n)) == II(d,dn) under arc (u,a) -> d*u + a - 1."""
        from repro.graphs import line_digraph

        small = imase_itoh_graph(d, n)
        big = imase_itoh_graph(d, d * n)
        lg = line_digraph(small)
        # line_digraph node order is CSR arc order of `small`; map each
        # arc to its (u, a) and then to the predicted big-node id.
        mapping = []
        for u, v in small.arc_array().tolist():
            a = (-d * u - v) % n
            if a == 0:
                a = n
            # offsets collide for small n; recover *an* offset giving v
            candidates = [
                off for off in range(1, d + 1) if (-d * u - off) % n == v
            ]
            assert candidates
            # CSR sorts arcs by head v; reproduce deterministic choice:
            # assign offsets to equal-v arcs in increasing offset order.
            a = candidates[0]
            mapping.append(d * u + (a - 1))
        if len(set(mapping)) == len(mapping):
            assert check_isomorphism(lg, big, mapping)
        else:
            # Parallel-arc ties: fall back to size/degree laws.
            assert lg.num_nodes == big.num_nodes
            assert lg.num_arcs == big.num_arcs


class TestKautzIsomorphism:
    @pytest.mark.parametrize("d,k", [(1, 2), (2, 1), (2, 2), (2, 3), (3, 2), (3, 3), (4, 2)])
    def test_explicit_word_map_is_isomorphism(self, d, k):
        kg = kautz_graph(d, k)
        ii = imase_itoh_graph(d, kautz_num_nodes(d, k))
        mapping = [
            kautz_word_to_imase_itoh_index(kg.label_of(u), d)
            for u in range(kg.num_nodes)
        ]
        assert check_isomorphism(kg, ii, mapping)

    @pytest.mark.parametrize("d,k", [(2, 2), (2, 4), (3, 2), (3, 3), (5, 2)])
    def test_inverse_roundtrip(self, d, k):
        n = kautz_num_nodes(d, k)
        for w in range(n):
            word = imase_itoh_index_to_kautz_word(w, d, k)
            assert is_kautz_word(word, d)
            assert kautz_word_to_imase_itoh_index(word, d) == w

    def test_word_map_rejects_invalid(self):
        with pytest.raises(ValueError):
            kautz_word_to_imase_itoh_index((0, 0), 2)

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            imase_itoh_index_to_kautz_word(12, 3, 2)

    def test_arcs_map_to_arcs(self):
        """Word shift arcs land on II congruence arcs."""
        d, k = 3, 2
        n = kautz_num_nodes(d, k)
        kg = kautz_graph(d, k)
        for u in range(n):
            wu = kg.label_of(u)
            iu = kautz_word_to_imase_itoh_index(wu, d)
            for v in kg.successors(u).tolist():
                iv = kautz_word_to_imase_itoh_index(kg.label_of(v), d)
                assert iv in imase_itoh_successors(iu, d, n)

    def test_kg52_diameter_check(self):
        """Larger instance: II(5, 30) == KG(5, 2) has diameter 2."""
        ii = imase_itoh_graph(5, 30)
        assert diameter(ii) == 2

    def test_paper_fig10_exact_pairing(self):
        """The node/word pairing drawn in paper Fig. 10 is itself an
        isomorphism KG(3,2) -> II(3,12).  (It differs from our explicit
        bijection by a graph automorphism; both are valid.)"""
        fig10 = {
            0: (0, 1), 1: (0, 3), 2: (0, 2), 3: (2, 0), 4: (2, 1),
            5: (2, 3), 6: (3, 2), 7: (3, 0), 8: (3, 1), 9: (1, 3),
            10: (1, 2), 11: (1, 0),
        }
        kg = kautz_graph(3, 2)
        ii = imase_itoh_graph(3, 12)
        word_to_ii = {w: u for u, w in fig10.items()}
        mapping = [word_to_ii[kg.label_of(u)] for u in range(12)]
        assert check_isomorphism(kg, ii, mapping)
