#!/usr/bin/env python3
"""Quickstart: drive the paper's flagship design through the facade.

Reproduces in a few lines what Sections 2-4 of the paper develop: the
stack-Kautz network SK(6,3,2) of Fig. 7 and its complete OTIS optical
design of Fig. 12 -- all through the spec-string facade
(``repro.build`` / ``repro.route`` / ``repro.simulate`` /
``repro.design``), then routes a message through the actual hardware
ports.

Run:  python examples/quickstart.py
"""

import repro

SPEC = "sk(6,3,2)"


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The network topology (paper Fig. 7), by name.
    # ------------------------------------------------------------------
    net = repro.build(SPEC)
    print(f"network: {net}")
    print(f"  processors: {net.num_processors} in {net.num_groups} groups of 6")
    print(f"  transceivers per processor: {net.processor_degree}")
    print(f"  OPS couplers: {net.num_couplers} of degree {net.coupler_degree}")
    print(f"  optical hop diameter: {net.diameter}")
    print()

    # ------------------------------------------------------------------
    # 2. The optical design (paper Fig. 12) and its bill of materials.
    # ------------------------------------------------------------------
    design = repro.design(SPEC)
    assert design.verify(), "light paths must realize the stack-graph exactly"
    print("optical design verified end-to-end; bill of materials:")
    print(design.bill_of_materials().summary())
    print()

    # ------------------------------------------------------------------
    # 3. Route a message and trace it through the hardware.
    # ------------------------------------------------------------------
    src, dst = 0, 71
    route = repro.route(SPEC, src, dst)
    print(f"routing processor {src} {net.label_of(src)} -> {dst} {net.label_of(dst)}:")
    print(f"  {route.num_hops} optical hops (diameter is {net.diameter})")
    group, index = net.label_of(src)
    for hop in route.hops:
        path = design.trace(group, index, hop.tx_port)
        print(f"  hop via port {hop.tx_port}: " + " -> ".join(path.stages))
        group = path.dst_group
        index = net.label_of(dst)[1]

    # ------------------------------------------------------------------
    # 4. Simulate a workload on the same spec string.
    # ------------------------------------------------------------------
    report = repro.simulate(SPEC, "uniform", messages=300, seed=1)
    print()
    print(f"simulated 300 uniform messages: {report.row()}")

    # ------------------------------------------------------------------
    # 5. Check the optical power budget closes.
    # ------------------------------------------------------------------
    budget = design.worst_case_power_budget()
    print()
    print(f"worst-case light path loss: {budget.total_loss_db():.2f} dB, "
          f"link margin {budget.margin_db():.2f} dB "
          f"({'closes' if budget.is_feasible() else 'DOES NOT close'})")


if __name__ == "__main__":
    main()
