#!/usr/bin/env python3
"""Fault-tolerant routing on a Kautz-based machine (paper Sec. 2.5).

Demonstrates the d-1 fault survival claim on KG(3, 3) (36 groups):
inject node and link faults, route around them within the k+2 bound,
and show what happens past the guarantee (d faults can disconnect).

Run:  python examples/fault_tolerant_routing.py
"""

from repro.graphs import kautz_words
from repro.routing import (
    FaultSet,
    candidate_paths,
    fault_tolerant_route,
    kautz_route,
)

D, K = 3, 3


def show(label: str, path) -> None:
    if path is None:
        print(f"  {label}: NO ROUTE")
    else:
        pretty = " -> ".join("".join(map(str, w)) for w in path)
        print(f"  {label}: {pretty}   (length {len(path) - 1})")


def main() -> None:
    words = list(kautz_words(D, K))
    x, y = words[0], words[-1]
    print(f"KG({D},{K}): routing {''.join(map(str, x))} -> {''.join(map(str, y))}")
    print(f"guarantee: surviving route of length <= k+2 = {K + 2} under d-1 = {D - 1} faults\n")

    greedy = kautz_route(x, y, D)
    show("fault-free greedy route", greedy)

    # ------------------------------------------------------------------
    # Fault 1..d-1: kill internal nodes of the greedy route, reroute.
    # ------------------------------------------------------------------
    faults: list = []
    current = greedy
    for trial in range(D - 1):
        internal = [w for w in current[1:-1] if w not in faults]
        if not internal:
            break
        faults.append(internal[0])
        fault_set = FaultSet.of(nodes=faults)
        current = fault_tolerant_route(x, y, D, fault_set, max_length=K + 2)
        print(f"\nafter killing node {''.join(map(str, faults[-1]))} "
              f"({len(faults)} fault(s)):")
        show("rerouted", current)
        assert current is not None and not fault_set.blocks(current)

    # ------------------------------------------------------------------
    # Link faults: kill the first arc repeatedly.
    # ------------------------------------------------------------------
    print("\nlink faults on every greedy first hop:")
    arc_faults = []
    route = greedy
    for _ in range(D - 1):
        arc_faults.append((route[0], route[1]))
        fs = FaultSet.of(arcs=arc_faults)
        route = fault_tolerant_route(x, y, D, fs, max_length=K + 2)
        show(f"avoiding {len(arc_faults)} dead link(s)", route)
        assert route is not None

    # ------------------------------------------------------------------
    # The candidate family behind the guarantee.
    # ------------------------------------------------------------------
    cands = candidate_paths(x, y, D)
    print(f"\nstructured candidate family: {len(cands)} simple paths, "
          f"lengths {sorted(set(len(p) - 1 for p in cands))}")
    first_hops = sorted({''.join(map(str, p[1])) for p in cands if len(p) > 1})
    print(f"distinct first hops covered: {first_hops} (need all {D} for d-1 faults)")

    # ------------------------------------------------------------------
    # Past the guarantee: d faults can sever the source completely.
    # ------------------------------------------------------------------
    neighbors = [x[1:] + (z,) for z in range(D + 1) if z != x[-1]]
    fs = FaultSet.of(nodes=neighbors)
    print(f"\nkilling all {D} out-neighbors of the source (one past the bound):")
    show("route", fault_tolerant_route(x, y, D, fs))


if __name__ == "__main__":
    main()
