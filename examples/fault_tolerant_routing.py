#!/usr/bin/env python3
"""Fault-tolerant routing and survivability, facade edition (Sec. 2.5).

The d-1 fault survival claim, demonstrated on *built* networks instead
of hand-assembled Kautz words: inject seeded fault scenarios through
``repro.degrade``, watch degraded-mode routing stay within the k+2
bound, then sweep Monte-Carlo survivability across every registered
family with ``repro.resilience_sweep``.

Run:  PYTHONPATH=src python examples/fault_tolerant_routing.py
"""

import repro

SPEC = "sk(2,3,2)"  # d = 3: survives any d-1 = 2 faults within k+2


def show_route(tag: str, path) -> None:
    if path is None:
        print(f"  {tag}: NO ROUTE")
    else:
        pretty = " -> ".join(str(g) for g in path)
        print(f"  {tag}: groups {pretty}   (length {len(path) - 1})")


def main() -> None:
    net = repro.build(SPEC)
    k, d = net.diameter, net.degree
    print(f"{SPEC}: {net.num_processors} processors, "
          f"{net.num_groups} groups, {net.num_couplers} couplers")
    print(f"guarantee: routes of length <= k+2 = {k + 2} under "
          f"d-1 = {d - 1} faults\n")

    # ------------------------------------------------------------------
    # Kill the current route's first hop, d-1 times: always a detour.
    # ------------------------------------------------------------------
    from repro.resilience import DegradedNetwork, FaultScenario

    endpoints_by_arc = {
        arc: c
        for c, arc in enumerate(repro.resilience.coupler_endpoints(net))
    }
    src_group, dst_group = 0, net.num_groups - 1
    dead: set = set()
    deg = repro.degrade(SPEC, faults=0)
    path = deg.fault_route(src_group, dst_group)
    show_route("fault-free route", path)
    for trial in range(d - 1):
        dead.add(endpoints_by_arc[(path[0], path[1])])
        deg = DegradedNetwork(
            net, FaultScenario(SPEC, "manual", trial, couplers=frozenset(dead))
        )
        path = deg.fault_route(src_group, dst_group)
        show_route(f"after killing first-hop coupler #{len(dead)}", path)
        assert path is not None and len(path) - 1 <= k + 2

    # ------------------------------------------------------------------
    # The adversarial model attacks the first-hop diversity directly.
    # ------------------------------------------------------------------
    print("\nadversarial worst-first-hop attack:")
    endpoints = repro.resilience.coupler_endpoints(net)
    for faults in (d - 1, d):
        deg = repro.degrade(SPEC, model="adversarial", faults=faults, seed=0)
        victim = min(endpoints[c][0] for c in deg.dead_couplers)
        row = repro.resilience.measure(deg, messages=40, seed=1)
        print(f"  {faults} first-hop fault(s) at group {victim}: "
              f"connectivity {row.connectivity:.3f}, "
              f"delivery {row.delivery_ratio:.3f} "
              f"({'within guarantee' if faults < d else 'past it'})")

    # ------------------------------------------------------------------
    # Survivability table across every registered family (equal-ish N).
    # ------------------------------------------------------------------
    specs = ["pops(4,3)", "pops(6,2)", "sk(2,2,2)", "sii(2,2,6)", "sops(12)"]
    print("\nMonte-Carlo survivability, 1 random coupler fault, 30 trials:")
    print(f"  {'spec':<12} {'N':>4} {'connect p05':>12} "
          f"{'delivery p05':>13} {'latency x p95':>14} {'partitioned':>12}")
    for spec in specs:
        s = repro.resilience_sweep(
            spec, model="coupler", faults=1, trials=30, seed=7, messages=40
        )
        n = repro.build(spec).num_processors
        q = s.quantiles
        print(f"  {spec:<12} {n:>4} {q['connectivity']['p05']:>12.3f} "
              f"{q['delivery_ratio']['p05']:>13.3f} "
              f"{q['latency_inflation']['p95']:>14.2f} "
              f"{100 * s.partitioned_fraction:>11.1f}%")
    print("\nshape: multi-hop fabrics (sk/sii) and g>=3 POPS reroute around")
    print("a dead coupler at some latency cost; two-group POPS partitions")
    print("whenever the single inter-group medium dies (sops' one star is")
    print("the whole machine, so the model never removes it outright).")


if __name__ == "__main__":
    main()
