#!/usr/bin/env python3
"""OTIS and Proposition 1, interactively visible.

Renders the OTIS(3,6) lens system of paper Fig. 1 as ASCII, then walks
through the Proposition 1 association for II(3,12) == KG(3,2) (paper
Fig. 10), node by node: which OTIS inputs belong to which graph node,
where the lenses send each beam, and why the result is exactly the
Imase-Itoh neighborhood.

Run:  python examples/otis_playground.py
"""

from repro.graphs import imase_itoh_index_to_kautz_word, imase_itoh_successors
from repro.networks import OTISImaseItohRealization, imase_itoh_view
from repro.optical import OTIS, OTISLayout


def main() -> None:
    # ------------------------------------------------------------------
    # Fig. 1: the raw transpose system.
    # ------------------------------------------------------------------
    otis = OTIS(3, 6)
    layout = OTISLayout(otis)
    print(layout.render_ascii())
    print()
    print(f"geometry check (block imaging with inversion): "
          f"{layout.verify_transpose_geometry()}")
    print(f"free-space beam crossings replaced by lenses: {layout.crossing_count()}")
    print()

    # ------------------------------------------------------------------
    # Proposition 1 on II(3,12) (Fig. 10).
    # ------------------------------------------------------------------
    r = OTISImaseItohRealization(3, 12)
    print("Proposition 1: OTIS(3,12) realizes II(3,12) == KG(3,2)")
    print(f"machine-check: {r.verify()}\n")

    for u in (0, 3, 11):
        word = "".join(map(str, imase_itoh_index_to_kautz_word(u, 3, 2)))
        print(f"node {u} (Kautz word {word}):")
        print(f"  owns OTIS inputs  {r.inputs_of_node(u)}")
        print(f"  owns OTIS outputs {r.outputs_of_node(u)}")
        for a, (i, j) in enumerate(r.inputs_of_node(u), start=1):
            gr, idx = r.otis.receiver_of(i, j)
            v = (-3 * u - a) % 12
            print(f"  input ({i},{j})  --lenses-->  output ({gr},{idx})"
                  f"  = node {gr}   [congruence: (-3*{u}-{a}) mod 12 = {v}]")
        assert r.realized_successors(u) == imase_itoh_successors(u, 3, 12)
        print()

    # ------------------------------------------------------------------
    # The conclusion's corollary: any OTIS *is* an Imase-Itoh graph.
    # ------------------------------------------------------------------
    g = imase_itoh_view(OTIS(4, 9))
    print(f"imase_itoh_view(OTIS(4,9)) -> {g!r}")
    print("so OTIS-based architectures inherit II theory: diameter "
          "<= ceil(log_d n), label routing, d-connectivity.")


if __name__ == "__main__":
    main()
