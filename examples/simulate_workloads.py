#!/usr/bin/env python3
"""Execute equal-size POPS and stack-Kautz machines under load.

The comparison the paper poses but never runs: a single-hop POPS(12,4)
vs a multi-hop SK(4,2,3), both 48 processors, under uniform, local,
hotspot and permutation workloads, on the slotted single-wavelength
simulator.  Also demonstrates collective schedules (broadcast, gossip)
exploiting the one-to-many couplers.

Run:  python examples/simulate_workloads.py
"""

from repro.comm import pops_broadcast, pops_gossip, stack_kautz_broadcast
from repro.networks import POPSNetwork, StackKautzNetwork
from repro.simulation import (
    group_local_traffic,
    hotspot_traffic,
    permutation_traffic,
    pops_simulator,
    run_traffic,
    stack_kautz_simulator,
    uniform_traffic,
)

N = 48
POPS = POPSNetwork(12, 4)
SK = StackKautzNetwork(4, 2, 3)


def compare(label: str, traffic) -> None:
    pops_rep = run_traffic(pops_simulator(POPS), traffic)
    sk_rep = run_traffic(stack_kautz_simulator(SK), traffic)
    print(f"--- {label} ({len(traffic)} messages) ---")
    print(f"  POPS(12,4): {pops_rep.row()}")
    print(f"  SK(4,2,3):  {sk_rep.row()}")
    print()


def main() -> None:
    print(f"equal-size machines, N = {N}:")
    print(f"  POPS(12,4): single-hop, {POPS.transmitters_per_processor} tx/node, "
          f"{POPS.num_couplers} couplers of degree 12")
    print(f"  SK(4,2,3):  diameter {SK.diameter}, {SK.processor_degree} tx/node, "
          f"{SK.num_couplers} couplers of degree 4")
    print()

    compare("uniform random", uniform_traffic(N, 480, seed=1))
    compare("group-local (80%)", group_local_traffic(N, 4, 480, seed=2))
    compare("hotspot (30% to node 0)", hotspot_traffic(N, 480, fraction=0.3, seed=3))
    compare("permutation", permutation_traffic(N, seed=4))

    print("--- collective schedules (verified, slot-exact) ---")
    print(f"  POPS one-to-all broadcast: {pops_broadcast(POPS, 0).num_slots} slot")
    print(f"  SK   one-to-all broadcast: {stack_kautz_broadcast(SK, 0).num_slots} slots "
          f"(<= diameter {SK.diameter})")
    print(f"  POPS all-to-all gossip:    {pops_gossip(POPS).num_slots} slots (= t)")


if __name__ == "__main__":
    main()
