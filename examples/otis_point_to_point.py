#!/usr/bin/env python3
"""OTIS as a point-to-point interconnect: the [24] swap networks.

Before the paper turns OTIS into multi-OPS machines, it recalls (Sec.
2.1) that OTIS replaces wire bundles in electronic networks: put a
copy of any factor network G in each of n groups and let one
OTIS(n, n) supply every inter-group link.  The conclusion adds that
OTIS *is* an Imase-Itoh graph, so such networks inherit II theory.
This example builds OTIS-hypercube and OTIS-Kautz machines, checks the
classical diameter law, and shows the II view.

Run:  python examples/otis_point_to_point.py
"""

from repro.comm import hypercube_graph
from repro.graphs import (
    complete_digraph,
    diameter,
    enumerate_automorphisms,
    imase_itoh_graph,
    kautz_graph,
)
from repro.networks import (
    imase_itoh_view,
    otis_network,
    swap_distance_bound,
    verify_swap_arcs_match_otis,
)
from repro.optical import OTIS


def main() -> None:
    print("=== OTIS-G swap networks (Zane et al. [24]) ===\n")
    factories = [
        ("complete K_4", complete_digraph(4)),
        ("hypercube Q3", hypercube_graph(3)),
        ("Kautz KG(2,2)", kautz_graph(2, 2)),
    ]
    for name, factor in factories:
        net = otis_network(factor)
        print(f"factor {name}: n = {factor.num_nodes}")
        print(f"  OTIS-G machine: N = {net.num_nodes} processors, "
              f"{net.num_arcs} links ({factor.num_nodes * factor.num_arcs} "
              f"electronic + {factor.num_nodes * (factor.num_nodes - 1)} optical)")
        print(f"  diameter: {diameter(net)}  "
              f"(law: <= 2*diam(G)+1 = {swap_distance_bound(factor)})")
        print(f"  optical swap arcs == OTIS({factor.num_nodes},{factor.num_nodes}) "
              f"hardware: {verify_swap_arcs_match_otis(factor)}")
        print()

    print("=== the conclusion's corollary: OTIS is an Imase-Itoh graph ===\n")
    otis = OTIS(4, 9)
    g = imase_itoh_view(otis)
    print(f"{otis} grouped per Proposition 1 -> {g!r}")
    print(f"equals II(4, 9): {g == imase_itoh_graph(4, 9)}")
    print("so any OTIS-based design inherits II theory: diameter <=",
          "ceil(log_d n), congruence routing, d-connectivity.\n")

    print("=== labeling freedom (why Fig. 10's labels differ from ours) ===\n")
    autos = enumerate_automorphisms(kautz_graph(3, 2))
    print(f"|Aut(KG(3,2))| = {len(autos)} = 4! -- the alphabet permutations.")
    print("any of the 24 labelings is a valid Fig. 10; the tests check both")
    print("the paper's pairing and this library's explicit bijection.")


if __name__ == "__main__":
    main()
