#!/usr/bin/env python3
"""Survivability-per-cost design search, facade edition.

The question the paper's Section 4 answers for two hand-picked designs
-- POPS(4,2) vs SK(6,3,2), priced in OTIS stages and transceivers --
asked over a whole candidate window: of every buildable network up to
N processors, which designs buy the most surviving connectivity per
unit of optical hardware under injected faults?

Run:  PYTHONPATH=src python examples/design_search.py
"""

import repro
from repro.design_search import CostModel

MAX_N = 24
FAULTS = 2
TRIALS = 96


def main() -> None:
    # ------------------------------------------------------------------
    # The search: enumerate, price, sweep, rank.  Deterministic: the
    # same seed gives byte-identical JSON on every run.
    # ------------------------------------------------------------------
    result = repro.design_search(
        max_processors=MAX_N,
        min_processors=12,
        families=("pops", "sk", "sii"),
        model="coupler",
        faults=FAULTS,
        trials=TRIALS,
        seed=0,
        min_groups=2,           # exclude degenerate single-star machines
        max_coupler_degree=8,   # keep splitting loss (10 log10 s) sane
        min_margin_db=0.0,      # the optical link must actually close
        top=12,
    )
    print(result.formatted())
    print()

    best = result.best()
    print(f"winner: {best.spec} -- {best.processors} processors, "
          f"diameter {best.diameter}, {best.cost:.0f} cost units, "
          f"{best.survivability:.3f} mean connectivity under "
          f"{FAULTS} coupler fault(s)")
    print(f"pareto front: {', '.join(result.pareto)}")
    print()

    # ------------------------------------------------------------------
    # Re-price under different economics: free-space optics dominated
    # by transceiver cost vs lens-/alignment-dominated assembly.
    # ------------------------------------------------------------------
    transceiver_heavy = CostModel(transmitter=900.0, receiver=700.0)
    alignment_heavy = CostModel(lens=150.0, otis_stage=600.0)
    for tag, pricing in (("transceiver-heavy", transceiver_heavy),
                         ("alignment-heavy", alignment_heavy)):
        repriced = repro.design_search(
            max_processors=MAX_N,
            min_processors=12,
            families=("pops", "sk", "sii"),
            faults=FAULTS,
            trials=TRIALS,
            seed=0,
            min_groups=2,
            max_coupler_degree=8,
            cost_model=pricing,
            top=3,
        )
        podium = ", ".join(c.spec for c in repriced)
        print(f"{tag:<18} top-3: {podium}")

    # ------------------------------------------------------------------
    # Why it is tractable: the scoring sweep is the batched backend's
    # connectivity fast path -- compare one candidate's sweep to the
    # full-metrics mode.
    # ------------------------------------------------------------------
    print()
    spec = best.spec
    fast = repro.resilience_sweep(
        spec, faults=FAULTS, trials=TRIALS, metrics="connectivity"
    )
    full = repro.resilience_sweep(
        spec, faults=FAULTS, trials=TRIALS, messages=40, metrics="full"
    )
    assert fast.quantiles["connectivity"] == full.quantiles["connectivity"]
    print(f"{spec}: connectivity quantiles identical in both modes; the "
          f"fast path just skips routing + simulation per trial")


if __name__ == "__main__":
    main()
