#!/usr/bin/env python3
"""Design-space exploration: pick a multiprocessor interconnect.

The engineering workflow the paper enables: given a target machine
size, enumerate every registered configuration through the family
registry, compare transceiver cost, coupler count, lens count,
diameter and optical power margin, check which configurations close
the link budget with a chosen laser/receiver pair -- then sweep
workloads over the shortlist in one ``repro.sweep`` call.

Run:  python examples/design_explorer.py [N]
"""

import sys

import repro
from repro.analysis import TopologyRow, equal_size_comparison
from repro.optical import Receiver, Transmitter, max_ops_degree


def main() -> None:
    target_n = int(sys.argv[1]) if len(sys.argv) > 1 else 144

    print(f"=== all configurations with N = {target_n} (every registered family) ===\n")
    rows = equal_size_comparison(target_n, families=repro.family_keys())
    print(TopologyRow.header())
    for row in rows:
        print(row.formatted())

    # ------------------------------------------------------------------
    # Filter by an actual optical budget: a 0 dBm laser, -30 dBm
    # receiver, 3 dB margin.  The coupler degree (= group size) is the
    # loss driver through its 10*log10(s) splitting term.
    # ------------------------------------------------------------------
    tx, rx = Transmitter(power_dbm=0.0), Receiver(sensitivity_dbm=-30.0)
    fixed_loss = 3 * 1.0 + 0.5  # three lens pairs + mux excess
    ceiling = max_ops_degree(tx, fixed_loss, rx, required_margin_db=3.0)
    print(f"\nOPS degree ceiling for this transceiver pair: {ceiling}")

    feasible = [r for r in rows if r.coupler_degree <= ceiling]
    print(f"{len(feasible)}/{len(rows)} configurations close the budget with 3 dB margin")

    # ------------------------------------------------------------------
    # Pick the cheapest feasible stack-Kautz design by lens count and
    # print its full inventory -- rebuilt from its name via the facade.
    # ------------------------------------------------------------------
    sk_rows = [r for r in feasible if r.name.startswith("SK")]
    if not sk_rows:
        print("no feasible stack-Kautz configuration at this size")
        return
    best = min(sk_rows, key=lambda r: (r.transceivers_per_processor, r.lenses))
    print(f"\nselected design: {best.name} "
          f"(diameter {best.diameter}, {best.transceivers_per_processor} tx/node)")

    spec = repro.NetworkSpec.parse(best.name.lower())
    design = repro.design(spec)
    assert design.verify()
    print(design.bill_of_materials().summary())

    # ------------------------------------------------------------------
    # Shake out the shortlist under real traffic: a specs x workloads
    # matrix in one call.
    # ------------------------------------------------------------------
    shortlist = [r.name.lower() for r in feasible[:3]]
    if shortlist:
        print(f"\n=== workload sweep over {', '.join(shortlist)} ===\n")
        result = repro.sweep(shortlist, ["uniform", "permutation"], messages=200)
        print(result.formatted())


if __name__ == "__main__":
    main()
