"""FIG-7: the stack-Kautz network SK(6, 3, 2).

Fig. 7 draws SK(6,3,2): 12 groups of 6 processors (72 total) over
KG(3,2), degree 4, diameter 2.  The benchmark rebuilds the network,
machine-checks Definition 4, and regenerates the group table with
Kautz words.
"""

from repro.networks import StackKautzNetwork
from repro.routing import stack_kautz_distance


def bench_fig07_stack_kautz_6_3_2(benchmark, record_artifact):
    def build_and_verify():
        net = StackKautzNetwork(6, 3, 2)
        net.verify_definition()
        return net

    net = benchmark(build_and_verify)
    assert net.num_processors == 72
    assert net.processor_degree == 4
    assert net.diameter == 2

    art = [
        "stack-Kautz SK(6,3,2) (paper Fig. 7)",
        f"processors: {net.num_processors} = 6 x 12   degree: {net.processor_degree}   diameter: {net.diameter}",
        f"couplers:   {net.num_couplers} of degree 6 (3 Kautz + 1 loop per group)",
        "",
        "group  word  processors        Kautz successors",
    ]
    for x in range(net.num_groups):
        word = "".join(map(str, net.group_word(x)))
        members = net.group_members(x)
        succ = net.group_successors(x)
        art.append(
            f"  {x:>3}   {word}   {members[0]:>2}..{members[-1]:<2}            {succ}"
        )
    record_artifact("fig07_stack_kautz.txt", "\n".join(art))


def bench_fig07_hop_distance_histogram(benchmark, record_artifact):
    """Hop-distance profile over all 72*72 processor pairs."""
    net = StackKautzNetwork(6, 3, 2)

    def histogram():
        counts = {}
        for src in range(net.num_processors):
            for dst in range(net.num_processors):
                h = stack_kautz_distance(net, src, dst)
                counts[h] = counts.get(h, 0) + 1
        return counts

    counts = benchmark(histogram)
    assert max(counts) == net.diameter
    total = sum(counts.values())
    assert total == net.num_processors**2

    art = ["SK(6,3,2) hop-distance distribution over all ordered pairs", ""]
    for h in sorted(counts):
        art.append(f"  {h} hops: {counts[h]:>5} pairs ({100 * counts[h] / total:5.1f}%)")
    record_artifact("fig07_hop_histogram.txt", "\n".join(art))
