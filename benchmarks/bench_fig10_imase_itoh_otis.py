"""FIG-10: II(3, 12) == KG(3, 2) realized by OTIS(3, 12).

The paper's central worked example: the Imase-Itoh graph on 12 nodes
of degree 3, its Kautz word labels, and its optical realization by one
OTIS(3, 12) under the Proposition 1 association.  The benchmark
regenerates the node table (II id, Kautz word, successors, OTIS
inputs) and machine-checks the realization.  (Our word labeling
differs from Fig. 10's by a graph automorphism -- see EXPERIMENTS.md.)
"""

from repro.graphs import (
    check_isomorphism,
    imase_itoh_graph,
    imase_itoh_index_to_kautz_word,
    kautz_graph,
    kautz_word_to_imase_itoh_index,
)
from repro.networks import OTISImaseItohRealization


def bench_fig10_realization(benchmark, record_artifact):
    r = OTISImaseItohRealization(3, 12)

    result = benchmark(r.verify)
    assert result

    art = [
        "II(3,12) == KG(3,2) realized by OTIS(3,12)  (paper Fig. 10, Prop. 1)",
        "",
        "node  word  II successors   OTIS inputs (i,j)            OTIS outputs",
    ]
    for u in range(12):
        word = "".join(map(str, imase_itoh_index_to_kautz_word(u, 3, 2)))
        succ = r.realized_successors(u)
        ins = r.inputs_of_node(u)
        outs = r.outputs_of_node(u)
        art.append(
            f"  {u:>2}   {word}   {succ}     {ins}   {outs[0]}..{outs[-1]}"
        )
    art += [
        "",
        "verified: optics deliver node u's inputs to exactly the successors",
        "(-3u-a) mod 12 in offset order a = 1, 2, 3",
    ]
    record_artifact("fig10_imase_itoh_otis.txt", "\n".join(art))


def bench_fig10_automorphism_group(benchmark, record_artifact):
    """Why Fig. 10's labels and ours can both be right: |Aut| = (d+1)!."""
    from repro.graphs import enumerate_automorphisms

    g = kautz_graph(3, 2)

    autos = benchmark(enumerate_automorphisms, g)
    assert len(autos) == 24

    record_artifact(
        "fig10_automorphisms.txt",
        "\n".join(
            [
                "automorphism group of KG(3,2) == II(3,12)",
                "",
                f"|Aut| = {len(autos)} = 4! -- the alphabet permutations.",
                "any two of the 24 labelings (the paper's Fig. 10 pairing and",
                "this library's explicit bijection among them) differ by one",
                "of these automorphisms; both are machine-checked isomorphisms.",
            ]
        ),
    )


def bench_fig10_isomorphism(benchmark):
    """Explicit word bijection KG(3,2) -> II(3,12) checks as isomorphism."""
    kg = kautz_graph(3, 2)
    ii = imase_itoh_graph(3, 12)

    def build_and_check():
        mapping = [
            kautz_word_to_imase_itoh_index(kg.label_of(u), 3)
            for u in range(kg.num_nodes)
        ]
        return check_isomorphism(kg, ii, mapping)

    assert benchmark(build_and_check)
