"""EXT-5: the structure behind the k+2 fault-tolerance claim.

The d-wide diameter of KG(d, k) -- the smallest L such that every
ordered pair has d internally node-disjoint paths of length <= L --
is measured exactly on figure-sized instances and lands on k+2, which
is precisely why routing survives d-1 faults within k+2 hops.  The
exhaustive fault diameter (worst surviving BFS distance over all
(d-1)-fault sets) is measured alongside.
"""

from repro.analysis.wide_diameter import fault_diameter, wide_diameter
from repro.graphs import diameter, kautz_graph


def bench_ext5_wide_diameter(benchmark, record_artifact):
    cases = [(2, 2), (3, 2), (2, 3)]

    def sweep():
        return [
            (d, k, diameter(kautz_graph(d, k)), wide_diameter(kautz_graph(d, k), d))
            for d, k in cases
        ]

    rows = benchmark(sweep)

    art = [
        "d-wide diameter of KG(d, k): d node-disjoint paths, max length",
        "",
        "  d  k   diameter   d-wide diameter   k+2",
    ]
    for d, k, diam, wd in rows:
        assert wd == k + 2, (d, k, wd)
        art.append(f"  {d}  {k}   {diam:>8}   {wd:>15}   {k + 2:>3}")
    art += [
        "",
        "measured d-wide diameter == k+2 exactly: d-1 faults can kill at",
        "most d-1 of the d disjoint paths, so a length <= k+2 route always",
        "survives -- the paper's Sec. 2.5 claim, now structural.",
    ]
    record_artifact("ext5_wide_diameter.txt", "\n".join(art))


def bench_ext5_fault_diameter(benchmark, record_artifact):
    cases = [(2, 2), (3, 2)]

    def sweep():
        return [
            (d, k, fault_diameter(kautz_graph(d, k), d - 1)) for d, k in cases
        ]

    rows = benchmark(sweep)

    art = [
        "exhaustive fault diameter of KG(d, k) under d-1 node faults",
        "(worst surviving shortest-path distance over ALL fault sets)",
        "",
        "  d  k   fault diameter   k+2",
    ]
    for d, k, fd in rows:
        assert fd <= k + 2
        art.append(f"  {d}  {k}   {fd:>14}   {k + 2:>3}")
    art += [
        "",
        "fault diameter <= wide diameter: surviving shortest paths can be",
        "shorter than the worst disjoint-path bound.",
    ]
    record_artifact("ext5_fault_diameter.txt", "\n".join(art))
