"""EXT-12: adaptive importance sampling in the rare-event regime.

The headline claim of the adaptive Monte-Carlo engine: on
``sk(2,2,2)`` with ``BernoulliCouplerFaults(rate=0.0075)`` -- survival
~0.999, the regime where a uniform sampler sees one failure per
thousand trials -- sequential stopping plus importance sampling
reaches a +-0.001 95 % interval with **>= 3x fewer trials** than the
fixed-count vectorized sweep needs for the same precision.

The comparison is kept honest three ways:

* the fixed-trial budget is not a formula guess: we *run* the fixed
  vectorized sweep at the Wilson-derived equal-precision budget and
  report the interval it actually achieves;
* the adaptive interval is checked against an exact reference --
  truncated enumeration of every fault set of cardinality <= 3 (987
  connectivity checks; the ignored k >= 4 binomial tail carries
  ~9e-6 of probability and brackets the truth);
* trials "spent" counts every trial the stopper scheduled, not just
  the last wave.

Headline numbers land in ``BENCH_adaptive.json``.
"""

import itertools
import json
import math
import time

from repro.core import build
from repro.resilience import BernoulliCouplerFaults, survivability_sweep
from repro.resilience.adaptive import Z95, wilson_interval
from repro.resilience.degrade import degrade_network
from repro.resilience.faults import FaultScenario
from repro.resilience.metrics import alive_connectivity_ratio

SPEC = "sk(2,2,2)"
RATE = 0.0075
CI_TARGET = 0.001
TRIALS_CAP = 50_000
SEED = 0
ENUM_KMAX = 3


def _exact_survival_bracket(net):
    """(lower, upper) bound on survival by truncated enumeration."""
    m = net.num_couplers
    pmf = [
        math.comb(m, k) * RATE**k * (1.0 - RATE) ** (m - k)
        for k in range(m + 1)
    ]
    failure = 0.0
    for k in range(1, ENUM_KMAX + 1):
        fails = 0
        for subset in itertools.combinations(range(m), k):
            scenario = FaultScenario(
                spec=SPEC, model="oracle", seed=0, couplers=frozenset(subset)
            )
            if alive_connectivity_ratio(degrade_network(net, scenario)) < 1.0:
                fails += 1
        failure += pmf[k] * fails / math.comb(m, k)
    tail = sum(pmf[ENUM_KMAX + 1 :])
    return 1.0 - failure - tail, 1.0 - failure


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def bench_ext_adaptive_rare_event(benchmark, record_artifact):
    """Adaptive+IS hits +-0.001 with >= 3x fewer trials than fixed."""
    model = BernoulliCouplerFaults(rate=RATE)
    net = build(SPEC)
    exact_lo, exact_hi = _exact_survival_bracket(net)
    assert 0.9985 < exact_lo <= exact_hi < 0.9995

    # -- adaptive importance run (timed as the benchmark body) --------
    adaptive_summary, adaptive_s = _timed(
        lambda: benchmark.pedantic(
            lambda: survivability_sweep(
                SPEC,
                model,
                trials=TRIALS_CAP,
                seed=SEED,
                metrics="connectivity",
                backend="vectorized",
                sampling="importance",
                ci_target=CI_TARGET,
            ),
            rounds=1,
            iterations=1,
        )
    )
    block = adaptive_summary.adaptive
    assert block is not None
    spent = block["trials_spent"]
    half = block["ci_half_width"]
    assert half <= CI_TARGET, f"stopper quit at half={half} > {CI_TARGET}"
    assert spent < TRIALS_CAP, "cap exhausted -- no adaptive saving at all"
    covered = block["ci_low"] <= exact_hi and block["ci_high"] >= exact_lo
    assert covered, (
        f"adaptive interval [{block['ci_low']}, {block['ci_high']}] misses "
        f"exact bracket [{exact_lo}, {exact_hi}]"
    )

    # -- equal-precision fixed-count vectorized baseline --------------
    # Wilson-derived budget for the SAME half-width at the estimated
    # survival; then actually run it and report the achieved interval.
    p_hat = block["survival"]
    n_fixed = math.ceil(Z95**2 * p_hat * (1.0 - p_hat) / half**2)
    fixed_summary, fixed_s = _timed(
        lambda: survivability_sweep(
            SPEC,
            model,
            trials=n_fixed,
            seed=SEED,
            metrics="connectivity",
            backend="vectorized",
        )
    )
    assert fixed_summary.adaptive is None  # fixed mode stays fixed mode
    failures = round(fixed_summary.partitioned_fraction * n_fixed)
    f_lo, f_hi = wilson_interval(n_fixed - failures, n_fixed)
    fixed_half = (f_hi - f_lo) / 2.0

    ratio = n_fixed / spent
    assert 3.0 * spent <= n_fixed, (
        f"adaptive spent {spent} vs fixed {n_fixed}: only {ratio:.2f}x"
    )
    # The fixed run must really deliver comparable precision -- the
    # budget formula is not allowed to hand the baseline an easy bar.
    assert fixed_half <= 1.5 * half, (
        f"fixed baseline too imprecise: {fixed_half} vs adaptive {half}"
    )

    payload = {
        "claim": "adaptive importance sampling reaches +-0.001 CI with "
        ">= 3x fewer trials than equal-precision fixed vectorized",
        "spec": SPEC,
        "fault_model": f"BernoulliCouplerFaults(rate={RATE})",
        "seed": SEED,
        "exact_reference": {
            "method": f"enumeration of all fault sets with k <= {ENUM_KMAX}",
            "survival_low": round(exact_lo, 8),
            "survival_high": round(exact_hi, 8),
            "neglected_tail_mass": round(exact_hi - exact_lo, 8),
        },
        "adaptive": {
            "sampling": "importance",
            "ci_target": CI_TARGET,
            "trials_cap": TRIALS_CAP,
            "trials_spent": spent,
            "rounds": block["rounds"],
            "survival": block["survival"],
            "ci_half_width": half,
            "covers_exact": covered,
            "seconds": round(adaptive_s, 3),
        },
        "fixed_equal_precision": {
            "trials": n_fixed,
            "survival": round(1.0 - fixed_summary.partitioned_fraction, 6),
            "wilson_half_width": round(fixed_half, 6),
            "seconds": round(fixed_s, 3),
        },
        "trials_ratio": round(ratio, 2),
    }
    record_artifact(
        "BENCH_adaptive.json", json.dumps(payload, indent=2, sort_keys=True)
    )
    art = [
        f"adaptive rare-event engine on {SPEC}, Bernoulli rate {RATE}:",
        "",
        f"  exact survival (k <= {ENUM_KMAX} enumeration): "
        f"[{exact_lo:.8f}, {exact_hi:.8f}]",
        f"  adaptive importance: {spent} trials, {block['rounds']} rounds, "
        f"survival {block['survival']:.6f} +- {half:.6f}",
        f"  fixed vectorized at equal precision: {n_fixed} trials, "
        f"+- {fixed_half:.6f}",
        "",
        f"  trials saved: {ratio:.1f}x fewer (target >= 3x)",
    ]
    record_artifact("ext_adaptive_rare_event.txt", "\n".join(art))
