"""CLM-1: Kautz size/degree/diameter claims of Sec. 2.5.

Claims regenerated: N = d^{k-1}(d+1), constant degree d, diameter
k <= log_d N, Eulerian, Hamiltonian.  The paper's worked example
("KG(5,4) has N = 3750") contradicts its own formula (5^3 * 6 = 750;
3750 is KG(5,5)) -- both values are reported so EXPERIMENTS.md can
record the erratum.
"""

import math

from repro.graphs import (
    diameter,
    is_eulerian,
    is_hamiltonian,
    is_regular,
    kautz_graph,
    kautz_num_nodes,
)


def bench_clm1_size_degree_diameter_sweep(benchmark, record_artifact):
    params = [(2, 1), (2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (4, 2), (4, 3), (5, 2)]

    def sweep():
        rows = []
        for d, k in params:
            g = kautz_graph(d, k)
            assert g.num_nodes == kautz_num_nodes(d, k)
            assert is_regular(g, d)
            diam = diameter(g)
            assert diam == k
            assert k <= math.log(g.num_nodes, d) + 1e-9
            rows.append((d, k, g.num_nodes, g.num_arcs, diam))
        return rows

    rows = benchmark(sweep)

    art = [
        "Kautz graph size/degree/diameter claims (paper Sec. 2.5)",
        "",
        "  d  k      N   arcs  diameter   N == d^{k-1}(d+1)?  diam == k?",
    ]
    for d, k, n, m, diam in rows:
        art.append(f"  {d}  {k}  {n:>5}  {m:>5}  {diam:>8}   yes                 yes")
    art += [
        "",
        "paper example: 'KG(5,4) has N = 3750 nodes, degree 5 and diameter 4'",
        f"  formula value for KG(5,4): {kautz_num_nodes(5, 4)}  (erratum: paper says 3750)",
        f"  3750 is KG(5,5):           {kautz_num_nodes(5, 5)}",
    ]
    record_artifact("clm1_kautz_sizes.txt", "\n".join(art))


def bench_clm1_euler_hamilton(benchmark, record_artifact):
    params = [(2, 2), (2, 3), (3, 2), (4, 2)]

    def sweep():
        rows = []
        for d, k in params:
            g = kautz_graph(d, k)
            rows.append((d, k, is_eulerian(g), is_hamiltonian(g)))
        return rows

    rows = benchmark(sweep)
    assert all(e and h for _, _, e, h in rows)

    art = [
        "Kautz graphs are Eulerian and Hamiltonian (paper Sec. 2.5, [18])",
        "",
        "  d  k   Eulerian  Hamiltonian",
    ]
    for d, k, e, h in rows:
        art.append(f"  {d}  {k}   {str(e):<8}  {str(h)}")
    record_artifact("clm1_euler_hamilton.txt", "\n".join(art))


def bench_clm1_large_kautz_construction(benchmark):
    """Build KG(5,4): 750 nodes, 3750 arcs (the corrected paper example)."""

    g = benchmark(kautz_graph, 5, 4)
    assert g.num_nodes == 750
    assert g.num_arcs == 3750
