"""FIG-8/9: group <-> OPS building blocks of Section 3.1.

Fig. 8: 6 processors feed 4 optical multiplexers via OTIS(6, 4).
Fig. 9: 3 beam-splitters feed 5 processors via OTIS(3, 5).
The benchmarks regenerate the complete port maps and verify the
full-reach properties that make the blocks correct.
"""

from repro.networks import GroupReceiveBlock, GroupTransmitBlock


def bench_fig08_transmit_block(benchmark, record_artifact):
    blk = GroupTransmitBlock(6, 4)

    result = benchmark(blk.verify_full_reach)
    assert result

    art = [
        "group transmit block (paper Fig. 8): 6 processors -> 4 multiplexers",
        f"stage: {blk.otis}   multiplexers: 4 x (fan-in 6)",
        "",
        "processor  port -> multiplexer (slot)",
    ]
    for i in range(6):
        cells = []
        for j in range(4):
            mux, slot = blk.multiplexer_of(i, j)
            cells.append(f"p{j}->m{mux}(s{slot})")
        art.append(f"   {i}       " + "  ".join(cells))
    art.append("")
    art.append("full reach verified: every processor drives every multiplexer,")
    art.append("every (multiplexer, slot) used exactly once")
    record_artifact("fig08_transmit_block.txt", "\n".join(art))


def bench_fig09_receive_block(benchmark, record_artifact):
    blk = GroupReceiveBlock(3, 5)

    result = benchmark(blk.verify_full_reach)
    assert result

    art = [
        "group receive block (paper Fig. 9): 3 beam-splitters -> 5 processors",
        f"stage: {blk.otis}   splitters: 3 x (fan-out 5)",
        "",
        "splitter  output -> processor (port)",
    ]
    for b in range(3):
        cells = []
        for c in range(5):
            proc, port = blk.receiver_of(b, c)
            cells.append(f"o{c}->n{proc}(r{port})")
        art.append(f"   {b}      " + "  ".join(cells))
    art.append("")
    art.append("full reach verified: every splitter reaches every processor once")
    record_artifact("fig09_receive_block.txt", "\n".join(art))


def bench_fig08_09_block_scaling(benchmark):
    """Full-reach verification cost over a block-size sweep."""

    def sweep():
        ok = True
        for t, g in [(8, 8), (16, 5), (32, 4), (64, 3)]:
            ok &= GroupTransmitBlock(t, g).verify_full_reach()
            ok &= GroupReceiveBlock(g, t).verify_full_reach()
        return ok

    assert benchmark(sweep)
