"""FIG-12: the complete optical design of SK(6, 3, 2) with OTIS.

The paper's flagship design: 12 OTIS(6,4) transmit stages, 12
OTIS(4,6) receive stages, 48 multiplexers, 48 beam-splitters, one
OTIS(3,12) interconnect, and fiber loops.  The benchmark regenerates
exactly those counts, verifies every light path against
sigma(6, KG+(3,2)), and audits both power budgets.
"""

from repro.networks import StackKautzDesign


def bench_fig12_stack_kautz_design_verify(benchmark, record_artifact):
    design = StackKautzDesign(6, 3, 2)

    result = benchmark(design.verify)
    assert result

    bom = design.bill_of_materials()
    # The exact Fig. 12 inventory:
    assert bom.otis_units == {(6, 4): 12, (4, 6): 12, (3, 12): 1}
    assert bom.multiplexers == 48
    assert bom.beam_splitters == 48

    sample = design.trace(0, 0, port=3)
    loop = design.trace(0, 0, port=0)
    art = [
        "optical design of SK(6,3,2) (paper Fig. 12)",
        "",
        bom.summary(),
        "",
        "paper's count: 12 OTIS(6,4), 12 OTIS(4,6), 48 multiplexers,",
        "48 beam-splitters, 1 OTIS(3,12)  -- reproduced exactly",
        "",
        "sample Kautz-arc light path (processor (0,0), port 3):",
        "  " + " -> ".join(sample.stages),
        "sample loop light path (processor (0,0), port 0):",
        "  " + " -> ".join(loop.stages),
        "",
        f"interconnect-path link margin: {design.worst_case_power_budget().margin_db():.2f} dB",
        f"loop-path link margin:         {design.loop_power_budget().margin_db():.2f} dB",
        "",
        design.render_ascii(max_groups=3),
    ]
    record_artifact("fig12_stack_kautz_design.txt", "\n".join(art))


def bench_fig12_design_family_scaling(benchmark, record_artifact):
    """Bill-of-materials scaling across the SK family (EXT-1 preview)."""

    def sweep():
        rows = []
        for s, d, k in [(6, 3, 2), (4, 2, 3), (8, 3, 3), (4, 4, 3), (16, 5, 2)]:
            design = StackKautzDesign(s, d, k)
            bom = design.bill_of_materials()
            rows.append(
                (str(design.name), design.num_processors, bom.total_otis_stages,
                 bom.multiplexers, bom.total_lenses)
            )
        return rows

    rows = benchmark(sweep)
    art = ["SK design hardware scaling", "", "design        N      otis  mux    lenses"]
    for name, n, stages, mux, lenses in rows:
        art.append(f"{name:<13} {n:<6} {stages:<5} {mux:<6} {lenses}")
    record_artifact("fig12_family_scaling.txt", "\n".join(art))


def bench_fig12_large_design_verification(benchmark):
    """Verification cost at SK(4, 3, 3): 36 groups, 144 processors."""
    design = StackKautzDesign(4, 3, 3)

    assert benchmark(design.verify)
