"""EXT-12: serving-tier throughput, latency and coalescing economics.

The serving tier puts one warm Session behind an asyncio HTTP front
with request coalescing and admission control; this benchmark measures
what that buys under concurrent load, end to end over a real socket:

* **req/s and p50/p95 latency** at 1, 4 and 16 concurrent clients,
* **warm vs cold** -- the first request on a cold server (spec build,
  context init) against steady-state requests on warm caches,
* **coalesced vs distinct** -- 16 clients firing the SAME sweep
  (single-flighted into one execution) against 16 clients firing 16
  DIFFERENT sweeps (no coalescing possible).

Coalescing must make duplicate load cheaper than distinct load; the
server must answer identical bytes to every client either way.
Headline numbers land in ``BENCH_serve.json``.
"""

import json
import statistics
import threading
import time

from repro.serve.client import ServeClient, run_in_thread

CLIENT_COUNTS = (1, 4, 16)
REQUESTS_PER_CLIENT = 4
TRIALS = 256
CONCURRENCY = 4
QUEUE_DEPTH = 64


def _sweep_payload(seed: int) -> dict:
    return {
        "spec": "sk(2,2,2)",
        "trials": TRIALS,
        "seed": seed,
        "metrics": "connectivity",
    }


def _fire_clients(client, n_clients, payload_of):
    """n_clients threads x REQUESTS_PER_CLIENT requests; latency list."""
    latencies: list[float] = []
    bodies: set[str] = set()
    lock = threading.Lock()

    def worker(index: int) -> None:
        local = ServeClient(client.host, client.port)
        for request_number in range(REQUESTS_PER_CLIENT):
            payload = payload_of(index, request_number)
            t0 = time.perf_counter()
            body, _role = local.post("sweep", payload)
            dt = time.perf_counter() - t0
            with lock:
                latencies.append(dt)
                bodies.add(json.dumps(body, sort_keys=True))

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    return latencies, wall, bodies


def _stats_row(latencies, wall):
    ordered = sorted(latencies)
    p95_index = max(0, round(0.95 * (len(ordered) - 1)))
    return {
        "requests": len(ordered),
        "wall_seconds": round(wall, 4),
        "req_per_s": round(len(ordered) / wall, 2),
        "p50_ms": round(1e3 * statistics.median(ordered), 3),
        "p95_ms": round(1e3 * ordered[p95_index], 3),
    }


def bench_ext12_serving_tier(benchmark, record_artifact):
    """Socket-level throughput/latency, with coalescing economics."""
    with run_in_thread(
        concurrency=CONCURRENCY, queue_depth=QUEUE_DEPTH, workers=0
    ) as client:
        # cold: the very first sweep pays spec build + context init
        t0 = time.perf_counter()
        client.sweep(**{"spec": "sk(2,2,2)"}, trials=TRIALS, seed=0,
                     metrics="connectivity")
        cold_ms = 1e3 * (time.perf_counter() - t0)

        # warm single-client baseline, measured through pytest-benchmark
        benchmark.pedantic(
            lambda: client.sweep(
                "sk(2,2,2)", trials=TRIALS, seed=0, metrics="connectivity"
            ),
            rounds=1,
            iterations=1,
        )

        # load points: distinct seeds -> every request really executes
        load_rows = {}
        for n_clients in CLIENT_COUNTS:
            latencies, wall, _ = _fire_clients(
                client,
                n_clients,
                lambda i, r: _sweep_payload(seed=1 + i * 1000 + r),
            )
            load_rows[str(n_clients)] = _stats_row(latencies, wall)

        # coalesced vs distinct at the widest load point
        wide = CLIENT_COUNTS[-1]
        before = client.stats()["coalescer"]
        co_lat, co_wall, co_bodies = _fire_clients(
            client, wide, lambda i, r: _sweep_payload(seed=777_000 + r)
        )
        after = client.stats()["coalescer"]
        coalesced = _stats_row(co_lat, co_wall)
        followers = after["followers"] - before["followers"]
        leaders = after["leaders"] - before["leaders"]
        assert len(co_bodies) == REQUESTS_PER_CLIENT, (
            f"{REQUESTS_PER_CLIENT} distinct payloads -> "
            f"{len(co_bodies)} distinct bodies"
        )
        assert followers > 0, "wide duplicate load must coalesce"

        di_lat, di_wall, _ = _fire_clients(
            client, wide, lambda i, r: _sweep_payload(seed=888_000 + i * 100 + r)
        )
        distinct = _stats_row(di_lat, di_wall)

        warm_ms = load_rows["1"]["p50_ms"]

    point = {
        "trials_per_sweep": TRIALS,
        "concurrency": CONCURRENCY,
        "queue_depth": QUEUE_DEPTH,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "cold_first_request_ms": round(cold_ms, 3),
        "warm_p50_ms": warm_ms,
        "load": load_rows,
        "coalesced_16_clients": {
            **coalesced,
            "leaders": leaders,
            "followers": followers,
        },
        "distinct_16_clients": distinct,
        "coalesced_speedup_vs_distinct": round(
            distinct["wall_seconds"] / coalesced["wall_seconds"], 2
        ),
    }
    record_artifact(
        "BENCH_serve.json", json.dumps(point, indent=2, sort_keys=True)
    )

    assert coalesced["wall_seconds"] <= distinct["wall_seconds"] * 1.5, (
        "duplicate load should not be slower than distinct load: "
        f"coalesced {coalesced['wall_seconds']}s vs "
        f"distinct {distinct['wall_seconds']}s"
    )
