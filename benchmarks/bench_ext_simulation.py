"""EXT-2: executed single-hop vs multi-hop comparison.

The paper argues the trade qualitatively; here the slotted simulator
runs equal-N POPS and stack-Kautz machines under uniform, hotspot and
permutation workloads and reports latency/throughput/utilization.
Expected shape: POPS wins raw latency (1 hop) but its couplers carry
more load per slot at equal offered traffic; SK holds up with far
fewer transceivers per node, paying ~k slots of latency.
"""

from repro.networks import POPSNetwork, StackKautzNetwork
from repro.simulation import (
    hotspot_traffic,
    permutation_traffic,
    pops_simulator,
    run_traffic,
    stack_kautz_simulator,
    uniform_traffic,
)

# Equal N = 48: POPS(12, 4) vs SK(4, 2, 3) (12 groups of 4, degree 3).
POPS_NET = POPSNetwork(12, 4)
SK_NET = StackKautzNetwork(4, 2, 3)
N = 48
assert POPS_NET.num_processors == SK_NET.num_processors == N


def _run_pair(traffic):
    pops_rep = run_traffic(pops_simulator(POPS_NET), traffic)
    sk_rep = run_traffic(stack_kautz_simulator(SK_NET), traffic)
    return pops_rep, sk_rep


def bench_ext2_uniform(benchmark, record_artifact):
    traffic = uniform_traffic(N, 480, seed=11)

    pops_rep, sk_rep = benchmark.pedantic(_run_pair, args=(traffic,), rounds=3, iterations=1)

    art = [
        f"uniform random traffic, {len(traffic)} messages, N = {N}",
        "",
        f"POPS(12,4) [g=4 tx/node]: {pops_rep.row()}",
        f"SK(4,2,3)  [3 tx/node]:   {sk_rep.row()}",
        "",
        "shape: POPS delivers in 1 hop; SK pays ~avg-distance hops but",
        "spreads load over more couplers (48 vs 16).",
    ]
    assert pops_rep.max_hops == 1
    assert sk_rep.max_hops <= SK_NET.diameter
    record_artifact("ext2_uniform.txt", "\n".join(art))


def bench_ext2_hotspot(benchmark, record_artifact):
    traffic = hotspot_traffic(N, 480, hotspot=0, fraction=0.3, seed=12)

    pops_rep, sk_rep = benchmark.pedantic(_run_pair, args=(traffic,), rounds=3, iterations=1)

    art = [
        f"hotspot traffic (30% to processor 0), {len(traffic)} messages, N = {N}",
        "",
        f"POPS(12,4): {pops_rep.row()}",
        f"SK(4,2,3):  {sk_rep.row()}",
        "",
        "shape: the hotspot group's inbound couplers serialize in both;",
        "max coupler utilization approaches 1.0.",
    ]
    record_artifact("ext2_hotspot.txt", "\n".join(art))


def bench_ext2_permutation(benchmark, record_artifact):
    traffic = permutation_traffic(N, seed=13)

    pops_rep, sk_rep = benchmark.pedantic(_run_pair, args=(traffic,), rounds=3, iterations=1)

    art = [
        f"permutation traffic (one message per processor), N = {N}",
        "",
        f"POPS(12,4): {pops_rep.row()}",
        f"SK(4,2,3):  {sk_rep.row()}",
    ]
    record_artifact("ext2_permutation.txt", "\n".join(art))


def bench_ext2_load_sweep(benchmark, record_artifact):
    """Latency vs offered load (Bernoulli arrivals) on both machines."""
    from repro.simulation import bernoulli_stream

    rates = (0.01, 0.03, 0.05, 0.08)

    def sweep():
        rows = []
        for rate in rates:
            traffic = bernoulli_stream(N, 60, rate, seed=14)
            if not traffic:
                continue
            p = run_traffic(pops_simulator(POPS_NET), traffic, max_slots=20000)
            s = run_traffic(stack_kautz_simulator(SK_NET), traffic, max_slots=20000)
            rows.append((rate, p.mean_latency, s.mean_latency, p.slots, s.slots))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    art = [
        "latency vs offered load (messages/processor/slot), 60-slot window",
        "",
        "  rate    POPS mean lat   SK mean lat   POPS slots  SK slots",
    ]
    for rate, pl, sl, ps, ss in rows:
        art.append(f"  {rate:<6}  {pl:>12.2f}  {sl:>12.2f}  {ps:>10}  {ss:>8}")
    art += ["", "shape: SK latency sits ~(avg hops - 1) above POPS at low load;",
            "both saturate as coupler load approaches 1 message/slot."]
    record_artifact("ext2_load_sweep.txt", "\n".join(art))
