"""FIG-1: the OTIS(3, 6) free-space transpose system.

Regenerates the connection table of paper Fig. 1 (transmitter (i, j) ->
receiver (T-1-j, G-1-i) through two lens planes), proves the drawn
geometry realizes it, and times OTIS permutation construction at
figure scale and at the size Corollary 1 needs for KG(5, 5)
(OTIS(5, 3750), 18750 beams).
"""

from repro.optical import OTIS, OTISLayout


def bench_fig01_otis_3_6_geometry(benchmark, record_artifact):
    layout = OTISLayout(OTIS(3, 6))

    result = benchmark(layout.verify_transpose_geometry)
    assert result

    art = [layout.render_ascii(), "", f"beam crossings: {layout.crossing_count()}"]
    art.append(f"lenses: {layout.otis.num_lenses} (3 plane-1 + 6 plane-2)")
    record_artifact("fig01_otis_3_6.txt", "\n".join(art))


def bench_fig01_large_otis_permutation(benchmark):
    """Permutation of OTIS(5, 3750): the stage wiring a KG(5,5) machine."""
    otis = OTIS(5, 3750)

    perm = benchmark(otis.permutation)
    assert perm.shape == (18750,)


def bench_fig01_involution_check(benchmark):
    """OTIS(64, 64) double application == identity."""
    otis = OTIS(64, 64)

    result = benchmark(otis.is_involution)
    assert result
