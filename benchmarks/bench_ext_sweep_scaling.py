"""EXT-10: the vectorized sweep backend at 10^5-10^6 trials.

PR 3's batched executor made 10^4-trial survivability sweeps routine;
this benchmark certifies the next order of magnitude.  The
``vectorized`` backend exports the built network's topology into flat
(shared-memory) numpy arrays once, draws whole trial batches of fault
masks from the same SHA-256 seed stream, and scores connectivity
metrics with batched reachability closures instead of per-trial Python
BFS.  Two headline claims:

* ``backend="vectorized"`` must beat ``backend="batched"`` by
  **>= 5x** at 10^5 trials on ``sk(2,2,2)`` in connectivity mode,
  while reproducing the batched aggregate JSON byte for byte (any
  worker count);
* a million-trial sweep must complete in one sitting, and the design
  search's ``parallelism="candidates"`` mode must rank a window
  identically to per-sweep scheduling.

Headline numbers land in ``BENCH_sweep_scaling.json``.
"""

import json
import time

from repro.design_search import design_search
from repro.resilience import survivability_sweep

SPEC = "sk(2,2,2)"
MODEL = "coupler"
FAULTS = 1
TRIALS = 100_000
MEGA_TRIALS = 1_000_000


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def bench_ext10_vectorized_sweep_scaling(benchmark, record_artifact):
    """Vectorized connectivity scoring >= 5x over batched at 1e5 trials."""
    common = dict(faults=FAULTS, trials=TRIALS, seed=0, metrics="connectivity")

    batched, batched_s = _timed(
        lambda: survivability_sweep(SPEC, MODEL, backend="batched", **common)
    )
    vectorized = benchmark.pedantic(
        lambda: survivability_sweep(SPEC, MODEL, backend="vectorized", **common),
        rounds=1,
        iterations=1,
    )
    _, vectorized_s = _timed(
        lambda: survivability_sweep(SPEC, MODEL, backend="vectorized", **common)
    )
    workers2, workers2_s = _timed(
        lambda: survivability_sweep(
            SPEC, MODEL, backend="vectorized", workers=2, **common
        )
    )
    speedup = batched_s / vectorized_s
    assert vectorized.trials == TRIALS
    byte_identical = vectorized.to_json() == batched.to_json()
    workers_identical = workers2.to_json() == batched.to_json()
    assert byte_identical, "vectorized must reproduce batched JSON exactly"
    assert workers_identical, "worker count must not change the aggregate"
    assert speedup >= 5.0, f"only {speedup:.2f}x over the batched backend"

    # the next order of magnitude: one million trials, inline
    mega, mega_s = _timed(
        lambda: survivability_sweep(
            SPEC,
            MODEL,
            backend="vectorized",
            faults=FAULTS,
            trials=MEGA_TRIALS,
            seed=0,
            metrics="connectivity",
        )
    )
    assert mega.trials == MEGA_TRIALS

    art = [
        f"{SPEC} under {FAULTS} {MODEL} fault(s), connectivity metrics:",
        "",
        f"  batched,    10^5 trials, inline:     {batched_s:8.2f} s",
        f"  vectorized, 10^5 trials, inline:     {vectorized_s:8.2f} s "
        f"({speedup:.1f}x)",
        f"  vectorized, 10^5 trials, 2 workers:  {workers2_s:8.2f} s",
        f"  vectorized, 10^6 trials, inline:     {mega_s:8.2f} s",
        "",
        f"  vectorized JSON byte-identical to batched: {byte_identical}",
        f"  worker-count invariant:                    {workers_identical}",
        "",
        "shared-memory topology arrays + batched numpy fault masks clear",
        "the >= 5x target at 10^5 trials and make 10^6-trial sweeps routine.",
    ]
    record_artifact("ext10_sweep_scaling.txt", "\n".join(art))
    point = {
        "claim": "vectorized sweep >= 5x over batched at 1e5 trials "
        "(connectivity mode)",
        "spec": SPEC,
        "model": MODEL,
        "faults": FAULTS,
        "trials": TRIALS,
        "batched_seconds": round(batched_s, 3),
        "vectorized_seconds": round(vectorized_s, 3),
        "vectorized_workers2_seconds": round(workers2_s, 3),
        "speedup_inline": round(speedup, 2),
        "mega_trials": MEGA_TRIALS,
        "mega_trials_seconds": round(mega_s, 3),
        "byte_identical_to_batched": byte_identical,
        "worker_count_invariant": workers_identical,
    }
    record_artifact(
        "BENCH_sweep_scaling.json", json.dumps(point, indent=2, sort_keys=True)
    )


def bench_ext10_candidate_parallelism(benchmark, record_artifact):
    """One shared pool across candidate sweeps ranks identically."""
    kw = dict(
        max_processors=16,
        families=("pops", "sk", "sops"),
        model=MODEL,
        faults=1,
        trials=256,
        seed=0,
        backend="vectorized",
    )
    per_sweep, per_sweep_s = _timed(lambda: design_search(**kw))
    pooled = benchmark.pedantic(
        lambda: design_search(parallelism="candidates", workers=2, **kw),
        rounds=1,
        iterations=1,
    )
    _, pooled_s = _timed(
        lambda: design_search(parallelism="candidates", workers=2, **kw)
    )
    identical = pooled.to_json() == per_sweep.to_json()
    assert identical, "candidate-level parallelism must not move the table"
    assert len(pooled) > 20

    art = [
        "design search, N <= 16, pops/sk/sops, 256 vectorized trials "
        "per candidate:",
        "",
        f"  parallelism='sweeps' (inline):          {per_sweep_s:8.2f} s",
        f"  parallelism='candidates', 2 workers:    {pooled_s:8.2f} s",
        "",
        f"  ranked table byte-identical: {identical} "
        f"({len(pooled)} candidates, {len(pooled.pareto)} on the front)",
    ]
    record_artifact("ext10_candidate_parallelism.txt", "\n".join(art))
