"""EXT-6: single-OPS vs multi-OPS -- the paper's motivating comparison.

"A great deal of research effort have been concentrated on single-hop
single-OPS topologies [10, 22, 25].  However, multi-OPS networks seem
more viable and cost-effective under current optical technology."
Executed: identical traffic through (a) one shared star (single-hop
single-OPS), (b) a de Bruijn shufflenet over one star (multi-hop
single-OPS, the [22] architecture), (c) POPS and (d) stack-Kautz at
equal N, plus the power-budget angle (the 1/N split of a single star
vs 1/t of partitioned stars).
"""

from repro.graphs import debruijn_graph
from repro.networks import POPSNetwork, SingleOPSNetwork, StackKautzNetwork, single_ops_simulator
from repro.optical import Receiver, Transmitter, max_ops_degree
from repro.simulation import (
    pops_simulator,
    run_traffic,
    stack_kautz_simulator,
    uniform_traffic,
)

N = 48


def bench_ext6_throughput_comparison(benchmark, record_artifact):
    traffic = uniform_traffic(N, 240, seed=31)
    single = SingleOPSNetwork(N)
    pops = POPSNetwork(12, 4)
    sk = StackKautzNetwork(4, 2, 3)

    def run_all():
        return (
            run_traffic(single_ops_simulator(single), traffic, max_slots=50_000),
            run_traffic(pops_simulator(pops), traffic),
            run_traffic(stack_kautz_simulator(sk), traffic),
        )

    s_rep, p_rep, k_rep = benchmark.pedantic(run_all, rounds=1, iterations=1)

    art = [
        f"single-OPS vs multi-OPS at N = {N}, {len(traffic)} uniform messages",
        "",
        f"  single-OPS star (1 coupler deg {N}):  {s_rep.row()}",
        f"  POPS(12,4)     (16 couplers deg 12): {p_rep.row()}",
        f"  SK(4,2,3)      (48 couplers deg 4):  {k_rep.row()}",
        "",
        "shape: the single star serializes the whole machine (throughput",
        "pinned at 1 msg/slot); partitioning into g^2 or n(d+1) couplers",
        "multiplies deliverable slots -- the paper's viability argument.",
    ]
    assert s_rep.slots >= p_rep.slots and s_rep.slots >= k_rep.slots
    assert abs(s_rep.throughput - 1.0) < 1e-9 or s_rep.throughput < 1.0
    record_artifact("ext6_throughput.txt", "\n".join(art))


def bench_ext6_shufflenet_baseline(benchmark, record_artifact):
    """Multi-hop single-OPS ([22]-style de Bruijn over one star), N = 32."""
    n = 32
    traffic = uniform_traffic(n, 160, seed=32)
    flat = SingleOPSNetwork(n)
    shuffle = SingleOPSNetwork(n, virtual_topology=debruijn_graph(2, 5))

    def run_both():
        return (
            run_traffic(single_ops_simulator(flat), traffic, max_slots=50_000),
            run_traffic(single_ops_simulator(shuffle), traffic, max_slots=50_000),
        )

    f_rep, s_rep = benchmark.pedantic(run_both, rounds=1, iterations=1)

    art = [
        f"single-OPS variants at N = {n}, {len(traffic)} messages",
        "",
        f"  flat star (single-hop):          {f_rep.row()}",
        f"  de Bruijn shufflenet ([22]):     {s_rep.row()}",
        "",
        "shape: the virtual topology multiplies slot cost by mean hops",
        "(every hop re-crosses the one star); its benefit is fewer tuned",
        "wavelengths per node, not throughput -- with a single wavelength",
        "it strictly loses, which is why the paper partitions the star.",
    ]
    assert s_rep.slots >= f_rep.slots
    record_artifact("ext6_shufflenet.txt", "\n".join(art))


def bench_ext6_power_ceiling(benchmark, record_artifact):
    """Machine-size ceiling from the splitting loss: 1/N vs 1/t vs 1/s."""
    tx, rx = Transmitter(power_dbm=0.0), Receiver(sensitivity_dbm=-30.0)

    def compute():
        # fixed losses: lenses + mux excess along the worst path
        ceiling = max_ops_degree(tx, 3 * 1.0 + 0.5, rx, required_margin_db=3.0)
        rows = []
        for n in (16, 64, 158, 159, 256, 1024):
            single_ok = n <= ceiling
            rows.append((n, single_ok))
        return ceiling, rows

    ceiling, rows = benchmark(compute)

    art = [
        "splitting-loss ceiling (0 dBm laser, -30 dBm receiver, 3 dB margin)",
        "",
        f"max feasible OPS degree: {ceiling}",
        "",
        "  N      single-OPS feasible?   POPS/SK coupler degree at N",
    ]
    for n, ok in rows:
        # POPS(t, g) with g = 4: coupler degree t = N/4; SK keeps s small
        art.append(
            f"  {n:<6} {'yes' if ok else 'NO':<21} t = N/g, s = N/groups (designer-chosen, stays < ceiling)"
        )
    art += [
        "",
        f"a single star cannot exceed {ceiling} processors with these parts;",
        "partitioned designs keep coupler degree = group size, which the",
        "designer holds far below the ceiling at any machine size.",
    ]
    record_artifact("ext6_power_ceiling.txt", "\n".join(art))
