"""CLM-4: Kautz optimality (Moore-bound gap) and structural properties.

"[The Kautz graph] is both Eulerian and Hamiltonian and optimal with
respect to the number of nodes if d > 2" -- regenerated as the ratio
N / MooreBound across the (d, k) table, with de Bruijn and Imase-Itoh
baselines, plus the d-connectivity that underlies fault tolerance.
"""

from repro.analysis import (
    debruijn_moore_ratio,
    kautz_moore_ratio,
    moore_bound_digraph,
)
from repro.graphs import (
    arc_connectivity,
    kautz_graph,
    kautz_num_nodes,
    node_connectivity,
)


def bench_clm4_moore_table(benchmark, record_artifact):
    ds = (2, 3, 4, 5)
    ks = (1, 2, 3, 4)

    def build_table():
        return {
            (d, k): (
                kautz_num_nodes(d, k),
                moore_bound_digraph(d, k),
                kautz_moore_ratio(d, k),
                debruijn_moore_ratio(d, k),
            )
            for d in ds
            for k in ks
        }

    table = benchmark(build_table)

    art = [
        "Kautz vs Moore bound vs de Bruijn (paper Sec. 2.5 'optimal' claim)",
        "",
        "  d  k   N_Kautz   Moore   Kautz/Moore  deBruijn/Moore",
    ]
    for d in ds:
        for k in ks:
            n, moore, kr, br = table[(d, k)]
            art.append(
                f"  {d}  {k}  {n:>7}  {moore:>6}   {kr:10.4f}   {br:12.4f}"
            )
            assert kr > br or k == 0
    art += [
        "",
        "Kautz holds the record N = d^k + d^{k-1} for the (d,k) problem;",
        "the ratio tends to 1 - 1/d^2 while de Bruijn tends to 1 - 1/d",
    ]
    record_artifact("clm4_moore_table.txt", "\n".join(art))


def bench_clm4_connectivity(benchmark, record_artifact):
    cases = [(2, 2), (2, 3), (3, 2)]

    def sweep():
        rows = []
        for d, k in cases:
            g = kautz_graph(d, k)
            rows.append((d, k, arc_connectivity(g), node_connectivity(g)))
        return rows

    rows = benchmark(sweep)

    art = [
        "Kautz connectivity (the substance behind the d-1 fault claim)",
        "",
        "  d  k   arc-connectivity  node-connectivity   == d?",
    ]
    for d, k, ac, nc in rows:
        assert ac == d and nc == d
        art.append(f"  {d}  {k}   {ac:>15}  {nc:>17}   yes")
    record_artifact("clm4_connectivity.txt", "\n".join(art))
