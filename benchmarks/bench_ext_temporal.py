"""EXT-13: temporal replay throughput and the piecewise-constant claim.

The temporal engine's design claim: replay cost scales with the number
of *segments* (state changes) in a trace, not with the horizon -- the
kernels score each piecewise-constant segment once, however many slots
it spans.  This benchmark times the connectivity-mode replay on
``sk(2,2,2)`` under brisk churn, checks a 4x horizon at the same churn
*rate* costs well under 4x, and reports the cost of ``full`` mode
(one slotted simulation per trial across the whole horizon) next to
it.  Worker byte-identity -- the subsystem's core determinism bar --
is asserted on the way.

Headline numbers land in ``BENCH_temporal.json``.
"""

import json
import time

import repro

SPEC = "sk(2,2,2)"
FAULTS = 3
MTBF = 80.0
MTTR = 20.0
TRIALS = 40
HORIZON = 2_000
SEED = 0


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _sweep(metrics="connectivity", horizon=HORIZON, trials=TRIALS,
           workers=1, messages=0):
    return repro.temporal_sweep(
        SPEC,
        faults=FAULTS,
        mtbf=MTBF,
        mttr=MTTR,
        horizon=horizon,
        trials=trials,
        seed=SEED,
        workers=workers,
        metrics=metrics,
        **({"messages": messages} if messages else {}),
    )


def bench_ext_temporal_replay(benchmark, record_artifact):
    """Segment-bound replay: events/sec up, horizon nearly free."""
    summary = benchmark.pedantic(_sweep, rounds=3, iterations=1)
    assert summary.trials == TRIALS
    q = summary.quantiles
    assert 0.0 <= q["availability"]["mean"] <= 1.0
    assert q["survivability"]["mean"] <= q["availability"]["mean"]

    # determinism bar: the summary is byte-identical at any worker count
    assert _sweep(workers=2).to_json() == summary.to_json()

    total_events = q["events"]["mean"] * TRIALS
    _, base_s = _timed(_sweep)
    events_per_s = total_events / base_s

    # same churn *rate* over a 4x horizon: ~4x the events, so the
    # piecewise-constant engine may cost ~4x -- but it must not cost
    # more than that (per-slot scoring would)
    long_summary, long_s = _timed(lambda: _sweep(horizon=4 * HORIZON))
    long_events = long_summary.quantiles["events"]["mean"] * TRIALS
    assert long_events > 2.0 * total_events
    assert long_s < 8.0 * base_s, (
        f"replay cost grew {long_s / base_s:.1f}x on a 4x horizon -- "
        f"not segment-bound"
    )

    # full mode drags one slotted simulation per trial across the
    # horizon; report its premium over the pure-kernel replay
    full_trials = 10
    _, kernel_small_s = _timed(lambda: _sweep(trials=full_trials))
    full_summary, full_s = _timed(
        lambda: _sweep(metrics="full", trials=full_trials, messages=60)
    )
    assert 0.0 <= full_summary.quantiles["delivery_ratio"]["mean"] <= 1.0
    full_premium = full_s / kernel_small_s

    payload = {
        "claim": "temporal replay cost is bound by trace segments, not "
        "horizon slots; summaries byte-identical across workers",
        "spec": SPEC,
        "process": f"coupler-renewal(faults={FAULTS}, mtbf={MTBF}, "
        f"mttr={MTTR})",
        "seed": SEED,
        "trials": TRIALS,
        "connectivity_replay": {
            "horizon": HORIZON,
            "events_total": round(total_events, 1),
            "seconds": round(base_s, 3),
            "events_per_second": round(events_per_s, 1),
            "availability_mean": q["availability"]["mean"],
        },
        "horizon_scaling": {
            "horizon": 4 * HORIZON,
            "events_total": round(long_events, 1),
            "seconds": round(long_s, 3),
            "cost_ratio": round(long_s / base_s, 2),
            "bound": 8.0,
        },
        "full_mode": {
            "trials": full_trials,
            "messages": 60,
            "seconds": round(full_s, 3),
            "kernel_only_seconds": round(kernel_small_s, 3),
            "slotted_premium": round(full_premium, 2),
            "delivery_ratio_mean": full_summary.quantiles[
                "delivery_ratio"
            ]["mean"],
        },
        "worker_byte_identity": True,
    }
    record_artifact(
        "BENCH_temporal.json", json.dumps(payload, indent=2, sort_keys=True)
    )
    art = [
        f"temporal replay on {SPEC}, coupler-renewal faults={FAULTS} "
        f"(mtbf {MTBF:.0f} / mttr {MTTR:.0f}):",
        "",
        f"  connectivity mode, horizon {HORIZON}, {TRIALS} trials: "
        f"{base_s:.3f}s ({events_per_s:.0f} events/s)",
        f"  4x horizon at the same churn rate: {long_s / base_s:.2f}x "
        f"the cost (bound: < 8x)",
        f"  full mode ({full_trials} trials, 60 msgs): "
        f"{full_premium:.1f}x the kernel-only replay",
        "",
        "  summaries byte-identical at workers=1 and workers=2",
    ]
    record_artifact("ext_temporal_replay.txt", "\n".join(art))
