"""CLM-3: Proposition 1 at scale.

"The optical interconnections of the graph of Imase and Itoh II(d, n)
... can be perfectly realized with the OTIS architecture OTIS(d, n)."
Verified here over a broad (d, n) sweep and timed up to thousands of
beams -- the regime where a real machine would live.
"""

from repro.networks import OTISImaseItohRealization, otis_for_kautz


def bench_clm3_verify_sweep(benchmark, record_artifact):
    cases = (
        [(2, n) for n in (2, 3, 5, 8, 13, 21, 34)]
        + [(3, n) for n in (4, 7, 12, 20, 33)]
        + [(4, n) for n in (5, 20, 45)]
        + [(5, 30), (6, 42), (7, 56)]
    )

    def sweep():
        for d, n in cases:
            assert OTISImaseItohRealization(d, n).verify(), (d, n)
        return len(cases)

    count = benchmark(sweep)

    art = [
        "Proposition 1: OTIS(d, n) realizes II(d, n) -- verification sweep",
        "",
        f"verified on {count} (d, n) pairs:",
        "  " + ", ".join(f"({d},{n})" for d, n in cases),
        "",
        "each check re-derives every arc from pure OTIS optics and compares",
        "the multiset against the congruence definition",
    ]
    record_artifact("clm3_proposition1.txt", "\n".join(art))


def bench_clm3_kautz_machine_scale(benchmark):
    """Corollary 1 at KG(5, 4) scale: OTIS(5, 750), 3750 beams."""
    r = otis_for_kautz(5, 4)

    assert benchmark(r.verify)


def bench_clm3_huge_arc_derivation(benchmark):
    """Arc derivation only (no compare) for OTIS(5, 3750) -- KG(5,5)."""
    r = OTISImaseItohRealization(5, 3750)

    g = benchmark(r.realized_graph)
    assert g.num_arcs == 5 * 3750
