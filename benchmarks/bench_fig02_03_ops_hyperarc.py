"""FIG-2/3: the degree-4 OPS coupler and its hyperarc model.

Fig. 2 draws a degree-4 optical passive star (multiplexer + splitter);
Fig. 3 models it as a hyperarc from sources {0..3} to destinations
{4..7}.  The benchmark reconstructs both, checks the broadcast and
single-wavelength semantics, and audits the coupler's power loss.
"""

from repro.hypergraphs import DirectedHypergraph, Hyperarc
from repro.optical import CollisionError, OPSCoupler


def bench_fig02_ops_coupler(benchmark, record_artifact):
    ops = OPSCoupler(4, 4, label="fig2")

    def exercise():
        outputs = [ops.broadcast(i) for i in range(4)]
        try:
            ops.arbitrate([0, 1])
            collided = False
        except CollisionError:
            collided = True
        return outputs, collided

    outputs, collided = benchmark(exercise)
    assert all(len(o) == 4 for o in outputs)
    assert collided

    art = [
        "OPS(4,4) -- degree-4 optical passive star (paper Fig. 2)",
        f"passive device: {ops.is_passive}",
        f"splitting loss: {ops.splitting_loss_db():.2f} dB (fundamental 1/4)",
        f"total loss:     {ops.total_loss_db():.2f} dB (mux + splitter excess + split)",
        "broadcast semantics: input i heard on all 4 outputs:",
    ]
    for i in range(4):
        art.append(f"  input {i} -> outputs {ops.broadcast(i)}")
    art.append("single wavelength: inputs {0,1} in one slot -> CollisionError")
    record_artifact("fig02_ops_coupler.txt", "\n".join(art))


def bench_fig03_hyperarc_model(benchmark, record_artifact):
    """Fig. 3: the same coupler as a hyperarc (sources 0-3 -> dests 4-7)."""

    def build():
        h = DirectedHypergraph(8, [Hyperarc((0, 1, 2, 3), (4, 5, 6, 7), label="OPS")])
        return h

    h = benchmark(build)
    ha = h.hyperarc(0)
    assert ha.is_ops_of_degree(4)
    assert h.neighbors_out(0).tolist() == [4, 5, 6, 7]

    art = [
        "hyperarc model of the degree-4 OPS (paper Fig. 3)",
        f"sources: {ha.sources}",
        f"targets: {ha.targets}",
        f"underlying point-to-point arcs: {h.underlying_digraph().num_arcs} (4 x 4)",
    ]
    record_artifact("fig03_hyperarc.txt", "\n".join(art))
