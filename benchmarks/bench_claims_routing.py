"""CLM-5: routing claims of Sec. 2.5.

"A shortest path routing algorithm (every path is of length at most k)
is induced by the label of the nodes.  It can be extended to generate
a path of length at most k + 2 which survives d - 1 link or node
faults."  Both halves regenerated: exhaustive all-pairs optimality,
and fault sweeps (exhaustive where feasible, randomized beyond).
"""

import itertools

import numpy as np

from repro.graphs import kautz_graph, kautz_words
from repro.routing import (
    FaultSet,
    build_routing_table,
    fault_tolerant_route,
    kautz_distance,
    kautz_route,
)


def bench_clm5_label_routing_all_pairs(benchmark, record_artifact):
    cases = [(2, 3), (3, 2), (3, 3), (4, 2)]

    def sweep():
        rows = []
        for d, k in cases:
            g = kautz_graph(d, k)
            table = build_routing_table(g)
            words = list(kautz_words(d, k))
            worst = 0
            for u, wu in enumerate(words):
                for v, wv in enumerate(words):
                    dist = kautz_distance(wu, wv, d)
                    assert dist == table.distance(u, v)
                    worst = max(worst, dist)
            rows.append((d, k, len(words) ** 2, worst))
        return rows

    rows = benchmark(sweep)

    art = [
        "label-induced routing == BFS shortest paths (paper Sec. 2.5)",
        "",
        "  d  k   pairs checked   longest route   <= k?",
    ]
    for d, k, pairs, worst in rows:
        art.append(f"  {d}  {k}   {pairs:>12}   {worst:>12}   {'yes' if worst <= k else 'NO'}")
    record_artifact("clm5_label_routing.txt", "\n".join(art))


def bench_clm5_fault_tolerance_exhaustive(benchmark, record_artifact):
    """Exhaustive d-1 node-fault sweep on KG(2,3) and KG(3,2)."""
    cases = [(2, 3), (3, 2)]

    def sweep():
        rows = []
        for d, k in cases:
            words = list(kautz_words(d, k))
            worst = 0
            checked = 0
            for x, y in itertools.permutations(words, 2):
                others = [w for w in words if w not in (x, y)]
                for fs in itertools.combinations(others, d - 1):
                    path = fault_tolerant_route(
                        x, y, d, FaultSet.of(nodes=list(fs))
                    )
                    assert path is not None
                    worst = max(worst, len(path) - 1)
                    checked += 1
            rows.append((d, k, checked, worst, k + 2))
        return rows

    rows = benchmark(sweep)

    art = [
        "fault-tolerant routing: length <= k+2 surviving d-1 node faults",
        "(exhaustive over all source/dest/fault-set combinations)",
        "",
        "  d  k   instances   worst length   k+2   bound holds?",
    ]
    for d, k, checked, worst, bound in rows:
        assert worst <= bound
        art.append(
            f"  {d}  {k}   {checked:>9}   {worst:>12}   {bound:>3}   yes"
        )
    record_artifact("clm5_fault_exhaustive.txt", "\n".join(art))


def bench_clm5_fault_tolerance_randomized(benchmark, record_artifact):
    """Randomized d-1 fault sweep on KG(4,3): 320 nodes, 2000 instances."""
    d, k = 4, 3
    words = list(kautz_words(d, k))
    rng = np.random.default_rng(0)

    def sweep():
        worst = 0
        for _ in range(2000):
            xi, yi = rng.choice(len(words), size=2, replace=False)
            x, y = words[int(xi)], words[int(yi)]
            others = [w for w in words if w not in (x, y)]
            picks = rng.choice(len(others), size=d - 1, replace=False)
            faults = FaultSet.of(nodes=[others[int(i)] for i in picks])
            path = fault_tolerant_route(x, y, d, faults)
            assert path is not None
            worst = max(worst, len(path) - 1)
        return worst

    worst = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert worst <= k + 2

    record_artifact(
        "clm5_fault_randomized.txt",
        "\n".join(
            [
                f"KG({d},{k}) ({len(words)} nodes): 2000 random (src, dst, {d - 1} node faults)",
                f"worst surviving route length: {worst}  (bound k+2 = {k + 2})",
            ]
        ),
    )


def bench_clm5_route_throughput(benchmark):
    """Routing-computation rate: label routing needs no tables."""
    d, k = 5, 4
    words = list(kautz_words(d, k))

    def route_many():
        total = 0
        for i in range(0, len(words), 7):
            total += len(kautz_route(words[i], words[-1 - i], d))
        return total

    assert benchmark(route_many) > 0
