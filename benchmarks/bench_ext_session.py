"""EXT-11: warm-session latency vs cold one-shot calls.

The session redesign keeps a spec-keyed build cache and a persistent
worker pool behind every facade verb; this benchmark certifies the
headline: **repeated sweeps on the same spec run >= 3x faster on a
warm session** than as cold one-shot calls, because the per-call pool
spawn, network build, topology export and worker context
initialization amortize away -- while the summaries stay
byte-identical.

The measured configuration is the repeated-query shape the ROADMAP's
"heavy traffic" north star implies: many small survivability queries
against one machine (sk(2,2,2), vectorized connectivity scoring,
2 workers), where fixed per-call overhead dominates.  A second,
unasserted table records the inline and batched shapes for context.

Headline numbers land in ``BENCH_session.json``.
"""

import json
import time

from repro.core.session import Session
from repro.resilience.sweep import survivability_sweep

SPEC = "sk(2,2,2)"
MODEL = "coupler"
TRIALS = 128
WORKERS = 2
REPEATS = 10


def _mean_seconds(fn, repeats=REPEATS):
    t0 = time.perf_counter()
    for _ in range(repeats):
        out = fn()
    return out, (time.perf_counter() - t0) / repeats


def bench_ext11_warm_session_speedup(benchmark, record_artifact):
    """Warm-session repeated sweeps >= 3x over cold one-shot calls."""
    kw = dict(
        trials=TRIALS, seed=0, metrics="connectivity", backend="vectorized"
    )

    # cold: every call pays spec parse + build + shm export + pool spawn
    cold, cold_s = _mean_seconds(
        lambda: survivability_sweep(SPEC, MODEL, workers=WORKERS, **kw)
    )

    with Session(workers=WORKERS) as session:
        session.resilience_sweep(SPEC, **kw)  # first call warms the pool
        warm = benchmark.pedantic(
            lambda: session.resilience_sweep(SPEC, **kw),
            rounds=1,
            iterations=1,
        )
        _, warm_s = _mean_seconds(lambda: session.resilience_sweep(SPEC, **kw))

    speedup = cold_s / warm_s
    byte_identical = warm.to_json() == cold.to_json()
    assert byte_identical, "session reuse must never move a result"
    assert speedup >= 3.0, (
        f"only {speedup:.2f}x warm-vs-cold; pool+build reuse should "
        f"clear 3x on repeated {TRIALS}-trial sweeps"
    )

    # context rows (no assertion): inline build-cache-only reuse, and
    # the batched backend where trial compute dominates the call
    inline_kw = dict(
        trials=TRIALS, seed=0, metrics="connectivity", backend="vectorized"
    )
    _, inline_cold_s = _mean_seconds(
        lambda: survivability_sweep(SPEC, MODEL, **inline_kw)
    )
    with Session() as session:
        session.resilience_sweep(SPEC, **inline_kw)
        _, inline_warm_s = _mean_seconds(
            lambda: session.resilience_sweep(SPEC, **inline_kw)
        )
    batched_kw = dict(trials=TRIALS, seed=0, metrics="connectivity")
    _, batched_cold_s = _mean_seconds(
        lambda: survivability_sweep(SPEC, MODEL, workers=WORKERS, **batched_kw)
    )
    with Session(workers=WORKERS) as session:
        session.resilience_sweep(SPEC, **batched_kw)
        _, batched_warm_s = _mean_seconds(
            lambda: session.resilience_sweep(SPEC, **batched_kw)
        )

    art = [
        f"{SPEC} under 1 {MODEL} fault, {TRIALS} connectivity trials "
        f"per call, {REPEATS} repeated calls:",
        "",
        f"  vectorized, {WORKERS} workers, cold one-shot:  "
        f"{1e3 * cold_s:8.2f} ms/call",
        f"  vectorized, {WORKERS} workers, warm session:   "
        f"{1e3 * warm_s:8.2f} ms/call  ({speedup:.1f}x)",
        f"  vectorized, inline, cold:                {1e3 * inline_cold_s:8.2f} ms/call",
        f"  vectorized, inline, warm session:        {1e3 * inline_warm_s:8.2f} ms/call",
        f"  batched,    {WORKERS} workers, cold one-shot:  "
        f"{1e3 * batched_cold_s:8.2f} ms/call",
        f"  batched,    {WORKERS} workers, warm session:   "
        f"{1e3 * batched_warm_s:8.2f} ms/call",
        "",
        f"  warm summaries byte-identical to cold: {byte_identical}",
        "",
        "persistent pools + spec-keyed caches amortize per-call spawn/",
        "build/export overhead away; results never move.",
    ]
    record_artifact("ext11_session.txt", "\n".join(art))
    point = {
        "claim": "warm-session repeated sweeps >= 3x over cold one-shot "
        "calls (vectorized connectivity, pool+build reuse)",
        "spec": SPEC,
        "model": MODEL,
        "trials": TRIALS,
        "workers": WORKERS,
        "repeats": REPEATS,
        "cold_seconds_per_call": round(cold_s, 5),
        "warm_seconds_per_call": round(warm_s, 5),
        "speedup_warm_vs_cold": round(speedup, 2),
        "inline_cold_seconds_per_call": round(inline_cold_s, 5),
        "inline_warm_seconds_per_call": round(inline_warm_s, 5),
        "batched_cold_seconds_per_call": round(batched_cold_s, 5),
        "batched_warm_seconds_per_call": round(batched_warm_s, 5),
        "byte_identical_to_cold": byte_identical,
    }
    record_artifact(
        "BENCH_session.json", json.dumps(point, indent=2, sort_keys=True)
    )


def bench_ext11_experiment_pipeline(benchmark, record_artifact):
    """The declarative experiment grid matches per-cell verbs exactly."""
    from repro.core.experiment import Experiment

    exp = Experiment(
        specs=("sk(2,2,2)", "pops(4,2)"),
        models=("coupler:1", "link:1"),
        metrics=("connectivity",),
        trials=256,
        seed=0,
        backend="vectorized",
    )
    with Session(workers=WORKERS) as session:
        result = benchmark.pedantic(
            lambda: session.run_experiment(exp), rounds=1, iterations=1
        )
        _, grid_s = _mean_seconds(
            lambda: session.run_experiment(exp), repeats=3
        )
    mismatches = 0
    for cell in result:
        direct = survivability_sweep(
            cell.spec,
            cell.model,
            faults=cell.faults,
            trials=256,
            seed=0,
            metrics="connectivity",
            backend="vectorized",
        )
        if cell.summary.to_json() != direct.to_json():
            mismatches += 1
    assert mismatches == 0, "experiment cells must match per-cell verbs"

    art = [
        "experiment grid: 2 specs x 2 fault models, 256 vectorized "
        f"connectivity trials per cell, {WORKERS} workers:",
        "",
        f"  warm-session grid run: {1e3 * grid_s:8.2f} ms "
        f"({len(result)} cells, one pooled schedule)",
        f"  cells byte-identical to per-cell resilience_sweep: "
        f"{mismatches == 0}",
    ]
    record_artifact("ext11_experiment.txt", "\n".join(art))
