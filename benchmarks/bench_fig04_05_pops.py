"""FIG-4/5: POPS(4, 2) and its stack-graph model sigma(4, K+_2).

Fig. 4 draws the 8-processor POPS(4, 2) with 4 couplers (0,0) (0,1)
(1,0) (1,1); Fig. 5 models it as the stack of the complete digraph
with loops on 2 nodes.  The benchmark rebuilds both, proves they agree
coupler-by-coupler, and confirms the single-hop property.
"""

from repro.networks import POPSNetwork


def bench_fig04_pops_4_2(benchmark, record_artifact):
    def build_and_check():
        net = POPSNetwork(4, 2)
        model = net.stack_graph_model()
        model.validate_against_base()
        assert net.is_single_hop()
        return net, model

    net, model = benchmark(build_and_check)
    assert net.num_processors == 8
    assert net.num_couplers == 4

    art = [
        "POPS(4,2): 8 processors, 2 groups of 4, 4 OPS couplers of degree 4",
        "",
        "coupler (i,j): inputs = group i, outputs = group j   (paper Fig. 4)",
    ]
    for idx, ha in enumerate(model.hyperarcs):
        art.append(
            f"  coupler {ha.label}: sources {ha.sources} -> targets {ha.targets}"
        )
    art += [
        "",
        f"stack-graph model: {model.name} (paper Fig. 5)",
        f"hyperarcs == couplers: {model.num_hyperarcs} == {net.num_couplers}",
        f"single-hop (hop diameter 1): {net.is_single_hop()}",
        f"transmitters/processor: {net.transmitters_per_processor}",
        f"receivers/processor:    {net.receivers_per_processor}",
    ]
    record_artifact("fig04_05_pops.txt", "\n".join(art))


def bench_fig05_larger_pops_models(benchmark):
    """Stack-model construction cost at growing g (g^2 couplers)."""

    def build():
        return [POPSNetwork(8, g).stack_graph_model() for g in (2, 4, 8, 16)]

    models = benchmark(build)
    assert [m.num_hyperarcs for m in models] == [4, 16, 64, 256]
