"""EXT-8: empirical regeneration of the Sec. 2.5 survival claim.

"[Label-induced routing] can be extended to generate a path of length
at most k + 2 which survives d - 1 link or node faults."  The
resilience subsystem regenerates the claim end-to-end on *built*
networks: Monte-Carlo coupler/link fault sweeps on stack-Kautz
machines must keep every surviving pair routed within ``k + 2``, and
the degraded slotted simulator must keep delivering.  The headline
numbers land in ``BENCH_resilience.json`` -- the subsystem's
trajectory point.
"""

import json

from repro.core import build
from repro.resilience import survivability_sweep

#: (spec, d, k): d - 1 faults per trial, bound k + 2.
CASES = [
    ("sk(2,2,2)", 2, 2),
    ("sk(2,2,3)", 2, 3),
    ("sk(2,3,2)", 3, 2),
]


def _sweep_case(spec, d, k, trials):
    return survivability_sweep(
        spec,
        "coupler",
        faults=d - 1,
        trials=trials,
        seed=0,
        messages=40,
    )


def bench_ext8_k_plus_2_survival(benchmark, record_artifact):
    """d-1 coupler faults: every routed pair within k+2, full delivery."""
    trials = 120

    def sweep_all():
        return [
            (spec, d, k, _sweep_case(spec, d, k, trials))
            for spec, d, k in CASES
        ]

    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    art = [
        "d-1 coupler faults on stack-Kautz: surviving routes vs k+2 (Sec. 2.5)",
        "",
        f"  {'spec':<12} {'faults':>6} {'trials':>6} {'maxlen':>6} "
        f"{'bound':>5} {'within':>7} {'deliver':>8}",
    ]
    point = {"claim": "d-1 faults -> path length <= k+2", "cases": []}
    for spec, d, k, s in results:
        assert s.within_bound_fraction == 1.0, spec
        assert s.partitioned_fraction == 0.0, spec
        assert s.quantiles["max_path_length"]["max"] <= k + 2, spec
        assert s.quantiles["delivery_ratio"]["min"] == 1.0, spec
        art.append(
            f"  {spec:<12} {d - 1:>6} {s.trials:>6} "
            f"{int(s.quantiles['max_path_length']['max']):>6} {k + 2:>5} "
            f"{100 * s.within_bound_fraction:>6.1f}% "
            f"{s.quantiles['delivery_ratio']['min']:>8.3f}"
        )
        point["cases"].append(
            {
                "spec": spec,
                "faults": d - 1,
                "trials": s.trials,
                "bound": k + 2,
                "max_path_length": s.quantiles["max_path_length"]["max"],
                "within_bound_fraction": s.within_bound_fraction,
                "delivery_ratio_min": s.quantiles["delivery_ratio"]["min"],
                "latency_inflation_p95": s.quantiles["latency_inflation"][
                    "p95"
                ],
            }
        )
    art += [
        "",
        "every Monte-Carlo trial routed every surviving pair within k+2",
        "and delivered all traffic on the degraded machine.",
    ]
    record_artifact("ext8_resilience.txt", "\n".join(art))
    record_artifact("BENCH_resilience.json", json.dumps(point, indent=2, sort_keys=True))


def bench_ext8_past_the_guarantee(benchmark, record_artifact):
    """d faults (one past the bound) must *sometimes* partition.

    The adversarial worst-first-hop model kills all d non-loop
    out-couplers of one victim group -- severing it whenever the loop
    cannot re-enter, which is exactly why d-1 is the guarantee's edge.
    """
    spec, d = "sk(2,2,2)", 2
    net = build(spec)

    def sweep():
        return survivability_sweep(
            spec,
            "adversarial",
            faults=d,
            trials=40,
            seed=1,
            messages=30,
        )

    s = benchmark.pedantic(sweep, rounds=1, iterations=1)

    assert s.partitioned_fraction > 0.0
    assert s.quantiles["delivery_ratio"]["min"] < 1.0
    art = [
        f"{spec} ({net.num_processors} processors) under d = {d} "
        "adversarial first-hop faults:",
        "",
        f"  partitioned trials: {100 * s.partitioned_fraction:.1f}%",
        f"  delivery ratio min/p50: "
        f"{s.quantiles['delivery_ratio']['min']:.3f}/"
        f"{s.quantiles['delivery_ratio']['p50']:.3f}",
        "",
        "one fault past the d-1 guarantee can sever a group: the claim",
        "is tight, matching the paper's maximal-connectivity argument.",
    ]
    record_artifact("ext8_past_guarantee.txt", "\n".join(art))
