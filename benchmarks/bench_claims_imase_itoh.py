"""CLM-2: Imase-Itoh claims of Sec. 2.6.

Claims regenerated: II(d, n) exists for every n (graphs of any size),
its diameter is at most ceil(log_d n) [15], and II(d, d^{k-1}(d+1)) is
the Kautz graph KG(d, k) [16].
"""

from repro.graphs import (
    check_isomorphism,
    diameter,
    imase_itoh_diameter_bound,
    imase_itoh_graph,
    kautz_graph,
    kautz_num_nodes,
    kautz_word_to_imase_itoh_index,
)


def bench_clm2_diameter_bound_sweep(benchmark, record_artifact):
    cases = [(2, n) for n in range(3, 18)] + [(3, n) for n in range(4, 30, 3)] + [
        (4, 17), (4, 64), (5, 30), (5, 99)
    ]

    def sweep():
        rows = []
        for d, n in cases:
            g = imase_itoh_graph(d, n)
            diam = diameter(g)
            bound = imase_itoh_diameter_bound(d, n)
            assert diam <= bound, (d, n, diam, bound)
            rows.append((d, n, diam, bound))
        return rows

    rows = benchmark(sweep)

    art = [
        "II(d, n) diameter vs the ceil(log_d n) bound of [15]  (any n!)",
        "",
        "  d    n   diameter  bound  tight?",
    ]
    for d, n, diam, bound in rows:
        art.append(f"  {d}  {n:>3}   {diam:>7}  {bound:>5}  {'yes' if diam == bound else 'no (better)'}")
    record_artifact("clm2_imase_itoh_diameter.txt", "\n".join(art))


def bench_clm2_kautz_equivalence(benchmark, record_artifact):
    params = [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (4, 2)]

    def sweep():
        results = []
        for d, k in params:
            kg = kautz_graph(d, k)
            ii = imase_itoh_graph(d, kautz_num_nodes(d, k))
            mapping = [
                kautz_word_to_imase_itoh_index(kg.label_of(u), d)
                for u in range(kg.num_nodes)
            ]
            ok = check_isomorphism(kg, ii, mapping)
            results.append((d, k, kg.num_nodes, ok))
        return results

    results = benchmark(sweep)
    assert all(ok for _, _, _, ok in results)

    art = [
        "II(d, d^{k-1}(d+1)) == KG(d, k)  (paper Sec. 2.6, [16])",
        "",
        "  d  k      n   isomorphic (explicit word bijection)?",
    ]
    for d, k, n, ok in results:
        art.append(f"  {d}  {k}  {n:>5}   {ok}")
    record_artifact("clm2_kautz_equivalence.txt", "\n".join(art))


def bench_clm2_large_equivalence(benchmark):
    """KG(5,3) == II(5,150): the bijection at 150 nodes."""
    d, k = 5, 3
    kg = kautz_graph(d, k)
    ii = imase_itoh_graph(d, kautz_num_nodes(d, k))

    def check():
        mapping = [
            kautz_word_to_imase_itoh_index(kg.label_of(u), d)
            for u in range(kg.num_nodes)
        ]
        return check_isomorphism(kg, ii, mapping)

    assert benchmark(check)
