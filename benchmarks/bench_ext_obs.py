"""EXT-13: observability overhead on the hot sweep path.

The observability layer (metrics registry + span tracing) promises to
be a *timing side channel*: results byte-identical with tracing on or
off, and near-zero cost on the paths that matter.  This benchmark
pins both claims on the hottest path in the repo -- the vectorized
shared-memory sweep at 10^5 trials:

* run the same sweep with tracing disabled and enabled, min-of-N each
  (min is the noise-robust estimator for a deterministic workload);
* assert the traced JSON equals the untraced JSON byte for byte;
* assert the tracing overhead stays under 2%.

Headline numbers land in ``BENCH_obs.json``.
"""

import json
import time

from repro.core.session import Session
from repro.obs.metrics import REGISTRY
from repro.obs.trace import disable_tracing, enable_tracing

SPEC = "sk(4,3,2)"
TRIALS = 100_000
ROUNDS = 7
MAX_OVERHEAD_PCT = 2.0


def _timed_sweep(session):
    t0 = time.perf_counter()
    summary = session.resilience_sweep(
        SPEC,
        trials=TRIALS,
        seed=0,
        metrics="connectivity",
        backend="vectorized",
    )
    return time.perf_counter() - t0, summary.to_json()


def bench_ext13_observability_overhead(benchmark, record_artifact):
    """Tracing on vs off on a 10^5-trial vectorized sweep: < 2%."""
    with Session(workers=0) as session:
        _timed_sweep(session)  # warm: spec build + topology arrays

        baseline_times, baseline_json = [], None
        for _ in range(ROUNDS):
            dt, body = _timed_sweep(session)
            baseline_times.append(dt)
            baseline_json = body

        benchmark.pedantic(
            lambda: _timed_sweep(session), rounds=1, iterations=1
        )

        tracer = enable_tracing()
        try:
            traced_times, traced_json = [], None
            for _ in range(ROUNDS):
                dt, body = _timed_sweep(session)
                traced_times.append(dt)
                traced_json = body
        finally:
            disable_tracing()

    assert traced_json == baseline_json, (
        "tracing must not change sweep results"
    )
    assert len(tracer) > 0, "traced runs must actually record spans"

    baseline_s = min(baseline_times)
    traced_s = min(traced_times)
    overhead_pct = 100.0 * (traced_s - baseline_s) / baseline_s

    trials_series = REGISTRY.series("repro_sweep_trials_total")
    recorded_trials = sum(c.value for c in trials_series.values())

    point = {
        "spec": SPEC,
        "trials": TRIALS,
        "rounds": ROUNDS,
        "baseline_min_ms": round(1e3 * baseline_s, 3),
        "traced_min_ms": round(1e3 * traced_s, 3),
        "overhead_pct": round(overhead_pct, 3),
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "spans_per_traced_run": round(len(tracer) / ROUNDS, 1),
        "results_identical": traced_json == baseline_json,
        "trials_counted_by_registry": recorded_trials,
    }
    record_artifact(
        "BENCH_obs.json", json.dumps(point, indent=2, sort_keys=True)
    )

    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"tracing overhead {overhead_pct:.2f}% exceeds "
        f"{MAX_OVERHEAD_PCT}% on the vectorized hot path "
        f"({baseline_s * 1e3:.1f}ms -> {traced_s * 1e3:.1f}ms)"
    )
