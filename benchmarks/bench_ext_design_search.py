"""EXT-9: the design-search loop and its batched-sweep speedup.

The resilience-aware design search only pays off if survivability
sweeps are fast enough to score hundreds of candidates, so this
benchmark regenerates the subsystem's two headline numbers:

* the batched trial executor (shared built network + intact baseline,
  connectivity-only scoring) must beat the PR 2 rebuild-per-trial
  ``survivability_sweep`` path by **>= 5x** at 10^4 trials on the same
  spec and fault model, while the batched ``full`` mode stays
  byte-identical to the legacy backend for the same seed;
* a cross-family search window must come back ranked, deterministic
  and Pareto-annotated.

Headline numbers land in ``BENCH_design_search.json``.
"""

import json
import time

from repro.design_search import design_search
from repro.resilience import survivability_sweep

SPEC = "sk(2,2,2)"
MODEL = "coupler"
FAULTS = 1
TRIALS = 10_000


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def bench_ext9_batched_sweep_speedup(benchmark, record_artifact):
    """Batched connectivity scoring >= 5x over the PR 2 path at 1e4 trials."""
    common = dict(faults=FAULTS, trials=TRIALS, seed=0)

    legacy, legacy_s = _timed(
        lambda: survivability_sweep(SPEC, MODEL, backend="legacy", **common)
    )
    batched = benchmark.pedantic(
        lambda: survivability_sweep(
            SPEC, MODEL, metrics="connectivity", **common
        ),
        rounds=1,
        iterations=1,
    )
    _, batched_s = _timed(
        lambda: survivability_sweep(SPEC, MODEL, metrics="connectivity", **common)
    )
    _, batched_w4_s = _timed(
        lambda: survivability_sweep(
            SPEC, MODEL, metrics="connectivity", workers=4, **common
        )
    )
    speedup = legacy_s / batched_s
    speedup_w4 = legacy_s / batched_w4_s
    assert batched.trials == TRIALS
    # the fast path agrees with the full path on its shared metrics
    for key in ("connectivity", "alive_connectivity", "reachable_groups"):
        assert batched.quantiles[key] == legacy.quantiles[key], key
    assert speedup >= 5.0, f"only {speedup:.2f}x over the PR 2 path"

    # byte-identity of the batched *full* mode vs legacy, same seed
    ident_kw = dict(faults=FAULTS, trials=1_500, seed=0, messages=60)
    full_legacy = survivability_sweep(SPEC, MODEL, backend="legacy", **ident_kw)
    full_batched = survivability_sweep(SPEC, MODEL, backend="batched", **ident_kw)
    byte_identical = full_legacy.to_json() == full_batched.to_json()
    assert byte_identical

    art = [
        f"{SPEC} under {FAULTS} {MODEL} fault(s), {TRIALS} Monte-Carlo trials:",
        "",
        f"  PR 2 path (rebuild per trial, full metrics):  {legacy_s:8.2f} s",
        f"  batched, connectivity scoring, inline:        {batched_s:8.2f} s "
        f"({speedup:.1f}x)",
        f"  batched, connectivity scoring, 4 workers:     {batched_w4_s:8.2f} s "
        f"({speedup_w4:.1f}x)",
        "",
        f"  batched full mode byte-identical to legacy:   {byte_identical}",
        "",
        "the design-search scoring path clears the >= 5x target while the",
        "full-metrics batched backend reproduces the PR 2 JSON bit for bit.",
    ]
    record_artifact("ext9_sweep_speedup.txt", "\n".join(art))
    point = {
        "claim": "batched sweep >= 5x over PR 2 survivability_sweep at 1e4 trials",
        "spec": SPEC,
        "model": MODEL,
        "faults": FAULTS,
        "trials": TRIALS,
        "legacy_seconds": round(legacy_s, 3),
        "batched_connectivity_seconds": round(batched_s, 3),
        "batched_connectivity_workers4_seconds": round(batched_w4_s, 3),
        "speedup_inline": round(speedup, 2),
        "speedup_workers4": round(speedup_w4, 2),
        "full_mode_byte_identical_to_legacy": byte_identical,
    }
    record_artifact(
        "BENCH_design_search.json", json.dumps(point, indent=2, sort_keys=True)
    )


def bench_ext9_design_search_window(benchmark, record_artifact):
    """A cross-family window ranks deterministically with a Pareto front."""
    kw = dict(
        max_processors=16,
        families=("pops", "sk", "sops"),
        model=MODEL,
        faults=1,
        trials=64,
        seed=0,
    )
    result = benchmark.pedantic(lambda: design_search(**kw), rounds=1, iterations=1)

    again = design_search(**kw)
    assert result.to_json() == again.to_json()
    assert len(result) > 20
    assert result.pareto
    best = result.best()
    assert best.survivability_per_kilocost >= result.candidates[-1].survivability_per_kilocost

    art = [
        "survivability-per-cost design search, N <= 16, pops/sk/sops, "
        f"{kw['trials']} trials per candidate:",
        "",
        result.formatted(),
        "",
        f"deterministic: repeated search byte-identical "
        f"({len(result)} candidates, {len(result.pareto)} on the front)",
    ]
    record_artifact("ext9_design_search.txt", "\n".join(art))
