"""EXT-1: hardware-cost scaling of the OTIS designs.

The paper motivates multi-hop multi-OPS networks as the cost-effective
point between single-hop (transceiver-hungry) and point-to-point
(coupler-hungry) designs.  This benchmark quantifies it: for growing
machine sizes, the full bill of materials of POPS vs stack-Kautz
designs, and the equal-N comparison table.
"""

from repro.analysis import TopologyRow, equal_size_comparison, pops_row, stack_kautz_row
from repro.networks import StackKautzDesign


def bench_ext1_equal_size_tables(benchmark, record_artifact):
    sizes = (24, 48, 72, 144)

    def build():
        return {n: equal_size_comparison(n) for n in sizes}

    tables = benchmark(build)

    art = ["equal-N hardware comparison: POPS vs stack-Kautz", ""]
    for n in sizes:
        art.append(f"=== N = {n} processors ===")
        art.append(TopologyRow.header())
        for row in tables[n]:
            art.append(row.formatted())
        art.append("")
    art += [
        "reading: POPS rows pay transceivers (tx/node = g) for diameter 1;",
        "SK rows hold tx/node at d+1 and pay diameter k; lens count grows",
        "with group count either way.",
    ]
    record_artifact("ext1_equal_size.txt", "\n".join(art))


def bench_ext1_sk_family_growth(benchmark, record_artifact):
    """SK hardware as N grows with fixed degree d+1 = 4."""
    params = [(2, 3, 2), (4, 3, 2), (8, 3, 2), (4, 3, 3), (8, 3, 3), (16, 3, 3)]

    def build():
        return [stack_kautz_row(s, d, k) for s, d, k in params]

    rows = benchmark(build)

    art = [
        "stack-Kautz growth at constant processor degree 4 (d = 3)",
        "",
        TopologyRow.header(),
    ]
    for row in rows:
        art.append(row.formatted())
    art += [
        "",
        "transceivers per processor stay at 4 while N grows 16x --",
        "the multi-hop trade the paper argues for",
    ]
    record_artifact("ext1_sk_growth.txt", "\n".join(art))


def bench_ext1_pops_transceiver_blowup(benchmark, record_artifact):
    """POPS at fixed group size: transceivers/processor grow with g."""
    params = [(8, 2), (8, 4), (8, 8), (8, 16)]

    def build():
        return [pops_row(t, g) for t, g in params]

    rows = benchmark(build)

    art = ["POPS growth at fixed t = 8: single-hop transceiver cost", "", TopologyRow.header()]
    for row in rows:
        art.append(row.formatted())
    record_artifact("ext1_pops_growth.txt", "\n".join(art))


def bench_ext1_big_design_bom(benchmark):
    """BOM computation for SK(16, 4, 3): 1280 processors."""
    design = StackKautzDesign(16, 4, 3)

    bom = benchmark(design.bill_of_materials)
    assert bom.couplers == 80 * 5
    assert bom.transmitters == 1280 * 5
