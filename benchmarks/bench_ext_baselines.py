"""EXT-3: baselines -- de Bruijn (single-OPS lightwave, ref [22]) vs Kautz.

Sivarajan-Ramaswami built lightwave networks on de Bruijn graphs; the
paper's Kautz choice buys ~(1 + 1/d)x more nodes at the same degree
and diameter.  This benchmark regenerates the head-to-head table and
the collective-communication comparison.
"""

from repro.comm import pops_broadcast, stack_kautz_broadcast, pops_gossip
from repro.graphs import (
    debruijn_graph,
    diameter,
    generalized_debruijn_graph,
    kautz_graph,
    kautz_num_nodes,
)
from repro.networks import POPSNetwork, StackKautzNetwork


def bench_ext3_kautz_vs_debruijn_table(benchmark, record_artifact):
    params = [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (4, 2), (4, 3)]

    def build():
        rows = []
        for d, k in params:
            kg = kautz_graph(d, k)
            db = debruijn_graph(d, k)
            rows.append(
                (d, k, kg.num_nodes, db.num_nodes, diameter(kg), diameter(db))
            )
        return rows

    rows = benchmark(build)

    art = [
        "Kautz vs de Bruijn at equal degree d and diameter k (EXT-3)",
        "",
        "  d  k   N_Kautz  N_deBruijn   advantage   diam(K)  diam(B)",
    ]
    for d, k, nk, nb, dk_, db_ in rows:
        assert nk > nb
        assert dk_ == db_ == k
        art.append(
            f"  {d}  {k}  {nk:>7}  {nb:>9}   {nk / nb:>8.3f}x   {dk_:>6}  {db_:>6}"
        )
    art += ["", "Kautz carries (d+1)/d times the processors of the de Bruijn",
            "network of refs [22] at identical hardware degree and hop count"]
    record_artifact("ext3_kautz_vs_debruijn.txt", "\n".join(art))


def bench_ext3_generalized_debruijn_any_size(benchmark, record_artifact):
    """GB(d, n) exists at every n, like II(d, n): diameter comparison."""
    cases = [(2, n) for n in (5, 9, 13)] + [(3, n) for n in (10, 25)]

    def build():
        from repro.graphs import imase_itoh_graph

        rows = []
        for d, n in cases:
            gb = generalized_debruijn_graph(d, n)
            ii = imase_itoh_graph(d, n)
            rows.append((d, n, diameter(gb), diameter(ii)))
        return rows

    rows = benchmark(build)

    art = [
        "any-size families: generalized de Bruijn vs Imase-Itoh diameters",
        "",
        "  d    n   diam GB(d,n)  diam II(d,n)",
    ]
    for d, n, dgb, dii in rows:
        art.append(f"  {d}  {n:>3}   {dgb:>11}  {dii:>12}")
    record_artifact("ext3_any_size.txt", "\n".join(art))


def bench_ext3_collectives(benchmark, record_artifact):
    """Collective slot counts: single-hop vs multi-hop, equal N=48."""
    from repro.comm import pops_reduce, pops_scatter, stack_kautz_reduce

    pops = POPSNetwork(12, 4)
    sk = StackKautzNetwork(4, 2, 3)

    def build():
        return (
            pops_broadcast(pops, 0).num_slots,
            stack_kautz_broadcast(sk, 0).num_slots,
            pops_gossip(pops).num_slots,
            pops_scatter(pops, 0).num_slots,
            pops_reduce(pops, 0).num_slots,
            stack_kautz_reduce(sk, 0).num_slots,
        )

    pb, sb, pg, ps, pr, sr = benchmark(build)

    art = [
        "collective communication at N = 48 (POPS(12,4) vs SK(4,2,3))",
        "",
        f"one-to-all broadcast:   POPS {pb} slot(s)   SK {sb} slot(s) (<= k = 3)",
        f"one-to-all scatter:     POPS {ps} slots (= t: personalized data",
        "                        defeats the one-to-many shortcut)",
        f"all-to-one reduce:      POPS {pr} slots    SK {sr} slots (fan-in bound)",
        f"all-to-all gossip:      POPS {pg} slots (= t)",
        "",
        "the hyperarc (one-to-many) couplers make broadcast dramatically",
        "cheaper than unicast fan-out; fan-in collectives get no such help",
    ]
    assert pb == 1 and sb <= 3 and ps == 12
    record_artifact("ext3_collectives.txt", "\n".join(art))
