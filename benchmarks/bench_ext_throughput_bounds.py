"""EXT-7: measured throughput vs analytic coupler-capacity bounds.

Validates the simulator against theory: deliverable messages/slot can
never exceed ``couplers / mean_hops`` (every coupler carries one
message per slot; every delivery consumes mean-hops coupler-slots).
The gap between bound and measurement is the scheduling/imbalance
overhead a real control protocol would fight.
"""

from repro.analysis import (
    pops_capacity,
    single_ops_capacity,
    stack_kautz_capacity,
)
from repro.networks import (
    POPSNetwork,
    SingleOPSNetwork,
    StackKautzNetwork,
    single_ops_simulator,
)
from repro.simulation import (
    pops_simulator,
    run_traffic,
    stack_kautz_simulator,
    uniform_traffic,
)

N = 48


def bench_ext7_capacity_vs_measured(benchmark, record_artifact):
    star = SingleOPSNetwork(N)
    pops = POPSNetwork(12, 4)
    sk = StackKautzNetwork(4, 2, 3)
    traffic = uniform_traffic(N, 960, seed=51)

    def run_all():
        return (
            run_traffic(single_ops_simulator(star), traffic, max_slots=50_000),
            run_traffic(pops_simulator(pops), traffic),
            run_traffic(stack_kautz_simulator(sk), traffic),
        )

    s_rep, p_rep, k_rep = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        ("single-OPS", single_ops_capacity(star), s_rep.throughput),
        ("POPS(12,4)", pops_capacity(pops), p_rep.throughput),
        ("SK(4,2,3)", stack_kautz_capacity(sk), k_rep.throughput),
    ]
    art = [
        f"analytic capacity vs measured throughput (N = {N}, {len(traffic)} messages)",
        "",
        "  machine       capacity (msgs/slot)   measured   achieved",
    ]
    for name, cap, thr in rows:
        assert thr <= cap + 1e-9
        art.append(f"  {name:<12}  {cap:>18.2f}   {thr:>8.3f}   {100 * thr / cap:5.1f}%")
    art += [
        "",
        "measured <= capacity everywhere (asserted); the single star sits",
        "at exactly 100% of its (tiny) capacity because one coupler never",
        "idles, while partitioned machines leave headroom to load imbalance.",
    ]
    record_artifact("ext7_capacity.txt", "\n".join(art))
