"""FIG-6: the line-digraph iteration KG(2,1) -> KG(2,2) -> KG(2,3).

Fig. 6 draws three iterations of L on K_3 with their word labels.  The
benchmark regenerates all three graphs both ways (word definition and
iterated line digraph), proves them isomorphic at each stage, and
reports the size/degree/diameter ladder.
"""

from repro.graphs import (
    are_isomorphic,
    complete_digraph,
    diameter,
    is_regular,
    iterated_line_digraph,
    kautz_graph,
)


def bench_fig06_line_digraph_ladder(benchmark, record_artifact):
    def build_ladder():
        rows = []
        for k in (1, 2, 3):
            by_words = kautz_graph(2, k)
            by_lines = iterated_line_digraph(complete_digraph(3), k - 1)
            assert are_isomorphic(by_words, by_lines)
            rows.append((k, by_words.num_nodes, by_words.num_arcs, diameter(by_words)))
        return rows

    rows = benchmark(build_ladder)
    assert rows == [(1, 3, 6, 1), (2, 6, 12, 2), (3, 12, 24, 3)]

    art = [
        "Kautz line-digraph iterations (paper Fig. 6): KG(2,k) = L^{k-1}(K_3)",
        "",
        "  k   nodes  arcs  diameter   isomorphic to L^{k-1}(K_3)?",
    ]
    for k, n, m, diam in rows:
        art.append(f"  {k}   {n:>5} {m:>5}  {diam:>8}   yes (machine-checked)")
    art += [
        "",
        "word labels of KG(2,2): "
        + " ".join("".join(map(str, kautz_graph(2, 2).label_of(u))) for u in range(6)),
        "word labels of KG(2,3): "
        + " ".join("".join(map(str, kautz_graph(2, 3).label_of(u))) for u in range(12)),
    ]
    record_artifact("fig06_line_digraph.txt", "\n".join(art))


def bench_fig06_deep_iteration(benchmark):
    """L^4(K_3) = KG(2,5): 48 nodes built purely by the operator."""

    def build():
        return iterated_line_digraph(complete_digraph(3), 4)

    g = benchmark(build)
    assert g.num_nodes == 48
    assert is_regular(g, 2)
    assert diameter(g) == 5
