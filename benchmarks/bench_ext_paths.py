"""EXT-11: the vectorized ``paths`` metric mode at 10^4-10^5 trials.

PR 8 taught the vectorized backend all-pairs path metrics: the
reachability closure becomes a level-synchronous frontier expansion,
so per-pair group distances -- and with them ``reachable_groups``,
``max_path_length``, ``mean_stretch`` and ``within_bound`` against the
paper's ``k + 2`` bound -- fall out of the same batched numpy loop
that previously scored connectivity alone.  Headline claims:

* on generic-BFS-routing families (``pops`` here), vectorized paths
  scoring must beat ``backend="batched"`` by **>= 5x** at 10^5 trials
  while reproducing the batched JSON byte for byte;
* the same bar holds for the kernel on the ``sk(2,2,2)`` topology.
  Stack-Kautz *publicly* routes with its structured word-level hook,
  which the BFS kernel cannot reproduce, so the public API records a
  downgrade to ``batched`` instead -- this benchmark measures the
  kernel on sk's topology by pinning the generic BFS hook (clearly
  labeled as such) and separately records the honest public-API
  downgrade;
* the downgrade is *recorded*, never silent: same bytes as an
  explicit batched run, reason attached.

Headline numbers land in ``BENCH_paths.json``.
"""

import json
import time

from repro.core.families import StackKautzFamily
from repro.core.registry import NetworkFamily
from repro.resilience import survivability_sweep

MODEL = "coupler"
FAULTS = 1
TRIALS_SMALL = 10_000
TRIALS_LARGE = 100_000


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _run(spec, backend, trials, **extra):
    return survivability_sweep(
        spec,
        MODEL,
        faults=FAULTS,
        trials=trials,
        seed=0,
        metrics="paths",
        backend=backend,
        **extra,
    )


def _paths_pair(spec, trials):
    """(batched summary+time, vectorized summary+time) on one spec."""
    batched, batched_s = _timed(lambda: _run(spec, "batched", trials))
    vectorized, vectorized_s = _timed(lambda: _run(spec, "vectorized", trials))
    return batched, batched_s, vectorized, vectorized_s


def bench_ext11_vectorized_paths_kernel(benchmark, record_artifact, monkeypatch):
    """Vectorized paths scoring >= 5x over batched at 1e5 trials."""
    points = []
    lines = []

    # -- pops(2,3): kernel-eligible through the public API ------------
    for trials in (TRIALS_SMALL, TRIALS_LARGE):
        b, b_s, v, v_s = _paths_pair("pops(2,3)", trials)
        identical = v.to_json() == b.to_json()
        assert identical, "vectorized paths must reproduce batched JSON"
        assert v.backend == "vectorized"
        points.append(
            {
                "spec": "pops(2,3)",
                "routing_hook": "generic-bfs (public API)",
                "trials": trials,
                "batched_seconds": round(b_s, 3),
                "vectorized_seconds": round(v_s, 3),
                "speedup": round(b_s / v_s, 2),
                "byte_identical": identical,
            }
        )
        lines.append(
            f"  pops(2,3), 10^{len(str(trials)) - 1} trials:  batched "
            f"{b_s:7.2f} s   vectorized {v_s:6.2f} s   "
            f"({b_s / v_s:5.1f}x)"
        )

    # -- sk(2,2,2): kernel measured under the generic BFS hook --------
    # The PUBLIC stack-Kautz fault_route is structured word routing;
    # pinning the generic hook here measures the kernel on the sk
    # topology itself (both backends route identically under the pin,
    # so byte-identity still holds and the comparison stays fair).
    monkeypatch.setattr(
        StackKautzFamily, "fault_route", NetworkFamily.fault_route
    )
    sk_large = None
    for trials in (TRIALS_SMALL, TRIALS_LARGE):
        b, b_s, v, v_s = _paths_pair("sk(2,2,2)", trials)
        identical = v.to_json() == b.to_json()
        assert identical, "kernel must match batched under the pinned hook"
        assert v.backend == "vectorized"
        speedup = b_s / v_s
        if trials == TRIALS_LARGE:
            sk_large = speedup
        points.append(
            {
                "spec": "sk(2,2,2)",
                "routing_hook": "generic-bfs (pinned for the benchmark)",
                "trials": trials,
                "batched_seconds": round(b_s, 3),
                "vectorized_seconds": round(v_s, 3),
                "speedup": round(speedup, 2),
                "byte_identical": identical,
            }
        )
        lines.append(
            f"  sk(2,2,2), 10^{len(str(trials)) - 1} trials:  batched "
            f"{b_s:7.2f} s   vectorized {v_s:6.2f} s   "
            f"({speedup:5.1f}x)   [generic hook pinned]"
        )
    assert sk_large >= 5.0, f"only {sk_large:.2f}x at 10^5 trials"
    monkeypatch.undo()

    # -- sk(2,2,2): the honest public-API behaviour -------------------
    sk_public = benchmark.pedantic(
        lambda: _run("sk(2,2,2)", "vectorized", TRIALS_SMALL),
        rounds=1,
        iterations=1,
    )
    assert sk_public.backend == "batched"
    assert sk_public.downgrade_reason is not None
    sk_batched = _run("sk(2,2,2)", "batched", TRIALS_SMALL)
    assert sk_public.to_json() == sk_batched.to_json()
    downgrade = {
        "spec": "sk(2,2,2)",
        "requested_backend": "vectorized",
        "executed_backend": sk_public.backend,
        "downgrade_reason": sk_public.downgrade_reason,
        "byte_identical_to_batched": True,
    }

    art = [
        f"vectorized paths kernel, {FAULTS} {MODEL} fault(s):",
        "",
        *lines,
        "",
        "  sk(2,2,2) public API: structured word routing -> recorded",
        f"  downgrade to batched ({downgrade['downgrade_reason'][:60]}...)",
        "",
        "level-synchronous frontier expansion clears the >= 5x target",
        "at 10^5 trials with byte-identical aggregate JSON.",
    ]
    record_artifact("ext11_paths_kernel.txt", "\n".join(art))
    payload = {
        "claim": "vectorized paths metrics >= 5x over batched at 1e5 "
        "trials, byte-identical JSON",
        "model": MODEL,
        "faults": FAULTS,
        "points": points,
        "public_api_downgrade": downgrade,
    }
    record_artifact(
        "BENCH_paths.json", json.dumps(payload, indent=2, sort_keys=True)
    )
