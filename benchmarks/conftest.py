"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (figure or in-text
claim).  Besides timing a representative computation with
pytest-benchmark, each writes a plain-text artifact under
``benchmarks/artifacts/`` holding the regenerated rows -- those files
are the "tables and figures" of this reproduction and are referenced
from EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

ARTIFACT_DIR = Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


@pytest.fixture
def record_artifact(artifact_dir):
    """Write (and echo) a named artifact file."""

    def _write(name: str, text: str) -> Path:
        path = artifact_dir / name
        path.write_text(text if text.endswith("\n") else text + "\n")
        print(f"\n--- artifact: {path.name} ---")
        print(text)
        return path

    return _write
