"""EXT-4: ablations over the design choices DESIGN.md calls out.

Three knobs the paper's companion work debates, executed head-to-head:

* **media-access policy** -- age priority vs distance-age ([25]'s
  knob) vs seeded random, on identical traffic;
* **forwarding discipline** -- store-and-forward (buffered) vs
  hot-potato deflection (bufferless, [25]);
* **relay locality** -- how much of the stack-Kautz advantage
  evaporates when traffic stops being group-local.
"""

from repro.networks import StackKautzNetwork
from repro.simulation import (
    FurthestFirst,
    OldestFirst,
    RandomChoice,
    group_local_traffic,
    run_traffic,
    stack_kautz_deflection_simulator,
    stack_kautz_simulator,
    uniform_traffic,
)

NET = StackKautzNetwork(4, 2, 3)  # 48 processors
N = NET.num_processors


def bench_ext4_arbitration_policies(benchmark, record_artifact):
    traffic = uniform_traffic(N, 480, seed=21)
    policies = [
        ("oldest-first", OldestFirst()),
        ("furthest-first", FurthestFirst()),
        ("random(seed 0)", RandomChoice(seed=0)),
    ]

    def sweep():
        rows = []
        for name, policy in policies:
            rep = run_traffic(stack_kautz_simulator(NET, policy=policy), traffic)
            rows.append((name, rep))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    art = [
        f"arbitration-policy ablation on SK(4,2,3), {len(traffic)} uniform messages",
        "",
    ]
    for name, rep in rows:
        art.append(f"  {name:<16} {rep.row()}")
    art += [
        "",
        "shape: makespan (slots) is nearly policy-independent -- coupler load",
        "is the binding constraint -- while tail latency (p95) shifts with",
        "who wins contended slots.",
    ]
    record_artifact("ext4_policies.txt", "\n".join(art))


def bench_ext4_deflection_vs_store_forward(benchmark, record_artifact):
    traffic = uniform_traffic(N, 480, seed=22)

    def run_pair():
        sf = run_traffic(stack_kautz_simulator(NET), traffic)
        defl = stack_kautz_deflection_simulator(NET)
        defl.inject(traffic)
        defl.run()
        lat = [m.latency for m in defl.messages]
        hops = [m.hops for m in defl.messages]
        return sf, (
            defl.now,
            sum(lat) / len(lat),
            max(lat),
            sum(hops) / len(hops),
            max(hops),
            defl.deflections,
            defl.deflection_rate(),
        )

    sf, (slots, mlat, xlat, mhops, xhops, ndef, rate) = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )

    art = [
        f"store-and-forward vs hot-potato deflection ([25]) on SK(4,2,3), {len(traffic)} messages",
        "",
        f"  store-and-forward: {sf.row()}",
        f"  hot-potato:        slots={slots}  lat(mean/max)={mlat:.2f}/{xlat}  "
        f"hops(mean/max)={mhops:.2f}/{xhops}  deflections={ndef} ({rate:.2f}/msg)",
        "",
        "shape: deflection trades buffer memory for extra hops (mean hops",
        f"{mhops:.2f} vs {sf.mean_hops:.2f}); makespan stays comparable because",
        "deflected messages keep couplers busy instead of queueing.",
    ]
    assert mhops >= sf.mean_hops
    record_artifact("ext4_deflection.txt", "\n".join(art))


def bench_ext4_traffic_locality(benchmark, record_artifact):
    fractions = (0.0, 0.4, 0.8)

    def sweep():
        rows = []
        for frac in fractions:
            traffic = group_local_traffic(N, NET.stacking_factor, 480, local_fraction=frac, seed=23)
            rep = run_traffic(stack_kautz_simulator(NET), traffic)
            rows.append((frac, rep))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    art = [
        "traffic-locality ablation on SK(4,2,3): group-local fraction sweep",
        "",
    ]
    for frac, rep in rows:
        art.append(f"  local={frac:<4} {rep.row()}")
    art += [
        "",
        "shape: local traffic collapses onto the loop couplers (mean hops -> 1),",
        "cutting latency -- the workload the group concept targets.",
    ]
    record_artifact("ext4_locality.txt", "\n".join(art))


def bench_ext4_reduce_vs_broadcast(benchmark, record_artifact):
    """Collective duality: broadcast exploits fan-out, reduce fights fan-in."""
    from repro.comm import pops_broadcast, pops_reduce, stack_kautz_broadcast
    from repro.comm import stack_kautz_reduce
    from repro.networks import POPSNetwork

    pops = POPSNetwork(12, 4)
    sk = StackKautzNetwork(4, 2, 3)

    def build():
        return (
            pops_broadcast(pops, 0).num_slots,
            pops_reduce(pops, 0).num_slots,
            stack_kautz_broadcast(sk, 0).num_slots,
            stack_kautz_reduce(sk, 0).num_slots,
        )

    pb, pr, sb, sr = benchmark(build)

    art = [
        "broadcast vs reduce at N = 48 (verified slot-exact schedules)",
        "",
        f"  POPS(12,4):  broadcast {pb} slot   reduce {pr} slots",
        f"  SK(4,2,3):   broadcast {sb} slots  reduce {sr} slots",
        "",
        "shape: broadcast rides the one-to-many coupler (1 or <= k slots);",
        "reduce is fan-in-bound -- one sender per coupler per slot -- so it",
        "costs ~group-size slots regardless of topology.",
    ]
    assert pb == 1 and pr == 12
    record_artifact("ext4_reduce_broadcast.txt", "\n".join(art))
