"""EXT-8: OTIS-G point-to-point networks (Sec. 2.1 / conclusion).

The paper recalls that OTIS also realizes point-to-point networks
(hypercube, 4-D mesh, mesh-of-trees, butterfly -- Zane et al. [24])
and concludes that OTIS-based networks can be studied through the
Imase-Itoh view.  This benchmark builds the OTIS-G family over several
factor networks, regenerates the ``2*diam(G) + 1`` diameter law, and
checks the optical swap arcs against the OTIS hardware map.
"""

from repro.comm import hypercube_graph
from repro.graphs import complete_digraph, diameter, kautz_graph
from repro.networks import otis_network, swap_distance_bound, verify_swap_arcs_match_otis


def bench_ext8_otis_g_family(benchmark, record_artifact):
    factories = [
        ("K_3", lambda: complete_digraph(3)),
        ("K_5", lambda: complete_digraph(5)),
        ("Q2", lambda: hypercube_graph(2)),
        ("Q3", lambda: hypercube_graph(3)),
        ("KG(2,2)", lambda: kautz_graph(2, 2)),
        ("KG(3,2)", lambda: kautz_graph(3, 2)),
    ]

    def sweep():
        rows = []
        for name, make in factories:
            factor = make()
            net = otis_network(factor)
            rows.append(
                (
                    name,
                    factor.num_nodes,
                    net.num_nodes,
                    diameter(factor),
                    diameter(net),
                    swap_distance_bound(factor),
                )
            )
        return rows

    rows = benchmark(sweep)

    art = [
        "OTIS-G swap networks ([24], paper Sec. 2.1)",
        "",
        "  factor    n    N=n^2   diam(G)  diam(OTIS-G)  2*diam+1",
    ]
    for name, n, big_n, dg, dn, bound in rows:
        assert dn <= bound
        art.append(
            f"  {name:<8} {n:>3}  {big_n:>6}  {dg:>7}  {dn:>12}  {bound:>8}"
        )
    art += [
        "",
        "diameter always within 2*diam(G)+1 (attained by Q3 and the",
        "complete factors); one OTIS(n,n) supplies every optical link.",
    ]
    record_artifact("ext8_otis_g.txt", "\n".join(art))


def bench_ext8_swap_arcs_are_hardware(benchmark):
    """Swap pattern == OTIS(n, n) with port-complement assignment."""

    def sweep():
        for n in (2, 3, 4, 8, 16):
            assert verify_swap_arcs_match_otis(complete_digraph(n))
        return True

    assert benchmark(sweep)
