"""FIG-11: the complete optical design of POPS(4, 2) with OTIS.

The paper wires POPS(4,2) with OTIS(4,2) stages, an OTIS(2,2)
interconnect (valid because II(2,2) == K+_2) and OTIS(2,4) receive
stages.  The benchmark regenerates the bill of materials, traces every
transmitter's light path, and proves the realized couplers equal the
sigma(4, K+_2) hyperarcs.
"""

from repro.networks import POPSDesign


def bench_fig11_pops_design_verify(benchmark, record_artifact):
    design = POPSDesign(4, 2)

    result = benchmark(design.verify)
    assert result

    bom = design.bill_of_materials()
    art = [
        "optical design of POPS(4,2) (paper Fig. 11)",
        "",
        bom.summary(),
        "",
        "per-coupler light paths (coupler (i,j) carries group i -> group j):",
    ]
    for i in range(2):
        for j in range(2):
            u, m = design.coupler_for_label(i, j)
            port = design.port_of_mux(m)
            path = design.trace(u, 0, port)
            art.append(
                f"  coupler ({i},{j}): tx port {port} -> mux({u},{m}) -> "
                f"OTIS(2,2) -> splitter({path.dst_group},{path.dst_splitter}) "
                f"-> rx port {path.receivers[0][2]}"
            )
    art += [
        "",
        "end-to-end verification: realized couplers == sigma(4, K+_2) hyperarcs",
        f"worst-case link margin: {design.worst_case_power_budget().margin_db():.2f} dB",
        "",
        design.render_ascii(),
    ]
    record_artifact("fig11_pops_design.txt", "\n".join(art))


def bench_fig11_pops_design_scaling(benchmark):
    """Design verification cost as the POPS grows."""

    def sweep():
        for t, g in [(4, 2), (8, 4), (16, 4), (8, 8)]:
            assert POPSDesign(t, g).verify()
        return True

    assert benchmark(sweep)
