"""CI smoke test for the serving tier, against a real server process.

Boots ``python -m repro serve`` as a subprocess, then asserts the two
serving-tier guarantees end to end over the wire:

1. **Coalescing** -- N identical concurrent sweep requests produce one
   leader, N-1 followers, identical bodies, and ``/stats`` counters
   agreeing (exactly one execution happened).
2. **Sharded determinism** -- an experiment run with ``shards=2`` and
   ``shards=3`` is byte-identical to the single-host run.
3. **Observability** -- ``/metrics`` serves parseable Prometheus text
   exposition with the expected families, every response carries an
   ``X-Repro-Request-Id``, and ``--access-log`` writes one JSON line
   per request.

Finally the server is sent SIGTERM and must exit 0 with a silent
stderr (graceful pool shutdown, no resource-tracker noise).

Usage: ``PYTHONPATH=src python scripts/serve_smoke.py``
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

CONCURRENT_DUPLICATES = 8


def post(port: int, verb: str, payload: dict):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/{verb}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.load(response), response.headers.get("X-Repro-Coalesced")


def get(port: int, path: str):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as response:
        return json.load(response)


def scrape_metrics(port: int) -> dict[str, str]:
    """GET /metrics; validate the exposition; return name -> kind."""
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=30
    ) as response:
        content_type = response.headers.get("Content-Type", "")
        request_id = response.headers.get("X-Repro-Request-Id", "")
        body = response.read().decode("utf-8")
    assert content_type.startswith("text/plain; version=0.0.4"), content_type
    assert len(request_id) == 16, f"bad request id {request_id!r}"
    kinds: dict[str, str] = {}
    for line in body.splitlines():
        if line.startswith("# TYPE"):
            _, _, name, kind = line.split()
            kinds[name] = kind
        elif line.startswith("# HELP") or not line.strip():
            continue
        else:  # every sample line must be "name[{labels}] number"
            sample, _, value = line.rpartition(" ")
            assert sample, f"malformed sample line {line!r}"
            float(value)
    return kinds


def main() -> int:
    access_log = Path(tempfile.mkstemp(suffix=".access.jsonl")[1])
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "0", "--concurrency", "4", "--queue-depth", "8",
         "--access-log", str(access_log)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        banner = proc.stdout.readline().strip()
        assert banner.startswith("serving on http://"), banner
        port = int(banner.rsplit(":", 1)[-1])
        print(f"[serve-smoke] {banner}")

        health = get(port, "/healthz")
        assert health["ok"] is True, health
        assert health["uptime_seconds"] >= 0, health
        assert isinstance(health["version"], str) and health["version"]

        # 1. concurrent duplicates -> exactly one execution
        sweep = {"spec": "sk(2,2,2)", "trials": 500, "seed": 42,
                 "metrics": "connectivity"}
        results: list = []

        def fire() -> None:
            results.append(post(port, "sweep", sweep))

        threads = [
            threading.Thread(target=fire)
            for _ in range(CONCURRENT_DUPLICATES)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roles = sorted(role for _, role in results)
        assert roles.count("leader") == 1, roles
        assert roles.count("follower") == CONCURRENT_DUPLICATES - 1, roles
        bodies = {json.dumps(body, sort_keys=True) for body, _ in results}
        assert len(bodies) == 1, f"{len(bodies)} distinct sweep bodies"
        stats = get(port, "/stats")
        assert stats["coalescer"]["leaders"] == 1, stats
        assert stats["coalescer"]["followers"] == CONCURRENT_DUPLICATES - 1
        print(
            f"[serve-smoke] coalescing OK: "
            f"{CONCURRENT_DUPLICATES} duplicates -> 1 execution"
        )

        # 2. sharded experiment byte-identical to single-host
        plan = {"specs": ["pops(2,2)", "sk(2,2,2)"],
                "metrics": ["connectivity", "full"],
                "trials": [4], "seed": 7}
        single, _ = post(port, "experiment", {**plan, "shards": 0})
        for shards in (2, 3):
            sharded, _ = post(port, "experiment", {**plan, "shards": shards})
            assert json.dumps(sharded, sort_keys=True) == json.dumps(
                single, sort_keys=True
            ), f"shards={shards} diverged from single-host"
        print("[serve-smoke] sharding OK: shards 2 and 3 == single-host")

        # 3. observability: /metrics exposition + access log
        kinds = scrape_metrics(port)
        for family, kind in {
            "repro_http_requests_total": "counter",
            "repro_http_request_seconds": "histogram",
            "repro_admission_active": "gauge",
            "repro_coalescer_followers_total": "counter",
            "repro_build_info": "gauge",
        }.items():
            assert kinds.get(family) == kind, (family, kinds.get(family))
        log_lines = [
            json.loads(line)
            for line in access_log.read_text().splitlines()
        ]
        assert log_lines, "access log is empty"
        assert all(
            rec["status"] == 200 and len(rec["request_id"]) == 16
            for rec in log_lines
        ), log_lines[:3]
        print(
            f"[serve-smoke] observability OK: {len(kinds)} metric "
            f"families, {len(log_lines)} access-log lines"
        )

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        stderr = proc.stderr.read()
        assert code == 0, f"exit code {code}: {stderr}"
        assert stderr.strip() == "", f"noisy shutdown:\n{stderr}"
        print("[serve-smoke] shutdown OK: exit 0, silent stderr")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        access_log.unlink(missing_ok=True)


if __name__ == "__main__":
    sys.exit(main())
