"""Digraph isomorphism testing for topology-equivalence proofs.

The paper's central identities are graph equalities:

* ``KG(d, k) == L^{k-1}(K_{d+1})``        (Fig. 6, [13])
* ``KG(d, k) == II(d, d**(k-1) * (d+1))`` (Corollary 1, [16])
* OTIS-realized interconnect == target graph (Proposition 1)

We verify them two ways: through *explicit* bijections (fast, always
preferred -- see :func:`check_isomorphism`) and through *search* for
small instances (:func:`find_isomorphism`), which also certifies the
figure-sized examples independently of our own formulas.

The search uses iterated degree/neighborhood color refinement (a 1-WL
sweep) to cut the candidate space, then backtracks.  Digraphs here are
highly regular, so refinement alone rarely separates nodes -- the
backtracking is the workhorse and instance sizes should stay small
(<= a few hundred nodes).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .digraph import DiGraph

__all__ = [
    "check_isomorphism",
    "find_isomorphism",
    "are_isomorphic",
    "enumerate_automorphisms",
]


def check_isomorphism(g: DiGraph, h: DiGraph, mapping: Sequence[int]) -> bool:
    """Whether ``mapping`` (node of g -> node of h) is an isomorphism.

    Verifies bijectivity and exact arc-multiset correspondence,
    including parallel-arc multiplicities.
    """
    n = g.num_nodes
    if h.num_nodes != n or len(mapping) != n:
        return False
    m = np.asarray(mapping, dtype=np.int64)
    if m.size != n or (np.sort(m) != np.arange(n)).any():
        return False
    if g.num_arcs != h.num_arcs:
        return False
    ga = g.arc_array()
    mapped = np.column_stack((m[ga[:, 0]], m[ga[:, 1]]))
    return _arc_multiset(mapped) == _arc_multiset(h.arc_array())


def _arc_multiset(arr: np.ndarray) -> bytes:
    if arr.shape[0] == 0:
        return b""
    order = np.lexsort((arr[:, 1], arr[:, 0]))
    return arr[order].tobytes()


def find_isomorphism(
    g: DiGraph, h: DiGraph, max_steps: int = 5_000_000
) -> list[int] | None:
    """Search for an isomorphism ``g -> h``; ``None`` if none found.

    Returns a list ``m`` with ``m[u]`` = image of node ``u``.  Raises
    ``TimeoutError`` if the step budget is exhausted before the search
    space is covered (so ``None`` is a definite negative).
    """
    n = g.num_nodes
    if h.num_nodes != n or g.num_arcs != h.num_arcs:
        return None
    if n == 0:
        return []

    cg = _refine_colors(g)
    ch = _refine_colors(h)
    if sorted(np.bincount(cg).tolist()) != sorted(np.bincount(ch).tolist()):
        return None

    # Candidate sets per g-node: h-nodes of the same color class.  The
    # classes must correspond; match color ids by their class signature.
    sig_g = _class_signature(g, cg)
    sig_h = _class_signature(h, ch)
    if sorted(sig_g.values()) != sorted(sig_h.values()):
        return None
    color_map: dict[int, int] = {}
    used_h_colors: set[int] = set()
    for colg, s in sig_g.items():
        match = next(
            (colh for colh, sh in sig_h.items() if sh == s and colh not in used_h_colors),
            None,
        )
        if match is None:
            return None
        color_map[colg] = match
        used_h_colors.add(match)

    h_nodes_by_color: dict[int, list[int]] = {}
    for v, c in enumerate(ch.tolist()):
        h_nodes_by_color.setdefault(c, []).append(v)

    # Order g-nodes to keep the partial map connected: BFS order.
    order = _bfs_order(g)
    mapping = np.full(n, -1, dtype=np.int64)
    used = np.zeros(n, dtype=bool)
    steps = 0

    def consistent(u: int, v: int) -> bool:
        # All already-mapped neighbors must map compatibly, with exact
        # parallel-arc multiplicities.
        for w in np.unique(g.successors(u)).tolist():
            if mapping[w] >= 0 and h.arc_multiplicity(v, int(mapping[w])) != g.arc_multiplicity(u, w):
                return False
        for w in np.unique(g.predecessors(u)).tolist():
            if mapping[w] >= 0 and h.arc_multiplicity(int(mapping[w]), v) != g.arc_multiplicity(w, u):
                return False
        if g.arc_multiplicity(u, u) != h.arc_multiplicity(v, v):
            return False
        return True

    def backtrack(i: int) -> bool:
        nonlocal steps
        if i == n:
            return True
        steps += 1
        if steps > max_steps:
            raise TimeoutError(f"isomorphism search exceeded {max_steps} steps")
        u = order[i]
        for v in h_nodes_by_color[color_map[int(cg[u])]]:
            if not used[v] and consistent(u, v):
                mapping[u] = v
                used[v] = True
                if backtrack(i + 1):
                    return True
                mapping[u] = -1
                used[v] = False
        return False

    if not backtrack(0):
        return None
    result = mapping.tolist()
    assert check_isomorphism(g, h, result)
    return result


def are_isomorphic(g: DiGraph, h: DiGraph, max_steps: int = 5_000_000) -> bool:
    """Convenience wrapper around :func:`find_isomorphism`."""
    return find_isomorphism(g, h, max_steps=max_steps) is not None


def enumerate_automorphisms(
    g: DiGraph, limit: int = 100_000, max_steps: int = 5_000_000
) -> list[list[int]]:
    """All automorphisms of ``g`` (node permutations preserving arcs).

    Backtracking as in :func:`find_isomorphism` but collecting every
    completion.  Knowing the automorphism group explains why two valid
    labelings of the same construction can disagree (paper Fig. 10 vs
    our explicit Kautz/Imase-Itoh bijection): for ``KG(d, k)`` the
    alphabet permutations alone give ``(d+1)!`` automorphisms.

    ``limit`` caps the number returned (groups grow fast).
    """
    n = g.num_nodes
    if n == 0:
        return [[]]
    colors = _refine_colors(g)
    nodes_by_color: dict[int, list[int]] = {}
    for v, c in enumerate(colors.tolist()):
        nodes_by_color.setdefault(c, []).append(v)

    order = _bfs_order(g)
    mapping = np.full(n, -1, dtype=np.int64)
    used = np.zeros(n, dtype=bool)
    found: list[list[int]] = []
    steps = 0

    def consistent(u: int, v: int) -> bool:
        for w in np.unique(g.successors(u)).tolist():
            if mapping[w] >= 0 and g.arc_multiplicity(v, int(mapping[w])) != g.arc_multiplicity(u, w):
                return False
        for w in np.unique(g.predecessors(u)).tolist():
            if mapping[w] >= 0 and g.arc_multiplicity(int(mapping[w]), v) != g.arc_multiplicity(w, u):
                return False
        return g.arc_multiplicity(u, u) == g.arc_multiplicity(v, v)

    def backtrack(i: int) -> None:
        nonlocal steps
        if len(found) >= limit:
            return
        if i == n:
            found.append(mapping.tolist())
            return
        steps += 1
        if steps > max_steps:
            raise TimeoutError(f"automorphism search exceeded {max_steps} steps")
        u = order[i]
        for v in nodes_by_color[int(colors[u])]:
            if not used[v] and consistent(u, v):
                mapping[u] = v
                used[v] = True
                backtrack(i + 1)
                mapping[u] = -1
                used[v] = False

    backtrack(0)
    for m in found[: min(len(found), 5)]:
        assert check_isomorphism(g, g, m)
    return found


def _refine_colors(g: DiGraph, rounds: int | None = None) -> np.ndarray:
    """1-WL color refinement using (in, out) multiset signatures."""
    n = g.num_nodes
    colors = np.zeros(n, dtype=np.int64)
    # Seed with (outdeg, indeg, loop multiplicity).
    seed = [
        (g.out_degree(u), g.in_degree(u), g.arc_multiplicity(u, u))
        for u in range(n)
    ]
    colors = _canon(seed)
    limit = rounds if rounds is not None else n
    for _ in range(limit):
        sigs = []
        for u in range(n):
            out_sig = tuple(sorted(colors[v] for v in g.successors(u).tolist()))
            in_sig = tuple(sorted(colors[v] for v in g.predecessors(u).tolist()))
            sigs.append((int(colors[u]), out_sig, in_sig))
        new = _canon(sigs)
        if np.array_equal(new, colors):
            break
        colors = new
    return colors


def _canon(signatures: list) -> np.ndarray:
    """Assign dense integer ids to signatures, ordered canonically."""
    uniq = sorted(set(signatures))
    index = {s: i for i, s in enumerate(uniq)}
    return np.asarray([index[s] for s in signatures], dtype=np.int64)


def _class_signature(g: DiGraph, colors: np.ndarray) -> dict[int, tuple]:
    """Per-color-class invariant used to align classes across graphs."""
    out: dict[int, tuple] = {}
    for c in np.unique(colors).tolist():
        members = np.nonzero(colors == c)[0]
        u = int(members[0])
        out[c] = (
            int(members.size),
            g.out_degree(u),
            g.in_degree(u),
            g.arc_multiplicity(u, u),
        )
    return out


def _bfs_order(g: DiGraph) -> list[int]:
    """Nodes in BFS order from node 0, unreached nodes appended last."""
    n = g.num_nodes
    seen = np.zeros(n, dtype=bool)
    order: list[int] = []
    for root in range(n):
        if seen[root]:
            continue
        seen[root] = True
        queue = [root]
        while queue:
            u = queue.pop(0)
            order.append(u)
            for v in np.unique(np.concatenate((g.successors(u), g.predecessors(u)))).tolist():
                if not seen[v]:
                    seen[v] = True
                    queue.append(v)
    return order
