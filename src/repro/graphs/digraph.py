"""Compact immutable directed multigraph kernel.

Every topology in this package (Kautz, Imase-Itoh, de Bruijn, complete
digraphs, line digraphs, ...) is represented as a :class:`DiGraph`: an
immutable directed multigraph over the integer node set ``{0, ..., n-1}``
stored in CSR (compressed sparse row) form with numpy arrays.  CSR keeps
the successor lists of all nodes in two flat arrays, which makes
whole-graph sweeps (BFS from every node, degree histograms, arc
relabelling) vectorizable and cache friendly -- important because the
benchmark harness builds Kautz graphs with tens of thousands of arcs.

Nodes may optionally carry *labels* (e.g. Kautz words ``(x1, ..., xk)``);
labels are hashable objects kept in a parallel tuple with a reverse
index.  All algorithms work on the integer ids; labels are presentation
only.

Multigraph semantics: parallel arcs are allowed (the Imase-Itoh graph
``II(d, n)`` has parallel arcs for small ``n``) and loops are allowed
(``K+_g`` and ``KG+(d,k)`` require them).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import Callable

import numpy as np

__all__ = ["DiGraph", "ArcView"]


class ArcView:
    """Read-only sequence view over the arcs of a :class:`DiGraph`.

    Iterating yields ``(u, v)`` pairs in CSR order (sorted by source,
    then by target).  Supports ``len``, ``in`` and indexing.
    """

    __slots__ = ("_g",)

    def __init__(self, graph: "DiGraph") -> None:
        self._g = graph

    def __len__(self) -> int:
        return self._g.num_arcs

    def __iter__(self) -> Iterator[tuple[int, int]]:
        g = self._g
        for u in range(g.num_nodes):
            for v in g._indices[g._indptr[u] : g._indptr[u + 1]]:
                yield (u, int(v))

    def __contains__(self, arc: object) -> bool:
        if not (isinstance(arc, tuple) and len(arc) == 2):
            return False
        u, v = arc
        return self._g.has_arc(int(u), int(v))

    def __getitem__(self, i: int) -> tuple[int, int]:
        g = self._g
        if i < 0:
            i += g.num_arcs
        if not 0 <= i < g.num_arcs:
            raise IndexError("arc index out of range")
        u = int(np.searchsorted(g._indptr, i, side="right") - 1)
        return (u, int(g._indices[i]))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ArcView({list(self)!r})"


class DiGraph:
    """Immutable directed multigraph in CSR form.

    Parameters
    ----------
    num_nodes:
        Number of nodes; nodes are ``0 .. num_nodes - 1``.
    arcs:
        Iterable of ``(source, target)`` pairs.  Parallel arcs and loops
        are kept as-is.
    labels:
        Optional sequence of ``num_nodes`` hashable node labels.
    name:
        Optional human-readable graph name (used by ``repr`` and figure
        artifacts).

    Examples
    --------
    >>> g = DiGraph(3, [(0, 1), (1, 2), (2, 0)], name="C3")
    >>> g.num_nodes, g.num_arcs
    (3, 3)
    >>> g.successors(0).tolist()
    [1]
    """

    __slots__ = (
        "_n",
        "_indptr",
        "_indices",
        "_pred_indptr",
        "_pred_indices",
        "_labels",
        "_label_index",
        "name",
    )

    def __init__(
        self,
        num_nodes: int,
        arcs: Iterable[tuple[int, int]],
        labels: Sequence[Hashable] | None = None,
        name: str = "",
    ) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be >= 0, got {num_nodes}")
        self._n = int(num_nodes)
        arc_array = np.asarray(list(arcs) if not isinstance(arcs, np.ndarray) else arcs, dtype=np.int64)
        if arc_array.size == 0:
            arc_array = arc_array.reshape(0, 2)
        if arc_array.ndim != 2 or arc_array.shape[1] != 2:
            raise ValueError("arcs must be (source, target) pairs")
        if arc_array.size and (arc_array.min() < 0 or arc_array.max() >= num_nodes):
            bad = arc_array[(arc_array < 0).any(axis=1) | (arc_array >= num_nodes).any(axis=1)]
            raise ValueError(f"arc endpoints out of range [0, {num_nodes}): {bad[:5].tolist()}")
        # Sort by (source, target) so successor lists are sorted and
        # binary-searchable; np.lexsort sorts by the last key first.
        if arc_array.shape[0]:
            order = np.lexsort((arc_array[:, 1], arc_array[:, 0]))
            arc_array = arc_array[order]
        counts = np.bincount(arc_array[:, 0], minlength=num_nodes)
        self._indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        self._indices = np.ascontiguousarray(arc_array[:, 1])
        self._pred_indptr: np.ndarray | None = None
        self._pred_indices: np.ndarray | None = None
        self.name = name
        if labels is not None:
            labels = tuple(labels)
            if len(labels) != num_nodes:
                raise ValueError(
                    f"labels has {len(labels)} entries for {num_nodes} nodes"
                )
            self._labels: tuple[Hashable, ...] | None = labels
            self._label_index: dict[Hashable, int] | None = {
                lab: i for i, lab in enumerate(labels)
            }
            if len(self._label_index) != num_nodes:
                raise ValueError("node labels must be distinct")
        else:
            self._labels = None
            self._label_index = None

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_successor_function(
        cls,
        num_nodes: int,
        successors: Callable[[int], Iterable[int]],
        labels: Sequence[Hashable] | None = None,
        name: str = "",
    ) -> "DiGraph":
        """Build a graph by evaluating ``successors(u)`` for every node."""
        arcs = [(u, int(v)) for u in range(num_nodes) for v in successors(u)]
        return cls(num_nodes, arcs, labels=labels, name=name)

    @classmethod
    def from_adjacency_matrix(
        cls,
        matrix: np.ndarray,
        labels: Sequence[Hashable] | None = None,
        name: str = "",
    ) -> "DiGraph":
        """Build from a dense multiplicity matrix ``M[u, v] = #arcs u->v``."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("adjacency matrix must be square")
        if (matrix < 0).any():
            raise ValueError("arc multiplicities must be >= 0")
        n = matrix.shape[0]
        arcs: list[tuple[int, int]] = []
        us, vs = np.nonzero(matrix)
        for u, v in zip(us.tolist(), vs.tolist()):
            arcs.extend([(u, v)] * int(matrix[u, v]))
        return cls(n, arcs, labels=labels, name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def num_arcs(self) -> int:
        """Number of arcs (counting multiplicity)."""
        return int(self._indices.shape[0])

    @property
    def arcs(self) -> ArcView:
        """Read-only view over all arcs in CSR order."""
        return ArcView(self)

    @property
    def labels(self) -> tuple[Hashable, ...] | None:
        """Node labels, or ``None`` if the graph is unlabeled."""
        return self._labels

    def label_of(self, node: int) -> Hashable:
        """Label of ``node`` (the node id itself if unlabeled)."""
        if self._labels is None:
            return node
        return self._labels[node]

    def node_of(self, label: Hashable) -> int:
        """Node id carrying ``label``.

        Raises ``KeyError`` for unknown labels; for unlabeled graphs the
        label must be the node id itself.
        """
        if self._label_index is None:
            node = int(label)  # type: ignore[arg-type]
            if not 0 <= node < self._n:
                raise KeyError(label)
            return node
        return self._label_index[label]

    def successors(self, u: int) -> np.ndarray:
        """Sorted array of successors of ``u`` (with multiplicity)."""
        self._check_node(u)
        return self._indices[self._indptr[u] : self._indptr[u + 1]]

    def predecessors(self, v: int) -> np.ndarray:
        """Sorted array of predecessors of ``v`` (with multiplicity)."""
        self._check_node(v)
        self._ensure_pred()
        assert self._pred_indptr is not None and self._pred_indices is not None
        return self._pred_indices[self._pred_indptr[v] : self._pred_indptr[v + 1]]

    def out_degree(self, u: int) -> int:
        """Out-degree of ``u`` (counting multiplicity)."""
        self._check_node(u)
        return int(self._indptr[u + 1] - self._indptr[u])

    def in_degree(self, v: int) -> int:
        """In-degree of ``v`` (counting multiplicity)."""
        self._check_node(v)
        self._ensure_pred()
        assert self._pred_indptr is not None
        return int(self._pred_indptr[v + 1] - self._pred_indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Vector of all out-degrees."""
        return np.diff(self._indptr)

    def in_degrees(self) -> np.ndarray:
        """Vector of all in-degrees."""
        if self.num_arcs == 0:
            return np.zeros(self._n, dtype=np.int64)
        return np.bincount(self._indices, minlength=self._n).astype(np.int64)

    def has_arc(self, u: int, v: int) -> bool:
        """Whether at least one arc ``u -> v`` exists."""
        self._check_node(u)
        self._check_node(v)
        row = self._indices[self._indptr[u] : self._indptr[u + 1]]
        i = np.searchsorted(row, v)
        return bool(i < row.shape[0] and row[i] == v)

    def arc_multiplicity(self, u: int, v: int) -> int:
        """Number of parallel arcs ``u -> v``."""
        self._check_node(u)
        self._check_node(v)
        row = self._indices[self._indptr[u] : self._indptr[u + 1]]
        lo = int(np.searchsorted(row, v, side="left"))
        hi = int(np.searchsorted(row, v, side="right"))
        return hi - lo

    def num_loops(self) -> int:
        """Number of loop arcs ``u -> u`` (counting multiplicity)."""
        arcs = self.arc_array()
        return int((arcs[:, 0] == arcs[:, 1]).sum())

    def adjacency_matrix(self) -> np.ndarray:
        """Dense ``(n, n)`` multiplicity matrix.  Only for small graphs."""
        mat = np.zeros((self._n, self._n), dtype=np.int64)
        for u in range(self._n):
            np.add.at(mat[u], self.successors(u), 1)
        return mat

    def arc_array(self) -> np.ndarray:
        """All arcs as an ``(m, 2)`` int64 array in CSR order."""
        sources = np.repeat(np.arange(self._n, dtype=np.int64), self.out_degrees())
        return np.column_stack((sources, self._indices))

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "DiGraph":
        """The graph with every arc reversed."""
        rev = self.arc_array()[:, ::-1]
        return DiGraph(self._n, rev, labels=self._labels, name=f"reverse({self.name})" if self.name else "")

    def with_loops(self) -> "DiGraph":
        """Copy with exactly one loop added at every node lacking one.

        This is the ``G+`` operation of the paper (``K+_g``,
        ``KG+(d, k)``): every node gains a self-arc so its degree rises
        by one, modeling the processor group that can send to itself
        through a dedicated coupler.
        """
        extra = [(u, u) for u in range(self._n) if not self.has_arc(u, u)]
        arcs = np.concatenate([self.arc_array(), np.asarray(extra, dtype=np.int64).reshape(-1, 2)])
        name = f"{self.name}+" if self.name else ""
        return DiGraph(self._n, arcs, labels=self._labels, name=name)

    def with_extra_loops(self) -> "DiGraph":
        """Copy with one *additional* loop arc at every node.

        Unlike :meth:`with_loops`, a loop is added even where one
        already exists (parallel loops).  This models adding a
        dedicated loop OPS coupler per group regardless of the base
        topology -- needed by stack-Imase-Itoh networks whose base
        ``II(d, n)`` can itself contain loops.
        """
        extra = np.column_stack([np.arange(self._n, dtype=np.int64)] * 2)
        arcs = np.concatenate([self.arc_array(), extra])
        name = f"{self.name}++" if self.name else ""
        return DiGraph(self._n, arcs, labels=self._labels, name=name)

    def without_loops(self) -> "DiGraph":
        """Copy with all loop arcs removed."""
        arr = self.arc_array()
        arr = arr[arr[:, 0] != arr[:, 1]]
        name = f"{self.name}-loops" if self.name else ""
        return DiGraph(self._n, arr, labels=self._labels, name=name)

    def relabel(self, labels: Sequence[Hashable] | None) -> "DiGraph":
        """Copy with new node labels (or labels dropped when ``None``)."""
        return DiGraph(self._n, self.arc_array(), labels=labels, name=self.name)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> np.ndarray:
        """Unweighted distances from ``source``; ``-1`` marks unreachable."""
        self._check_node(source)
        dist = np.full(self._n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.asarray([source], dtype=np.int64)
        d = 0
        while frontier.size:
            d += 1
            # Gather all successors of the frontier in one vectorized pull.
            starts = self._indptr[frontier]
            stops = self._indptr[frontier + 1]
            total = int((stops - starts).sum())
            if total == 0:
                break
            nbrs = np.concatenate(
                [self._indices[a:b] for a, b in zip(starts.tolist(), stops.tolist())]
            )
            fresh = np.unique(nbrs[dist[nbrs] < 0])
            if fresh.size == 0:
                break
            dist[fresh] = d
            frontier = fresh
        return dist

    def shortest_path(self, source: int, target: int) -> list[int] | None:
        """One shortest path ``source -> ... -> target`` or ``None``.

        Ties are broken toward the smallest node id, making the result
        deterministic.
        """
        self._check_node(source)
        self._check_node(target)
        if source == target:
            return [source]
        parent = np.full(self._n, -1, dtype=np.int64)
        parent[source] = source
        frontier = [source]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in self.successors(u).tolist():
                    if parent[v] < 0:
                        parent[v] = u
                        if v == target:
                            path = [v]
                            while path[-1] != source:
                                path.append(int(parent[path[-1]]))
                            return path[::-1]
                        nxt.append(v)
            frontier = nxt
        return None

    def is_strongly_connected(self) -> bool:
        """Whether every node reaches every other node."""
        if self._n == 0:
            return True
        if (self.bfs_distances(0) < 0).any():
            return False
        return not (self.reverse().bfs_distances(0) < 0).any()

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def _check_node(self, u: int) -> None:
        if not 0 <= u < self._n:
            raise IndexError(f"node {u} out of range [0, {self._n})")

    def _ensure_pred(self) -> None:
        if self._pred_indptr is not None:
            return
        arr = self.arc_array()
        rev = DiGraph(self._n, arr[:, ::-1])
        self._pred_indptr = rev._indptr
        self._pred_indices = rev._indices

    def __eq__(self, other: object) -> bool:
        """Structural equality: same node count and identical arc multiset."""
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash((self._n, self._indices.tobytes(), self._indptr.tobytes()))

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return f"<DiGraph{tag} n={self._n} m={self.num_arcs}>"

    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph`` (labels become attributes)."""
        import networkx as nx

        g = nx.MultiDiGraph(name=self.name)
        for u in range(self._n):
            g.add_node(u, label=self.label_of(u))
        g.add_edges_from((int(u), int(v)) for u, v in self.arc_array())
        return g
