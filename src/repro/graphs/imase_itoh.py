"""Imase-Itoh digraphs ``II(d, n)`` (paper Sec. 2.6).

Definition 3 of the paper (after Imase and Itoh [15]): ``II(d, n)`` has
node set ``Z_n`` and an arc from ``u`` to every ``v`` with
``v == (-d*u - a) mod n`` for ``a = 1, ..., d``.  The graph has constant
out-degree ``d`` (parallel arcs occur when ``n < d``... more precisely
whenever two offsets collide mod ``n``) and diameter
``ceil(log_d n)`` [15].

Relation to Kautz graphs (Imase-Itoh [16], paper Corollary 1):
``II(d, d**(k-1) * (d+1))`` *is* the Kautz graph ``KG(d, k)``.  This
module carries an **explicit isomorphism**, built from the line-digraph
recursion

    ``L(II(d, n)) == II(d, d*n)`` via  arc ``(u, a)`` -> node ``d*u + (a-1)``,

which we prove in the docstring of :func:`line_digraph_arc_index` and
machine-check in the test-suite.  Iterating the recursion down to
``II(d, d+1) == K_{d+1}`` (note ``-d == 1 (mod d+1)``) converts any
``II`` node index into a Kautz word and back.
"""

from __future__ import annotations

from functools import lru_cache

from .digraph import DiGraph
from .kautz import is_kautz_word, kautz_num_nodes

__all__ = [
    "imase_itoh_graph",
    "imase_itoh_successors",
    "imase_itoh_diameter_bound",
    "line_digraph_arc_index",
    "imase_itoh_index_to_kautz_word",
    "kautz_word_to_imase_itoh_index",
]


def imase_itoh_successors(u: int, d: int, n: int) -> list[int]:
    """The ``d`` successors ``(-d*u - a) mod n`` for ``a = 1..d``.

    Successors are returned in offset order ``a = 1, 2, ..., d`` (which
    is *descending* node order starting from ``-d*u - 1``); duplicates
    are kept, matching the multigraph semantics of ``II(d, n)``.

    >>> imase_itoh_successors(0, 3, 12)
    [11, 10, 9]
    """
    _check_params(d, n)
    if not 0 <= u < n:
        raise ValueError(f"node {u} out of range [0, {n})")
    return [(-d * u - a) % n for a in range(1, d + 1)]


def imase_itoh_graph(d: int, n: int) -> DiGraph:
    """The Imase-Itoh digraph ``II(d, n)``.

    >>> g = imase_itoh_graph(3, 12)   # paper Fig. 10 (== KG(3, 2))
    >>> g.num_nodes, g.num_arcs
    (12, 36)
    """
    _check_params(d, n)
    arcs = [
        (u, v) for u in range(n) for v in imase_itoh_successors(u, d, n)
    ]
    return DiGraph(n, arcs, name=f"II({d},{n})")


def imase_itoh_diameter_bound(d: int, n: int) -> int:
    """The diameter bound ``ceil(log_d n)`` proved in [15].

    >>> imase_itoh_diameter_bound(3, 12)
    3

    (For ``n = d**(k-1) * (d+1)`` the true diameter is ``k``, one less
    than this bound evaluates to whenever ``d**k < n <= d**(k+1)`` --
    the bound is tight for general ``n``; the benchmark CLM-2 sweeps
    both.)
    """
    _check_params(d, n)
    if n == 1:
        return 0
    if d == 1:
        # II(1, n) is the cycle u -> -u-1; handled separately: its
        # diameter is not log-bounded.  The paper only uses d >= 2.
        raise ValueError("diameter bound requires d >= 2")
    k = 0
    p = 1
    while p < n:
        p *= d
        k += 1
    return k


def line_digraph_arc_index(u: int, a: int, d: int, n: int) -> int:
    """Node of ``II(d, d*n)`` representing arc ``(u, a)`` of ``II(d, n)``.

    The arc of ``II(d, n)`` leaving ``u`` with offset ``a`` (head
    ``v = (-d*u - a) mod n``) maps to node ``w = d*u + (a - 1)`` of
    ``II(d, d*n)``.

    Proof that this realizes ``L(II(d, n)) == II(d, d*n)``: successor
    arcs of ``(u, a)`` in the line digraph are ``(v, b)``, ``b = 1..d``,
    with image ``w' = d*v + (b - 1)``.  From ``v == -d*u - a (mod n)``,
    multiplying by ``d`` lifts to ``d*v == -d^2*u - d*a (mod d*n)``, so

        ``w' == -d^2*u - d*a + b - 1
             == -d*(d*u + a - 1) - (d - b + 1)
             == -d*w - c  (mod d*n)``  with ``c = d - b + 1 in 1..d``,

    exactly the out-neighborhood of ``w`` in ``II(d, d*n)``; the map is
    a bijection since ``(u, a) -> d*u + (a-1)`` enumerates ``Z_{d*n}``.
    """
    _check_params(d, n)
    if not 1 <= a <= d:
        raise ValueError(f"offset a must be in 1..{d}, got {a}")
    if not 0 <= u < n:
        raise ValueError(f"node {u} out of range [0, {n})")
    return d * u + (a - 1)


def kautz_word_to_imase_itoh_index(word: tuple[int, ...], d: int) -> int:
    """Node of ``II(d, d**(k-1) * (d+1))`` carrying Kautz word ``word``.

    Built by iterating :func:`line_digraph_arc_index`: the word
    ``(x1, ..., xk)`` is the line-digraph arc from ``(x1, ..., x_{k-1})``
    to ``(x2, ..., xk)``; at the bottom, ``KG(d, 1) = K_{d+1} =
    II(d, d+1)`` with word ``(x,)`` at node ``x``.

    >>> kautz_word_to_imase_itoh_index((2, 0), 3)
    7
    """
    if not is_kautz_word(word, d):
        raise ValueError(f"{word!r} is not a Kautz word over {{0..{d}}}")
    return _word_to_ii(word, d)


@lru_cache(maxsize=65536)
def _word_to_ii(word: tuple[int, ...], d: int) -> int:
    k = len(word)
    if k == 1:
        return word[0]
    n_prev = kautz_num_nodes(d, k - 1)
    u = _word_to_ii(word[:-1], d)
    v = _word_to_ii(word[1:], d)
    a = (-d * u - v) % n_prev
    if not 1 <= a <= d:  # pragma: no cover - guarded by the recursion proof
        raise AssertionError(
            f"line-digraph recursion broke: word={word}, u={u}, v={v}, a={a}"
        )
    return line_digraph_arc_index(u, a, d, n_prev)


def imase_itoh_index_to_kautz_word(w: int, d: int, k: int) -> tuple[int, ...]:
    """Kautz word at node ``w`` of ``II(d, d**(k-1) * (d+1))``.

    Inverse of :func:`kautz_word_to_imase_itoh_index`: peel the
    line-digraph recursion, recovering at each level the tail node of
    the represented arc.

    >>> imase_itoh_index_to_kautz_word(7, 3, 2)
    (2, 0)
    """
    n = kautz_num_nodes(d, k)
    if not 0 <= w < n:
        raise ValueError(f"node {w} out of range [0, {n})")
    if k == 1:
        return (w,)
    # w = d*u + (a-1): u is the (k-1)-prefix, v = (-d*u - a) mod n' the
    # (k-1)-suffix; the word is prefix + last letter of suffix.
    u, a = divmod(w, d)
    a += 1
    n_prev = kautz_num_nodes(d, k - 1)
    v = (-d * u - a) % n_prev
    prefix = imase_itoh_index_to_kautz_word(u, d, k - 1)
    suffix = imase_itoh_index_to_kautz_word(v, d, k - 1)
    if prefix[1:] != suffix[:-1]:  # pragma: no cover - recursion invariant
        raise AssertionError(
            f"prefix/suffix mismatch at w={w}: {prefix} vs {suffix}"
        )
    return prefix + (suffix[-1],)


def _check_params(d: int, n: int) -> None:
    if d < 1:
        raise ValueError(f"II degree d must be >= 1, got {d}")
    if n < 1:
        raise ValueError(f"II size n must be >= 1, got {n}")
