"""Whole-graph structural analysis: degrees, distances, Euler, Hamilton.

These routines back the paper's property claims about Kautz graphs
(Sec. 2.5): constant degree ``d``, diameter ``k <= log_d N``, Eulerian
and Hamiltonian, near-optimal node count.  They are written for the
sizes the paper exercises (up to a few thousand nodes); the all-pairs
sweeps reuse the vectorized BFS of the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .digraph import DiGraph

__all__ = [
    "DegreeSummary",
    "degree_summary",
    "is_out_regular",
    "is_in_regular",
    "is_regular",
    "diameter",
    "average_distance",
    "distance_distribution",
    "eccentricities",
    "is_eulerian",
    "eulerian_circuit",
    "find_hamiltonian_cycle",
    "is_hamiltonian",
    "girth",
]


@dataclass(frozen=True)
class DegreeSummary:
    """Min/max in- and out-degrees of a digraph."""

    min_out: int
    max_out: int
    min_in: int
    max_in: int

    @property
    def regular_degree(self) -> int | None:
        """The common degree if the graph is in- and out-regular."""
        if self.min_out == self.max_out == self.min_in == self.max_in:
            return self.min_out
        return None


def degree_summary(g: DiGraph) -> DegreeSummary:
    """Degree extremes of ``g``."""
    outs = g.out_degrees()
    ins = g.in_degrees()
    if g.num_nodes == 0:
        return DegreeSummary(0, 0, 0, 0)
    return DegreeSummary(
        int(outs.min()), int(outs.max()), int(ins.min()), int(ins.max())
    )


def is_out_regular(g: DiGraph, d: int) -> bool:
    """Every node has out-degree exactly ``d``."""
    return bool((g.out_degrees() == d).all())


def is_in_regular(g: DiGraph, d: int) -> bool:
    """Every node has in-degree exactly ``d``."""
    return bool((g.in_degrees() == d).all())


def is_regular(g: DiGraph, d: int) -> bool:
    """Every node has in- and out-degree exactly ``d``."""
    return is_out_regular(g, d) and is_in_regular(g, d)


def eccentricities(g: DiGraph) -> np.ndarray:
    """Out-eccentricity of every node; ``-1`` if some node is unreachable."""
    ecc = np.empty(g.num_nodes, dtype=np.int64)
    for u in range(g.num_nodes):
        dist = g.bfs_distances(u)
        ecc[u] = -1 if (dist < 0).any() else int(dist.max())
    return ecc


def diameter(g: DiGraph) -> int:
    """Longest shortest path; ``-1`` if the graph is not strongly connected.

    >>> from .kautz import kautz_graph
    >>> diameter(kautz_graph(2, 3))
    3
    """
    if g.num_nodes == 0:
        return 0
    ecc = eccentricities(g)
    return -1 if (ecc < 0).any() else int(ecc.max())


def average_distance(g: DiGraph) -> float:
    """Mean shortest-path distance over ordered pairs ``u != v``.

    Raises ``ValueError`` when the graph is not strongly connected.
    """
    n = g.num_nodes
    if n <= 1:
        return 0.0
    total = 0
    for u in range(n):
        dist = g.bfs_distances(u)
        if (dist < 0).any():
            raise ValueError("average distance undefined: graph not strongly connected")
        total += int(dist.sum())
    return total / (n * (n - 1))


def distance_distribution(g: DiGraph) -> np.ndarray:
    """Histogram ``h[l] = #ordered pairs at distance l`` (l=0 counts nodes).

    Unreachable pairs are not counted; compare ``h.sum()`` with ``n*n``
    to detect them.
    """
    n = g.num_nodes
    counts: np.ndarray = np.zeros(1, dtype=np.int64)
    for u in range(n):
        dist = g.bfs_distances(u)
        reach = dist[dist >= 0]
        if reach.size:
            h = np.bincount(reach)
            if h.shape[0] > counts.shape[0]:
                h[: counts.shape[0]] += counts
                counts = h
            else:
                counts[: h.shape[0]] += h
    return counts


def is_eulerian(g: DiGraph) -> bool:
    """Eulerian circuit exists: strongly connected and in==out at every node.

    (Nodes with degree zero would trivially break strong connectivity,
    so the classical statement reduces to this check.)
    """
    if g.num_arcs == 0:
        return False
    if not (g.in_degrees() == g.out_degrees()).all():
        return False
    return g.is_strongly_connected()


def eulerian_circuit(g: DiGraph) -> list[int]:
    """An Eulerian circuit as a node sequence (first == last).

    Hierholzer's algorithm on the CSR arc list; ``ValueError`` if the
    graph is not Eulerian.
    """
    if not is_eulerian(g):
        raise ValueError(f"{g!r} is not Eulerian")
    next_arc = g._indptr[:-1].copy()  # noqa: SLF001 - per-node cursor into CSR
    indptr, indices = g._indptr, g._indices  # noqa: SLF001
    stack = [0]
    circuit: list[int] = []
    while stack:
        u = stack[-1]
        if next_arc[u] < indptr[u + 1]:
            v = int(indices[next_arc[u]])
            next_arc[u] += 1
            stack.append(v)
        else:
            circuit.append(stack.pop())
    circuit.reverse()
    if len(circuit) != g.num_arcs + 1:  # pragma: no cover - guarded by is_eulerian
        raise AssertionError("Hierholzer did not consume every arc")
    return circuit


def find_hamiltonian_cycle(
    g: DiGraph, max_steps: int = 2_000_000
) -> list[int] | None:
    """Search for a Hamiltonian cycle (node sequence, first == last).

    Backtracking with a most-constrained-successor heuristic; intended
    for the moderate sizes of the paper's examples (``KG(2, 3)``,
    ``KG(3, 2)``, ...).  Returns ``None`` if no cycle exists *or* the
    step budget is exhausted -- callers that need a definite negative
    must check small graphs only.
    """
    n = g.num_nodes
    if n == 0:
        return None
    if n == 1:
        return [0, 0] if g.has_arc(0, 0) else None
    visited = np.zeros(n, dtype=bool)
    visited[0] = True
    path = [0]
    steps = 0

    def unvisited_successors(u: int) -> list[int]:
        return [int(v) for v in np.unique(g.successors(u)) if not visited[v]]

    def extend() -> bool:
        nonlocal steps
        steps += 1
        if steps > max_steps:
            raise TimeoutError
        u = path[-1]
        if len(path) == n:
            return g.has_arc(u, 0)
        # Most-constrained first: try successors with fewest onward moves.
        cands = unvisited_successors(u)
        cands.sort(key=lambda v: len(unvisited_successors(v)))
        for v in cands:
            visited[v] = True
            path.append(v)
            if extend():
                return True
            path.pop()
            visited[v] = False
        return False

    try:
        found = extend()
    except TimeoutError:
        return None
    if not found:
        return None
    return path + [0]


def is_hamiltonian(g: DiGraph, max_steps: int = 2_000_000) -> bool:
    """Whether a Hamiltonian cycle was found within the step budget."""
    return find_hamiltonian_cycle(g, max_steps=max_steps) is not None


def girth(g: DiGraph) -> int:
    """Length of the shortest directed cycle; ``-1`` if acyclic.

    A loop gives girth 1.  Computed by BFS from each node back to
    itself.
    """
    best = -1
    for u in range(g.num_nodes):
        if g.has_arc(u, u):
            return 1
        # Shortest cycle through u = 1 + min over predecessors p of u of
        # dist(u, p): one BFS from u covers all of them.
        dist = g.bfs_distances(u)
        preds = np.unique(g.predecessors(u))
        preds = preds[preds != u]
        if preds.size:
            dp = dist[preds]
            dp = dp[dp >= 0]
            if dp.size:
                cyc = 1 + int(dp.min())
                if best < 0 or cyc < best:
                    best = cyc
        if best == 2:
            return 2  # cannot beat 2 once loops are excluded
    return best
