"""De Bruijn digraphs and their Reddy-Pradhan-Kuhl generalization.

The paper cites de Bruijn-based lightwave networks (Sivarajan and
Ramaswami [22]) as the main single-OPS comparator for Kautz-based
designs, and the generalized de Bruijn graph ``GB(d, n)`` is the exact
sibling of the Imase-Itoh construction (same congruence trick with
``+d*u`` instead of ``-d*u``).  We implement both as baselines for the
comparison benchmarks (EXT-3).

* ``B(d, k)``: nodes are words of length ``k`` over ``{0..d-1}``, arc
  ``(x1..xk) -> (x2..xk, z)``; ``d**k`` nodes, degree ``d`` (loops at
  the constant words), diameter ``k``.
* ``GB(d, n)`` (Reddy, Pradhan, Kuhl 1980 / Imase, Itoh 1981): nodes
  ``Z_n``, arcs ``u -> (d*u + a) mod n``, ``a = 0..d-1``; diameter
  ``<= ceil(log_d n)``; ``GB(d, d**k) == B(d, k)``.
"""

from __future__ import annotations

from collections.abc import Iterator

from .digraph import DiGraph

__all__ = [
    "debruijn_graph",
    "debruijn_words",
    "debruijn_word_to_index",
    "debruijn_index_to_word",
    "generalized_debruijn_graph",
    "generalized_debruijn_successors",
]


def debruijn_words(d: int, k: int) -> Iterator[tuple[int, ...]]:
    """All length-``k`` words over ``{0..d-1}`` in index (radix-d) order."""
    _check(d, k)
    for i in range(d**k):
        yield debruijn_index_to_word(i, d, k)


def debruijn_word_to_index(word: tuple[int, ...], d: int) -> int:
    """Radix-``d`` value of the word; the node id in ``B(d, k)``.

    >>> debruijn_word_to_index((1, 0, 1), 2)
    5
    """
    if any(not 0 <= x < d for x in word):
        raise ValueError(f"{word!r} is not a word over {{0..{d - 1}}}")
    idx = 0
    for x in word:
        idx = idx * d + x
    return idx


def debruijn_index_to_word(index: int, d: int, k: int) -> tuple[int, ...]:
    """Inverse of :func:`debruijn_word_to_index`."""
    _check(d, k)
    if not 0 <= index < d**k:
        raise ValueError(f"index {index} out of range [0, {d ** k})")
    word = []
    for _ in range(k):
        word.append(index % d)
        index //= d
    return tuple(reversed(word))


def debruijn_graph(d: int, k: int) -> DiGraph:
    """The de Bruijn digraph ``B(d, k)`` with word labels.

    The shift ``(x1..xk) -> (x2..xk, z)`` in radix-``d`` arithmetic is
    ``u -> (d*u + z) mod d**k`` -- i.e. ``B(d, k) == GB(d, d**k)`` with
    node ids equal to word values.

    >>> g = debruijn_graph(2, 3)
    >>> g.num_nodes, g.num_arcs
    (8, 16)
    """
    _check(d, k)
    n = d**k
    labels = [debruijn_index_to_word(i, d, k) for i in range(n)]
    arcs = [(u, (d * u + z) % n) for u in range(n) for z in range(d)]
    return DiGraph(n, arcs, labels=labels, name=f"B({d},{k})")


def generalized_debruijn_successors(u: int, d: int, n: int) -> list[int]:
    """The ``d`` successors ``(d*u + a) mod n``, ``a = 0..d-1``."""
    if d < 1 or n < 1:
        raise ValueError(f"need d >= 1 and n >= 1, got d={d}, n={n}")
    if not 0 <= u < n:
        raise ValueError(f"node {u} out of range [0, {n})")
    return [(d * u + a) % n for a in range(d)]


def generalized_debruijn_graph(d: int, n: int) -> DiGraph:
    """The generalized de Bruijn digraph ``GB(d, n)``.

    >>> generalized_debruijn_graph(2, 6).num_arcs
    12
    """
    arcs = [
        (u, v)
        for u in range(n)
        for v in generalized_debruijn_successors(u, d, n)
    ]
    return DiGraph(n, arcs, name=f"GB({d},{n})")


def _check(d: int, k: int) -> None:
    if d < 1:
        raise ValueError(f"de Bruijn degree d must be >= 1, got {d}")
    if k < 1:
        raise ValueError(f"de Bruijn diameter k must be >= 1, got {k}")
