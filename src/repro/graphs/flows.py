"""Disjoint paths and connectivity via unit-capacity max-flow.

The paper's fault-tolerance claim (Sec. 2.5, after Imase, Soneoka and
Okada [17]) is that Kautz routing survives ``d - 1`` link or node
faults.  That rests on ``KG(d, k)`` being ``d``-arc-connected and
``(d-1)``-node-connected (in fact d-node-connected between
non-adjacent nodes).  This module measures those quantities directly:

* :func:`max_arc_disjoint_paths` / :func:`arc_connectivity`
* :func:`max_node_disjoint_paths` / :func:`node_connectivity`

implemented as BFS augmenting-path max-flow (Edmonds-Karp) on unit
capacities, with the standard node-splitting reduction for the node
variants.  Unit capacities keep each augmentation O(V + E) and the
flow value is bounded by the degree, so this is fast at paper scale.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .digraph import DiGraph

__all__ = [
    "max_arc_disjoint_paths",
    "max_node_disjoint_paths",
    "arc_connectivity",
    "node_connectivity",
]


class _UnitFlow:
    """Residual network with unit capacities over an arc list."""

    def __init__(self, num_nodes: int, arcs: list[tuple[int, int]]) -> None:
        self.n = num_nodes
        self.head: list[int] = []
        self.cap: list[int] = []
        self.adj: list[list[int]] = [[] for _ in range(num_nodes)]
        for u, v in arcs:
            self._add(u, v)

    def _add(self, u: int, v: int) -> None:
        self.adj[u].append(len(self.head))
        self.head.append(v)
        self.cap.append(1)
        self.adj[v].append(len(self.head))
        self.head.append(u)
        self.cap.append(0)

    def max_flow(self, s: int, t: int, limit: int | None = None) -> int:
        flow = 0
        while limit is None or flow < limit:
            parent_arc = self._bfs(s, t)
            if parent_arc is None:
                break
            v = t
            while v != s:
                a = parent_arc[v]
                self.cap[a] -= 1
                self.cap[a ^ 1] += 1
                v = self.head[a ^ 1]
            flow += 1
        return flow

    def _bfs(self, s: int, t: int) -> list[int] | None:
        parent_arc = [-1] * self.n
        seen = [False] * self.n
        seen[s] = True
        q: deque[int] = deque([s])
        while q:
            u = q.popleft()
            for a in self.adj[u]:
                v = self.head[a]
                if self.cap[a] > 0 and not seen[v]:
                    seen[v] = True
                    parent_arc[v] = a
                    if v == t:
                        return parent_arc
                    q.append(v)
        return None


def max_arc_disjoint_paths(g: DiGraph, s: int, t: int) -> int:
    """Maximum number of pairwise arc-disjoint paths ``s -> t``.

    >>> from .kautz import kautz_graph
    >>> max_arc_disjoint_paths(kautz_graph(2, 2), 0, 5)
    2
    """
    if s == t:
        raise ValueError("s and t must differ")
    arcs = [(int(u), int(v)) for u, v in g.arc_array()]
    return _UnitFlow(g.num_nodes, arcs).max_flow(s, t)


def max_node_disjoint_paths(g: DiGraph, s: int, t: int) -> int:
    """Maximum number of internally node-disjoint paths ``s -> t``.

    Node-splitting reduction: node ``v`` becomes ``v_in = 2v`` and
    ``v_out = 2v + 1`` joined by a unit arc; original arcs run
    ``u_out -> v_in``.  Source/sink internal arcs get effectively
    unlimited capacity by connecting flow at ``s_out`` and ``t_in``.
    """
    if s == t:
        raise ValueError("s and t must differ")
    arcs: list[tuple[int, int]] = []
    for v in range(g.num_nodes):
        if v not in (s, t):
            arcs.append((2 * v, 2 * v + 1))
    for u, v in g.arc_array().tolist():
        if u == v:
            continue  # loops never carry s-t flow
        arcs.append((2 * u + 1, 2 * v))
    flow = _UnitFlow(2 * g.num_nodes, arcs)
    # s has no in-split, t no out-split: route from s_out to t_in.
    # (s_in->s_out / t_in->t_out arcs were skipped above, which is the
    # "unlimited" treatment of the endpoints.)
    return flow.max_flow(2 * s + 1, 2 * t)


def arc_connectivity(g: DiGraph, sample_pairs: int | None = None, seed: int = 0) -> int:
    """Arc connectivity: min over pairs of :func:`max_arc_disjoint_paths`.

    Exact over all ordered pairs when ``sample_pairs`` is ``None``; for
    larger graphs pass a sample size and the result is an upper bound
    that equals the true value with high probability on the regular,
    arc-transitive-ish graphs used here.  Uses the standard reduction:
    it suffices to check pairs ``(0, v)`` and ``(v, 0)`` for all v.
    """
    n = g.num_nodes
    if n < 2:
        raise ValueError("connectivity needs >= 2 nodes")
    others = list(range(1, n))
    if sample_pairs is not None and sample_pairs < len(others):
        rng = np.random.default_rng(seed)
        others = sorted(rng.choice(others, size=sample_pairs, replace=False).tolist())
    best = None
    for v in others:
        for s, t in ((0, v), (v, 0)):
            f = max_arc_disjoint_paths(g, s, t)
            if best is None or f < best:
                best = f
            if best == 0:
                return 0
    assert best is not None
    return best


def node_connectivity(g: DiGraph, sample_pairs: int | None = None, seed: int = 0) -> int:
    """Node connectivity over non-adjacent pairs (min node-disjoint paths).

    Only pairs ``(s, t)`` with no arc ``s -> t`` constrain node
    connectivity (adjacent pairs can't be separated by node removal);
    we scan pairs anchored at every node against node 0, plus 0's
    non-neighbors, which is sufficient for the vertex-transitive
    families here and exact when the graph is node-transitive.
    """
    n = g.num_nodes
    if n < 2:
        raise ValueError("connectivity needs >= 2 nodes")
    pairs = [(0, v) for v in range(1, n)] + [(v, 0) for v in range(1, n)]
    if sample_pairs is not None and sample_pairs < len(pairs):
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(pairs), size=sample_pairs, replace=False)
        pairs = [pairs[i] for i in idx.tolist()]
    best = None
    for s, t in pairs:
        if g.has_arc(s, t):
            continue
        f = max_node_disjoint_paths(g, s, t)
        if best is None or f < best:
            best = f
        if best == 0:
            return 0
    if best is None:
        # all pairs adjacent: complete digraph; convention n - 1
        return n - 1
    return best
