"""Directed-graph substrate: the topologies the paper builds on.

Families
--------
* :func:`complete_digraph` / :func:`complete_digraph_with_loops` --
  ``K_n`` and ``K+_n`` (POPS group topology, Kautz base case)
* :func:`kautz_graph` / :func:`kautz_graph_with_loops` -- ``KG(d, k)``
  and ``KG+(d, k)`` with Kautz-word labels
* :func:`imase_itoh_graph` -- ``II(d, n)``, plus the explicit
  ``KG <-> II`` isomorphism of Corollary 1
* :func:`debruijn_graph` / :func:`generalized_debruijn_graph` --
  comparison baselines (refs [10, 22])

Machinery
---------
* :class:`DiGraph` -- immutable CSR digraph kernel
* :func:`line_digraph` -- the ``L`` operator of [13]
* :mod:`repro.graphs.properties` -- degrees, diameter, Euler, Hamilton
* :mod:`repro.graphs.isomorphism` -- explicit + searched isomorphism
* :mod:`repro.graphs.flows` -- disjoint paths / connectivity
"""

from .complete import complete_digraph, complete_digraph_with_loops
from .debruijn import (
    debruijn_graph,
    debruijn_index_to_word,
    debruijn_word_to_index,
    debruijn_words,
    generalized_debruijn_graph,
    generalized_debruijn_successors,
)
from .digraph import ArcView, DiGraph
from .flows import (
    arc_connectivity,
    max_arc_disjoint_paths,
    max_node_disjoint_paths,
    node_connectivity,
)
from .imase_itoh import (
    imase_itoh_diameter_bound,
    imase_itoh_graph,
    imase_itoh_index_to_kautz_word,
    imase_itoh_successors,
    kautz_word_to_imase_itoh_index,
    line_digraph_arc_index,
)
from .isomorphism import (
    are_isomorphic,
    check_isomorphism,
    enumerate_automorphisms,
    find_isomorphism,
)
from .kautz import (
    is_kautz_word,
    kautz_graph,
    kautz_graph_with_loops,
    kautz_index_to_word,
    kautz_num_nodes,
    kautz_word_to_index,
    kautz_words,
)
from .line_digraph import iterated_line_digraph, line_digraph
from .properties import (
    DegreeSummary,
    average_distance,
    degree_summary,
    diameter,
    distance_distribution,
    eccentricities,
    eulerian_circuit,
    find_hamiltonian_cycle,
    girth,
    is_eulerian,
    is_hamiltonian,
    is_in_regular,
    is_out_regular,
    is_regular,
)

__all__ = [
    "ArcView",
    "DiGraph",
    "DegreeSummary",
    "arc_connectivity",
    "are_isomorphic",
    "average_distance",
    "check_isomorphism",
    "complete_digraph",
    "complete_digraph_with_loops",
    "debruijn_graph",
    "debruijn_index_to_word",
    "debruijn_word_to_index",
    "debruijn_words",
    "degree_summary",
    "diameter",
    "distance_distribution",
    "eccentricities",
    "enumerate_automorphisms",
    "eulerian_circuit",
    "find_hamiltonian_cycle",
    "find_isomorphism",
    "generalized_debruijn_graph",
    "generalized_debruijn_successors",
    "girth",
    "imase_itoh_diameter_bound",
    "imase_itoh_graph",
    "imase_itoh_index_to_kautz_word",
    "imase_itoh_successors",
    "is_eulerian",
    "is_hamiltonian",
    "is_in_regular",
    "is_kautz_word",
    "is_out_regular",
    "is_regular",
    "iterated_line_digraph",
    "kautz_graph",
    "kautz_graph_with_loops",
    "kautz_index_to_word",
    "kautz_num_nodes",
    "kautz_word_to_imase_itoh_index",
    "kautz_word_to_index",
    "kautz_words",
    "line_digraph",
    "line_digraph_arc_index",
    "max_arc_disjoint_paths",
    "max_node_disjoint_paths",
    "node_connectivity",
]
