"""The line-digraph operator ``L(G)`` (Fiol, Yebra, Alegre [13]).

``L(G)`` has one node per arc of ``G``; there is an arc from node
``(u, v)`` to node ``(v, w)`` for every pair of consecutive arcs of
``G``.  The paper (Sec. 2.5, Fig. 6) uses the identity

    ``KG(d, k) == L(KG(d, k-1)) == L^{k-1}(K_{d+1})``

to define Kautz graphs, and this module machine-checks it.

Standard facts implemented and tested here:

* ``|V(L(G))| == |A(G)|`` and ``|A(L(G))| == sum_v indeg(v)*outdeg(v)``;
* if ``G`` is ``d``-in ``d``-out regular, so is ``L(G)``, with
  ``|V| -> d*|V|``;
* if ``G`` is strongly connected with diameter ``D`` (and is not a
  single cycle), ``L(G)`` has diameter ``D + 1``.
"""

from __future__ import annotations

from .digraph import DiGraph

__all__ = ["line_digraph", "iterated_line_digraph"]


def line_digraph(g: DiGraph) -> DiGraph:
    """The line digraph ``L(g)``.

    Nodes of the result are labeled ``(label(u), label(v), j)`` where
    ``j`` counts parallel ``u -> v`` arcs (``j`` is omitted -- the label
    is the plain pair -- when the arc is simple), so iterating the
    operator produces readable, unambiguous labels.

    Node order: CSR arc order of ``g`` (sorted by tail then head), so
    node ``i`` of ``L(g)`` is arc ``i`` of ``g``.

    >>> from .complete import complete_digraph
    >>> lg = line_digraph(complete_digraph(3))
    >>> lg.num_nodes, lg.num_arcs
    (6, 12)
    """
    arcs_of_g = g.arc_array()
    m = arcs_of_g.shape[0]

    # Label each arc; disambiguate parallel arcs with a copy counter.
    labels: list[object] = []
    seen: dict[tuple[int, int], int] = {}
    for u, v in arcs_of_g.tolist():
        j = seen.get((u, v), 0)
        seen[(u, v)] = j + 1
        lu, lv = g.label_of(u), g.label_of(v)
        labels.append((lu, lv) if g.arc_multiplicity(u, v) == 1 else (lu, lv, j))

    # Arc i = (u, v) connects to every arc leaving v.  CSR order means
    # the arcs leaving v are exactly line-nodes indptr[v] .. indptr[v+1].
    indptr = g._indptr  # noqa: SLF001 - kernel-internal fast path
    line_arcs = [
        (i, j)
        for i in range(m)
        for j in range(int(indptr[arcs_of_g[i, 1]]), int(indptr[arcs_of_g[i, 1] + 1]))
    ]
    name = f"L({g.name})" if g.name else "L(G)"
    return DiGraph(m, line_arcs, labels=labels, name=name)


def iterated_line_digraph(g: DiGraph, iterations: int) -> DiGraph:
    """``L^iterations(g)``; ``iterations = 0`` returns ``g`` itself.

    >>> from .complete import complete_digraph
    >>> iterated_line_digraph(complete_digraph(3), 2).num_nodes
    12
    """
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    for _ in range(iterations):
        g = line_digraph(g)
    return g
