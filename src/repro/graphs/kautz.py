"""Kautz digraphs ``KG(d, k)`` with word labels (paper Sec. 2.5).

Definition 2 of the paper (after Kautz [18]): a node of ``KG(d, k)`` is
a word ``(x1, ..., xk)`` over the alphabet ``{0, ..., d}`` of ``d + 1``
letters in which consecutive letters differ; there is an arc from
``(x1, ..., xk)`` to every ``(x2, ..., xk, z)`` with ``z != xk``.

``KG(d, k)`` has ``N = d**(k-1) * (d+1)`` nodes, constant in/out degree
``d``, diameter ``k``, and is Eulerian, Hamiltonian, and node-optimal
with respect to the Moore bound for ``d > 2`` [18].  It equals the
``(k-1)``-fold line digraph of ``K_{d+1}`` [13] and the Imase-Itoh graph
``II(d, d**(k-1) * (d+1))`` [16]; both identities are verified in the
test-suite and benchmarks.

Node numbering.  We map a Kautz word to an integer in a *positional*
scheme that is compatible with the Imase-Itoh congruence (see
:mod:`repro.graphs.imase_itoh` and Corollary 1 of the paper): word
digits are first re-encoded relative to the previous digit, giving a
mixed-radix number with one digit of radix ``d + 1`` and ``k - 1``
digits of radix ``d``.
"""

from __future__ import annotations

from collections.abc import Iterator

from .digraph import DiGraph

__all__ = [
    "kautz_num_nodes",
    "kautz_words",
    "kautz_word_to_index",
    "kautz_index_to_word",
    "kautz_graph",
    "kautz_graph_with_loops",
    "is_kautz_word",
]


def kautz_num_nodes(d: int, k: int) -> int:
    """Number of nodes of ``KG(d, k)``: ``d**(k-1) * (d+1)``.

    >>> kautz_num_nodes(5, 4)
    750

    (The paper's worked example says "KG(5,4) has N = 3750", which
    contradicts its own formula -- 3750 is ``kautz_num_nodes(5, 5)``.
    See EXPERIMENTS.md, CLM-1b.)
    """
    _check_params(d, k)
    return d ** (k - 1) * (d + 1)


def is_kautz_word(word: tuple[int, ...], d: int) -> bool:
    """Whether ``word`` is a valid Kautz word over alphabet ``{0..d}``."""
    if len(word) == 0:
        return False
    if any(not 0 <= x <= d for x in word):
        return False
    return all(word[i] != word[i + 1] for i in range(len(word) - 1))


def kautz_words(d: int, k: int) -> Iterator[tuple[int, ...]]:
    """Yield all Kautz words of length ``k`` in index order.

    The order matches :func:`kautz_index_to_word`, i.e. word ``i`` is
    the label of node ``i`` of :func:`kautz_graph`.
    """
    _check_params(d, k)
    for i in range(kautz_num_nodes(d, k)):
        yield kautz_index_to_word(i, d, k)


def kautz_word_to_index(word: tuple[int, ...], d: int) -> int:
    """Integer id of a Kautz word.

    The first letter contributes its value in radix ``d + 1``; every
    later letter ``x_{i+1}`` contributes its *offset from the previous
    letter*, ``(x_{i+1} - x_i - 1) mod (d + 1)``, which ranges over
    ``0 .. d-1`` because consecutive letters differ -- a digit of radix
    ``d``.

    >>> kautz_word_to_index((0, 1), 2)
    0
    """
    k = len(word)
    if not is_kautz_word(word, d):
        raise ValueError(f"{word!r} is not a Kautz word over {{0..{d}}}")
    idx = word[0]
    for i in range(1, k):
        offset = (word[i] - word[i - 1] - 1) % (d + 1)
        idx = idx * d + offset
    return idx


def kautz_index_to_word(index: int, d: int, k: int) -> tuple[int, ...]:
    """Inverse of :func:`kautz_word_to_index`.

    >>> kautz_index_to_word(0, 2, 2)
    (0, 1)
    """
    _check_params(d, k)
    n = kautz_num_nodes(d, k)
    if not 0 <= index < n:
        raise ValueError(f"index {index} out of range [0, {n})")
    offsets = []
    for _ in range(k - 1):
        offsets.append(index % d)
        index //= d
    first = index
    word = [first]
    for off in reversed(offsets):
        word.append((word[-1] + 1 + off) % (d + 1))
    return tuple(word)


def kautz_graph(d: int, k: int) -> DiGraph:
    """The Kautz digraph ``KG(d, k)``, nodes labeled by their words.

    >>> g = kautz_graph(2, 2)
    >>> g.num_nodes, g.num_arcs
    (6, 12)
    """
    _check_params(d, k)
    n = kautz_num_nodes(d, k)
    labels = [kautz_index_to_word(i, d, k) for i in range(n)]
    arcs = []
    for u, word in enumerate(labels):
        last = word[-1]
        for z in range(d + 1):
            if z != last:
                v = kautz_word_to_index(word[1:] + (z,), d)
                arcs.append((u, v))
    return DiGraph(n, arcs, labels=labels, name=f"KG({d},{k})")


def kautz_graph_with_loops(d: int, k: int) -> DiGraph:
    """``KG+(d, k)``: the Kautz graph with a loop at every node.

    Used by the stack-Kautz network (Definition 4): the loop is the OPS
    coupler through which a group talks to itself, raising node degree
    to ``d + 1``.
    """
    g = kautz_graph(d, k).with_loops()
    g.name = f"KG+({d},{k})"
    return g


def _check_params(d: int, k: int) -> None:
    if d < 1:
        raise ValueError(f"Kautz degree d must be >= 1, got {d}")
    if k < 1:
        raise ValueError(f"Kautz diameter k must be >= 1, got {k}")
