"""Complete digraphs ``K_n`` and ``K+_n``.

The POPS network of the paper is modeled as the stack-graph
``sigma(t, K+_g)`` (Fig. 5): the complete digraph *with loops* on the
``g`` processor groups, each arc standing for one OPS coupler.  The
Kautz graph's line-digraph definition also starts from ``K_{d+1}``
(``KG(d, 1) = K_{d+1}``, Fig. 6).
"""

from __future__ import annotations

from .digraph import DiGraph

__all__ = ["complete_digraph", "complete_digraph_with_loops"]


def complete_digraph(n: int) -> DiGraph:
    """Complete loopless digraph ``K_n``: every ordered pair, no loops.

    ``K_n`` has ``n`` nodes and ``n * (n - 1)`` arcs; every node has
    in- and out-degree ``n - 1``.

    >>> complete_digraph(3).num_arcs
    6
    """
    if n < 1:
        raise ValueError(f"K_n needs n >= 1, got {n}")
    arcs = [(u, v) for u in range(n) for v in range(n) if u != v]
    return DiGraph(n, arcs, name=f"K_{n}")


def complete_digraph_with_loops(n: int) -> DiGraph:
    """Complete digraph with loops ``K+_n``: all ``n**2`` ordered pairs.

    This is the group-level topology of ``POPS(t, g)`` (paper Sec. 2.4):
    OPS coupler ``(i, j)`` is the arc ``i -> j`` and the ``g`` loops are
    the couplers connecting a group to itself.

    >>> complete_digraph_with_loops(2).num_arcs
    4
    """
    if n < 1:
        raise ValueError(f"K+_n needs n >= 1, got {n}")
    arcs = [(u, v) for u in range(n) for v in range(n)]
    return DiGraph(n, arcs, name=f"K+_{n}")
