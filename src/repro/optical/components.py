"""Optoelectronic component models with insertion-loss accounting.

The paper's designs are bills of optical material: transmitters,
receivers, lens-pair OTIS stages, optical multiplexers (the input half
of an OPS coupler), beam-splitters (the output half), and fiber for the
stack-Kautz loop couplers.  Each component here carries an insertion
loss in dB so whole light paths can be audited by
:mod:`repro.optical.power`.

Default loss figures are representative free-space-optics numbers from
the literature the paper cites ([5, 6, 12, 14]); every constructor
accepts overrides, and nothing downstream depends on the absolute
values -- only on the *structure* of the loss chain (e.g. the ``1/s``
splitting loss of a degree-``s`` OPS, which is physics, not a vendor
datasheet).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "NOMINAL",
    "OpticalComponent",
    "Transmitter",
    "Receiver",
    "LensPair",
    "OpticalMultiplexer",
    "BeamSplitter",
    "OpticalFiber",
    "splitting_loss_db",
]


def splitting_loss_db(ways: int) -> float:
    """Fundamental 1/N splitting loss of an N-way broadcast, in dB.

    A passive splitter divides the incoming signal into ``ways`` equal
    parts, each carrying ``1/ways`` of the power: ``10*log10(ways)`` dB.

    >>> round(splitting_loss_db(4), 2)
    6.02
    """
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    return 10.0 * math.log10(ways)


@dataclass(frozen=True)
class OpticalComponent:
    """Base class: anything light passes through, with a loss in dB."""

    name: str
    insertion_loss_db: float = 0.0

    def __post_init__(self) -> None:
        if self.insertion_loss_db < 0:
            raise ValueError(
                f"{self.name}: insertion loss must be >= 0 dB "
                f"(passive components cannot amplify), got {self.insertion_loss_db}"
            )


@dataclass(frozen=True)
class Transmitter(OpticalComponent):
    """A statically tuned optical transmitter (laser + driver).

    ``power_dbm`` is the launched optical power.  The paper's networks
    use a *small constant number* of statically tuned transmitters per
    processor -- that is the point of multi-hop topologies (Sec. 1).
    """

    name: str = "transmitter"
    insertion_loss_db: float = 0.0
    power_dbm: float = 0.0  # 1 mW laser


@dataclass(frozen=True)
class Receiver(OpticalComponent):
    """A statically tuned optical receiver (photodiode + amp).

    ``sensitivity_dbm`` is the minimum detectable power for the target
    bit error rate; the power budget must land above it.
    """

    name: str = "receiver"
    insertion_loss_db: float = 0.0
    sensitivity_dbm: float = -30.0


@dataclass(frozen=True)
class LensPair(OpticalComponent):
    """One traversal of the two OTIS lens planes (free-space, paper Fig. 1).

    Free-space lens relays are low-loss; [5] reports of order 1 dB for
    the whole OTIS stage.
    """

    name: str = "otis-lens-pair"
    insertion_loss_db: float = 1.0


@dataclass(frozen=True)
class OpticalMultiplexer(OpticalComponent):
    """Input half of an OPS coupler: combines ``fan_in`` sources (Fig. 2).

    Modeled with excess loss only.  The *combining* loss of a passive
    N-to-1 combiner is accounted for once, at the coupler's splitter
    stage, to match the paper's description of the OPS as "multiplexer
    followed by ... a beam-splitter that divides the incoming light
    signal into s equal signals" -- a single 1/s division.
    """

    name: str = "optical-multiplexer"
    insertion_loss_db: float = 0.5
    fan_in: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.fan_in < 1:
            raise ValueError(f"fan_in must be >= 1, got {self.fan_in}")


@dataclass(frozen=True)
class BeamSplitter(OpticalComponent):
    """Output half of an OPS coupler: divides into ``fan_out`` beams.

    ``insertion_loss_db`` is the *excess* loss of the device (hologram
    / photorefractive splitter, [6, 14]); the fundamental
    ``10*log10(fan_out)`` splitting loss is reported separately by
    :func:`BeamSplitter.total_loss_db` so budgets can distinguish
    physics from implementation.
    """

    name: str = "beam-splitter"
    insertion_loss_db: float = 1.0
    fan_out: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.fan_out < 1:
            raise ValueError(f"fan_out must be >= 1, got {self.fan_out}")

    def total_loss_db(self) -> float:
        """Excess + fundamental splitting loss, in dB."""
        return self.insertion_loss_db + splitting_loss_db(self.fan_out)


@dataclass(frozen=True)
class OpticalFiber(OpticalComponent):
    """A fiber jumper (used for the stack-Kautz loop couplers, Sec. 4.2).

    Loss scales with length: ``attenuation_db_per_km * length_m / 1000``
    plus two connector losses folded into ``insertion_loss_db``.
    """

    name: str = "fiber"
    insertion_loss_db: float = 0.5  # connectors
    length_m: float = 1.0
    attenuation_db_per_km: float = 0.35

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.length_m < 0:
            raise ValueError(f"length must be >= 0, got {self.length_m}")
        if self.attenuation_db_per_km < 0:
            raise ValueError("attenuation must be >= 0")

    def total_loss_db(self) -> float:
        """Connector + distance loss, in dB."""
        return self.insertion_loss_db + self.attenuation_db_per_km * self.length_m / 1000.0


# Mutable default factories would be wrong on frozen dataclasses; keep a
# module-level registry of nominal components for convenience instead.
NOMINAL = {
    "transmitter": Transmitter(),
    "receiver": Receiver(),
    "lens_pair": LensPair(),
    "multiplexer": OpticalMultiplexer(),
    "beam_splitter": BeamSplitter(),
    "fiber": OpticalFiber(),
}
