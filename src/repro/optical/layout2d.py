"""2-D lenslet-array OTIS layouts (the physical form of [19, 5]).

Real OTIS hardware arranges transmitters, lenslets and receivers as
2-D arrays: the ``G = gx * gy`` transmitter blocks form a ``gx x gy``
grid, each block a ``tx x ty`` grid of emitters, and the two lens
planes are 2-D lenslet arrays.  Optically, the transpose acts
*independently in each transverse dimension*:

    tx block (ix, iy), emitter (jx, jy)
        ->  rx block (tx-1-jx, ty-1-jy), detector (gx-1-ix, gy-1-iy)

:class:`OTIS2DLayout` models that factored system and proves the fact
this module exists for: **flattening both grids row-major reproduces
the abstract 1-D ``OTIS(G, T)`` permutation exactly**, because

    (tx*ty - 1) - (jx*ty + jy) == (tx-1-jx)*ty + (ty-1-jy)

and likewise for the group index -- i.e. the 2-D hardware *is* the
paper's OTIS, not an approximation of it.  It also reports the
physical figures of merit a 2-D arrangement buys: square-ish apertures
(aspect ratio ~1 instead of a 1 x GT strip) and shorter maximum
transverse beam throws.
"""

from __future__ import annotations

from dataclasses import dataclass

from .otis import OTIS

__all__ = ["OTIS2DLayout"]


@dataclass(frozen=True)
class OTIS2DLayout:
    """A factored ``OTIS(gx*gy, tx*ty)`` as two 2-D lenslet stages.

    Parameters
    ----------
    gx, gy:
        Transmitter-block grid: ``G = gx * gy`` blocks.
    tx, ty:
        Emitters per block: ``T = tx * ty``.

    >>> lay = OTIS2DLayout(2, 2, 3, 2)     # OTIS(4, 6) as 2x2 / 3x2 grids
    >>> lay.receiver_of((0, 0), (0, 0))
    ((2, 1), (1, 1))
    >>> lay.verify_factorization()
    True
    """

    gx: int
    gy: int
    tx: int
    ty: int

    def __post_init__(self) -> None:
        for name, v in (("gx", self.gx), ("gy", self.gy), ("tx", self.tx), ("ty", self.ty)):
            if v < 1:
                raise ValueError(f"{name} must be >= 1, got {v}")

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        """``G = gx * gy``."""
        return self.gx * self.gy

    @property
    def group_size(self) -> int:
        """``T = tx * ty``."""
        return self.tx * self.ty

    @property
    def abstract(self) -> OTIS:
        """The 1-D OTIS this hardware implements."""
        return OTIS(self.num_groups, self.group_size)

    # ------------------------------------------------------------------
    def receiver_of(
        self, block: tuple[int, int], emitter: tuple[int, int]
    ) -> tuple[tuple[int, int], tuple[int, int]]:
        """Per-dimension transpose: ``((tx-1-jx, ty-1-jy), (gx-1-ix, gy-1-iy))``."""
        ix, iy = block
        jx, jy = emitter
        if not (0 <= ix < self.gx and 0 <= iy < self.gy):
            raise IndexError(f"block {block} outside {self.gx}x{self.gy} grid")
        if not (0 <= jx < self.tx and 0 <= jy < self.ty):
            raise IndexError(f"emitter {emitter} outside {self.tx}x{self.ty} grid")
        return (
            (self.tx - 1 - jx, self.ty - 1 - jy),
            (self.gx - 1 - ix, self.gy - 1 - iy),
        )

    def flatten_tx(self, block: tuple[int, int], emitter: tuple[int, int]) -> tuple[int, int]:
        """Row-major 1-D (group, index) of a 2-D transmitter."""
        ix, iy = block
        jx, jy = emitter
        return (ix * self.gy + iy, jx * self.ty + jy)

    def flatten_rx(self, block: tuple[int, int], detector: tuple[int, int]) -> tuple[int, int]:
        """Row-major 1-D (group, index) of a 2-D receiver."""
        ax, ay = block
        bx, by = detector
        return (ax * self.ty + ay, bx * self.gy + by)

    def verify_factorization(self) -> bool:
        """The 2-D per-dimension transpose == the abstract OTIS map.

        Checks every emitter: flattening the 2-D receiver must equal
        ``abstract.receiver_of`` of the flattened transmitter.
        """
        o = self.abstract
        for ix in range(self.gx):
            for iy in range(self.gy):
                for jx in range(self.tx):
                    for jy in range(self.ty):
                        rx2d = self.receiver_of((ix, iy), (jx, jy))
                        flat_tx = self.flatten_tx((ix, iy), (jx, jy))
                        if self.flatten_rx(*rx2d) != o.receiver_of(*flat_tx):
                            return False
        return True

    # ------------------------------------------------------------------
    # Physical figures of merit
    # ------------------------------------------------------------------
    def aperture_shape(self) -> tuple[int, int]:
        """Transmitter-plane extent in emitter pitches: (width, height)."""
        return (self.gx * self.tx, self.gy * self.ty)

    def aspect_ratio(self) -> float:
        """max/min of the aperture extents (1.0 = square, the optics-friendly shape)."""
        w, h = self.aperture_shape()
        return max(w, h) / min(w, h)

    def max_transverse_throw(self) -> float:
        """Worst-case transverse beam displacement, in emitter pitches.

        In a 1-D strip the worst beam crosses ~G*T pitches; the 2-D
        factorization bounds each axis by its own extent, shrinking the
        lens field-of-view requirement -- the practical reason OTIS
        hardware is built 2-D ([5]).
        """
        w, h = self.aperture_shape()
        return float(max(w, h))

    @staticmethod
    def best_factorization(g: int, t: int) -> "OTIS2DLayout":
        """The squarest 2-D arrangement of ``OTIS(g, t)``.

        Picks ``gx * gy = g`` and ``tx * ty = t`` minimizing the
        aperture aspect ratio.

        >>> OTIS2DLayout.best_factorization(4, 6).aspect_ratio()
        1.5
        """
        best: OTIS2DLayout | None = None
        for gx in range(1, g + 1):
            if g % gx:
                continue
            for txx in range(1, t + 1):
                if t % txx:
                    continue
                cand = OTIS2DLayout(gx, g // gx, txx, t // txx)
                if best is None or cand.aspect_ratio() < best.aspect_ratio():
                    best = cand
        assert best is not None
        return best
