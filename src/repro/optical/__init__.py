"""Optical substrate: OTIS, OPS couplers, components, power budgets.

* :class:`OTIS` -- the transpose interconnection ``(i, j) ->
  (T-1-j, G-1-i)`` of [19] (paper Sec. 2.1);
* :class:`OTISLayout` -- lens-plane geometry + beam tracing (Fig. 1);
* :class:`OPSCoupler` -- single-wavelength passive star (Sec. 2.2);
* component models and :class:`PowerBudget` loss auditing.
"""

from .components import (
    NOMINAL,
    BeamSplitter,
    LensPair,
    OpticalComponent,
    OpticalFiber,
    OpticalMultiplexer,
    Receiver,
    Transmitter,
    splitting_loss_db,
)
from .layout import BeamTrace, OTISLayout
from .layout2d import OTIS2DLayout
from .ops import CollisionError, OPSCoupler
from .otis import OTIS
from .power import PowerBudget, max_ops_degree

__all__ = [
    "NOMINAL",
    "OTIS",
    "BeamSplitter",
    "BeamTrace",
    "CollisionError",
    "LensPair",
    "OPSCoupler",
    "OTIS2DLayout",
    "OTISLayout",
    "OpticalComponent",
    "OpticalFiber",
    "OpticalMultiplexer",
    "PowerBudget",
    "Receiver",
    "Transmitter",
    "max_ops_degree",
    "splitting_loss_db",
]
