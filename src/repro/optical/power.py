"""Optical power-budget auditing for complete light paths.

A message in a full design (paper Fig. 12) traverses, worst case:

    transmitter -> OTIS(s, d+1) lens pair -> multiplexer ->
    OTIS(d, n) lens pair (the interconnection network) ->
    beam-splitter (1/s split) -> OTIS(d+1, s) lens pair -> receiver

This module sums such chains in dB and checks them against receiver
sensitivity, answering the engineering question behind the paper's
"low energy loss" claims: how large can the OPS degree ``s`` grow
before the ``10*log10(s)`` splitting loss exhausts the link margin?
"""

from __future__ import annotations

from dataclasses import dataclass

from .components import (
    BeamSplitter,
    OpticalComponent,
    OpticalFiber,
    Receiver,
    Transmitter,
)

__all__ = ["PowerBudget", "max_ops_degree"]


@dataclass(frozen=True)
class PowerBudget:
    """A transmitter-to-receiver light path with intermediate components.

    >>> from repro.optical.components import LensPair, BeamSplitter
    >>> b = PowerBudget(Transmitter(), (LensPair(), BeamSplitter(fan_out=8)), Receiver())
    >>> round(b.total_loss_db(), 2)
    11.03
    >>> b.is_feasible()
    True
    """

    transmitter: Transmitter
    path: tuple[OpticalComponent, ...]
    receiver: Receiver

    def total_loss_db(self) -> float:
        """Sum of all losses along the path, in dB.

        Beam-splitters and fibers contribute their *total* loss
        (excess + fundamental); other components their insertion loss.
        """
        loss = self.transmitter.insertion_loss_db + self.receiver.insertion_loss_db
        for comp in self.path:
            if isinstance(comp, (BeamSplitter, OpticalFiber)):
                loss += comp.total_loss_db()
            else:
                loss += comp.insertion_loss_db
        return loss

    def received_power_dbm(self) -> float:
        """Power arriving at the receiver, in dBm."""
        return self.transmitter.power_dbm - self.total_loss_db()

    def margin_db(self) -> float:
        """Link margin: received power minus receiver sensitivity."""
        return self.received_power_dbm() - self.receiver.sensitivity_dbm

    def is_feasible(self, required_margin_db: float = 0.0) -> bool:
        """Whether the link closes with at least ``required_margin_db``."""
        return self.margin_db() >= required_margin_db


def max_ops_degree(
    transmitter: Transmitter,
    fixed_path_loss_db: float,
    receiver: Receiver,
    splitter_excess_db: float = 1.0,
    required_margin_db: float = 3.0,
) -> int:
    """Largest OPS degree ``s`` whose splitting loss still closes the link.

    Solves ``power - fixed - excess - 10*log10(s) >= sensitivity +
    margin`` for integer ``s``; returns 0 when not even ``s = 1``
    closes.  This is the budget ceiling on group size in POPS and
    stack-Kautz designs.

    >>> max_ops_degree(Transmitter(power_dbm=0), 4.0, Receiver(sensitivity_dbm=-30))
    158
    """
    available = (
        transmitter.power_dbm
        - fixed_path_loss_db
        - splitter_excess_db
        - receiver.sensitivity_dbm
        - required_margin_db
    )
    if available < 0:
        return 0
    return int(10 ** (available / 10.0))
