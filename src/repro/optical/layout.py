"""Geometric layout of the OTIS lens planes (paper Fig. 1).

OTIS is a free-space system: a column of ``G*T`` transmitters, a plane
of ``G`` macro-lenses (one per transmitter block), a plane of ``T``
micro-lenses (one per receiver block), and a column of ``T*G``
receivers.  Transmitter block ``i`` is imaged *as a block* by lens
``i``; within the image, positions are inverted (lenses invert), and
the pair of planes routes beam ``(i, j)`` to receiver ``(T-1-j,
G-1-i)``.

This module assigns 1-D coordinates (normalized to a unit-pitch device
column) to every transmitter, lens, and receiver, traces each beam as
the polyline transmitter -> plane-1 lens -> plane-2 lens -> receiver,
and proves geometrically what :mod:`repro.optical.otis` states
algebraically: the traced endpoints realize the transpose permutation.
It also renders the ASCII figure used by the FIG-1 benchmark artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .otis import OTIS

__all__ = ["OTISLayout", "BeamTrace"]


@dataclass(frozen=True)
class BeamTrace:
    """The polyline of one beam through the two lens planes.

    Coordinates are (x, y): x is the optical axis (0 = transmitter
    plane, 1 = lens plane 1, 2 = lens plane 2, 3 = receiver plane),
    y the transverse position in transmitter pitches.
    """

    transmitter: tuple[int, int]
    receiver: tuple[int, int]
    points: tuple[tuple[float, float], ...]


class OTISLayout:
    """1-D geometric model of an OTIS(G, T) stage.

    Transmitter ``(i, j)`` sits at height ``i*T + j``; receiver
    ``(a, b)`` at height ``a*G + b``.  Lens ``i`` of plane 1 sits at the
    center of transmitter block ``i``; lens ``a`` of plane 2 at the
    center of receiver block ``a``.

    >>> lay = OTISLayout(OTIS(3, 6))
    >>> lay.transmitter_position(0, 0)
    0.0
    >>> lay.plane1_lens_position(0)
    2.5
    """

    def __init__(self, otis: OTIS) -> None:
        self.otis = otis

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def transmitter_position(self, group: int, index: int) -> float:
        """Transverse position of transmitter ``(group, index)``."""
        self.otis._check_tx(group, index)  # noqa: SLF001 - same package
        return float(group * self.otis.group_size + index)

    def receiver_position(self, group: int, index: int) -> float:
        """Transverse position of receiver ``(group, index)``."""
        self.otis._check_rx(group, index)  # noqa: SLF001
        return float(group * self.otis.num_groups + index)

    def plane1_lens_position(self, lens: int) -> float:
        """Center of transmitter block ``lens`` (plane-1 lens)."""
        if not 0 <= lens < self.otis.num_groups:
            raise IndexError(f"plane-1 lens {lens} out of range")
        t = self.otis.group_size
        return float(lens * t + (t - 1) / 2.0)

    def plane2_lens_position(self, lens: int) -> float:
        """Center of receiver block ``lens`` (plane-2 lens)."""
        if not 0 <= lens < self.otis.group_size:
            raise IndexError(f"plane-2 lens {lens} out of range")
        g = self.otis.num_groups
        return float(lens * g + (g - 1) / 2.0)

    # ------------------------------------------------------------------
    # Beam tracing
    # ------------------------------------------------------------------
    def trace(self, group: int, index: int) -> BeamTrace:
        """Trace transmitter ``(group, index)`` through both planes.

        The beam leaves through plane-1 lens ``group`` (its own block's
        lens) and lands via plane-2 lens ``T - 1 - index`` (the block of
        its receiver), arriving at receiver ``(T-1-index, G-1-group)``.
        """
        rx = self.otis.receiver_of(group, index)
        pts = (
            (0.0, self.transmitter_position(group, index)),
            (1.0, self.plane1_lens_position(group)),
            (2.0, self.plane2_lens_position(rx[0])),
            (3.0, self.receiver_position(*rx)),
        )
        return BeamTrace(transmitter=(group, index), receiver=rx, points=pts)

    def trace_all(self) -> list[BeamTrace]:
        """Traces for every transmitter, in flat order."""
        g, t = self.otis.num_groups, self.otis.group_size
        return [self.trace(i, j) for i in range(g) for j in range(t)]

    def verify_transpose_geometry(self) -> bool:
        """Geometric cross-check of the transpose law.

        Two facts must hold for the layout to be a valid OTIS imaging
        system (cf. [19, 5]):

        1. every traced endpoint equals the algebraic
           ``receiver_of`` target (consistency);
        2. *block imaging with inversion*: within one transmitter
           block, increasing ``j`` maps to *decreasing* receiver block
           index, and within one receiver block, increasing ``i`` maps
           to decreasing position -- i.e. both stages invert, as real
           lenses do.
        """
        g, t = self.otis.num_groups, self.otis.group_size
        for i in range(g):
            rx_blocks = [self.trace(i, j).receiver[0] for j in range(t)]
            if rx_blocks != list(range(t - 1, -1, -1)):
                return False
        for j in range(t):
            rx_pos = [self.trace(i, j).receiver[1] for i in range(g)]
            if rx_pos != list(range(g - 1, -1, -1)):
                return False
        perm = self.otis.permutation()
        for flat, trace in enumerate(self.trace_all()):
            a, b = trace.receiver
            if perm[flat] != a * g + b:
                return False
        return True

    def crossing_count(self) -> int:
        """Number of beam pairs that cross between the two lens planes.

        A measure of the free-space wiring complexity replaced by the
        lenses; computed as inversions of the plane1 -> plane2 lens
        assignment over all beams.
        """
        traces = self.trace_all()
        ys1 = np.asarray([tr.points[1][1] for tr in traces])
        ys2 = np.asarray([tr.points[2][1] for tr in traces])
        count = 0
        n = len(traces)
        for a in range(n):
            d1 = ys1[a + 1 :] - ys1[a]
            d2 = ys2[a + 1 :] - ys2[a]
            count += int(((d1 * d2) < 0).sum())
        return count

    # ------------------------------------------------------------------
    # ASCII rendering (figure artifacts)
    # ------------------------------------------------------------------
    def render_ascii(self) -> str:
        """Text rendering of the layout in the spirit of paper Fig. 1."""
        g, t = self.otis.num_groups, self.otis.group_size
        n = g * t
        rows: list[str] = []
        header = f"OTIS({g},{t}): transmitters | lens plane 1 | lens plane 2 | receivers"
        rows.append(header)
        rows.append("-" * len(header))
        lens1 = {round(self.plane1_lens_position(i)): i for i in range(g)}
        lens2 = {round(self.plane2_lens_position(a)): a for a in range(t)}
        for y in range(n):
            i, j = divmod(y, t)
            a, b = divmod(y, g)
            tx = f"tx({i},{j})"
            rx = f"rx({a},{b})"
            l1 = f"[lens1 #{lens1[y]}]" if y in lens1 else ""
            l2 = f"[lens2 #{lens2[y]}]" if y in lens2 else ""
            tgt = self.otis.receiver_of(i, j)
            rows.append(
                f"{tx:>9}  ->{tgt!s:>9}   {l1:^12} {l2:^12}   {rx:>9}"
            )
        return "\n".join(rows)
