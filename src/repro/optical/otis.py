"""The Optical Transpose Interconnection System OTIS(G, T) (Sec. 2.1).

``OTIS(G, T)`` (Marsden, Marchand, Harvey, Esener [19]) optically
connects ``G`` groups of ``T`` transmitters to ``T`` groups of ``G``
receivers through two planes of lenses in free space:

    transmitter ``(i, j)``  ->  receiver ``(T - 1 - j, G - 1 - i)``

for ``0 <= i <= G-1``, ``0 <= j <= T-1`` (paper Fig. 1).

In flat indices (transmitter ``p = i*T + j``, receiver ``q = a*G + b``
for receiver ``(a, b)``) the map is the *reversed transpose*:
``q = G*T - 1 - (j*G + i)``, i.e. transpose the ``G x T`` index matrix
and then reverse the order -- the reversal is the optical inversion
every imaging lens pair introduces.

This module models the permutation exactly (as numpy index arrays) and
exposes the algebraic facts the designs rely on:

* :meth:`OTIS.receiver_of` / :meth:`OTIS.transmitter_of` -- the map and
  its inverse;
* :meth:`OTIS.permutation` -- flat receiver index per transmitter;
* the inverse system: the inverse *relation* of ``OTIS(G, T)`` is
  realized by ``OTIS(T, G)`` (swap the planes and run light backwards);
* ``OTIS(n, n)`` composed with itself is the identity (an involution) --
  which is why a POPS needs distinct OTIS stages per direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OTIS"]


@dataclass(frozen=True)
class OTIS:
    """The OTIS(G, T) free-space interconnection.

    Parameters
    ----------
    num_groups:
        ``G``: number of transmitter-side groups.
    group_size:
        ``T``: transmitters per group.  The receiver side then has
        ``T`` groups of ``G`` receivers.

    >>> o = OTIS(3, 6)       # paper Fig. 1
    >>> o.receiver_of(0, 0)  # transmitter (0,0) -> receiver (5, 2)
    (5, 2)
    >>> o.num_lenses
    9
    """

    num_groups: int
    group_size: int

    def __post_init__(self) -> None:
        if self.num_groups < 1 or self.group_size < 1:
            raise ValueError(
                f"OTIS needs G >= 1 and T >= 1, got G={self.num_groups}, T={self.group_size}"
            )

    # ------------------------------------------------------------------
    # Size facts
    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        """Total transmitters ``G * T``."""
        return self.num_groups * self.group_size

    @property
    def num_outputs(self) -> int:
        """Total receivers ``T * G`` (same count, regrouped)."""
        return self.num_groups * self.group_size

    @property
    def num_lenses(self) -> int:
        """Lenses across both planes: ``G`` in plane 1 + ``T`` in plane 2.

        Plane 1 holds one lens per transmitter group, plane 2 one lens
        per receiver group (paper Fig. 1 shows 3 + 6 for OTIS(3, 6);
        the figure draws the 3-lens plane first in the light path).
        """
        return self.num_groups + self.group_size

    # ------------------------------------------------------------------
    # The transpose map
    # ------------------------------------------------------------------
    def receiver_of(self, group: int, index: int) -> tuple[int, int]:
        """Receiver ``(T-1-j, G-1-i)`` reached by transmitter ``(i, j)``."""
        self._check_tx(group, index)
        return (self.group_size - 1 - index, self.num_groups - 1 - group)

    def transmitter_of(self, group: int, index: int) -> tuple[int, int]:
        """Transmitter ``(i, j)`` reaching receiver ``(a, b)``: the inverse map.

        Receiver groups number ``0..T-1`` and have size ``G``.
        """
        self._check_rx(group, index)
        return (self.num_groups - 1 - index, self.group_size - 1 - group)

    def flat_receiver_of(self, p: int) -> int:
        """Flat receiver index for flat transmitter ``p = i*T + j``.

        Equals ``G*T - 1 - (j*G + i)``: transpose, then reverse.
        """
        if not 0 <= p < self.num_inputs:
            raise IndexError(f"transmitter {p} out of range [0, {self.num_inputs})")
        i, j = divmod(p, self.group_size)
        a, b = self.receiver_of(i, j)
        return a * self.num_groups + b

    def permutation(self) -> np.ndarray:
        """Array ``perm`` with ``perm[p]`` = flat receiver of transmitter ``p``.

        Vectorized form of :func:`flat_receiver_of`.
        """
        p = np.arange(self.num_inputs, dtype=np.int64)
        i, j = np.divmod(p, self.group_size)
        return self.num_inputs - 1 - (j * self.num_groups + i)

    def inverse_permutation(self) -> np.ndarray:
        """Array mapping flat receiver index back to its transmitter."""
        perm = self.permutation()
        inv = np.empty_like(perm)
        inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
        return inv

    # ------------------------------------------------------------------
    # Algebraic structure
    # ------------------------------------------------------------------
    def inverse_system(self) -> "OTIS":
        """The OTIS realizing the inverse relation: ``OTIS(T, G)``.

        If ``OTIS(G, T)`` sends ``(i, j) -> (T-1-j, G-1-i)`` then
        ``OTIS(T, G)`` sends ``(T-1-j, G-1-i) -> (i, j)``; composing the
        two permutations (in either order) is the identity.
        """
        return OTIS(self.group_size, self.num_groups)

    def is_involution(self) -> bool:
        """Whether applying the system twice is the identity (G == T)."""
        if self.num_groups != self.group_size:
            return False
        perm = self.permutation()
        return bool(np.array_equal(perm[perm], np.arange(perm.shape[0])))

    def fixed_points(self) -> np.ndarray:
        """Flat transmitter indices mapped to the same flat index.

        For ``OTIS(n, n)`` these are the inputs on the anti-diagonal
        ``j = n - 1 - i`` (light going straight through the symmetric
        lens pair); other shapes can still have coincidental fixed
        points in the *flat* numbering.
        """
        perm = self.permutation()
        return np.nonzero(perm == np.arange(perm.shape[0]))[0]

    # ------------------------------------------------------------------
    def _check_tx(self, group: int, index: int) -> None:
        if not 0 <= group < self.num_groups:
            raise IndexError(
                f"transmitter group {group} out of range [0, {self.num_groups})"
            )
        if not 0 <= index < self.group_size:
            raise IndexError(
                f"transmitter index {index} out of range [0, {self.group_size})"
            )

    def _check_rx(self, group: int, index: int) -> None:
        if not 0 <= group < self.group_size:
            raise IndexError(
                f"receiver group {group} out of range [0, {self.group_size})"
            )
        if not 0 <= index < self.num_groups:
            raise IndexError(
                f"receiver index {index} out of range [0, {self.num_groups})"
            )

    def __str__(self) -> str:
        return f"OTIS({self.num_groups},{self.group_size})"
