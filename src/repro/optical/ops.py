"""Optical Passive Star coupler OPS(s, z) (paper Sec. 2.2, Fig. 2).

An OPS coupler is a *passive* one-to-many broadcast device: an optical
multiplexer combining ``s`` inputs, a guided medium (fiber or free
space), and a beam-splitter dividing the light into ``z`` outputs, each
receiving ``1/z`` of the power.  With ``s == z`` the coupler is said to
be *of degree s*.

The paper restricts to **single-wavelength** couplers: at most one
input may drive the coupler per time step; simultaneous transmissions
collide.  :meth:`OPSCoupler.broadcast` enforces exactly that contract,
and it is the primitive the slotted simulator
(:mod:`repro.simulation`) builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .components import BeamSplitter, OpticalMultiplexer, splitting_loss_db

__all__ = ["OPSCoupler", "CollisionError"]


class CollisionError(RuntimeError):
    """Two or more inputs drove a single-wavelength OPS in the same slot."""


@dataclass(frozen=True)
class OPSCoupler:
    """A single-wavelength OPS coupler with ``num_inputs`` x ``num_outputs``.

    Parameters
    ----------
    num_inputs:
        ``s``: how many sources are fused by the input multiplexer.
    num_outputs:
        ``z``: how many destinations the beam-splitter feeds.
    label:
        Network-level identifier; the POPS network uses the group pair
        ``(i, j)``.
    multiplexer / splitter:
        Component models used for loss accounting; defaults are the
        nominal parts from :mod:`repro.optical.components`.

    >>> ops = OPSCoupler(4, 4)
    >>> ops.degree
    4
    >>> ops.broadcast(2)        # input 2 transmits; every output hears it
    (2, 2, 2, 2)
    """

    num_inputs: int
    num_outputs: int
    label: object = None
    multiplexer: OpticalMultiplexer = field(default=None)  # type: ignore[assignment]
    splitter: BeamSplitter = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.num_inputs < 1 or self.num_outputs < 1:
            raise ValueError(
                f"OPS needs s >= 1 and z >= 1, got s={self.num_inputs}, z={self.num_outputs}"
            )
        if self.multiplexer is None:
            object.__setattr__(
                self, "multiplexer", OpticalMultiplexer(fan_in=self.num_inputs)
            )
        elif self.multiplexer.fan_in != self.num_inputs:
            raise ValueError(
                f"multiplexer fan_in {self.multiplexer.fan_in} != OPS inputs {self.num_inputs}"
            )
        if self.splitter is None:
            object.__setattr__(
                self, "splitter", BeamSplitter(fan_out=self.num_outputs)
            )
        elif self.splitter.fan_out != self.num_outputs:
            raise ValueError(
                f"splitter fan_out {self.splitter.fan_out} != OPS outputs {self.num_outputs}"
            )

    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """The degree ``s`` when the coupler is square; error otherwise."""
        if self.num_inputs != self.num_outputs:
            raise ValueError(
                f"OPS({self.num_inputs},{self.num_outputs}) is not square; "
                "'degree' is defined only for s == z"
            )
        return self.num_inputs

    @property
    def is_passive(self) -> bool:
        """Always ``True``: an OPS coupler requires no power source."""
        return True

    def broadcast(self, active_input: int) -> tuple[int, ...]:
        """One time slot with ``active_input`` transmitting.

        Returns, per output port, the index of the input heard there --
        all outputs hear the same single input (that *is* the
        broadcast).
        """
        if not 0 <= active_input < self.num_inputs:
            raise IndexError(
                f"input {active_input} out of range [0, {self.num_inputs})"
            )
        return tuple(active_input for _ in range(self.num_outputs))

    def arbitrate(self, requested_inputs: list[int]) -> tuple[int, ...]:
        """One slot with a *set* of inputs requesting to transmit.

        Enforces the single-wavelength rule: zero requests returns an
        empty tuple, one request broadcasts, more raise
        :class:`CollisionError` -- media access control must serialize
        senders (the simulator's job).
        """
        uniq = sorted(set(requested_inputs))
        for r in uniq:
            if not 0 <= r < self.num_inputs:
                raise IndexError(f"input {r} out of range [0, {self.num_inputs})")
        if not uniq:
            return ()
        if len(uniq) > 1:
            raise CollisionError(
                f"OPS {self.label!r}: simultaneous transmissions from inputs {uniq}"
            )
        return self.broadcast(uniq[0])

    # ------------------------------------------------------------------
    # Loss accounting
    # ------------------------------------------------------------------
    def splitting_loss_db(self) -> float:
        """The fundamental ``10*log10(z)`` broadcast loss."""
        return splitting_loss_db(self.num_outputs)

    def total_loss_db(self) -> float:
        """End-to-end coupler loss: mux excess + splitter excess + split."""
        return (
            self.multiplexer.insertion_loss_db
            + self.splitter.insertion_loss_db
            + self.splitting_loss_db()
        )

    def __str__(self) -> str:
        tag = f"[{self.label!r}]" if self.label is not None else ""
        return f"OPS({self.num_inputs},{self.num_outputs}){tag}"
