"""Command-line interface: inspect designs, route, simulate, compare.

Every network-touching subcommand is spec-driven: a network is named
either by a canonical spec string (``"sk(6,3,2)"``, ``"pops(4,2)"``,
``"sii(4,3,10)"``, ``"sops(8)"``) or by the loose positional form
(``sk 6 3 2``).  Dispatch goes through the family registry, so a newly
registered family gets CLI coverage for free.  ``--json`` switches any
subcommand to machine-readable output.

Usage::

    python -m repro design sk 6 3 2            # Fig. 12 bill of materials
    python -m repro design "pops(4,2)" --json  # Fig. 11, as JSON
    python -m repro otis 3 6                   # Fig. 1 ASCII layout
    python -m repro route 6 3 2 0 71           # route through SK(6,3,2)
    python -m repro route "sii(4,3,10)" 0 39   # any family, spec-form
    python -m repro simulate 4 2 3 --messages 300
    python -m repro simulate "sops(8)" --workload hotspot
    python -m repro describe "sk(6,3,2)" --json
    python -m repro compare 48                 # equal-N design table
    python -m repro sweep "sk(2,2,2)" "pops(4,2)" --workloads uniform permutation
    python -m repro resilience "sk(6,3,2)" --faults 2 --trials 1000 --json
    python -m repro temporal "sk(6,3,2)" --mtbf 400 --mttr 100 --horizon 2000 --json
    python -m repro design-search --max-processors 48 --faults 2 --trials 200 --json
    python -m repro experiment "sk(2,2,2)" "pops(4,2)" --models coupler:1 link:2 --trials 200 --json
    python -m repro batch commands.txt --reuse-session
    python -m repro serve --port 8000 --workers 4 --queue-depth 8

``serve`` boots the HTTP serving tier (:mod:`repro.serve`): one warm
session shared by every request, identical concurrent requests
coalesced into a single execution, and a bounded admission queue in
front of the worker pools.

``batch`` reads one CLI invocation per line from a file (or stdin with
``-``) and runs them in-process; with ``--reuse-session`` all commands
share one warm session (spec-keyed build caches + persistent worker
pools), so repeated queries against the same machines skip cold-start
cost.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager

from .core.spec import NetworkSpec, SpecError, _is_intlike as _is_int


@contextmanager
def _trace_to(path):
    """Span-trace the wrapped command into a Chrome trace-event file.

    ``path`` falsy: no-op (tracing stays disabled, zero overhead).
    Otherwise every span the command emits -- sweep phases, chunk
    dispatch, cache builds, design-search candidates -- lands in one
    JSON file loadable by Perfetto / ``chrome://tracing``.
    """
    if not path:
        yield
        return
    from .obs.trace import Tracer, disable_tracing, enable_tracing

    tracer = Tracer()
    enable_tracing(tracer)
    try:
        yield
    finally:
        disable_tracing()
        tracer.export_chrome(path)
        print(f"trace: {len(tracer)} events -> {path}", file=sys.stderr)


def _bom_as_dict(bom) -> dict:
    """JSON-ready bill of materials (OTIS unit keys become ``"GxT"``)."""
    return {
        "otis_units": {f"{g}x{t}": q for (g, t), q in sorted(bom.otis_units.items())},
        "multiplexers": bom.multiplexers,
        "beam_splitters": bom.beam_splitters,
        "loop_fibers": bom.loop_fibers,
        "transmitters": bom.transmitters,
        "receivers": bom.receivers,
        "couplers": bom.couplers,
        "total_otis_stages": bom.total_otis_stages,
        "total_lenses": bom.total_lenses,
    }


def _cmd_design(args: argparse.Namespace) -> int:
    try:
        spec = NetworkSpec.from_argv(args.spec)
    except SpecError as exc:
        print(exc, file=sys.stderr)
        return 2
    design = spec.design()
    ok = design.verify()
    budget = design.worst_case_power_budget()
    if args.json:
        print(
            json.dumps(
                {
                    "spec": spec.canonical(),
                    "name": design.name,
                    "verified": ok,
                    "bill_of_materials": _bom_as_dict(design.bill_of_materials()),
                    "worst_case_loss_db": round(budget.total_loss_db(), 4),
                    "link_margin_db": round(budget.margin_db(), 4),
                },
                indent=2,
            )
        )
        return 0 if ok else 1
    print(f"design:   {design.name}")
    print(f"verified: {ok} (every light path == stack-graph hyperarc)")
    print()
    print(design.bill_of_materials().summary())
    print()
    print(
        f"worst-case link: {budget.total_loss_db():.2f} dB loss, "
        f"{budget.margin_db():.2f} dB margin"
    )
    return 0 if ok else 1


def _cmd_otis(args: argparse.Namespace) -> int:
    from .optical import OTIS, OTISLayout

    layout = OTISLayout(OTIS(args.groups, args.size))
    print(layout.render_ascii())
    print()
    print(f"geometry realizes the transpose map: {layout.verify_transpose_geometry()}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from .core.registry import get_family

    tokens = args.args
    try:
        if len(tokens) < 3:
            raise SpecError(
                "route needs a network spec plus src and dst processors"
            )
        if len(tokens) == 5 and all(_is_int(t) for t in tokens):
            # Back-compat positional form: s d k src dst on stack-Kautz.
            spec = NetworkSpec("sk", tuple(int(t) for t in tokens[:3]))
        else:
            spec = NetworkSpec.from_argv(tokens[:-2])
        if not _is_int(tokens[-2]) or not _is_int(tokens[-1]):
            raise SpecError(
                f"src/dst must be integers, got {tokens[-2]!r} {tokens[-1]!r}"
            )
    except SpecError as exc:
        print(exc, file=sys.stderr)
        return 2
    src, dst = int(tokens[-2]), int(tokens[-1])
    family = get_family(spec.family)
    net = spec.build()
    if not (0 <= src < net.num_processors and 0 <= dst < net.num_processors):
        print(f"processors must be in [0, {net.num_processors})", file=sys.stderr)
        return 2
    rt = family.route(net, src, dst)
    if args.json:
        print(
            json.dumps(
                {
                    "spec": spec.canonical(),
                    "src": src,
                    "dst": dst,
                    "num_hops": rt.num_hops,
                    "diameter": net.diameter,
                    "hops": [
                        {
                            "src_group": h.src_group,
                            "dst_group": h.dst_group,
                            "mux": h.mux,
                            "tx_port": h.tx_port,
                            "is_loop": h.is_loop,
                        }
                        for h in rt.hops
                    ],
                },
                indent=2,
            )
        )
        return 0
    src_tag, dst_tag = _processor_tags(net, src, dst)
    print(f"{net}: {src} {src_tag} -> {dst} {dst_tag}")
    print(f"hops: {rt.num_hops} (diameter {net.diameter})")
    loop_kind = "loop coupler"
    hop_kind = f"{family.coupler_kind} coupler"
    for i, hop in enumerate(rt.hops, start=1):
        kind = loop_kind if hop.is_loop else hop_kind
        print(
            f"  hop {i}: group {hop.src_group} -> {hop.dst_group}  "
            f"[{kind} (group {hop.src_group}, mux {hop.mux}), tx port {hop.tx_port}]"
        )
    return 0


def _processor_tags(net, src: int, dst: int) -> tuple[str, str]:
    """Human labels for the endpoints; group words when the family has them."""
    if hasattr(net, "group_word"):
        sw = "".join(map(str, net.group_word(net.label_of(src)[0])))
        dw = "".join(map(str, net.group_word(net.label_of(dst)[0])))
        return f"(group word {sw})", f"(group word {dw})"
    return f"{net.label_of(src)}", f"{net.label_of(dst)}"


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .core import simulate

    try:
        if len(args.spec) == 3 and all(_is_int(t) for t in args.spec):
            # Back-compat positional form: s d k on stack-Kautz.
            spec = NetworkSpec("sk", tuple(int(t) for t in args.spec))
        else:
            spec = NetworkSpec.from_argv(args.spec)
        rep = simulate(
            spec, args.workload, messages=args.messages, seed=args.seed
        )
    except (SpecError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.json:
        print(
            json.dumps(
                {
                    "spec": spec.canonical(),
                    "workload": args.workload,
                    "seed": args.seed,
                    "messages": rep.num_messages,
                    "slots": rep.slots,
                    "mean_latency": rep.mean_latency,
                    "p95_latency": rep.p95_latency,
                    "max_latency": rep.max_latency,
                    "mean_hops": rep.mean_hops,
                    "throughput": rep.throughput,
                    "coupler_utilization": rep.coupler_utilization,
                },
                indent=2,
            )
        )
        return 0
    print(f"{spec}: {rep.num_messages} {args.workload} messages, seed {args.seed}")
    print(rep.row())
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from .core import describe

    try:
        info = describe(NetworkSpec.from_argv(args.spec))
    except SpecError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(info, indent=2))
        return 0
    width = max(len(k) for k in info)
    for key, value in info.items():
        print(f"{key:<{width}}  {value}")
    return 0


def _cmd_design_search(args: argparse.Namespace) -> int:
    from .core import design_search

    try:
        with _trace_to(args.trace):
            result = design_search(
                max_processors=args.max_processors,
                min_processors=args.min_processors,
                families=args.families,
                model=args.model,
                faults=args.faults,
                trials=args.trials,
                seed=args.seed,
                workers=args.workers,
                metrics=args.metrics,
                workload=args.workload,
                messages=args.messages,
                max_coupler_degree=args.max_coupler_degree,
                min_groups=args.min_groups,
                max_groups=args.max_groups,
                max_diameter=args.max_diameter,
                min_margin_db=args.min_margin_db,
                top=args.top,
                parallelism=args.parallelism,
                backend=args.backend,
                rank_by=args.rank_by,
                ci_target=args.ci_target,
                sampling=args.sampling,
            )
    except (SpecError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.json:
        print(result.to_json())
        return 0 if len(result) else 1
    print(result.formatted())
    return 0 if len(result) else 1


def _cmd_resilience(args: argparse.Namespace) -> int:
    from .core import resilience_sweep

    try:
        spec = NetworkSpec.from_argv(args.spec)
        with _trace_to(args.trace):
            summary = resilience_sweep(
                spec,
                model=args.model,
                faults=args.faults,
                trials=args.trials,
                seed=args.seed,
                workers=args.workers,
                workload=args.workload,
                messages=args.messages,
                metrics=args.metrics,
                backend=args.backend,
                ci_target=args.ci_target,
                sampling=args.sampling,
            )
    except (SpecError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.json:
        print(summary.to_json())
        return 0
    print(summary.formatted())
    return 0


def _cmd_temporal(args: argparse.Namespace) -> int:
    from .core import temporal_sweep

    try:
        spec = NetworkSpec.from_argv(args.spec)
        with _trace_to(args.trace):
            summary = temporal_sweep(
                spec,
                process=args.process,
                faults=args.faults,
                mtbf=args.mtbf,
                mttr=args.mttr,
                law=args.law,
                horizon=args.horizon,
                trials=args.trials,
                seed=args.seed,
                workers=args.workers,
                workload=args.workload,
                messages=args.messages,
                bound=args.bound,
                metrics=args.metrics,
                curve_points=args.curve_points,
            )
    except (SpecError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.json:
        print(summary.to_json())
        return 0
    print(summary.formatted())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .core import experiment

    try:
        specs = [NetworkSpec.parse(s) for s in args.specs]
        with _trace_to(args.trace):
            result = experiment(
                specs,
                models=args.models,
                metrics=args.metrics,
                trials=args.trials,
                seed=args.seed,
                workers=args.workers,
                backend=args.backend,
                workload=args.workload,
                messages=args.messages,
                samplings=args.samplings,
                ci_target=args.ci_target,
            )
    except (SpecError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.json:
        print(result.to_json())
        return 0
    print(result.formatted())
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    import shlex

    from .core.session import reset_default_session

    if args.file == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.file, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            print(exc, file=sys.stderr)
            return 2
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        argv = shlex.split(line)
        if argv and argv[0] == "repro":
            argv = argv[1:]  # tolerate pasted "repro ..." prefixes
        if argv and argv[0] == "batch":
            print(
                f"line {lineno}: batch cannot nest batch commands",
                file=sys.stderr,
            )
            return 2
        if not args.reuse_session:
            # cold semantics: every command starts from a fresh session
            reset_default_session()
        try:
            code = main(argv)
        except SystemExit as exc:  # argparse errors exit instead of return
            code = exc.code if isinstance(exc.code, int) else 2
        if code:
            print(
                f"batch stopped: line {lineno} ({line!r}) exited {code}",
                file=sys.stderr,
            )
            return code
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.app import run_server

    try:
        run_server(
            host=args.host,
            port=args.port,
            workers=args.workers,
            concurrency=args.concurrency,
            queue_depth=args.queue_depth,
            shards=args.shards,
            access_log=args.access_log,
            ready=lambda port: print(
                f"serving on http://{args.host}:{port}", flush=True
            ),
        )
    except OSError as exc:  # port in use, bad interface, ...
        print(exc, file=sys.stderr)
        return 2
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis import TopologyRow, equal_size_comparison
    from .analysis.comparison import DEFAULT_COMPARISON_FAMILIES
    from .core.registry import family_keys

    try:
        families = (
            DEFAULT_COMPARISON_FAMILIES
            if args.families is None
            else tuple(family_keys())
            if args.families == ["all"]
            else tuple(args.families)
        )
        rows = equal_size_comparison(args.n, families=families)
    except SpecError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps([row.as_dict() for row in rows], indent=2))
        return 0 if rows else 1
    if not rows:
        print(f"no registered configuration has exactly N = {args.n}")
        return 1
    print(TopologyRow.header())
    for row in rows:
        print(row.formatted())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .core import sweep

    try:
        specs = [NetworkSpec.parse(s) for s in args.specs]
        with _trace_to(args.trace):
            result = sweep(
                specs, args.workloads, messages=args.messages, seed=args.seed
            )
    except (SpecError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.json:
        print(result.to_json())
        return 0
    print(result.formatted())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    from .design_search import PARALLELISM_MODES, RANKINGS
    from .resilience import METRICS_MODES, SAMPLING_MODES, SWEEP_BACKENDS
    from .temporal import TEMPORAL_METRICS_MODES

    metrics_modes = tuple(METRICS_MODES)
    trace_help = (
        "write a Chrome trace-event JSON of the run's spans to PATH "
        "(open in Perfetto or chrome://tracing; results are unchanged)"
    )
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OTIS-based multi-OPS lightwave network toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("design", help="verify a design and print its BOM")
    p.add_argument(
        "spec",
        nargs="+",
        help='network spec: "sk(6,3,2)" or positional (sk 6 3 2; pops t g; sii s d n; sops n)',
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_design)

    p = sub.add_parser("otis", help="render an OTIS(G, T) lens layout")
    p.add_argument("groups", type=int)
    p.add_argument("size", type=int)
    p.set_defaults(func=_cmd_otis)

    p = sub.add_parser("route", help="route between two processors")
    p.add_argument(
        "args",
        nargs="+",
        help='spec + src + dst ("sk(6,3,2)" 0 71) or the positional SK form (6 3 2 0 71)',
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser("simulate", help="run a workload on any network")
    p.add_argument(
        "spec",
        nargs="+",
        help='network spec ("pops(4,2)") or the positional SK form (s d k)',
    )
    p.add_argument("--messages", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workload",
        default="uniform",
        help="workload name (uniform, permutation, hotspot, broadcast, group-local, bernoulli)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("describe", help="JSON-ready summary of any network")
    p.add_argument(
        "spec",
        nargs="+",
        help='network spec: "sk(6,3,2)" or positional (sk 6 3 2)',
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_describe)

    p = sub.add_parser(
        "design-search",
        help="rank candidate designs by survivability per cost",
    )
    p.add_argument(
        "--max-processors",
        type=int,
        required=True,
        help="largest machine considered (candidate window upper bound)",
    )
    p.add_argument(
        "--min-processors",
        type=int,
        default=2,
        help="smallest machine considered (default 2)",
    )
    p.add_argument(
        "--families",
        nargs="+",
        default=None,
        help="family keys to search (default: every registered family)",
    )
    p.add_argument(
        "--model",
        default="coupler",
        help="fault model: coupler, processor, link, adversarial, group",
    )
    p.add_argument(
        "--faults", type=int, default=1, help="faults injected per trial"
    )
    p.add_argument(
        "--trials", type=int, default=100, help="Monte-Carlo trials per candidate"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="multiprocessing workers per sweep (results are worker-count independent)",
    )
    p.add_argument(
        "--metrics",
        choices=metrics_modes,
        default="connectivity",
        help="scoring depth per trial (connectivity is the fast path)",
    )
    p.add_argument(
        "--workload",
        default="uniform",
        help="workload scored per trial (metrics=full only)",
    )
    p.add_argument(
        "--messages",
        type=int,
        default=60,
        help="messages per trial (metrics=full only)",
    )
    p.add_argument("--max-coupler-degree", type=int, default=None)
    p.add_argument(
        "--min-groups",
        type=int,
        default=None,
        help="drop designs with fewer groups (2 excludes single-star machines)",
    )
    p.add_argument("--max-groups", type=int, default=None)
    p.add_argument("--max-diameter", type=int, default=None)
    p.add_argument(
        "--min-margin-db",
        type=float,
        default=None,
        help="drop designs whose optical link margin is below this",
    )
    p.add_argument(
        "--top", type=int, default=None, help="report only the best TOP candidates"
    )
    p.add_argument(
        "--parallelism",
        choices=PARALLELISM_MODES,
        default="sweeps",
        help=(
            "worker scheduling: one pool per candidate sweep, or one "
            "shared pool across all candidates (identical results)"
        ),
    )
    p.add_argument(
        "--backend",
        choices=SWEEP_BACKENDS,
        default="batched",
        help="trial executor for the per-candidate sweeps",
    )
    p.add_argument(
        "--rank-by",
        choices=RANKINGS,
        default="survivability-per-cost",
        help=(
            "ranking criterion; the path-metric rankings need "
            "--metrics paths or full"
        ),
    )
    p.add_argument(
        "--ci-target",
        type=float,
        default=None,
        help=(
            "stop each candidate sweep once its survival CI half-width "
            "is at most this (arms early discard vs the leader); "
            "--trials caps the spend"
        ),
    )
    p.add_argument(
        "--sampling",
        choices=SAMPLING_MODES,
        default="uniform",
        help="trial allocation per candidate sweep (stratified/importance)",
    )
    p.add_argument("--trace", default=None, metavar="PATH", help=trace_help)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_design_search)

    p = sub.add_parser(
        "resilience",
        help="Monte-Carlo survivability under injected faults",
    )
    p.add_argument(
        "spec",
        nargs="+",
        help='network spec ("sk(6,3,2)") or positional (sk 6 3 2)',
    )
    p.add_argument(
        "--model",
        default="coupler",
        help="fault model: coupler, processor, link, adversarial, group",
    )
    p.add_argument(
        "--faults", type=int, default=1, help="faults injected per trial"
    )
    p.add_argument(
        "--trials", type=int, default=100, help="Monte-Carlo trials"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="multiprocessing workers (results are worker-count independent)",
    )
    p.add_argument("--messages", type=int, default=60)
    p.add_argument(
        "--workload",
        default="uniform",
        help="workload run on each degraded machine",
    )
    p.add_argument(
        "--metrics",
        choices=metrics_modes,
        default="full",
        help="scoring depth per trial (connectivity/paths skip the simulation)",
    )
    p.add_argument(
        "--backend",
        choices=SWEEP_BACKENDS,
        default="batched",
        help=(
            "trial executor (vectorized = shared-memory numpy batches, "
            "connectivity/paths metrics; legacy = rebuild-per-trial "
            "reference path)"
        ),
    )
    p.add_argument(
        "--ci-target",
        type=float,
        default=None,
        help=(
            "sequential stopping: run trial waves until the survival "
            "CI half-width is at most this (--trials is the cap)"
        ),
    )
    p.add_argument(
        "--sampling",
        choices=SAMPLING_MODES,
        default="uniform",
        help=(
            "trial allocation: stratified (by fault cardinality) or "
            "importance (rare-event tail, likelihood-ratio reweighted)"
        ),
    )
    p.add_argument("--trace", default=None, metavar="PATH", help=trace_help)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_resilience)

    p = sub.add_parser(
        "temporal",
        help="replay seeded failure/repair processes: availability over time",
    )
    p.add_argument(
        "spec",
        nargs="+",
        help='network spec ("sk(6,3,2)") or positional (sk 6 3 2)',
    )
    p.add_argument(
        "--process",
        default="coupler-renewal",
        help=(
            "fault process: coupler-renewal, processor-renewal, cascade"
        ),
    )
    p.add_argument(
        "--faults",
        type=int,
        default=None,
        help="components churning through failure/repair cycles (default 1)",
    )
    p.add_argument(
        "--mtbf",
        type=float,
        default=None,
        help="mean slots between failures per component (default 400)",
    )
    p.add_argument(
        "--mttr",
        type=float,
        default=None,
        help="mean slots to repair per failure (default 100)",
    )
    p.add_argument(
        "--law",
        choices=("exponential", "deterministic"),
        default=None,
        help="inter-event law (default exponential, the Markov process)",
    )
    p.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="replay length in slots (default 1000)",
    )
    p.add_argument(
        "--trials", type=int, default=20, help="independent trace replays"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="multiprocessing workers (results are worker-count independent)",
    )
    p.add_argument(
        "--workload",
        default="uniform",
        help="workload injected under churn (metrics=full only)",
    )
    p.add_argument(
        "--messages",
        type=int,
        default=60,
        help="messages per trial (metrics=full only)",
    )
    p.add_argument(
        "--bound",
        type=int,
        default=None,
        help="path-length bound for paths/full metrics (default diameter+2)",
    )
    p.add_argument(
        "--metrics",
        choices=tuple(TEMPORAL_METRICS_MODES),
        default="connectivity",
        help=(
            "scoring depth per trace segment (full adds the slotted "
            "simulation under churn)"
        ),
    )
    p.add_argument(
        "--curve-points",
        type=int,
        default=16,
        help="bins of the availability-over-time curve",
    )
    p.add_argument("--trace", default=None, metavar="PATH", help=trace_help)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_temporal)

    p = sub.add_parser(
        "experiment",
        help="declarative specs x models x metrics x trials sweep grid",
    )
    p.add_argument(
        "specs",
        nargs="+",
        help='network specs forming the grid, e.g. "sk(2,2,2)" "pops(4,2)"',
    )
    p.add_argument(
        "--models",
        nargs="+",
        default=["coupler"],
        help=(
            "fault-model or fault-process grid entries: key or "
            "key:faults (e.g. coupler:2 link coupler-renewal:2)"
        ),
    )
    p.add_argument(
        "--metrics",
        nargs="+",
        choices=metrics_modes,
        default=["connectivity"],
        help="scoring-depth grid entries",
    )
    p.add_argument(
        "--trials",
        type=int,
        nargs="+",
        default=[100],
        help="Monte-Carlo trial-count grid entries",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shared worker pool size (results are worker-count independent)",
    )
    p.add_argument(
        "--backend",
        choices=SWEEP_BACKENDS,
        default="batched",
        help=(
            "preferred trial executor; cells whose metrics mode it "
            "cannot score fall back to batched"
        ),
    )
    p.add_argument(
        "--workload",
        default="uniform",
        help="workload scored per trial (metrics=full cells only)",
    )
    p.add_argument(
        "--messages",
        type=int,
        default=60,
        help="messages per trial (metrics=full cells only)",
    )
    p.add_argument(
        "--samplings",
        nargs="+",
        choices=SAMPLING_MODES,
        default=["uniform"],
        help="trial-allocation grid entries (a grid axis)",
    )
    p.add_argument(
        "--ci-target",
        type=float,
        default=None,
        help=(
            "sequential-stopping CI half-width target applied to "
            "every cell (--trials entries cap the spend)"
        ),
    )
    p.add_argument("--trace", default=None, metavar="PATH", help=trace_help)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "batch",
        help="run many CLI commands in-process, optionally on one warm session",
    )
    p.add_argument(
        "file",
        nargs="?",
        default="-",
        help="command file, one CLI invocation per line ('-' or omitted: stdin; "
        "'#' starts a comment)",
    )
    p.add_argument(
        "--reuse-session",
        action="store_true",
        help=(
            "share one warm session (build caches + persistent worker "
            "pools) across all commands instead of resetting between them"
        ),
    )
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "serve",
        help="HTTP serving tier: one warm session behind coalescing + admission control",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8000,
        help="TCP port to bind (0 picks an ephemeral port, printed on start)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sweep worker-pool size of the shared session",
    )
    p.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="requests executing simultaneously (server thread-pool size)",
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="admitted requests allowed to wait beyond --concurrency "
        "(overflow is rejected with a structured 429)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=0,
        help="default subprocess count for experiment requests "
        "(0: run on the shared session in-process)",
    )
    p.add_argument(
        "--access-log",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="structured JSON access log, one line per request "
        "(append to PATH; bare --access-log writes to stderr)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("compare", help="equal-N design comparison table")
    p.add_argument("n", type=int)
    p.add_argument(
        "--families",
        nargs="+",
        default=None,
        help="family keys to include (default: pops sk; 'all' for every registered family)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("sweep", help="specs x workloads scenario matrix")
    p.add_argument("specs", nargs="+", help='network specs, e.g. "sk(2,2,2)" "pops(4,2)"')
    p.add_argument(
        "--workloads",
        nargs="+",
        default=["uniform", "permutation"],
        help="workload names for the matrix columns",
    )
    p.add_argument("--messages", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", default=None, metavar="PATH", help=trace_help)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_sweep)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
