"""Command-line interface: inspect designs, route, simulate, compare.

Usage::

    python -m repro design sk 6 3 2          # Fig. 12 bill of materials
    python -m repro design pops 4 2          # Fig. 11 bill of materials
    python -m repro otis 3 6                 # Fig. 1 ASCII layout
    python -m repro route 6 3 2 0 71         # route through SK(6,3,2)
    python -m repro simulate 4 2 3 --messages 300
    python -m repro compare 48               # equal-N design table
"""

from __future__ import annotations

import argparse
import sys


def _cmd_design(args: argparse.Namespace) -> int:
    from .networks import POPSDesign, StackImaseItohDesign, StackKautzDesign

    if args.family == "sk":
        design = StackKautzDesign(*args.params)
    elif args.family == "pops":
        if len(args.params) != 2:
            print("pops takes 2 parameters: t g", file=sys.stderr)
            return 2
        design = POPSDesign(*args.params)
    elif args.family == "sii":
        design = StackImaseItohDesign(*args.params)
    else:  # pragma: no cover - argparse restricts choices
        return 2
    ok = design.verify()
    print(f"design:   {design.name}")
    print(f"verified: {ok} (every light path == stack-graph hyperarc)")
    print()
    print(design.bill_of_materials().summary())
    budget = design.worst_case_power_budget()
    print()
    print(
        f"worst-case link: {budget.total_loss_db():.2f} dB loss, "
        f"{budget.margin_db():.2f} dB margin"
    )
    return 0 if ok else 1


def _cmd_otis(args: argparse.Namespace) -> int:
    from .optical import OTIS, OTISLayout

    layout = OTISLayout(OTIS(args.groups, args.size))
    print(layout.render_ascii())
    print()
    print(f"geometry realizes the transpose map: {layout.verify_transpose_geometry()}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from .networks import StackKautzNetwork
    from .routing import stack_kautz_route

    net = StackKautzNetwork(args.s, args.d, args.k)
    if not (0 <= args.src < net.num_processors and 0 <= args.dst < net.num_processors):
        print(f"processors must be in [0, {net.num_processors})", file=sys.stderr)
        return 2
    route = stack_kautz_route(net, args.src, args.dst)
    sw = "".join(map(str, net.group_word(net.label_of(args.src)[0])))
    dw = "".join(map(str, net.group_word(net.label_of(args.dst)[0])))
    print(f"{net}: {args.src} (group word {sw}) -> {args.dst} (group word {dw})")
    print(f"hops: {route.num_hops} (diameter {net.diameter})")
    for i, hop in enumerate(route.hops, start=1):
        kind = "loop coupler" if hop.is_loop else "Kautz coupler"
        print(
            f"  hop {i}: group {hop.src_group} -> {hop.dst_group}  "
            f"[{kind} (group {hop.src_group}, mux {hop.mux}), tx port {hop.tx_port}]"
        )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .networks import StackKautzNetwork
    from .simulation import (
        run_traffic,
        stack_kautz_simulator,
        uniform_traffic,
    )

    net = StackKautzNetwork(args.s, args.d, args.k)
    traffic = uniform_traffic(net.num_processors, args.messages, seed=args.seed)
    rep = run_traffic(stack_kautz_simulator(net), traffic)
    print(f"{net}: {args.messages} uniform messages, seed {args.seed}")
    print(rep.row())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis import TopologyRow, equal_size_comparison

    rows = equal_size_comparison(args.n)
    if not rows:
        print(f"no POPS/SK configuration has exactly N = {args.n}")
        return 1
    print(TopologyRow.header())
    for row in rows:
        print(row.formatted())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OTIS-based multi-OPS lightwave network toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("design", help="verify a design and print its BOM")
    p.add_argument("family", choices=["sk", "pops", "sii"])
    p.add_argument("params", type=int, nargs="+", help="sk: s d k | pops: t g | sii: s d n")
    p.set_defaults(func=_cmd_design)

    p = sub.add_parser("otis", help="render an OTIS(G, T) lens layout")
    p.add_argument("groups", type=int)
    p.add_argument("size", type=int)
    p.set_defaults(func=_cmd_otis)

    p = sub.add_parser("route", help="route between SK(s,d,k) processors")
    p.add_argument("s", type=int)
    p.add_argument("d", type=int)
    p.add_argument("k", type=int)
    p.add_argument("src", type=int)
    p.add_argument("dst", type=int)
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser("simulate", help="run uniform traffic on SK(s,d,k)")
    p.add_argument("s", type=int)
    p.add_argument("d", type=int)
    p.add_argument("k", type=int)
    p.add_argument("--messages", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("compare", help="equal-N POPS vs SK table")
    p.add_argument("n", type=int)
    p.set_defaults(func=_cmd_compare)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "design" and args.family in ("sk", "sii") and len(args.params) != 3:
        print(f"{args.family} takes 3 parameters", file=sys.stderr)
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
