"""Stack-graphs ``sigma(s, G)`` (Definition 1 of the paper, after [7]).

Pile up ``s`` copies of a digraph ``G`` and view each stack of ``s``
parallel arcs as one hyperarc: the result models a multi-OPS network in
which each node of ``G`` is a *group* of ``s`` processors and each arc
of ``G`` is one OPS coupler of degree ``s``.

Concretely, for ``G = (V, A)``:

* nodes of ``sigma(s, G)`` are pairs ``(i, v)`` with ``0 <= i < s``,
  ``v in V`` -- processor ``i`` of group ``v``;
* for every arc ``(u, v)`` of ``A`` there is a hyperarc from
  ``pi^{-1}(u) = {(0,u), ..., (s-1,u)}`` to ``pi^{-1}(v)``, where
  ``pi`` is the projection ``(i, v) -> v``.

``sigma(t, K+_g)`` is the POPS network (Fig. 5) and
``sigma(s, KG+(d,k))`` is the stack-Kautz network (Definition 4).
"""

from __future__ import annotations

import numpy as np

from ..graphs.digraph import DiGraph
from .hypergraph import DirectedHypergraph, Hyperarc

__all__ = ["StackGraph", "stack_graph"]


class StackGraph(DirectedHypergraph):
    """The stack-graph ``sigma(s, G)`` as a directed hypergraph.

    Node numbering: processor ``(i, v)`` -- copy ``i`` of base node
    ``v`` -- is node ``v * s + i``, so a group occupies a contiguous id
    block (matching the paper's figures, which draw groups as blocks of
    consecutive processors, e.g. Fig. 7's ``SK(6, 3, 2)`` numbers group
    ``x`` as processors ``6x .. 6x+5``).

    Hyperarc numbering follows the CSR arc order of the base graph, and
    each hyperarc is labeled with its base arc ``(u, v)`` (as labels of
    ``G`` when present).
    """

    __slots__ = ("_base", "_s")

    def __init__(self, stacking_factor: int, base: DiGraph) -> None:
        if stacking_factor < 1:
            raise ValueError(
                f"stacking factor must be >= 1, got {stacking_factor}"
            )
        self._base = base
        self._s = int(stacking_factor)
        s = self._s
        hyperarcs = [
            Hyperarc(
                sources=tuple(range(u * s, (u + 1) * s)),
                targets=tuple(range(v * s, (v + 1) * s)),
                label=(base.label_of(int(u)), base.label_of(int(v))),
            )
            for u, v in base.arc_array().tolist()
        ]
        name = f"sigma({s},{base.name})" if base.name else f"sigma({s},G)"
        super().__init__(base.num_nodes * s, hyperarcs, name=name)

    # ------------------------------------------------------------------
    @property
    def base(self) -> DiGraph:
        """The base digraph ``G``."""
        return self._base

    @property
    def stacking_factor(self) -> int:
        """The stacking factor ``s`` (OPS coupler degree)."""
        return self._s

    def node_id(self, copy: int, base_node: int) -> int:
        """Id of processor ``(copy, base_node)``."""
        if not 0 <= copy < self._s:
            raise IndexError(f"copy {copy} out of range [0, {self._s})")
        if not 0 <= base_node < self._base.num_nodes:
            raise IndexError(
                f"base node {base_node} out of range [0, {self._base.num_nodes})"
            )
        return base_node * self._s + copy

    def copy_and_base(self, node: int) -> tuple[int, int]:
        """Inverse of :func:`node_id`: ``node -> (copy, base_node)``."""
        self._check_node(node)
        base_node, copy = divmod(node, self._s)
        return copy, base_node

    def project(self, node: int) -> int:
        """The projection ``pi``: group (base node) of a processor."""
        return self.copy_and_base(node)[1]

    def group_members(self, base_node: int) -> np.ndarray:
        """All ``s`` processors of group ``base_node`` (``pi^{-1}``)."""
        if not 0 <= base_node < self._base.num_nodes:
            raise IndexError(f"base node {base_node} out of range")
        start = base_node * self._s
        return np.arange(start, start + self._s, dtype=np.int64)

    def hyperarc_for_base_arc(self, u: int, v: int) -> int:
        """Index of (the first) hyperarc stacked over base arc ``u -> v``.

        Raises ``KeyError`` if the base graph has no such arc.
        """
        arr = self._base.arc_array()
        matches = np.nonzero((arr[:, 0] == u) & (arr[:, 1] == v))[0]
        if matches.size == 0:
            raise KeyError(f"base graph has no arc {u} -> {v}")
        return int(matches[0])

    def validate_against_base(self) -> None:
        """Cross-check Definition 1: raises ``AssertionError`` on violation.

        1. every hyperarc is the full stack ``(pi^{-1}(u), pi^{-1}(v))``
           of a base arc, in base CSR order;
        2. hop distances in the stack-graph push through ``pi``: for a
           processor in a *different* group the distance equals the
           base-graph distance; for a different processor of the *same*
           group it equals the shortest base cycle length through the
           group (1 when the group has a loop coupler) -- a copy cannot
           reach a sibling without leaving and re-entering the group.
        """
        arr = self._base.arc_array()
        assert self.num_hyperarcs == arr.shape[0]
        for idx, (u, v) in enumerate(arr.tolist()):
            ha = self.hyperarc(idx)
            assert ha.sources == tuple(self.group_members(u).tolist())
            assert ha.targets == tuple(self.group_members(v).tolist())
        for u in range(min(self._base.num_nodes, 8)):
            base_dist = self._base.bfs_distances(u)
            # shortest closed walk u -> u in the base graph
            if self._base.has_arc(u, u):
                cycle = 1
            else:
                back = [
                    1 + int(self._base.bfs_distances(int(w))[u])
                    for w in np.unique(self._base.successors(u)).tolist()
                    if self._base.bfs_distances(int(w))[u] >= 0
                ]
                cycle = min(back, default=-1)
            stack_dist = self.bfs_hop_distances(self.node_id(0, u))
            for node in range(self.num_nodes):
                copy, grp = self.copy_and_base(node)
                if grp != u:
                    expected = base_dist[grp]
                elif copy == 0:
                    expected = 0
                else:
                    expected = cycle
                assert stack_dist[node] == expected, (
                    f"distance mismatch at stack node {node}: "
                    f"{stack_dist[node]} != {expected}"
                )


def stack_graph(stacking_factor: int, base: DiGraph) -> StackGraph:
    """Build ``sigma(stacking_factor, base)``.

    >>> from ..graphs.complete import complete_digraph_with_loops
    >>> sg = stack_graph(4, complete_digraph_with_loops(2))   # POPS(4, 2)
    >>> sg.num_nodes, sg.num_hyperarcs
    (8, 4)
    """
    return StackGraph(stacking_factor, base)
