"""Directed hypergraphs: the model for one-to-many optical networks.

Messages sent through an OPS coupler are broadcast to *all* of its
outputs, so OPS-based networks are one-to-many and graphs undersell
them; the right model is a directed hypergraph (Berge [1], and the
stack-graph refinement of Bourdin, Ferreira, Marcus [7] -- paper
Sec. 2.3, Fig. 3).

A :class:`DirectedHypergraph` has nodes ``0..n-1`` and *hyperarcs*
``(sources, targets)``: every source node can transmit into the
hyperarc, every target node receives everything transmitted.  A
degree-``s`` OPS coupler is exactly a hyperarc with ``|sources| =
|targets| = s``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..graphs.digraph import DiGraph

__all__ = ["Hyperarc", "DirectedHypergraph"]


@dataclass(frozen=True)
class Hyperarc:
    """One hyperarc: a one-to-many communication medium.

    ``sources`` may transmit; ``targets`` all receive every
    transmission.  Both are stored as sorted tuples.  ``label`` is an
    arbitrary identifier (the POPS network labels its couplers with the
    group pair ``(i, j)``).
    """

    sources: tuple[int, ...]
    targets: tuple[int, ...]
    label: object = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sources", tuple(sorted(self.sources)))
        object.__setattr__(self, "targets", tuple(sorted(self.targets)))
        if not self.sources or not self.targets:
            raise ValueError("hyperarc needs at least one source and one target")

    @property
    def in_size(self) -> int:
        """Number of source nodes (OPS coupler fan-in)."""
        return len(self.sources)

    @property
    def out_size(self) -> int:
        """Number of target nodes (OPS coupler fan-out)."""
        return len(self.targets)

    def is_ops_of_degree(self, s: int) -> bool:
        """Whether this hyperarc models a degree-``s`` OPS coupler."""
        return self.in_size == s and self.out_size == s


class DirectedHypergraph:
    """Immutable directed hypergraph over nodes ``0..num_nodes-1``.

    >>> h = DirectedHypergraph(4, [Hyperarc((0, 1), (2, 3))])
    >>> h.num_hyperarcs
    1
    >>> sorted(h.out_hyperarcs(0))
    [0]
    """

    __slots__ = ("_n", "_hyperarcs", "_out", "_in", "name")

    def __init__(
        self,
        num_nodes: int,
        hyperarcs: Iterable[Hyperarc],
        name: str = "",
    ) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be >= 0, got {num_nodes}")
        self._n = int(num_nodes)
        self._hyperarcs = tuple(hyperarcs)
        self.name = name
        self._out: list[list[int]] = [[] for _ in range(num_nodes)]
        self._in: list[list[int]] = [[] for _ in range(num_nodes)]
        for idx, ha in enumerate(self._hyperarcs):
            for u in ha.sources:
                self._check_node(u)
                self._out[u].append(idx)
            for v in ha.targets:
                self._check_node(v)
                self._in[v].append(idx)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def num_hyperarcs(self) -> int:
        """Number of hyperarcs (OPS couplers, in network terms)."""
        return len(self._hyperarcs)

    @property
    def hyperarcs(self) -> tuple[Hyperarc, ...]:
        """All hyperarcs, in insertion order."""
        return self._hyperarcs

    def hyperarc(self, index: int) -> Hyperarc:
        """The hyperarc at ``index``."""
        return self._hyperarcs[index]

    def out_hyperarcs(self, u: int) -> list[int]:
        """Indices of hyperarcs in which ``u`` is a source."""
        self._check_node(u)
        return list(self._out[u])

    def in_hyperarcs(self, v: int) -> list[int]:
        """Indices of hyperarcs in which ``v`` is a target."""
        self._check_node(v)
        return list(self._in[v])

    def out_degree(self, u: int) -> int:
        """Number of hyperarcs ``u`` can transmit into."""
        self._check_node(u)
        return len(self._out[u])

    def in_degree(self, v: int) -> int:
        """Number of hyperarcs ``v`` listens to."""
        self._check_node(v)
        return len(self._in[v])

    def neighbors_out(self, u: int) -> np.ndarray:
        """Distinct nodes reachable from ``u`` in one hyperarc hop."""
        self._check_node(u)
        targets: set[int] = set()
        for idx in self._out[u]:
            targets.update(self._hyperarcs[idx].targets)
        return np.asarray(sorted(targets), dtype=np.int64)

    def underlying_digraph(self) -> DiGraph:
        """The digraph with an arc ``u -> v`` per (hyperarc, u, v) triple.

        This is the point-to-point graph a message *could* traverse;
        parallel arcs appear when two hyperarcs join the same pair.
        """
        arcs = [
            (u, v)
            for ha in self._hyperarcs
            for u in ha.sources
            for v in ha.targets
        ]
        return DiGraph(self._n, arcs, name=f"U({self.name})" if self.name else "")

    def bfs_hop_distances(self, source: int) -> np.ndarray:
        """Minimum number of hyperarc hops from ``source`` to every node."""
        self._check_node(source)
        dist = np.full(self._n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = [source]
        d = 0
        while frontier:
            d += 1
            nxt: list[int] = []
            for u in frontier:
                for idx in self._out[u]:
                    for v in self._hyperarcs[idx].targets:
                        if dist[v] < 0:
                            dist[v] = d
                            nxt.append(v)
            frontier = nxt
        return dist

    def hop_diameter(self) -> int:
        """Max over pairs of the hyperarc-hop distance; ``-1`` if disconnected."""
        worst = 0
        for u in range(self._n):
            dist = self.bfs_hop_distances(u)
            if (dist < 0).any():
                return -1
            worst = max(worst, int(dist.max()))
        return worst

    def is_single_hop(self) -> bool:
        """Every ordered pair is joined by one hyperarc hop (paper Sec. 1)."""
        return self._n <= 1 or self.hop_diameter() == 1

    def degree_set(self) -> set[tuple[int, int]]:
        """Distinct ``(in_size, out_size)`` shapes over all hyperarcs."""
        return {(ha.in_size, ha.out_size) for ha in self._hyperarcs}

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self._n:
            raise IndexError(f"node {u} out of range [0, {self._n})")

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return f"<DirectedHypergraph{tag} n={self._n} h={self.num_hyperarcs}>"
