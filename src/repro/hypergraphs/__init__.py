"""Directed hypergraphs and stack-graphs (paper Sec. 2.3).

* :class:`Hyperarc`, :class:`DirectedHypergraph` -- the one-to-many
  model for OPS-based networks (Berge [1]);
* :class:`StackGraph` / :func:`stack_graph` -- ``sigma(s, G)`` of
  Definition 1 ([7]), the workhorse model for multi-OPS networks.
"""

from .hypergraph import DirectedHypergraph, Hyperarc
from .stack_graph import StackGraph, stack_graph

__all__ = ["DirectedHypergraph", "Hyperarc", "StackGraph", "stack_graph"]
