"""Survivability metrics over a degraded network.

Three views of "what still works":

* **connectivity** -- which ordered processor pairs can still talk at
  all (dead endpoints cannot);
* **path quality** -- degraded group-route lengths from the family's
  ``fault_route`` hook, their stretch over the intact distances, and
  the fraction within the paper's ``k + 2`` bound (``diameter + 2``
  generalized to every family);
* **delivery under load** -- run the same workload on the broken and
  the intact machine, compare delivery ratio and latency.

Everything funnels into one flat, JSON-ready
:class:`ResilienceMetrics` row -- the unit the Monte-Carlo sweep
aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

from .degrade import DegradedNetwork

__all__ = [
    "ResilienceMetrics",
    "connectivity_ratio",
    "alive_connectivity_ratio",
    "connectivity_metrics",
    "path_survival",
    "measure",
]


@dataclass(frozen=True)
class ResilienceMetrics:
    """One trial's flat survivability row (JSON-ready)."""

    spec: str
    model: str
    seed: int
    faults: int
    connectivity: float  # ordered processor pairs still connected
    alive_connectivity: float  # same, over surviving endpoints only
    reachable_groups: float  # ordered live-group pairs still connected
    max_path_length: int  # longest degraded group route (-1: none)
    mean_stretch: float  # degraded length / intact distance, mean
    within_bound: float  # routed pairs within diameter+2 (1.0 if all)
    bound: int
    delivery_ratio: float
    dropped: int
    mean_latency: float
    latency_inflation: float  # degraded / intact mean latency
    slots: int

    def as_dict(self) -> dict[str, object]:
        """Field name -> value mapping."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _connectivity_counts(
    degraded: DegradedNetwork,
) -> tuple[int, int, int, list, list[int]]:
    """One BFS pass feeding every connectivity-flavoured metric.

    Returns ``(connected, alive_pairs, all_pairs, reach, alive_per_group)``
    over ordered distinct pairs; ``reach[u]`` is the surviving-base BFS
    distance row of group ``u``.
    """
    net = degraded.net
    n = net.num_processors
    base = degraded.surviving_base()
    g = net.num_groups
    reach = [base.bfs_distances(u) for u in range(g)]
    # a surviving closed walk at u exists iff some surviving out-arc
    # (u, v) is a loop or can get back (reach[v][u] >= 0) -- derivable
    # from the BFS rows, no routing table needed (same booleans as
    # `degraded._sibling_first_hop(u) >= 0`, which builds one)
    sibling_ok = [
        any(v == u or reach[v][u] >= 0 for v in base.successors(u).tolist())
        for u in range(g)
    ]
    alive_per_group = [0] * g
    for p in degraded.alive_processors:
        alive_per_group[degraded._group_of(p)] += 1
    alive = sum(alive_per_group)
    connected = 0
    for gu in range(g):
        au = alive_per_group[gu]
        if au == 0:
            continue
        # same-group ordered pairs need a surviving closed walk
        if au > 1 and sibling_ok[gu]:
            connected += au * (au - 1)
        for gv in range(g):
            if gv == gu:
                continue
            if reach[gu][gv] >= 0:
                connected += au * alive_per_group[gv]
    return connected, alive * (alive - 1), n * (n - 1), reach, alive_per_group


def connectivity_ratio(degraded: DegradedNetwork) -> float:
    """Fraction of ordered distinct processor pairs still connected.

    Pairs with a dead endpoint count as disconnected, so processor
    faults lower the ratio even when the fabric itself survives.
    Single-processor machines report 1.0.

    >>> from repro.core import build
    >>> from repro.resilience.faults import UniformCouplerFaults
    >>> net = build("pops(2,2)")
    >>> scen = UniformCouplerFaults(0).scenario("pops(2,2)", net, 0)
    >>> connectivity_ratio(DegradedNetwork(net, scen))
    1.0
    """
    if degraded.net.num_processors <= 1:
        return 1.0
    connected, _, all_pairs, _, _ = _connectivity_counts(degraded)
    return connected / all_pairs


def alive_connectivity_ratio(degraded: DegradedNetwork) -> float:
    """Connected fraction of ordered pairs of *surviving* processors.

    1.0 means the fabric is not partitioned for anyone still alive --
    dead endpoints are out of the denominator, unlike
    :func:`connectivity_ratio`.  1.0 when fewer than two processors
    survive.
    """
    connected, alive_pairs, _, _, _ = _connectivity_counts(degraded)
    return connected / alive_pairs if alive_pairs else 1.0


def connectivity_metrics(
    degraded: DegradedNetwork, *, with_reachable: bool = True
) -> dict[str, float]:
    """The connectivity-only survivability row, in one BFS pass.

    The batched sweep backend's fast path: when no simulation metrics
    are requested, a trial is scored from the surviving base digraph
    alone -- ``connectivity`` (all ordered processor pairs),
    ``alive_connectivity`` (surviving endpoints only) and
    ``reachable_groups`` (ordered live-group pairs with a surviving
    path, the same fraction :func:`path_survival` routes -- both the
    structured ``fault_route`` hooks and their BFS fallback succeed
    exactly on BFS-reachable pairs).  No per-pair routing and no
    slotted simulation, which is what makes design-search sweeps over
    hundreds of candidates tractable.  ``with_reachable=False`` skips
    the reachability loop for callers that recompute the routed
    fraction themselves (the sweep's ``paths`` mode).

    >>> from repro.core import degrade
    >>> row = connectivity_metrics(degrade("pops(2,3)", faults=0))
    >>> row == {"connectivity": 1.0, "alive_connectivity": 1.0,
    ...         "reachable_groups": 1.0}
    True
    """
    net = degraded.net
    if net.num_processors <= 1:
        row = {"connectivity": 1.0, "alive_connectivity": 1.0}
        if with_reachable:
            row["reachable_groups"] = 1.0
        return row
    connected, alive_pairs, all_pairs, reach, alive_per_group = (
        _connectivity_counts(degraded)
    )
    out = {
        "connectivity": connected / all_pairs,
        "alive_connectivity": connected / alive_pairs if alive_pairs else 1.0,
    }
    if not with_reachable:
        return out
    live = [g for g in range(net.num_groups) if alive_per_group[g] > 0]
    if len(live) < 2:
        reachable = 1.0
    else:
        pairs = routed = 0
        for gu in live:
            row = reach[gu]
            for gv in live:
                if gv == gu:
                    continue
                pairs += 1
                if row[gv] >= 0:
                    routed += 1
        reachable = routed / pairs
    out["reachable_groups"] = reachable
    return out


def path_survival(
    degraded: DegradedNetwork, bound: int | None = None
) -> tuple[float, int, float, float]:
    """``(reachable_groups, max_len, mean_stretch, within_bound)``.

    Runs the family ``fault_route`` hook over every ordered pair of
    distinct live groups.  ``reachable_groups`` is the routed
    fraction; ``max_len`` the longest degraded route (-1 when no pair
    routes); ``mean_stretch`` the mean ratio of degraded length to
    intact distance; ``within_bound`` the fraction of routed pairs
    with length <= ``bound`` (default ``diameter + 2``, the paper's
    ``k + 2`` on stack-Kautz).  Machines with fewer than two live
    groups report ``(1.0, 0, 1.0, 1.0)``.

    Routed pairs whose *intact* distance is undefined (BFS ``-1``,
    possible for degenerate/partial specs) have no meaningful stretch:
    they stay in ``reachable_groups``/``within_bound`` but are left
    out of the ``mean_stretch`` average instead of counting as 1.0.
    """
    net = degraded.net
    if bound is None:
        bound = net.diameter + 2
    dead = degraded.dead_groups
    live = [g for g in range(net.num_groups) if g not in dead]
    if len(live) < 2:
        return 1.0, 0, 1.0, 1.0
    if hasattr(net, "base_graph"):
        intact = net.base_graph().without_loops()
    else:  # single-star machines: every pair one hop apart
        intact = None
    routed = 0
    within = 0
    max_len = -1
    stretch_terms: list[float] = []
    pairs = 0
    for gu in live:
        intact_dist = intact.bfs_distances(gu) if intact is not None else None
        for gv in live:
            if gv == gu:
                continue
            pairs += 1
            path = degraded.fault_route(gu, gv)
            if path is None:
                continue
            length = len(path) - 1
            routed += 1
            max_len = max(max_len, length)
            if length <= bound:
                within += 1
            d0 = int(intact_dist[gv]) if intact_dist is not None else 1
            if d0 > 0:
                stretch_terms.append(length / d0)
    if routed == 0:
        # nothing routed: the bound is *not* vacuously confirmed
        return 0.0, max_len, 0.0, 0.0
    # fsum is exact and order-independent, so the vectorized paths
    # kernel can sum the same multiset of ratios in any order and land
    # on the identical float
    stretch = (
        math.fsum(stretch_terms) / len(stretch_terms) if stretch_terms else 1.0
    )
    return routed / pairs, max_len, stretch, within / routed


def measure(
    degraded: DegradedNetwork,
    *,
    workload="uniform",
    messages: int = 60,
    seed: int = 0,
    bound: int | None = None,
    max_slots: int = 100_000,
    baseline_mean_latency: float | None = None,
    **workload_options,
) -> ResilienceMetrics:
    """All survivability metrics of one degraded network, one row.

    The delivery comparison runs identical traffic (generated on the
    intact machine with ``seed``) through the degraded and the intact
    simulator; ``latency_inflation`` is the mean-latency ratio (0.0
    when the broken machine delivers nothing, 1.0 when the intact mean
    is zero).  ``baseline_mean_latency`` short-circuits the intact run
    -- the sweep computes it once and shares it across trials, since
    the baseline depends only on ``(workload, messages, seed)``.
    """
    from ..core.workloads import resolve_workload
    from ..simulation.network_sim import run_traffic

    net = degraded.net
    if bound is None:
        bound = net.diameter + 2
    # one BFS pass feeds both ratios (identical values, half the work);
    # the routed reachable_groups fraction comes from path_survival below
    conn_row = connectivity_metrics(degraded, with_reachable=False)
    connectivity = conn_row["connectivity"]
    alive_connectivity = conn_row["alive_connectivity"]
    reachable, max_len, stretch, within = path_survival(degraded, bound)
    traffic = resolve_workload(
        workload, net, messages=messages, seed=seed, **workload_options
    )
    report = run_traffic(
        degraded.simulator(), traffic, max_slots=max_slots
    )
    if baseline_mean_latency is None:
        baseline = run_traffic(
            degraded.family.simulator(net), list(traffic), max_slots=max_slots
        )
        baseline_mean_latency = baseline.mean_latency
    if report.delivery_ratio == 0.0:
        inflation = 0.0
    elif baseline_mean_latency == 0.0:
        inflation = 1.0
    else:
        inflation = report.mean_latency / baseline_mean_latency
    return ResilienceMetrics(
        spec=degraded.scenario.spec,
        model=degraded.scenario.model,
        seed=degraded.scenario.seed,
        faults=degraded.scenario.size,
        connectivity=connectivity,
        alive_connectivity=alive_connectivity,
        reachable_groups=reachable,
        max_path_length=max_len,
        mean_stretch=stretch,
        within_bound=within,
        bound=bound,
        delivery_ratio=report.delivery_ratio,
        dropped=report.num_dropped,
        mean_latency=report.mean_latency,
        latency_inflation=inflation,
        slots=report.slots,
    )
