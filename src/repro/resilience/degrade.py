"""Apply a `FaultScenario` to any registry-built network.

:class:`DegradedNetwork` is the degraded-mode view the rest of the
subsystem works on: the surviving base digraph and hypergraph, a
fault-aware ``next_coupler``/``relay`` pair so the *unmodified*
:class:`~repro.simulation.engine.SlottedSimulator` runs on the broken
machine (dead couplers drop messages instead of wedging the run), and
the per-family ``fault_route`` hook for structured rerouting.

Effective faults close over the scenario: a coupler is dead when it was
hit directly, when every source processor died, or when every target
processor died; a group is dead when all of its processors died.

>>> from repro.core import build
>>> from repro.resilience.faults import UniformCouplerFaults
>>> net = build("pops(2,2)")
>>> scen = UniformCouplerFaults(1).scenario("pops(2,2)", net, seed=0)
>>> deg = DegradedNetwork(net, scen)
>>> len(deg.surviving_couplers)
3
"""

from __future__ import annotations

from ..graphs.digraph import DiGraph
from ..hypergraphs.hypergraph import DirectedHypergraph
from ..routing.tables import RoutingTable, build_routing_table
from ..simulation.engine import Message, SlottedSimulator
from .faults import FaultScenario, coupler_endpoints

__all__ = ["DegradedNetwork", "degrade_network"]


class DegradedNetwork:
    """A registry-built network with a fault scenario applied.

    Parameters
    ----------
    net:
        Any network owned by a registered family (``repro.build(...)``).
    scenario:
        The :class:`~repro.resilience.faults.FaultScenario` to apply.
    family:
        Optional family descriptor; resolved from ``net`` by default.
    """

    def __init__(self, net, scenario: FaultScenario, family=None) -> None:
        from ..core.registry import family_for_network

        self.net = net
        self.scenario = scenario
        self.family = family if family is not None else family_for_network(net)
        self._model = net.hypergraph_model()
        n = net.num_processors
        m = self._model.num_hyperarcs
        self.dead_processors = frozenset(
            p for p in scenario.processors if 0 <= p < n
        )
        dead = {c for c in scenario.couplers if 0 <= c < m}
        for idx, ha in enumerate(self._model.hyperarcs):
            if idx in dead:
                continue
            if all(s in self.dead_processors for s in ha.sources) or all(
                t in self.dead_processors for t in ha.targets
            ):
                dead.add(idx)
        self.dead_couplers = frozenset(dead)
        self._endpoints = coupler_endpoints(net)
        # caches, built on demand
        self._base: DiGraph | None = None
        self._table: RoutingTable | None = None
        self._arc_coupler: dict[tuple[int, int], int] | None = None
        self._sibling_hop: dict[int, int] = {}
        self._dead_groups: frozenset[int] | None = None
        self._word_faults = None

    # ------------------------------------------------------------------
    # Survivor views
    # ------------------------------------------------------------------
    @property
    def alive_processors(self) -> tuple[int, ...]:
        """Surviving processor ids, ascending."""
        return tuple(
            p
            for p in range(self.net.num_processors)
            if p not in self.dead_processors
        )

    @property
    def surviving_couplers(self) -> frozenset[int]:
        """Hyperarc indices of couplers still alive."""
        return frozenset(
            c
            for c in range(self._model.num_hyperarcs)
            if c not in self.dead_couplers
        )

    @property
    def dead_groups(self) -> frozenset[int]:
        """Groups whose processors all died (whole block dark)."""
        if self._dead_groups is None:
            from .faults import group_of

            alive = {group_of(self.net, p) for p in self.alive_processors}
            self._dead_groups = frozenset(
                g for g in range(self.net.num_groups) if g not in alive
            )
        return self._dead_groups

    def word_fault_set(self):
        """The scenario as a word-level :class:`~repro.routing.FaultSet`.

        Only meaningful for networks with Kautz-word group labels
        (stack-Kautz); cached, since it depends on the scenario alone
        and ``fault_route`` consults it once per ordered group pair.
        """
        if self._word_faults is None:
            from ..routing.fault_tolerant import FaultSet

            self._word_faults = FaultSet.from_indices(
                self.net, groups=self.dead_groups, couplers=self.dead_couplers
            )
        return self._word_faults

    def surviving_base(self) -> DiGraph:
        """The group-level digraph spanned by surviving couplers."""
        if self._base is None:
            arcs = [
                self._endpoints[c]
                for c in range(len(self._endpoints))
                if c not in self.dead_couplers
            ]
            self._base = DiGraph(
                self.net.num_groups,
                arcs,
                name=f"degraded({self.scenario.spec})",
            )
        return self._base

    def surviving_hypergraph(self) -> DirectedHypergraph:
        """The hypergraph restricted to surviving couplers.

        Node ids are unchanged (dead processors stay as isolated
        nodes), so processor indices remain comparable with the intact
        machine.
        """
        return DirectedHypergraph(
            self.net.num_processors,
            [
                ha
                for idx, ha in enumerate(self._model.hyperarcs)
                if idx not in self.dead_couplers
            ],
            name=f"degraded({self.scenario.spec})",
        )

    # ------------------------------------------------------------------
    # Degraded-mode routing
    # ------------------------------------------------------------------
    def _routing(self) -> tuple[RoutingTable, dict[tuple[int, int], int]]:
        if self._table is None or self._arc_coupler is None:
            base = self.surviving_base()
            self._table = build_routing_table(base.without_loops())
            arc_coupler: dict[tuple[int, int], int] = {}
            for c, (u, v) in enumerate(self._endpoints):
                if c in self.dead_couplers:
                    continue
                arc_coupler.setdefault((u, v), c)
            self._arc_coupler = arc_coupler
        return self._table, self._arc_coupler

    def _group_of(self, processor: int) -> int:
        return int(self.net.label_of(processor)[0])

    def _sibling_first_hop(self, group: int) -> int:
        """First group of the shortest surviving closed walk at ``group``.

        Sibling delivery uses the loop coupler when it survives
        (returns ``group``); otherwise the message must leave the
        group and come back.  ``-1`` when no closed walk survives.
        """
        if group in self._sibling_hop:
            return self._sibling_hop[group]
        table, arc_coupler = self._routing()
        if (group, group) in arc_coupler:
            return group
        best, best_len = -1, -1
        for u, v in sorted(arc_coupler):
            if u != group or v == group:
                continue
            back = table.distance(v, group)
            if back < 0:
                continue
            if best_len < 0 or 1 + back < best_len:
                best, best_len = v, 1 + back
        self._sibling_hop[group] = best
        return best

    def next_coupler(self, holder: int, msg: Message) -> int:
        """Fault-aware routing callback for the slotted engine.

        Returns ``-1`` ("drop") when the destination is unreachable on
        the surviving network or either endpoint is dead.
        """
        if msg.src in self.dead_processors or msg.dst in self.dead_processors:
            return -1
        table, arc_coupler = self._routing()
        gu = self._group_of(holder)
        gv = self._group_of(msg.dst)
        if gu == gv:
            nxt = self._sibling_first_hop(gu)
        else:
            nxt = table.next_hop(gu, gv)
        if nxt < 0:
            return -1
        return arc_coupler.get((gu, nxt), -1)

    def relay(self, coupler: int, msg: Message) -> int:
        """Relay selection that never hands a message to a corpse."""
        targets = [
            t
            for t in self._model.hyperarc(coupler).targets
            if t not in self.dead_processors
        ]
        if msg.dst in targets:
            return msg.dst
        if not targets:  # unreachable: dead couplers are never requested
            raise RuntimeError(f"coupler {coupler} has no surviving targets")
        return targets[msg.dst % len(targets)]

    def fault_route(self, src_group: int, dst_group: int) -> list[int] | None:
        """Group-level degraded route, via the family's hook."""
        for name, g in (("src_group", src_group), ("dst_group", dst_group)):
            if not 0 <= g < self.net.num_groups:
                raise IndexError(
                    f"{name} {g} out of range [0, {self.net.num_groups})"
                )
        return self.family.fault_route(self.net, src_group, dst_group, self)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulator(self, policy=None) -> SlottedSimulator:
        """An unmodified slotted simulator wired for the broken machine."""
        return SlottedSimulator(
            self._model,
            self.next_coupler,
            relay_of=self.relay,
            policy=policy,
            disabled_couplers=self.dead_couplers,
        )

    def simulate(
        self,
        workload="uniform",
        *,
        messages: int = 200,
        seed: int = 0,
        policy=None,
        max_slots: int = 100_000,
        **workload_options,
    ):
        """Run a named workload on the degraded machine.

        Traffic is generated against the *intact* network (same triples
        as the healthy baseline for the same seed), so delivery ratio
        and latency inflation are apples-to-apples.
        """
        from ..core.workloads import resolve_workload
        from ..simulation.network_sim import run_traffic

        traffic = resolve_workload(
            workload, self.net, messages=messages, seed=seed, **workload_options
        )
        return run_traffic(self.simulator(policy), traffic, max_slots=max_slots)

    def __repr__(self) -> str:
        return (
            f"<DegradedNetwork {self.scenario.spec} "
            f"model={self.scenario.model} seed={self.scenario.seed} "
            f"dead_couplers={len(self.dead_couplers)} "
            f"dead_processors={len(self.dead_processors)}>"
        )


def degrade_network(net, scenario: FaultScenario) -> DegradedNetwork:
    """Functional alias for :class:`DegradedNetwork`."""
    return DegradedNetwork(net, scenario)
