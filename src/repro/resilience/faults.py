"""Composable fault models: seeded generators of `FaultScenario`s.

The paper's fault-tolerance story (Sec. 2.5) is analytic; this module
makes failures a first-class workload.  A :class:`FaultModel` samples
*which* components break -- couplers (hyperarcs), processors, or whole
fiber links -- and a :class:`FaultScenario` freezes one such draw so it
can be replayed, hashed, pickled across ``multiprocessing`` workers and
serialized into sweep reports.

Determinism contract: a scenario is fully determined by
``(model, spec, seed)``.  :func:`trial_seed` derives per-trial seeds
from a sweep seed via SHA-256, so trial ``i`` sees the same faults no
matter how trials are sharded over workers.

>>> from repro.core import build
>>> net = build("sk(2,2,2)")
>>> model = UniformCouplerFaults(faults=1)
>>> model.scenario("sk(2,2,2)", net, seed=7).couplers \\
...     == model.scenario("sk(2,2,2)", net, seed=7).couplers
True
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import ClassVar

__all__ = [
    "FaultScenario",
    "FaultModel",
    "BernoulliCouplerFaults",
    "UniformCouplerFaults",
    "UniformProcessorFaults",
    "UniformLinkFaults",
    "AdversarialFirstHopFaults",
    "GroupBlockOutage",
    "FAULT_MODELS",
    "make_fault_model",
    "fault_model_keys",
    "trial_seed",
    "scenarios",
    "coupler_endpoints",
]


def group_of(net, processor: int) -> int:
    """Group of a processor, via the protocol's ``label_of``."""
    return int(net.label_of(processor)[0])


def coupler_endpoints(net) -> list[tuple[int, int]]:
    """``(src_group, dst_group)`` per coupler, in hyperarc order.

    Reads the base digraph's CSR arc order when the network has one
    (stack families, POPS); otherwise derives the group pair from the
    hyperarc's source/target blocks (single-OPS).
    """
    if hasattr(net, "base_graph"):
        return [
            (int(u), int(v)) for u, v in net.base_graph().arc_array().tolist()
        ]
    model = net.hypergraph_model()
    return [
        (group_of(net, ha.sources[0]), group_of(net, ha.targets[0]))
        for ha in model.hyperarcs
    ]


@dataclass(frozen=True)
class FaultScenario:
    """One concrete set of broken components on one network.

    ``couplers`` are hyperarc indices of dead OPS couplers;
    ``processors`` are flat ids of dead processors.  The scenario is
    hashable and picklable, and remembers the ``(model, seed)`` that
    produced it so sweep rows are self-describing.
    """

    spec: str
    model: str
    seed: int
    couplers: frozenset[int] = field(default_factory=frozenset)
    processors: frozenset[int] = field(default_factory=frozenset)

    @property
    def size(self) -> int:
        """Total number of injected faults."""
        return len(self.couplers) + len(self.processors)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view (fault sets sorted for stable output)."""
        return {
            "spec": self.spec,
            "model": self.model,
            "seed": self.seed,
            "couplers": sorted(self.couplers),
            "processors": sorted(self.processors),
        }

    def __str__(self) -> str:
        return (
            f"FaultScenario({self.spec}, {self.model}, seed={self.seed}, "
            f"couplers={sorted(self.couplers)}, "
            f"processors={sorted(self.processors)})"
        )


@dataclass(frozen=True)
class FaultModel:
    """Base class: a picklable, seeded sampler of fault scenarios.

    ``faults`` is the model's intensity knob -- how many components
    (couplers, processors, links or group blocks, depending on the
    subclass) one scenario breaks.
    """

    faults: int = 1
    key: ClassVar[str] = ""

    def sample_faults(
        self, net, rng: random.Random
    ) -> tuple[set[int], set[int]]:
        """``(dead couplers, dead processors)`` for one draw."""
        raise NotImplementedError

    def max_faults(self, net) -> int | None:
        """The largest intensity fully injectable into ``net``.

        Every sampler caps its draw so the machine retains a shred of
        life (at least one coupler, two processors, one group...); a
        scenario asked for more faults than this silently injects
        fewer.  Consumers that compare machines -- the design search
        above all -- use this to *skip* candidates too small to absorb
        the requested intensity instead of crowning them immune.
        ``None`` means the model cannot say (custom models without an
        override); built-ins all report an exact cap.
        """
        return None

    def scenario(self, spec: str, net, seed: int) -> FaultScenario:
        """The deterministic scenario for ``(self, spec, seed)``."""
        couplers, processors = self.sample_faults(net, random.Random(seed))
        return FaultScenario(
            spec=str(spec),
            model=self.key,
            seed=int(seed),
            couplers=frozenset(couplers),
            processors=frozenset(processors),
        )


@dataclass(frozen=True)
class UniformCouplerFaults(FaultModel):
    """``faults`` couplers chosen uniformly at random (all kinds)."""

    key: ClassVar[str] = "coupler"

    def sample_faults(self, net, rng: random.Random):
        m = net.num_couplers
        return set(rng.sample(range(m), min(self.faults, max(m - 1, 0)))), set()

    def max_faults(self, net) -> int:
        return max(net.num_couplers - 1, 0)


@dataclass(frozen=True)
class BernoulliCouplerFaults(FaultModel):
    """Every coupler fails independently with one per-coupler probability.

    The rare-event workhorse: unlike the fixed-count models its fault
    *cardinality* is a full Binomial distribution, which is what the
    stratified/importance estimators in
    :mod:`~repro.resilience.adaptive` redistribute trials over.  The
    per-coupler probability is ``rate`` when given, else
    ``faults / num_couplers`` (so ``faults`` keeps its meaning as the
    *expected* fault count for string-keyed construction).  Draws are
    deliberately uncapped -- a scenario may kill every coupler -- so
    the cardinality law is exactly ``Binomial(m, p)`` and, conditioned
    on ``k`` deaths, the dead set is exactly uniform over
    ``k``-subsets.  That exchangeability is what makes the reweighted
    estimators unbiased rather than approximate.
    """

    key: ClassVar[str] = "bernoulli"

    rate: float | None = None

    def __post_init__(self) -> None:
        if self.rate is not None and not 0.0 <= self.rate <= 1.0:
            raise ValueError(
                f"rate must be a probability in [0, 1], got {self.rate}"
            )

    def probability(self, net) -> float:
        """The per-coupler failure probability on ``net``."""
        if self.rate is not None:
            return self.rate
        m = net.num_couplers
        return min(self.faults / m, 1.0) if m else 0.0

    def sample_faults(self, net, rng: random.Random):
        p = self.probability(net)
        return (
            {c for c in range(net.num_couplers) if rng.random() < p},
            set(),
        )

    def max_faults(self, net) -> int:
        return net.num_couplers


@dataclass(frozen=True)
class UniformProcessorFaults(FaultModel):
    """``faults`` processors chosen uniformly (at least two survive)."""

    key: ClassVar[str] = "processor"

    def sample_faults(self, net, rng: random.Random):
        n = net.num_processors
        return set(), set(rng.sample(range(n), min(self.faults, max(n - 2, 0))))

    def max_faults(self, net) -> int:
        return max(net.num_processors - 2, 0)


@dataclass(frozen=True)
class UniformLinkFaults(FaultModel):
    """``faults`` whole fiber links: both orientations die together.

    A link is an unordered non-loop group pair; killing it disables
    every coupler over either orientation -- the undirected "link
    fault" of the paper's ``d - 1`` claim (and the orientation-blind
    arc semantics of :class:`repro.routing.FaultSet`).
    """

    key: ClassVar[str] = "link"

    def sample_faults(self, net, rng: random.Random):
        ends = coupler_endpoints(net)
        links = sorted({(min(u, v), max(u, v)) for u, v in ends if u != v})
        picked = set(rng.sample(links, min(self.faults, max(len(links) - 1, 0))))
        chosen = {
            idx
            for idx, (u, v) in enumerate(ends)
            if u != v and (min(u, v), max(u, v)) in picked
        }
        return chosen, set()

    def max_faults(self, net) -> int:
        ends = coupler_endpoints(net)
        links = {(min(u, v), max(u, v)) for u, v in ends if u != v}
        return max(len(links) - 1, 0)


@dataclass(frozen=True)
class AdversarialFirstHopFaults(FaultModel):
    """Worst-first-hop attack: kill out-couplers of one victim group.

    Fault tolerance on stack-Kautz rests on the ``d`` distinct first
    hops of the candidate-path family (Sec. 2.5); this model attacks
    exactly that diversity by disabling ``faults`` of the victim
    group's non-loop out-couplers.  The victim is drawn from the seed,
    the couplers killed are the lowest-indexed ones -- deterministic
    given the victim.
    """

    key: ClassVar[str] = "adversarial"

    def sample_faults(self, net, rng: random.Random):
        ends = coupler_endpoints(net)
        victim = rng.randrange(net.num_groups)
        outgoing = sorted(
            idx for idx, (u, v) in enumerate(ends) if u == victim and u != v
        )
        if not outgoing:  # single-group machine: fall back to any coupler
            m = net.num_couplers
            return (
                set(rng.sample(range(m), min(self.faults, max(m - 1, 0)))),
                set(),
            )
        return set(outgoing[: self.faults]), set()

    def max_faults(self, net) -> int:
        ends = coupler_endpoints(net)
        per_group = [0] * net.num_groups
        for u, v in ends:
            if u != v:
                per_group[u] += 1
        # the weakest possible victim bounds what every seed can absorb;
        # a victim with no non-loop out-couplers takes the any-coupler
        # fallback, whose own cap is num_couplers - 1
        fallback = max(net.num_couplers - 1, 0)
        return min(c if c > 0 else fallback for c in per_group)


@dataclass(frozen=True)
class GroupBlockOutage(FaultModel):
    """Correlated outage: ``faults`` whole group blocks go dark.

    Models a failed OTIS block / power domain: every processor of the
    chosen groups dies, along with every coupler touching them.
    At least one group always survives.
    """

    key: ClassVar[str] = "group"

    def sample_faults(self, net, rng: random.Random):
        g = net.num_groups
        dead_groups = set(
            rng.sample(range(g), min(self.faults, max(g - 1, 0)))
        )
        ends = coupler_endpoints(net)
        couplers = {
            idx
            for idx, (u, v) in enumerate(ends)
            if u in dead_groups or v in dead_groups
        }
        processors = {
            p
            for p in range(net.num_processors)
            if group_of(net, p) in dead_groups
        }
        return couplers, processors

    def max_faults(self, net) -> int:
        return max(net.num_groups - 1, 0)


FAULT_MODELS: dict[str, type[FaultModel]] = {
    cls.key: cls
    for cls in (
        UniformCouplerFaults,
        BernoulliCouplerFaults,
        UniformProcessorFaults,
        UniformLinkFaults,
        AdversarialFirstHopFaults,
        GroupBlockOutage,
    )
}


def fault_model_keys() -> tuple[str, ...]:
    """All registered fault-model keys, sorted."""
    return tuple(sorted(FAULT_MODELS))


def make_fault_model(key: str, faults: int = 1) -> FaultModel:
    """The fault model named ``key`` with intensity ``faults``.

    >>> make_fault_model("coupler", 2)
    UniformCouplerFaults(faults=2)
    """
    try:
        cls = FAULT_MODELS[key.strip().lower()]
    except KeyError:
        known = ", ".join(fault_model_keys())
        raise ValueError(
            f"unknown fault model {key!r}; known models: {known}"
        ) from None
    if faults < 0:
        raise ValueError(f"faults must be >= 0, got {faults}")
    return cls(faults=faults)


def trial_seed(seed: int, index: int) -> int:
    """Deterministic, platform-stable per-trial seed.

    SHA-256 of ``"seed:index"`` keeps trial streams independent of the
    worker count and of Python's hash randomization.
    """
    digest = hashlib.sha256(f"{seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def scenarios(model: FaultModel, spec, *, trials: int, seed: int = 0):
    """Yield ``trials`` deterministic scenarios of ``model`` on ``spec``.

    >>> list(scenarios(UniformCouplerFaults(1), "pops(2,2)", trials=2,
    ...                seed=3))[0].model
    'coupler'
    """
    from ..core.spec import NetworkSpec

    parsed = NetworkSpec.parse(spec)
    net = parsed.build()
    for i in range(trials):
        yield model.scenario(parsed.canonical(), net, trial_seed(seed, i))
