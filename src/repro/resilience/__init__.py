"""Resilience subsystem: fault injection, degraded-mode operation,
Monte-Carlo survivability.

The paper claims (Sec. 2.5) that label-induced stack-Kautz routing
survives ``d - 1`` link or node faults with paths of length at most
``k + 2``; this package turns that analytic claim -- and its analogue
for every registered family -- into something you can *run*:

* :mod:`~repro.resilience.faults` -- composable seeded
  :class:`FaultModel`s (uniform coupler/processor/link failures,
  adversarial worst-first-hop, correlated group-block outage)
  producing frozen :class:`FaultScenario`s;
* :mod:`~repro.resilience.degrade` -- :class:`DegradedNetwork`, the
  scenario applied to a registry-built machine: surviving
  digraph/hypergraph views plus a fault-aware ``next_coupler`` so the
  unmodified slotted simulator runs on the broken network;
* :mod:`~repro.resilience.metrics` -- connectivity ratio, degraded
  path lengths against the ``diameter + 2`` bound, delivery ratio and
  latency inflation under load;
* :mod:`~repro.resilience.sweep` -- the Monte-Carlo engine fanning
  scenarios over ``multiprocessing`` workers with per-trial
  deterministic seeds (same seed => byte-identical JSON, any worker
  count and any of the three backends: ``batched``, shared-memory
  ``vectorized``, and the ``legacy`` rebuild-per-trial reference).

Facade: :func:`repro.degrade` and :func:`repro.resilience_sweep`; CLI:
``python -m repro resilience "sk(6,3,2)" --faults 2 --trials 1000``.
"""

from .adaptive import (
    ImportanceSampler,
    StratifiedSampler,
    survival_estimate,
    wilson_interval,
)
from .degrade import DegradedNetwork, degrade_network
from .faults import (
    FAULT_MODELS,
    AdversarialFirstHopFaults,
    BernoulliCouplerFaults,
    FaultModel,
    FaultScenario,
    GroupBlockOutage,
    UniformCouplerFaults,
    UniformLinkFaults,
    UniformProcessorFaults,
    coupler_endpoints,
    fault_model_keys,
    make_fault_model,
    scenarios,
    trial_seed,
)
from .metrics import (
    ResilienceMetrics,
    alive_connectivity_ratio,
    connectivity_metrics,
    connectivity_ratio,
    measure,
    path_survival,
)
from .sweep import (
    METRICS_MODES,
    SAMPLING_MODES,
    SWEEP_BACKENDS,
    PersistentSweepExecutor,
    SweepSummary,
    pooled_survivability_sweeps,
    survivability_sweep,
)

__all__ = [
    "FAULT_MODELS",
    "METRICS_MODES",
    "SAMPLING_MODES",
    "SWEEP_BACKENDS",
    "AdversarialFirstHopFaults",
    "BernoulliCouplerFaults",
    "DegradedNetwork",
    "FaultModel",
    "FaultScenario",
    "GroupBlockOutage",
    "ImportanceSampler",
    "PersistentSweepExecutor",
    "ResilienceMetrics",
    "StratifiedSampler",
    "SweepSummary",
    "UniformCouplerFaults",
    "UniformLinkFaults",
    "UniformProcessorFaults",
    "alive_connectivity_ratio",
    "connectivity_metrics",
    "connectivity_ratio",
    "coupler_endpoints",
    "degrade_network",
    "fault_model_keys",
    "make_fault_model",
    "measure",
    "path_survival",
    "pooled_survivability_sweeps",
    "scenarios",
    "survivability_sweep",
    "survival_estimate",
    "trial_seed",
    "wilson_interval",
]
