"""Adaptive and rare-event Monte-Carlo estimation for survivability sweeps.

Three estimator upgrades over the plain fixed-count sweep, all of them
exactly unbiased for the survival probability ``P(no surviving pair is
severed)`` and all preserving the sweep's byte-identity contract
(same request => same JSON at any worker count):

* **sequential stopping** (``ci_target=``) -- trials run in
  deterministic waves (:func:`wave_schedule`); after each wave the
  parent recomputes the survival confidence interval from the
  aggregate rows alone and stops once its half-width is at most the
  target.  Workers never vote: the stop decision is a pure function of
  the trial prefix, so worker count cannot change it.
* **stratified sampling** (``sampling="stratified"``) -- the fault
  *cardinality* (how many components die) is partitioned into strata
  (:func:`build_strata`); each trial's stratum is a pure function of
  its index (:class:`StratifiedSampler`), trials are allocated
  proportionally per wave (:func:`allocate_strata`), and the combined
  estimator reweights per-stratum means by exact stratum masses.
* **importance sampling** (``sampling="importance"``) -- cardinality
  is drawn from a defensive mixture proposal biased toward high fault
  counts (:class:`ImportanceSampler`); every draw is reweighted by the
  exact likelihood ratio ``pmf(k) / proposal(k)``, which the parent
  replays per index to aggregate.

Unbiasedness rests on one structural fact: every supported fault model
is *exchangeable within a cardinality* -- conditioned on ``k``
components dying, the dead set is uniform over ``k``-subsets.  The
samplers redistribute mass across cardinalities only and keep the
conditional subset draw identical to the target model's, so
reweighting by cardinality mass is exact, not asymptotic.  The
exact-enumeration oracle suite (``tests/test_estimator_oracle.py``)
pins this against ground truth computed by enumerating every fault
set on small machines.

The survival event scored here is the complement of the sweep's
``partitioned_fraction`` indicator: a trial survives when
``alive_connectivity >= 1`` (no *surviving* processor pair severed).
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass

from ..obs.metrics import REGISTRY
from ..obs.trace import span
from .faults import (
    BernoulliCouplerFaults,
    FaultModel,
    FaultScenario,
    UniformCouplerFaults,
    UniformProcessorFaults,
    trial_seed,
)

__all__ = [
    "SAMPLING_MODES",
    "ImportanceSampler",
    "StratifiedSampler",
    "allocate_strata",
    "build_strata",
    "cardinality_profile",
    "survival_estimate",
    "wave_schedule",
    "wilson_interval",
]

#: Registered trial-allocation strategies for the sweep's ``sampling=``.
SAMPLING_MODES = ("uniform", "stratified", "importance")

#: Two-sided 95% normal quantile, frozen so CI bytes never drift with
#: the platform's erf implementation.
Z95 = 1.959964

#: First adaptive wave is at least this many trials (before the cap).
_MIN_WAVE = 64

#: Smallest pmf mass a stratum may hold before it merges with its
#: neighbor (rare tails pool into one stratum instead of starving).
_STRATUM_MASS = 0.05

#: Defensive-mixture weight on the target pmf: the proposal is
#: ``alpha * pmf + (1 - alpha) * uniform``, bounding every likelihood
#: ratio by ``1 / alpha`` however aggressive the tail bias is.
_MIXTURE_ALPHA = 0.25

#: Importance-sampling CIs trust the sample variance only after this
#: many failure hits; below it a Wilson envelope on the (weighted) hit
#: rate guards against the zero-variance instant-stop pathology.
_MIN_HITS = 5

_ROUNDS_HELP = "Adaptive sweep waves executed"
_SAVED_HELP = "Trials saved by sequential stopping vs the requested cap"


def wilson_interval(successes: int, n: int, z: float = Z95) -> tuple[float, float]:
    """The Wilson score interval for a binomial proportion.

    Well-behaved at the boundaries (never collapses to zero width on
    0/n or n/n counts), which is exactly what sequential stopping
    needs: an empty-failure prefix keeps a positive half-width until
    the sample is genuinely large enough.

    >>> lo, hi = wilson_interval(0, 100)
    >>> 0.0 <= lo < hi < 0.1
    True
    """
    if n <= 0:
        return 0.0, 1.0
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2 * n)) / denom
    spread = (z / denom) * math.sqrt(p * (1 - p) / n + z2 / (4 * n * n))
    return max(0.0, center - spread), min(1.0, center + spread)


def wave_schedule(
    trials: int, *, strata: int = 1, ci_target: float | None = None
) -> tuple[int, ...]:
    """Deterministic trial-wave sizes for one sweep.

    Fixed mode (no ``ci_target``) is a single wave of every trial.
    Adaptive mode opens with ``max(64, 4 * strata)`` trials, then
    doubles the cumulative spend each wave (capped at 256 per wave so
    late stops do not overshoot the target by a whole doubling), and
    always sums to exactly ``trials`` -- the cap.  The schedule
    depends only on ``(trials, strata, ci_target is None)``, never on
    results or workers, which is what makes early stopping replayable.

    >>> wave_schedule(1000, ci_target=0.01)
    (64, 64, 128, 256, 256, 232)
    >>> sum(wave_schedule(1000, ci_target=0.01))
    1000
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if ci_target is None:
        return (trials,)
    first = min(trials, max(_MIN_WAVE, 4 * strata))
    waves = [first]
    spent = first
    while spent < trials:
        size = min(spent, 256, trials - spent)
        waves.append(size)
        spent += size
    return tuple(waves)


def rounds_spent(waves: tuple[int, ...], spent: int) -> int:
    """How many waves of ``waves`` produce ``spent`` trials."""
    ends: list[int] = []
    total = 0
    for size in waves:
        total += size
        ends.append(total)
    return min(bisect_right(ends, spent - 1) + 1, len(waves))


def allocate_strata(total: int, weights) -> list[int]:
    """Proportional integer allocation of ``total`` across ``weights``.

    Largest-remainder rounding (ties to the lowest index), then every
    positive-weight stratum is topped up to at least one trial while
    room allows, stealing from the largest allocation.  Deterministic,
    and the result always sums to exactly ``total``.

    >>> allocate_strata(10, [0.85, 0.1, 0.05])
    [8, 1, 1]
    >>> sum(allocate_strata(7, [0.99, 0.005, 0.005]))
    7
    """
    weights = list(weights)
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if not weights or any(w < 0 for w in weights):
        raise ValueError("weights must be a non-empty list of non-negatives")
    wsum = float(sum(weights))
    if wsum <= 0:
        raise ValueError("at least one weight must be positive")
    shares = [total * (w / wsum) for w in weights]
    counts = [math.floor(s) for s in shares]
    remainder = total - sum(counts)
    order = sorted(
        range(len(weights)), key=lambda h: (counts[h] - shares[h], h)
    )
    for h in order[:remainder]:
        counts[h] += 1
    positive = [h for h, w in enumerate(weights) if w > 0]
    if total >= len(positive):
        for h in positive:
            while counts[h] == 0:
                donor = max(
                    range(len(counts)), key=lambda i: (counts[i], -i)
                )
                if counts[donor] <= 1:
                    break
                counts[donor] -= 1
                counts[h] += 1
    return counts


# ----------------------------------------------------------------------
# Cardinality profiles: each supported model as (axis, size, pmf).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CardinalityProfile:
    """The exact fault-count distribution of one model on one machine.

    ``axis`` names which component population dies (``"coupler"`` or
    ``"processor"``), ``size`` is that population's size and ``pmf[k]``
    the probability that exactly ``k`` components die.  Conditioned on
    ``k``, every supported model kills a uniform ``k``-subset -- the
    exchangeability that makes stratified/importance reweighting exact.
    """

    axis: str
    size: int
    pmf: tuple[float, ...]

    def support(self) -> tuple[int, ...]:
        """Cardinalities with positive mass, ascending."""
        return tuple(k for k, w in enumerate(self.pmf) if w > 0)


def _binomial_pmf(m: int, p: float) -> tuple[float, ...]:
    """Exact Binomial(m, p) pmf via log-space terms (no scipy)."""
    if p <= 0.0:
        return (1.0,) + (0.0,) * m
    if p >= 1.0:
        return (0.0,) * m + (1.0,)
    logs = [
        math.lgamma(m + 1)
        - math.lgamma(k + 1)
        - math.lgamma(m - k + 1)
        + k * math.log(p)
        + (m - k) * math.log1p(-p)
        for k in range(m + 1)
    ]
    return tuple(math.exp(v) for v in logs)


def cardinality_profile(model: FaultModel, net) -> CardinalityProfile:
    """The :class:`CardinalityProfile` of ``model`` on ``net``.

    Supported models: :class:`UniformCouplerFaults` and
    :class:`UniformProcessorFaults` (degenerate pmf at their clamped
    intensity) and :class:`BernoulliCouplerFaults` (exact binomial).
    The type check is strict -- a subclass with its own ``sample_faults``
    would silently break the replayed-draw contract, so it is rejected
    instead.
    """
    kind = type(model)
    if kind is BernoulliCouplerFaults:
        m = net.num_couplers
        return CardinalityProfile(
            axis="coupler",
            size=m,
            pmf=_binomial_pmf(m, model.probability(net)),
        )
    if kind is UniformCouplerFaults:
        m = net.num_couplers
        k = min(model.faults, max(m - 1, 0))
        pmf = [0.0] * (m + 1)
        pmf[k] = 1.0
        return CardinalityProfile(axis="coupler", size=m, pmf=tuple(pmf))
    if kind is UniformProcessorFaults:
        n = net.num_processors
        k = min(model.faults, max(n - 2, 0))
        pmf = [0.0] * (n + 1)
        pmf[k] = 1.0
        return CardinalityProfile(axis="processor", size=n, pmf=tuple(pmf))
    raise ValueError(
        f"sampling modes other than 'uniform' need a fault model with a "
        f"known cardinality distribution (coupler, processor or "
        f"bernoulli); got {kind.__name__}"
    )


def build_strata(
    profile: CardinalityProfile, *, min_mass: float = _STRATUM_MASS
) -> tuple[tuple[int, int], ...]:
    """Contiguous cardinality ranges, each holding >= ``min_mass`` pmf.

    Walks the support in ascending order, closing a stratum as soon as
    it has accumulated ``min_mass``; a light tail merges into the last
    stratum instead of forming a starved one.  Stratum draws stay
    exact: within a range, ``k`` is drawn from the pmf restricted to
    the range, then a uniform ``k``-subset.

    >>> build_strata(CardinalityProfile("coupler", 3, (0.6, 0.3, 0.08, 0.02)))
    ((0, 0), (1, 1), (2, 3))
    """
    support = profile.support()
    if not support:
        raise ValueError("cardinality profile has empty support")
    strata: list[tuple[int, int]] = []
    lo = support[0]
    mass = 0.0
    for k in support:
        mass += profile.pmf[k]
        if mass >= min_mass:
            strata.append((lo, k))
            nxt = [j for j in support if j > k]
            lo = nxt[0] if nxt else -1
            mass = 0.0
    if mass > 0.0 and lo >= 0:
        if strata:
            strata[-1] = (strata[-1][0], support[-1])
        else:
            strata.append((lo, support[-1]))
    return tuple(strata)


def _range_mass(profile: CardinalityProfile, lo: int, hi: int) -> float:
    return sum(profile.pmf[lo : hi + 1])


def _draw_k_in_range(
    profile: CardinalityProfile, lo: int, hi: int, rng: random.Random
) -> int:
    """One cardinality from the pmf restricted to ``[lo, hi]``."""
    u = rng.random() * _range_mass(profile, lo, hi)
    acc = 0.0
    for k in range(lo, hi + 1):
        acc += profile.pmf[k]
        if u < acc:
            return k
    return hi


def proven_safe_cardinality(
    profile: CardinalityProfile, net, *, limit: int = 1
) -> int:
    """Largest ``k <= limit`` with EVERY size-``k`` fault set surviving.

    Verified by direct enumeration on the built network: the intact
    scenario first, then all ``size`` single-component scenarios.  The
    importance estimator treats proven cardinalities as contributing
    exactly zero failure mass -- without this, ruling out failures in
    the high-probability ``k <= 1`` buckets would cost as many trials
    as plain sampling, erasing the rare-event speedup.  Returns ``-1``
    if even the intact network is partitioned.  Cost is
    ``1 + size`` connectivity checks, paid once at prepare time.
    """
    from .degrade import degrade_network
    from .metrics import alive_connectivity_ratio

    def survives(members: frozenset[int]) -> bool:
        couplers = members if profile.axis == "coupler" else frozenset()
        processors = members if profile.axis == "processor" else frozenset()
        scenario = FaultScenario(
            spec="",
            model="safe-cardinality-proof",
            seed=0,
            couplers=couplers,
            processors=processors,
        )
        degraded = degrade_network(net, scenario)
        return alive_connectivity_ratio(degraded) >= 1.0

    if not survives(frozenset()):
        return -1
    if limit < 1:
        return 0
    for member in range(profile.size):
        if not survives(frozenset({member})):
            return 0
    return 1


def _subset_scenario(
    profile: CardinalityProfile, k: int, rng: random.Random
) -> tuple[set[int], set[int]]:
    """A uniform ``k``-subset of the profile's component axis."""
    dead = set(rng.sample(range(profile.size), k))
    if profile.axis == "processor":
        return set(), dead
    return dead, set()


# ----------------------------------------------------------------------
# Index-aware samplers: frozen wrappers the sweep plan ships to workers.
# ----------------------------------------------------------------------
class _IndexedSampler:
    """Shared surface of the stratified/importance wrappers.

    Wrappers stand in for the base :class:`FaultModel` inside a frozen
    sweep plan: same ``key``/``faults`` surface (summaries stay
    self-describing), but sampling needs the *trial index*, not just
    its seed -- the index selects the stratum / replays the proposal
    draw.  Both trial contexts detect ``sample_faults_at`` /
    ``scenario_at`` and pass the index through.
    """

    base: FaultModel
    profile: CardinalityProfile

    @property
    def key(self) -> str:
        return self.base.key

    @property
    def faults(self) -> int:
        return self.base.faults

    def max_faults(self, net):
        return self.base.max_faults(net)

    def sample_faults_at(
        self, net, rng: random.Random, index: int
    ) -> tuple[set[int], set[int]]:
        raise NotImplementedError

    def scenario_at(self, spec: str, net, seed: int, index: int) -> FaultScenario:
        """The deterministic scenario of trial ``index``."""
        couplers, processors = self.sample_faults_at(
            net, random.Random(trial_seed(seed, index)), index
        )
        return FaultScenario(
            spec=str(spec),
            model=self.key,
            seed=trial_seed(seed, index),
            couplers=frozenset(couplers),
            processors=frozenset(processors),
        )


@dataclass(frozen=True)
class StratifiedSampler(_IndexedSampler):
    """Cardinality-stratified replacement sampler for one sweep.

    ``schedule`` holds, per wave, the wave's start index and its
    per-stratum allocation; :meth:`stratum_of` is therefore a pure
    function of the trial index over the whole horizon, fixed at
    prepare time -- early stopping truncates the schedule, it never
    reshuffles it.
    """

    base: FaultModel
    profile: CardinalityProfile
    strata: tuple[tuple[int, int], ...]
    weights: tuple[float, ...]
    #: per wave: (start_index, per-stratum trial counts)
    schedule: tuple[tuple[int, tuple[int, ...]], ...]

    @classmethod
    def plan(
        cls,
        base: FaultModel,
        profile: CardinalityProfile,
        waves: tuple[int, ...],
    ) -> "StratifiedSampler":
        """Freeze strata and the full-horizon allocation schedule."""
        strata = build_strata(profile)
        weights = tuple(_range_mass(profile, lo, hi) for lo, hi in strata)
        schedule = []
        start = 0
        for size in waves:
            schedule.append((start, tuple(allocate_strata(size, weights))))
            start += size
        return cls(
            base=base,
            profile=profile,
            strata=strata,
            weights=weights,
            schedule=tuple(schedule),
        )

    def stratum_of(self, index: int) -> int:
        """The stratum trial ``index`` samples (pure in ``index``)."""
        starts = [start for start, _ in self.schedule]
        wave = bisect_right(starts, index) - 1
        start, counts = self.schedule[wave]
        offset = index - start
        for h, count in enumerate(counts):
            if offset < count:
                return h
            offset -= count
        raise IndexError(f"trial index {index} beyond the sweep horizon")

    def sample_faults_at(self, net, rng: random.Random, index: int):
        lo, hi = self.strata[self.stratum_of(index)]
        k = _draw_k_in_range(self.profile, lo, hi, rng)
        return _subset_scenario(self.profile, k, rng)


@dataclass(frozen=True)
class ImportanceSampler(_IndexedSampler):
    """Likelihood-ratio sampler biased toward high fault cardinality.

    The proposal over cardinalities is the defensive mixture
    ``alpha * pmf + (1 - alpha) * uniform(support range)``: the
    uniform component floods mass into the high-``k`` tail where rare
    partitions live, while the pmf component caps every weight at
    ``1 / alpha``.  Weights are replayed exactly from the trial seed
    (the ``k`` draw consumes the stream's first ``random()``), so the
    parent aggregates without shipping per-row side channels.
    """

    base: FaultModel
    profile: CardinalityProfile
    proposal: tuple[float, ...]
    alpha: float = _MIXTURE_ALPHA
    #: largest cardinality proven (by enumeration) to always survive;
    #: its pmf mass contributes zero failure and zero CI variance
    safe_k: int = 0

    @classmethod
    def plan(
        cls,
        base: FaultModel,
        profile: CardinalityProfile,
        *,
        alpha: float = _MIXTURE_ALPHA,
        safe_k: int = 0,
    ) -> "ImportanceSampler":
        support = profile.support()
        lo, hi = support[0], support[-1]
        width = hi - lo + 1
        proposal = tuple(
            alpha * w + ((1.0 - alpha) / width if lo <= k <= hi else 0.0)
            for k, w in enumerate(profile.pmf)
        )
        return cls(
            base=base,
            profile=profile,
            proposal=proposal,
            alpha=alpha,
            safe_k=safe_k,
        )

    def draw_k(self, rng: random.Random) -> int:
        """One proposal cardinality; consumes exactly one ``random()``."""
        u = rng.random()
        acc = 0.0
        last = 0
        for k, q in enumerate(self.proposal):
            if q <= 0.0:
                continue
            acc += q
            last = k
            if u < acc:
                return k
        return last

    def weight(self, k: int) -> float:
        """The exact likelihood ratio ``pmf(k) / proposal(k)``."""
        return self.profile.pmf[k] / self.proposal[k]

    def max_weight(self) -> float:
        """The largest likelihood ratio over the support."""
        return max(self.weight(k) for k in self.profile.support())

    def sample_faults_at(self, net, rng: random.Random, index: int):
        k = self.draw_k(rng)
        return _subset_scenario(self.profile, k, rng)


def make_sampler(
    model: FaultModel,
    net,
    *,
    sampling: str,
    trials: int,
    ci_target: float | None,
):
    """The index-aware sampler for ``sampling``, or ``None`` for uniform.

    A stratified plan needs its wave schedule frozen up front (the
    per-index stratum map covers the whole ``trials`` horizon), and
    the schedule in turn depends on the stratum count -- so the
    profile, strata and waves are all derived here, from the same
    arguments the sweep validated.
    """
    if sampling == "uniform":
        return None
    profile = cardinality_profile(model, net)
    if sampling == "stratified":
        strata = build_strata(profile)
        if trials < len(strata):
            raise ValueError(
                f"stratified sampling on this model needs at least "
                f"{len(strata)} trials (one per stratum), got {trials}"
            )
        waves = wave_schedule(
            trials, strata=len(strata), ci_target=ci_target
        )
        return StratifiedSampler.plan(model, profile, waves)
    if sampling == "importance":
        return ImportanceSampler.plan(
            model, profile, safe_k=proven_safe_cardinality(profile, net)
        )
    known = ", ".join(SAMPLING_MODES)
    raise ValueError(f"unknown sampling mode {sampling!r}; known: {known}")


# ----------------------------------------------------------------------
# Estimators: survival point estimate + CI from the aggregate rows.
# ----------------------------------------------------------------------
def _failed(row) -> bool:
    """The partition indicator (the complement of survival)."""
    return float(row["alive_connectivity"]) < 1.0


def survival_estimate(model, seed: int, rows: list[dict]) -> dict[str, float]:
    """``{"survival", "ci_low", "ci_high", "ci_half_width"}`` of a prefix.

    Dispatches on the plan's model: a :class:`StratifiedSampler` gets
    the mass-reweighted stratum estimator, an
    :class:`ImportanceSampler` the likelihood-ratio estimator, and
    anything else the plain proportion with a Wilson interval.  Pure
    in ``(model, seed, rows)`` -- this is the function the sequential
    stopper evaluates between waves, so it must not read any state a
    worker count could perturb.
    """
    n = len(rows)
    if isinstance(model, StratifiedSampler):
        return _stratified_estimate(model, rows)
    if isinstance(model, ImportanceSampler):
        return _importance_estimate(model, seed, rows)
    failures = sum(1 for r in rows if _failed(r))
    lo, hi = wilson_interval(n - failures, n)
    return _pack(survival=(n - failures) / n if n else 0.0, lo=lo, hi=hi)


def _pack(
    *, survival: float, lo: float, hi: float, half: float | None = None
) -> dict[str, float]:
    """The estimate record; ``half`` is the UNCLAMPED half-width.

    Normal-approximation intervals get truncated to ``[0, 1]``, but
    the sequential stopper must compare the estimator's actual
    precision against ``ci_target`` -- judging by the truncated width
    would declare victory spuriously whenever the estimate sits near a
    boundary.  Wilson callers omit ``half``: their interval already
    lives inside ``[0, 1]``.
    """
    return {
        "survival": survival,
        "ci_low": lo,
        "ci_high": hi,
        "ci_half_width": (hi - lo) / 2.0 if half is None else half,
    }


def _stratified_estimate(
    sampler: StratifiedSampler, rows: list[dict]
) -> dict[str, float]:
    """Mass-weighted stratum means, normal CI with smoothed variances.

    The point estimate is the exactly unbiased
    ``sum_h W_h * x_h / n_h``; the variance uses the Agresti-Coull
    style smoothed proportion ``(x_h + 0.5) / (n_h + 1)`` per stratum
    so an all-survived stratum contributes positive width instead of
    certainty.
    """
    counts = [0] * len(sampler.strata)
    fails = [0] * len(sampler.strata)
    for index, row in enumerate(rows):
        h = sampler.stratum_of(index)
        counts[h] += 1
        fails[h] += 1 if _failed(row) else 0
    survival = 0.0
    variance = 0.0
    for h, weight in enumerate(sampler.weights):
        if counts[h] == 0:
            # not yet sampled: count its whole mass as uncertain
            variance += weight * weight
            continue
        p_fail = fails[h] / counts[h]
        survival += weight * (1.0 - p_fail)
        smoothed = (fails[h] + 0.5) / (counts[h] + 1)
        variance += weight * weight * smoothed * (1 - smoothed) / counts[h]
    half = Z95 * math.sqrt(variance)
    return _pack(
        survival=survival,
        lo=max(0.0, survival - half),
        hi=min(1.0, survival + half),
        half=half,
    )


def _importance_estimate(
    sampler: ImportanceSampler, seed: int, rows: list[dict]
) -> dict[str, float]:
    """Likelihood-ratio failure mean; CI floored per cardinality.

    Each trial's weight is replayed from its seed (the proposal draw
    is the stream's first ``random()``), the failure probability is
    the weighted mean and survival its complement.  The naive sample
    variance of the weighted terms is a trap here: the dominant
    variance contribution comes from moderate-cardinality failures
    that are *rare under the proposal*, and until one has been drawn
    the sample variance is blind to them -- a sequential stopper
    trusting it would stop after one wave with a wildly overconfident
    interval.  So the half-width is floored by the post-stratified
    variance over cardinalities: per ``k`` beyond the proven-safe
    range, the WORST conditional variance consistent with that
    bucket's own Wilson interval on ``(x_k, n_k)``, weighted by
    ``pmf(k)^2 / n_k`` (an unsampled ``k`` contributes its full
    squared mass) -- a point estimate would again go blind while a
    bucket's observed failure count is still zero.  Cardinalities
    ``k <= safe_k`` were proven surviving by enumeration at prepare
    time and contribute nothing.  A Wilson envelope on the raw hit
    rate scaled by the largest weight guards the first few waves
    before any failure is seen.
    """
    n = len(rows)
    if n == 0:
        return _pack(survival=0.0, lo=0.0, hi=1.0)
    terms = []
    hits = 0
    by_k: dict[int, list[int]] = {}
    for index, row in enumerate(rows):
        k = sampler.draw_k(random.Random(trial_seed(seed, index)))
        failed = _failed(row)
        counts = by_k.setdefault(k, [0, 0])
        counts[0] += 1
        counts[1] += 1 if failed else 0
        if failed:
            terms.append(sampler.weight(k))
            hits += 1
        else:
            terms.append(0.0)
    mean_fail = sum(terms) / n
    if n > 1:
        var = sum((t - mean_fail) ** 2 for t in terms) / (n - 1)
        half = Z95 * math.sqrt(var / n)
    else:
        half = 1.0
    pmf = sampler.profile.pmf
    var_floor = 0.0
    for k in sampler.profile.support():
        if k <= sampler.safe_k:
            continue
        n_k, fails_k = by_k.get(k, (0, 0))
        if n_k == 0:
            var_floor += pmf[k] * pmf[k]
            continue
        lo_k, hi_k = wilson_interval(fails_k, n_k)
        worst = min(max(0.5, lo_k), hi_k)
        var_floor += pmf[k] * pmf[k] * worst * (1.0 - worst) / n_k
    half = max(half, Z95 * math.sqrt(var_floor))
    if hits < _MIN_HITS:
        _, hit_hi = wilson_interval(hits, n)
        envelope = sampler.max_weight() * hit_hi
        half = max(half, envelope - mean_fail)
    survival = 1.0 - mean_fail
    return _pack(
        survival=survival,
        lo=max(0.0, survival - half),
        hi=min(1.0, survival + half),
        half=half,
    )


# ----------------------------------------------------------------------
# The sequential controller: wave, merge, evaluate, stop/continue.
# ----------------------------------------------------------------------
def run_adaptive(
    prepared,
    executor,
    *,
    arrays=None,
    extra_stop=None,
) -> list[dict]:
    """All rows of one adaptive sweep, stopping as soon as the CI allows.

    ``prepared`` is a validated ``_PreparedSweep`` with ``ci_target``
    set; ``executor`` a ``PersistentSweepExecutor`` (inline or
    parallel -- rows and the stop decision are identical either way,
    because waves are index ranges and the decision reads only the
    aggregate prefix).  ``extra_stop``, if given, sees each wave's
    estimate dict and may end the sweep early -- the design search
    uses it to discard candidates whose CI can no longer overlap the
    leader's.  Emits one ``sweep.adaptive_round`` span per wave and
    maintains ``repro_sweep_adaptive_rounds_total`` /
    ``repro_sweep_trials_saved_total``.
    """
    plan = prepared.plan
    labels = {"backend": plan.backend}
    waves = wave_schedule(
        prepared.trials,
        strata=num_strata(plan.model),
        ci_target=prepared.ci_target,
    )
    rows: list[dict] = []
    spent = 0
    for size in waves:
        with span(
            "sweep.adaptive_round",
            spec=plan.canonical,
            start=spent,
            trials=size,
            backend=plan.backend,
        ):
            rows.extend(
                executor.run_range(prepared, spent, spent + size, arrays=arrays)
            )
        spent += size
        REGISTRY.counter(
            "repro_sweep_adaptive_rounds_total", _ROUNDS_HELP, labels
        ).inc()
        estimate = survival_estimate(plan.model, plan.seed, rows)
        if estimate["ci_half_width"] <= prepared.ci_target:
            break
        if extra_stop is not None and extra_stop(estimate):
            break
    saved = prepared.trials - spent
    if saved > 0:
        REGISTRY.counter(
            "repro_sweep_trials_saved_total", _SAVED_HELP, labels
        ).inc(saved)
    return rows


def num_strata(model) -> int:
    """Stratum count of a plan's model (1 for anything unstratified)."""
    if isinstance(model, StratifiedSampler):
        return len(model.strata)
    return 1


def adaptive_summary_block(prepared, rows: list[dict]) -> dict | None:
    """The summary's ``"adaptive"`` dict, or ``None`` for plain sweeps.

    Present exactly when the request opted into adaptivity
    (``ci_target`` set or a non-uniform ``sampling``); fixed uniform
    sweeps return ``None`` so their JSON stays byte-identical to the
    pre-adaptive engine.
    """
    if prepared.ci_target is None and prepared.sampling == "uniform":
        return None
    plan = prepared.plan
    estimate = survival_estimate(plan.model, plan.seed, rows)
    waves = wave_schedule(
        prepared.trials,
        strata=num_strata(plan.model),
        ci_target=prepared.ci_target,
    )
    return {
        "sampling": prepared.sampling,
        "ci_target": prepared.ci_target,
        "trials_requested": prepared.trials,
        "trials_spent": len(rows),
        "rounds": rounds_spent(waves, len(rows)),
        "survival": round(estimate["survival"], 6),
        "ci_low": round(estimate["ci_low"], 6),
        "ci_high": round(estimate["ci_high"], 6),
        "ci_half_width": round(estimate["ci_half_width"], 6),
    }
