"""Parallel Monte-Carlo survivability sweeps.

Fan ``trials`` independent fault scenarios over ``multiprocessing``
workers and aggregate the per-trial
:class:`~repro.resilience.metrics.ResilienceMetrics` rows into quantile
summaries.  Determinism is a hard requirement here: per-trial seeds
come from :func:`~repro.resilience.faults.trial_seed` (a function of
the sweep seed and the trial index only), rows are re-ordered by trial
index, and quantiles use exact nearest-rank selection -- so the same
seed produces **byte-identical** JSON for any worker count.

Two executors share that contract:

* the **batched** backend (default) builds one network + family
  context per process -- via a ``multiprocessing`` pool *initializer*,
  so workers never rebuild the topology per trial -- shares the intact
  baseline across all trials, and ships workers compact trial-index
  ranges instead of per-trial argument tuples.  Its ``metrics`` modes
  short-circuit scoring: ``"connectivity"`` skips both the per-pair
  ``fault_route`` scan and the slotted simulation (the design-search
  fast path), ``"paths"`` keeps route quality but skips simulation,
  ``"full"`` computes everything;
* the **legacy** backend is the original one-task-per-trial executor
  that re-parses and rebuilds the network inside every trial.  It is
  kept as the regression reference: for the same seed the batched
  backend's ``full`` mode must produce byte-identical JSON.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass, field

from .degrade import DegradedNetwork
from .faults import FaultModel, make_fault_model, trial_seed
from .metrics import connectivity_metrics, measure, path_survival

__all__ = ["SweepSummary", "survivability_sweep", "METRICS_MODES"]

#: Per-trial metric keys that get quantile summaries (``full`` mode).
_SUMMARIZED = (
    "connectivity",
    "alive_connectivity",
    "reachable_groups",
    "max_path_length",
    "mean_stretch",
    "within_bound",
    "delivery_ratio",
    "latency_inflation",
    "mean_latency",
    "dropped",
    "slots",
)

#: Scoring depth -> the per-trial metric keys it produces.
METRICS_MODES: dict[str, tuple[str, ...]] = {
    "connectivity": (
        "connectivity",
        "alive_connectivity",
        "reachable_groups",
    ),
    "paths": (
        "connectivity",
        "alive_connectivity",
        "reachable_groups",
        "max_path_length",
        "mean_stretch",
        "within_bound",
    ),
    "full": _SUMMARIZED,
}

_BACKENDS = ("batched", "legacy")


@dataclass(frozen=True)
class SweepSummary:
    """Aggregated result of one survivability sweep."""

    spec: str
    model: str
    faults: int
    trials: int
    seed: int
    workload: str
    messages: int
    bound: int
    #: metric -> {"mean": .., "p05": .., "p50": .., "p95": .., "min": .., "max": ..}
    quantiles: dict[str, dict[str, float]] = field(default_factory=dict)
    #: fraction of trials in which every routed pair met the bound
    #: (``None`` when path metrics were not computed)
    within_bound_fraction: float | None = 1.0
    #: fraction of trials in which some surviving pair was severed
    partitioned_fraction: float = 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view (stable key order via ``to_json``)."""
        return {
            "spec": self.spec,
            "model": self.model,
            "faults": self.faults,
            "trials": self.trials,
            "seed": self.seed,
            "workload": self.workload,
            "messages": self.messages,
            "bound": self.bound,
            "quantiles": self.quantiles,
            "within_bound_fraction": self.within_bound_fraction,
            "partitioned_fraction": self.partitioned_fraction,
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent, rounded floats.

        The byte-identity contract of the sweep: same spec/model/seed
        gives the same string regardless of worker count or backend.
        """
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def formatted(self) -> str:
        """Human-readable quantile table."""
        within = (
            "path metrics not computed"
            if self.within_bound_fraction is None
            else f"{100 * self.within_bound_fraction:.1f}% of trials within"
        )
        lines = [
            f"{self.spec} under {self.faults} {self.model} fault(s): "
            f"{self.trials} trials, seed {self.seed}, "
            f"workload {self.workload} x{self.messages}",
            f"  path-length bound diameter+2 = {self.bound}: "
            f"{within}; "
            f"{100 * self.partitioned_fraction:.1f}% partitioned",
            f"  {'metric':<18} {'mean':>9} {'p05':>9} {'p50':>9} {'p95':>9}",
        ]
        for key in _SUMMARIZED:
            q = self.quantiles.get(key)
            if q is None:
                continue
            lines.append(
                f"  {key:<18} {q['mean']:>9.4f} {q['p05']:>9.4f} "
                f"{q['p50']:>9.4f} {q['p95']:>9.4f}"
            )
        return "\n".join(lines)


def _nearest_rank(sorted_values: list[float], q: float) -> float:
    """Exact nearest-rank quantile (no interpolation, no float fuzz).

    ``q`` is interpreted in exact hundredths so the rank computation
    is pure integer arithmetic: ``rank = ceil(pct * n / 100)``.
    """
    if not sorted_values:
        return 0.0
    pct = round(q * 100)
    rank = max(1, -(-pct * len(sorted_values) // 100))
    return sorted_values[min(rank, len(sorted_values)) - 1]


# ----------------------------------------------------------------------
# Legacy executor (the PR 2 path): one task per trial, rebuild inside.
# ----------------------------------------------------------------------
def _run_trial(task) -> dict[str, object]:
    """One Monte-Carlo trial; top-level so it pickles to workers."""
    (
        canonical,
        model,
        tseed,
        workload,
        messages,
        wseed,
        bound,
        max_slots,
        baseline_mean_latency,
    ) = task
    from ..core.spec import NetworkSpec

    net = NetworkSpec.parse(canonical).build()
    scenario = model.scenario(canonical, net, tseed)
    degraded = DegradedNetwork(net, scenario)
    row = measure(
        degraded,
        workload=workload,
        messages=messages,
        seed=wseed,
        bound=bound,
        max_slots=max_slots,
        baseline_mean_latency=baseline_mean_latency,
    )
    return row.as_dict()


# ----------------------------------------------------------------------
# Batched executor: one context per process, trial-index ranges only.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _SweepPlan:
    """Everything a trial needs, frozen once and shipped to workers."""

    canonical: str
    model: FaultModel
    seed: int
    workload: str
    messages: int
    bound: int
    max_slots: int
    baseline_mean_latency: float | None
    metrics: str


class _TrialContext:
    """Per-process trial runner over one shared built network.

    Workers construct this exactly once (pool initializer), so the
    spec is parsed and the topology built per *process*, not per
    trial -- the frozen network, its family descriptor and the plan
    are shared by every trial the process executes.
    """

    def __init__(self, plan: _SweepPlan, net=None, family=None) -> None:
        from ..core.registry import get_family
        from ..core.spec import NetworkSpec

        self.plan = plan
        parsed = NetworkSpec.parse(plan.canonical)
        self.net = net if net is not None else parsed.build()
        self.family = family if family is not None else get_family(parsed.family)

    def run_trial(self, index: int) -> dict[str, object]:
        """The metrics row of trial ``index`` (scored per the plan's mode)."""
        plan = self.plan
        scenario = plan.model.scenario(
            plan.canonical, self.net, trial_seed(plan.seed, index)
        )
        degraded = DegradedNetwork(self.net, scenario, family=self.family)
        if plan.metrics == "full":
            return measure(
                degraded,
                workload=plan.workload,
                messages=plan.messages,
                seed=plan.seed,
                bound=plan.bound,
                max_slots=plan.max_slots,
                baseline_mean_latency=plan.baseline_mean_latency,
            ).as_dict()
        # paths mode takes reachable_groups from path_survival (the
        # *routed* fraction) instead of the BFS pass, so skip the
        # redundant reachability loop there
        row: dict[str, object] = connectivity_metrics(
            degraded, with_reachable=plan.metrics == "connectivity"
        )
        if plan.metrics == "paths":
            reachable, max_len, stretch, within = path_survival(
                degraded, plan.bound
            )
            row["reachable_groups"] = reachable
            row["max_path_length"] = max_len
            row["mean_stretch"] = stretch
            row["within_bound"] = within
        return row


_WORKER_CTX: _TrialContext | None = None


def _init_batched_worker(plan: _SweepPlan) -> None:
    """Pool initializer: build the shared trial context once per process."""
    global _WORKER_CTX
    _WORKER_CTX = _TrialContext(plan)


def _run_batched_chunk(index_range: tuple[int, int]) -> list[dict[str, object]]:
    """Run a contiguous range of trials on the process-local context."""
    assert _WORKER_CTX is not None, "batched worker used before initialization"
    start, stop = index_range
    return [_WORKER_CTX.run_trial(i) for i in range(start, stop)]


def _index_chunks(trials: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` trial ranges, ~4 chunks per worker."""
    chunk = max(1, trials // (workers * 4))
    return [(lo, min(lo + chunk, trials)) for lo in range(0, trials, chunk)]


def survivability_sweep(
    spec,
    model: FaultModel | str = "coupler",
    *,
    faults: int | None = None,
    trials: int = 100,
    seed: int = 0,
    workers: int | None = None,
    workload: str = "uniform",
    messages: int = 60,
    bound: int | None = None,
    max_slots: int = 100_000,
    metrics: str = "full",
    backend: str = "batched",
    _net=None,
) -> SweepSummary:
    """Monte-Carlo survivability of ``spec`` under ``model`` faults.

    ``model`` is a :class:`FaultModel` instance or a registered key
    (``"coupler"``, ``"processor"``, ``"link"``, ``"adversarial"``,
    ``"group"``); string keys get intensity ``faults`` (default 1).
    Passing ``faults`` alongside a :class:`FaultModel` instance is an
    error -- the instance already carries its intensity.  ``workers``
    counts ``multiprocessing`` processes (``None``/``0``/``1`` runs
    inline); the aggregate is identical for every worker count.

    ``metrics`` selects scoring depth: ``"full"`` (everything,
    including the degraded slotted simulation), ``"paths"``
    (connectivity + route quality, no simulation) or
    ``"connectivity"`` (surviving-base reachability only -- the
    design-search fast path).  ``backend`` selects the executor:
    ``"batched"`` (default; shared built network per process) or
    ``"legacy"`` (the original rebuild-per-trial path, ``full``
    metrics only).  Both backends produce byte-identical JSON for the
    same seed in ``full`` mode.  ``_net`` is internal: callers that
    already built the spec's network (the design search evaluates
    shape filters on it first) pass it to skip the rebuild; it MUST
    be the machine ``spec`` names.

    >>> s = survivability_sweep("pops(2,2)", "coupler", trials=4, seed=1,
    ...                         messages=8)
    >>> s.trials
    4
    >>> c = survivability_sweep("pops(2,2)", "coupler", trials=4, seed=1,
    ...                         metrics="connectivity")
    >>> sorted(c.quantiles)
    ['alive_connectivity', 'connectivity', 'reachable_groups']
    """
    from ..core.spec import NetworkSpec
    from ..core.workloads import resolve_workload
    from ..simulation.network_sim import run_traffic

    parsed = NetworkSpec.parse(spec)
    if isinstance(model, str):
        model = make_fault_model(model, 1 if faults is None else faults)
    elif faults is not None:
        raise ValueError(
            "faults applies to string model keys; a FaultModel instance "
            "already carries its intensity"
        )
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if metrics not in METRICS_MODES:
        known = ", ".join(sorted(METRICS_MODES))
        raise ValueError(f"unknown metrics mode {metrics!r}; known: {known}")
    if backend not in _BACKENDS:
        known = ", ".join(_BACKENDS)
        raise ValueError(f"unknown sweep backend {backend!r}; known: {known}")
    if backend == "legacy" and metrics != "full":
        raise ValueError(
            "the legacy backend only supports metrics='full'; "
            "connectivity/paths short-circuits need backend='batched'"
        )
    net = parsed.build() if _net is None else _net
    resolved_bound = net.diameter + 2 if bound is None else bound
    canonical = parsed.canonical()
    simulate = metrics == "full"
    if simulate:
        # The intact baseline depends only on (workload, messages, seed):
        # run it once here instead of once per trial.
        from ..core.registry import get_family

        traffic = resolve_workload(workload, net, messages=messages, seed=seed)
        baseline = run_traffic(
            get_family(parsed.family).simulator(net), traffic, max_slots=max_slots
        )
        baseline_mean_latency = baseline.mean_latency
    else:
        baseline_mean_latency = None

    if backend == "legacy":
        tasks = [
            (
                canonical,
                model,
                trial_seed(seed, i),
                workload,
                messages,
                seed,
                resolved_bound,
                max_slots,
                baseline_mean_latency,
            )
            for i in range(trials)
        ]
        if workers is not None and workers > 1:
            with multiprocessing.Pool(processes=workers) as pool:
                rows = pool.map(
                    _run_trial, tasks, chunksize=max(1, trials // (workers * 4))
                )
        else:
            rows = [_run_trial(t) for t in tasks]
    else:
        plan = _SweepPlan(
            canonical=canonical,
            model=model,
            seed=seed,
            workload=workload,
            messages=messages,
            bound=resolved_bound,
            max_slots=max_slots,
            baseline_mean_latency=baseline_mean_latency,
            metrics=metrics,
        )
        if workers is not None and workers > 1:
            with multiprocessing.Pool(
                processes=workers,
                initializer=_init_batched_worker,
                initargs=(plan,),
            ) as pool:
                rows = [
                    row
                    for chunk in pool.map(
                        _run_batched_chunk, _index_chunks(trials, workers)
                    )
                    for row in chunk
                ]
        else:
            ctx = _TrialContext(plan, net=net)
            rows = [ctx.run_trial(i) for i in range(trials)]

    summarized = METRICS_MODES[metrics]
    quantiles: dict[str, dict[str, float]] = {}
    for key in summarized:
        values = sorted(float(r[key]) for r in rows)
        quantiles[key] = {
            "mean": round(sum(values) / len(values), 6),
            "p05": round(_nearest_rank(values, 0.05), 6),
            "p50": round(_nearest_rank(values, 0.50), 6),
            "p95": round(_nearest_rank(values, 0.95), 6),
            "min": round(values[0], 6),
            "max": round(values[-1], 6),
        }
    if "within_bound" in summarized:
        within_full = sum(1 for r in rows if float(r["within_bound"]) >= 1.0)
        within_bound_fraction = round(within_full / trials, 6)
    else:
        within_bound_fraction = None
    # partitioned == some *surviving* pair severed: dead endpoints are a
    # casualty count, not a partition (alive_connectivity excludes them)
    partitioned = sum(
        1 for r in rows if float(r["alive_connectivity"]) < 1.0
    )
    return SweepSummary(
        spec=canonical,
        model=model.key,
        faults=model.faults,
        trials=trials,
        seed=seed,
        workload=workload,
        messages=messages if simulate else 0,
        bound=resolved_bound,
        quantiles=quantiles,
        within_bound_fraction=within_bound_fraction,
        partitioned_fraction=round(partitioned / trials, 6),
    )
