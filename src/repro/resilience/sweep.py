"""Parallel Monte-Carlo survivability sweeps.

Fan ``trials`` independent fault scenarios over ``multiprocessing``
workers and aggregate the per-trial
:class:`~repro.resilience.metrics.ResilienceMetrics` rows into quantile
summaries.  Determinism is a hard requirement here: per-trial seeds
come from :func:`~repro.resilience.faults.trial_seed` (a function of
the sweep seed and the trial index only), rows are re-ordered by trial
index, and quantiles use exact nearest-rank selection -- so the same
seed produces **byte-identical** JSON for any worker count.

Three executors share that contract:

* the **batched** backend (default) builds one network + family
  context per process -- via a ``multiprocessing`` pool *initializer*,
  so workers never rebuild the topology per trial -- shares the intact
  baseline across all trials, and ships workers compact trial-index
  ranges instead of per-trial argument tuples.  Its ``metrics`` modes
  short-circuit scoring: ``"connectivity"`` skips both the per-pair
  ``fault_route`` scan and the slotted simulation (the design-search
  fast path), ``"paths"`` keeps route quality but skips simulation,
  ``"full"`` computes everything;
* the **vectorized** backend (``metrics="connectivity"`` and
  ``"paths"``) never instantiates a
  :class:`~repro.resilience.degrade.DegradedNetwork` at
  all: the built network's topology is exported once into flat numpy
  arrays (CSR coupler->processor incidence, coupler endpoint pairs,
  processor->group map), fault masks for whole trial *batches* are
  drawn as boolean arrays -- seeded by the same SHA-256 per-trial
  scheme, so every draw matches the batched backend bit for bit -- and
  connectivity metrics come from a batched reachability closure over
  the masked group adjacency instead of per-trial Python BFS.
  ``"paths"`` mode swaps the closure for a level-synchronous
  boolean-matmul BFS whose frontier expansions yield per-pair
  *distances*, scoring route quality (``max_path_length`` /
  ``mean_stretch`` / ``within_bound``) for whole batches; it is
  byte-identical to the batched ``fault_route`` scan for every family
  whose hook is the generic BFS fallback, and families with structured
  hooks are downgraded to ``batched`` with a recorded reason (see
  :func:`_prepare_sweep`) rather than ever silently diverging.  With
  ``workers`` the topology arrays live in
  :mod:`multiprocessing.shared_memory`, attached (not copied) by every
  worker.  This is the 10^5-10^6-trial path;
* the **legacy** backend is the original one-task-per-trial executor
  that re-parses and rebuilds the network inside every trial.  It is
  kept as the regression reference: for the same seed the batched
  backend's ``full`` mode must produce byte-identical JSON.

:func:`pooled_survivability_sweeps` runs *many* sweeps' trial batches
on one shared worker pool (the design search's
``parallelism="candidates"`` mode), returning summaries byte-identical
to per-sweep execution.

Pool *ownership* lives in executors, not in the sweep functions: the
default (one-shot) path spawns and tears down a pool per call, while a
:class:`PersistentSweepExecutor` -- what
:class:`repro.core.session.Session` injects -- keeps one lazily-started
pool alive across calls, re-initializing each worker's trial context
only when the sweep plan changes.  Both produce byte-identical rows
for the same plan and worker count.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import random
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from multiprocessing import shared_memory

import numpy as np

from ..obs.metrics import REGISTRY, reset_worker_registry, worker_registry
from ..obs.trace import add_complete_event, now_us, span
from .adaptive import (
    SAMPLING_MODES,
    adaptive_summary_block,
    make_sampler,
    run_adaptive,
)
from .degrade import DegradedNetwork
from .faults import FaultModel, make_fault_model, trial_seed
from .metrics import connectivity_metrics, measure, path_survival

__all__ = [
    "SweepSummary",
    "PersistentSweepExecutor",
    "survivability_sweep",
    "pooled_survivability_sweeps",
    "METRICS_MODES",
    "SAMPLING_MODES",
    "SWEEP_BACKENDS",
]

#: Per-trial metric keys that get quantile summaries (``full`` mode).
_SUMMARIZED = (
    "connectivity",
    "alive_connectivity",
    "reachable_groups",
    "max_path_length",
    "mean_stretch",
    "within_bound",
    "delivery_ratio",
    "latency_inflation",
    "mean_latency",
    "dropped",
    "slots",
)

#: Scoring depth -> the per-trial metric keys it produces.
METRICS_MODES: dict[str, tuple[str, ...]] = {
    "connectivity": (
        "connectivity",
        "alive_connectivity",
        "reachable_groups",
    ),
    "paths": (
        "connectivity",
        "alive_connectivity",
        "reachable_groups",
        "max_path_length",
        "mean_stretch",
        "within_bound",
    ),
    "full": _SUMMARIZED,
}

#: Registered trial executors (see the module docstring).
SWEEP_BACKENDS = ("batched", "vectorized", "legacy")

#: Most trials the vectorized backend scores per numpy batch; the
#: effective batch also shrinks with the group count (see
#: :data:`_VECTOR_CELL_BUDGET`) so the (batch, groups, groups) working
#: set stays bounded.  Batch size never changes results.
_VECTOR_BATCH = 4096

#: Cap on cells per vectorized batch (~32 MB of int64), applied to the
#: widest per-trial axis -- ``groups^2`` (reachability tensors),
#: ``num_processors`` (fault masks) and the coupler incidence nnz (the
#: source/target gathers) -- so machines that are large in *any*
#: dimension get smaller batches instead of multi-GB temporaries.
_VECTOR_CELL_BUDGET = 4_000_000


@dataclass(frozen=True)
class SweepSummary:
    """Aggregated result of one survivability sweep."""

    spec: str
    model: str
    faults: int
    trials: int
    seed: int
    workload: str
    messages: int
    bound: int
    #: metric -> {"mean": .., "p05": .., "p50": .., "p95": .., "min": .., "max": ..}
    quantiles: dict[str, dict[str, float]] = field(default_factory=dict)
    #: fraction of trials in which every routed pair met the bound
    #: (``None`` when path metrics were not computed)
    within_bound_fraction: float | None = 1.0
    #: fraction of trials in which some surviving pair was severed
    partitioned_fraction: float = 0.0
    #: the backend that actually executed the trials.  Deliberately NOT
    #: part of :meth:`as_dict`/:meth:`to_json`: the byte-identity
    #: contract says equal requests produce equal JSON across backends.
    backend: str = "batched"
    #: why the executed backend differs from the requested one
    #: (``None`` when it does not) -- the visible record of a
    #: vectorized->batched ``paths`` downgrade for structured-routing
    #: families.  Also excluded from the JSON.
    downgrade_reason: str | None = None
    #: the adaptive/estimator record (sampling mode, trials spent vs
    #: requested, survival estimate with its confidence interval) --
    #: present exactly when the request opted in via ``ci_target=`` or
    #: a non-uniform ``sampling=``, and absent from the JSON otherwise
    #: so plain fixed-trial sweeps keep their pre-adaptive bytes.
    adaptive: dict | None = None

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view (stable key order via ``to_json``)."""
        payload: dict[str, object] = {
            "spec": self.spec,
            "model": self.model,
            "faults": self.faults,
            "trials": self.trials,
            "seed": self.seed,
            "workload": self.workload,
            "messages": self.messages,
            "bound": self.bound,
            "quantiles": self.quantiles,
            "within_bound_fraction": self.within_bound_fraction,
            "partitioned_fraction": self.partitioned_fraction,
        }
        if self.adaptive is not None:
            payload["adaptive"] = self.adaptive
        return payload

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent, rounded floats.

        The byte-identity contract of the sweep: same spec/model/seed
        gives the same string regardless of worker count or backend.
        """
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def formatted(self) -> str:
        """Human-readable quantile table."""
        within = (
            "path metrics not computed"
            if self.within_bound_fraction is None
            else f"{100 * self.within_bound_fraction:.1f}% of trials within"
        )
        lines = [
            f"{self.spec} under {self.faults} {self.model} fault(s): "
            f"{self.trials} trials, seed {self.seed}, "
            f"workload {self.workload} x{self.messages}",
            f"  path-length bound diameter+2 = {self.bound}: "
            f"{within}; "
            f"{100 * self.partitioned_fraction:.1f}% partitioned",
            f"  {'metric':<18} {'mean':>9} {'p05':>9} {'p50':>9} {'p95':>9}",
        ]
        for key in _SUMMARIZED:
            q = self.quantiles.get(key)
            if q is None:
                continue
            lines.append(
                f"  {key:<18} {q['mean']:>9.4f} {q['p05']:>9.4f} "
                f"{q['p50']:>9.4f} {q['p95']:>9.4f}"
            )
        if self.adaptive is not None:
            a = self.adaptive
            target = (
                "no CI target"
                if a["ci_target"] is None
                else f"CI target +/-{a['ci_target']}"
            )
            lines.append(
                f"  {a['sampling']} sampling, {target}: survival "
                f"{a['survival']:.6f} in [{a['ci_low']:.6f}, "
                f"{a['ci_high']:.6f}], {a['trials_spent']}/"
                f"{a['trials_requested']} trials over {a['rounds']} round(s)"
            )
        if self.downgrade_reason is not None:
            lines.append(f"  note: {self.downgrade_reason}")
        return "\n".join(lines)


def _nearest_rank(sorted_values: list[float], q: float) -> float:
    """Exact nearest-rank quantile (no interpolation, no float fuzz).

    ``q`` is interpreted in exact hundredths so the rank computation
    is pure integer arithmetic: ``rank = ceil(pct * n / 100)``.
    """
    if not sorted_values:
        return 0.0
    pct = round(q * 100)
    rank = max(1, -(-pct * len(sorted_values) // 100))
    return sorted_values[min(rank, len(sorted_values)) - 1]


# ----------------------------------------------------------------------
# Legacy executor (the PR 2 path): one task per trial, rebuild inside.
# ----------------------------------------------------------------------
def _run_trial(task) -> dict[str, object]:
    """One Monte-Carlo trial; top-level so it pickles to workers."""
    (
        canonical,
        model,
        tseed,
        workload,
        messages,
        wseed,
        bound,
        max_slots,
        baseline_mean_latency,
    ) = task
    from ..core.spec import NetworkSpec

    net = NetworkSpec.parse(canonical).build()
    scenario = model.scenario(canonical, net, tseed)
    degraded = DegradedNetwork(net, scenario)
    row = measure(
        degraded,
        workload=workload,
        messages=messages,
        seed=wseed,
        bound=bound,
        max_slots=max_slots,
        baseline_mean_latency=baseline_mean_latency,
    )
    return row.as_dict()


# ----------------------------------------------------------------------
# Batched executor: one context per process, trial-index ranges only.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _SweepPlan:
    """Everything a trial needs, frozen once and shipped to workers."""

    canonical: str
    model: FaultModel
    seed: int
    workload: str
    messages: int
    bound: int
    max_slots: int
    baseline_mean_latency: float | None
    metrics: str
    backend: str = "batched"


class _TrialContext:
    """Per-process trial runner over one shared built network.

    Workers construct this exactly once (pool initializer), so the
    spec is parsed and the topology built per *process*, not per
    trial -- the frozen network, its family descriptor and the plan
    are shared by every trial the process executes.
    """

    def __init__(self, plan: _SweepPlan, net=None, family=None) -> None:
        from ..core.registry import get_family
        from ..core.spec import NetworkSpec

        self.plan = plan
        parsed = NetworkSpec.parse(plan.canonical)
        self.net = net if net is not None else parsed.build()
        self.family = family if family is not None else get_family(parsed.family)

    def run_trial(self, index: int) -> dict[str, object]:
        """The metrics row of trial ``index`` (scored per the plan's mode)."""
        plan = self.plan
        # index-aware samplers (stratified/importance wrappers) need the
        # trial *index*, not just its seed: the index picks the stratum
        # or replays the proposal draw.  Duck-typed so custom models can
        # opt in without importing the adaptive machinery.
        scenario_at = getattr(plan.model, "scenario_at", None)
        if scenario_at is not None:
            scenario = scenario_at(plan.canonical, self.net, plan.seed, index)
        else:
            scenario = plan.model.scenario(
                plan.canonical, self.net, trial_seed(plan.seed, index)
            )
        degraded = DegradedNetwork(self.net, scenario, family=self.family)
        if plan.metrics == "full":
            return measure(
                degraded,
                workload=plan.workload,
                messages=plan.messages,
                seed=plan.seed,
                bound=plan.bound,
                max_slots=plan.max_slots,
                baseline_mean_latency=plan.baseline_mean_latency,
            ).as_dict()
        # paths mode takes reachable_groups from path_survival (the
        # *routed* fraction) instead of the BFS pass, so skip the
        # redundant reachability loop there
        row: dict[str, object] = connectivity_metrics(
            degraded, with_reachable=plan.metrics == "connectivity"
        )
        if plan.metrics == "paths":
            reachable, max_len, stretch, within = path_survival(
                degraded, plan.bound
            )
            row["reachable_groups"] = reachable
            row["max_path_length"] = max_len
            row["mean_stretch"] = stretch
            row["within_bound"] = within
        return row

    def run_range(self, start: int, stop: int) -> list[dict[str, object]]:
        """Rows of trials ``start .. stop - 1``, in index order."""
        return [self.run_trial(i) for i in range(start, stop)]


# ----------------------------------------------------------------------
# Vectorized executor: shared-memory topology arrays, batched masks.
# ----------------------------------------------------------------------
#: Array fields of :class:`_TopologyArrays`, in shared-memory export order.
_ARRAY_FIELDS = (
    "endpoints",
    "proc_group",
    "src_indptr",
    "src_indices",
    "tgt_indptr",
    "tgt_indices",
)


@dataclass(frozen=True)
class _TopologyArrays:
    """One built network, flattened into numpy arrays.

    This is everything the vectorized backend needs per trial --
    coupler endpoint group pairs, the processor->group map and the
    CSR coupler->source/target-processor incidence -- exported once
    per sweep and shared (not copied) across workers via
    :mod:`multiprocessing.shared_memory`.
    """

    num_processors: int
    num_groups: int
    num_couplers: int
    endpoints: np.ndarray  # (m, 2) int64: coupler -> (src_group, dst_group)
    proc_group: np.ndarray  # (n,) int64: processor -> group
    src_indptr: np.ndarray  # (m + 1,) int64 CSR over source processors
    src_indices: np.ndarray
    tgt_indptr: np.ndarray  # (m + 1,) int64 CSR over target processors
    tgt_indices: np.ndarray

    @classmethod
    def from_network(cls, net) -> "_TopologyArrays":
        """Export any registry-built network's topology."""
        from .faults import coupler_endpoints

        model = net.hypergraph_model()
        n = net.num_processors
        m = model.num_hyperarcs
        endpoints = np.asarray(coupler_endpoints(net), dtype=np.int64).reshape(
            m, 2
        )
        proc_group = np.asarray(
            [int(net.label_of(p)[0]) for p in range(n)], dtype=np.int64
        )
        src_indptr = np.zeros(m + 1, dtype=np.int64)
        tgt_indptr = np.zeros(m + 1, dtype=np.int64)
        src_chunks: list[tuple[int, ...]] = []
        tgt_chunks: list[tuple[int, ...]] = []
        for idx, ha in enumerate(model.hyperarcs):
            src_chunks.append(ha.sources)
            tgt_chunks.append(ha.targets)
            src_indptr[idx + 1] = src_indptr[idx] + len(ha.sources)
            tgt_indptr[idx + 1] = tgt_indptr[idx] + len(ha.targets)
        flat = [p for chunk in src_chunks for p in chunk]
        src_indices = np.asarray(flat, dtype=np.int64)
        flat = [p for chunk in tgt_chunks for p in chunk]
        tgt_indices = np.asarray(flat, dtype=np.int64)
        return cls(
            num_processors=n,
            num_groups=net.num_groups,
            num_couplers=m,
            endpoints=endpoints,
            proc_group=proc_group,
            src_indptr=src_indptr,
            src_indices=src_indices,
            tgt_indptr=tgt_indptr,
            tgt_indices=tgt_indices,
        )


class _ArrayNetworkProxy:
    """Duck-typed stand-in for a built network, backed by arrays.

    Implements exactly the surface the registered
    :meth:`FaultModel.sample_faults` implementations touch
    (``num_couplers`` / ``num_processors`` / ``num_groups``,
    ``label_of`` for the group of a processor, and ``base_graph()``
    with ``arc_array()`` for
    :func:`~repro.resilience.faults.coupler_endpoints`) so workers can
    draw byte-identical fault sets without ever rebuilding the
    network.
    """

    __slots__ = ("_arrays",)

    def __init__(self, arrays: _TopologyArrays) -> None:
        self._arrays = arrays

    @property
    def num_processors(self) -> int:
        return self._arrays.num_processors

    @property
    def num_groups(self) -> int:
        return self._arrays.num_groups

    @property
    def num_couplers(self) -> int:
        return self._arrays.num_couplers

    def label_of(self, processor: int) -> tuple[int]:
        return (int(self._arrays.proc_group[processor]),)

    def base_graph(self) -> "_ArrayNetworkProxy":
        # coupler_endpoints() only calls .arc_array() on the result
        return self

    def arc_array(self) -> np.ndarray:
        return self._arrays.endpoints


def _proxy_surface_error(exc: Exception, proxy: _ArrayNetworkProxy) -> bool:
    """Whether ``exc`` stems from the array proxy's *missing* surface.

    Custom ``sample_faults`` implementations may touch network surface
    :class:`_ArrayNetworkProxy` does not carry -- those failures are a
    backend limitation worth naming.  But an ``AttributeError`` /
    ``IndexError`` / ``TypeError`` raised by the fault model's own code
    is a genuine bug that must propagate untranslated.  An
    ``AttributeError`` qualifies only when it was raised *on the proxy
    itself* (``exc.obj``); other lookup errors only when the innermost
    traceback frame is one of the proxy's own methods.
    """
    if isinstance(exc, AttributeError):
        return getattr(exc, "obj", None) is proxy
    proxy_codes = {
        _ArrayNetworkProxy.label_of.__code__,
        _ArrayNetworkProxy.base_graph.__code__,
        _ArrayNetworkProxy.arc_array.__code__,
    }
    tb = exc.__traceback__
    innermost = None
    while tb is not None:
        innermost = tb
        tb = tb.tb_next
    return (
        innermost is not None
        and innermost.tb_frame.f_code in proxy_codes
    )


class _VectorContext:
    """Per-process vectorized trial scorer over shared topology arrays.

    Scores ``connectivity``- and ``paths``-mode metrics for whole
    trial batches: the per-trial fault draws reuse the exact sampler +
    SHA-256 seed stream of the batched backend (so the two backends
    agree bit for bit), but everything downstream -- the dead-coupler
    closure, the surviving group adjacency, reachability (and, in
    ``paths`` mode, all-pairs distances from level-synchronous
    frontier expansion), and the metric ratios -- is batched numpy
    over all trials of a chunk at once, with no per-trial
    ``DegradedNetwork`` or Python BFS.
    """

    def __init__(self, plan: _SweepPlan, arrays: _TopologyArrays) -> None:
        self.plan = plan
        self.arrays = arrays
        self._proxy = _ArrayNetworkProxy(arrays)
        g = arrays.num_groups
        m = arrays.num_couplers
        self._src_sizes = np.diff(arrays.src_indptr)
        self._tgt_sizes = np.diff(arrays.tgt_indptr)
        #: coupler -> flattened (src_group, dst_group) cell index
        self._pair_id = arrays.endpoints[:, 0] * g + arrays.endpoints[:, 1]
        #: (n, g) one-hot processor->group incidence for dead counts
        self._group_onehot = np.zeros(
            (arrays.num_processors, g), dtype=np.int64
        )
        if arrays.num_processors:
            self._group_onehot[
                np.arange(arrays.num_processors), arrays.proc_group
            ] = 1
        self._group_sizes = self._group_onehot.sum(axis=0)
        #: (g, g) intact group distances, the stretch denominators
        #: (``paths`` mode only; computed once per sweep context)
        self._intact_dist = (
            self._intact_group_distances() if plan.metrics == "paths" else None
        )

    def _intact_group_distances(self) -> np.ndarray:
        """``(g, g)`` BFS distances over the intact loopless group digraph.

        The ``mean_stretch`` denominators of
        :func:`~repro.resilience.metrics.path_survival`: ``endpoints``
        is exactly ``base_graph().arc_array()`` for every family the
        kernel accepts (``_prepare_sweep`` downgrades the rest), so
        this equals ``base_graph().without_loops().bfs_distances(u)[v]``
        for every pair.  ``-1`` marks pairs unreachable intact.
        """
        g = self.arrays.num_groups
        endpoints = self.arrays.endpoints
        adj = np.zeros((g, g), dtype=np.int16)
        if len(endpoints):
            off_diag = endpoints[:, 0] != endpoints[:, 1]
            adj[endpoints[off_diag, 0], endpoints[off_diag, 1]] = 1
        dist = np.full((g, g), -1, dtype=np.int64)
        np.fill_diagonal(dist, 0)
        reach = np.eye(g, dtype=bool)
        hops = 0
        while True:
            grown = (np.matmul(reach.astype(np.int16), adj) > 0) | reach
            frontier = grown & ~reach
            if not frontier.any():
                break
            hops += 1
            dist[frontier] = hops
            reach = grown
        return dist

    def run_range(self, start: int, stop: int) -> list[dict[str, object]]:
        """Rows of trials ``start .. stop - 1``, in index order."""
        arrays = self.arrays
        cells = max(
            arrays.num_groups**2,
            arrays.num_processors,
            int(arrays.src_indptr[-1]),
            int(arrays.tgt_indptr[-1]),
            1,
        )
        batch = max(1, min(_VECTOR_BATCH, _VECTOR_CELL_BUDGET // cells))
        rows: list[dict[str, object]] = []
        for lo in range(start, stop, batch):
            rows.extend(self._run_batch(lo, min(lo + batch, stop)))
        return rows

    def _sample_masks(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """``(dead_processors, directly_hit_couplers)`` boolean masks.

        One row per trial; each row replays the exact draw the batched
        backend's ``model.scenario(...)`` would make for that trial
        index (same sampler, same ``trial_seed`` stream).
        """
        plan, arrays = self.plan, self.arrays
        n, m = arrays.num_processors, arrays.num_couplers
        dead_proc = np.zeros((hi - lo, n), dtype=bool)
        direct = np.zeros((hi - lo, m), dtype=bool)
        sample_at = getattr(plan.model, "sample_faults_at", None)
        for j in range(hi - lo):
            rng = random.Random(trial_seed(plan.seed, lo + j))
            try:
                if sample_at is not None:
                    couplers, processors = sample_at(self._proxy, rng, lo + j)
                else:
                    couplers, processors = plan.model.sample_faults(
                        self._proxy, rng
                    )
            except (AttributeError, IndexError, TypeError) as exc:
                # custom models may sample from network surface the
                # array proxy does not carry -- name the restriction
                # instead of leaking a deep (possibly pickled) error.
                # Only errors that actually originate from the proxy's
                # missing surface are translated: a bug inside the
                # model's own sample_faults propagates untouched.
                if not _proxy_surface_error(exc, self._proxy):
                    raise
                raise ValueError(
                    f"fault model {type(plan.model).__name__} needs "
                    f"network surface the vectorized backend's array "
                    f"proxy does not provide ({exc}); run it with "
                    f"backend='batched'"
                ) from exc
            hit = [c for c in couplers if 0 <= c < m]
            if hit:
                direct[j, hit] = True
            hit = [p for p in processors if 0 <= p < n]
            if hit:
                dead_proc[j, hit] = True
        return dead_proc, direct

    def _run_batch(self, lo: int, hi: int) -> list[dict[str, object]]:
        arrays = self.arrays
        n, g, m = arrays.num_processors, arrays.num_groups, arrays.num_couplers
        batch = hi - lo
        paths_mode = self.plan.metrics == "paths"
        if n <= 1:  # the connectivity_metrics() degenerate short-circuit
            degenerate: dict[str, object] = {
                "connectivity": 1.0,
                "alive_connectivity": 1.0,
                "reachable_groups": 1.0,
            }
            if paths_mode:  # path_survival's < 2 live groups answer
                degenerate.update(
                    max_path_length=0, mean_stretch=1.0, within_bound=1.0
                )
            return [dict(degenerate) for _ in range(batch)]
        dead_proc, direct = self._sample_masks(lo, hi)
        dead_i = dead_proc.astype(np.int64)
        # effective dead couplers (the DegradedNetwork closure): hit
        # directly, or every source processor died, or every target died
        if m:
            src_dead = np.add.reduceat(
                dead_i[:, arrays.src_indices], arrays.src_indptr[:-1], axis=1
            )
            tgt_dead = np.add.reduceat(
                dead_i[:, arrays.tgt_indices], arrays.tgt_indptr[:-1], axis=1
            )
            dead_coupler = (
                direct
                | (src_dead == self._src_sizes)
                | (tgt_dead == self._tgt_sizes)
            )
        else:
            dead_coupler = direct
        # surviving group adjacency, one scatter for the whole batch
        ti, ci = np.nonzero(~dead_coupler)
        counts = np.bincount(
            ti * (g * g) + self._pair_id[ci], minlength=batch * g * g
        )
        adj = counts.reshape(batch, g, g) > 0
        diag = np.arange(g)
        dist = None
        hops = 0
        if paths_mode:
            # level-synchronous frontier expansion: one boolean matmul
            # per hop, so per-pair *distances* fall out of the frontier
            # masks.  dist[b, u, v] equals bfs_distances(u)[v] on the
            # surviving base (loops never shorten a distinct-pair
            # route), i.e. exactly the length the generic fault_route
            # hook reports; the final `reach` is the same closure the
            # squaring loop below produces.
            reach = np.broadcast_to(np.eye(g, dtype=bool), adj.shape).copy()
            dist = np.full((batch, g, g), -1, dtype=np.int64)
            dist[:, diag, diag] = 0
            adj_i = adj.astype(np.int16)
            while True:
                grown = (np.matmul(reach.astype(np.int16), adj_i) > 0) | reach
                frontier = grown & ~reach
                if not frontier.any():
                    break
                hops += 1
                dist[frontier] = hops
                reach = grown
        else:
            # reachability closure by repeated squaring: R holds
            # "reaches in <= 2^k hops" (identity included, loops kept --
            # the same booleans as bfs_distances(u)[v] >= 0 on the
            # surviving base)
            reach = adj.copy()
            reach[:, diag, diag] = True
            while True:
                grown = (
                    np.matmul(reach.astype(np.int16), reach.astype(np.int16))
                    > 0
                )
                if np.array_equal(grown, reach):
                    break
                reach = grown
        # a same-group pair needs a surviving closed walk at its group:
        # some surviving out-arc (u, v) that is a loop or can get back
        sibling_ok = np.any(adj & np.swapaxes(reach, 1, 2), axis=2)
        alive_per_group = self._group_sizes[None, :] - dead_i @ self._group_onehot
        reach_off = reach.copy()
        reach_off[:, diag, diag] = False
        cross = np.einsum(
            "bu,buv,bv->b",
            alive_per_group,
            reach_off.astype(np.int64),
            alive_per_group,
        )
        same = (alive_per_group * (alive_per_group - 1) * sibling_ok).sum(axis=1)
        connected = cross + same
        alive = alive_per_group.sum(axis=1)
        alive_pairs = alive * (alive - 1)
        live = (alive_per_group > 0).astype(np.int64)
        num_live = live.sum(axis=1)
        routed = np.einsum(
            "bu,buv,bv->b", live, reach_off.astype(np.int64), live
        )
        live_pairs = num_live * (num_live - 1)
        connectivity = connected / (n * (n - 1))
        alive_conn = np.where(
            alive_pairs > 0, connected / np.maximum(alive_pairs, 1), 1.0
        )
        reachable = np.where(
            num_live >= 2, routed / np.maximum(live_pairs, 1), 1.0
        )
        if not paths_mode:
            return [
                {
                    "connectivity": float(connectivity[j]),
                    "alive_connectivity": float(alive_conn[j]),
                    "reachable_groups": float(reachable[j]),
                }
                for j in range(batch)
            ]
        return self._paths_rows(
            batch,
            dist,
            hops,
            alive_per_group,
            num_live,
            live_pairs,
            connectivity,
            alive_conn,
        )

    def _paths_rows(
        self,
        batch: int,
        dist: np.ndarray,
        hops: int,
        alive_per_group: np.ndarray,
        num_live: np.ndarray,
        live_pairs: np.ndarray,
        connectivity: np.ndarray,
        alive_conn: np.ndarray,
    ) -> list[dict[str, object]]:
        """``paths``-mode rows from the batched distance tensor.

        Reproduces :func:`~repro.resilience.metrics.path_survival`
        value for value: same live-pair set, same ``routed`` /
        ``within`` / ``max_path_length`` counts, and the identical
        ``mean_stretch`` float -- both sides feed the same multiset of
        exact ``length / intact_distance`` ratios through
        :func:`math.fsum`, which is order-independent.
        """
        bound = self.plan.bound
        diag = np.arange(self.arrays.num_groups)
        live = alive_per_group > 0
        pair_mask = live[:, :, None] & live[:, None, :]
        pair_mask[:, diag, diag] = False
        routed_mask = pair_mask & (dist > 0)
        routed_counts = routed_mask.sum(axis=(1, 2))
        within_counts = (routed_mask & (dist <= bound)).sum(axis=(1, 2))
        max_len = np.where(routed_mask, dist, -1).max(axis=(1, 2), initial=-1)
        # stretch denominators: pairs unreachable *intact* (d0 == -1)
        # have no defined stretch and stay out of the mean (they still
        # count in reachable/within, mirroring path_survival)
        stretch_mask = routed_mask & (self._intact_dist > 0)[None, :, :]
        ratios = np.where(
            stretch_mask,
            dist / np.maximum(self._intact_dist, 1)[None, :, :],
            0.0,
        )
        registry = worker_registry()
        labels = {"backend": self.plan.backend}
        registry.counter(
            "repro_sweep_paths_kernel_trials_total", _PATHS_TRIALS_HELP, labels
        ).inc(batch)
        registry.histogram(
            "repro_sweep_paths_kernel_hops", _PATHS_HOPS_HELP, labels
        ).observe(hops)
        rows: list[dict[str, object]] = []
        for j in range(batch):
            row: dict[str, object] = {
                "connectivity": float(connectivity[j]),
                "alive_connectivity": float(alive_conn[j]),
            }
            if num_live[j] < 2:
                row.update(
                    reachable_groups=1.0,
                    max_path_length=0,
                    mean_stretch=1.0,
                    within_bound=1.0,
                )
            elif routed_counts[j] == 0:
                # nothing routed: the bound is *not* vacuously confirmed
                row.update(
                    reachable_groups=0.0,
                    max_path_length=-1,
                    mean_stretch=0.0,
                    within_bound=0.0,
                )
            else:
                terms = ratios[j][stretch_mask[j]]
                row.update(
                    reachable_groups=int(routed_counts[j]) / int(live_pairs[j]),
                    max_path_length=int(max_len[j]),
                    mean_stretch=(
                        math.fsum(terms) / terms.size if terms.size else 1.0
                    ),
                    within_bound=int(within_counts[j]) / int(routed_counts[j]),
                )
            rows.append(row)
        return rows


def _export_shared(
    arrays: _TopologyArrays,
) -> tuple[tuple, list[shared_memory.SharedMemory]]:
    """Copy the topology arrays into named shared-memory segments.

    Returns ``(meta, handles)``: ``meta`` is the picklable attachment
    recipe shipped to workers, ``handles`` the parent-owned segments
    (close + unlink them once the pool is done).
    """
    entries = []
    handles: list[shared_memory.SharedMemory] = []
    try:
        for name in _ARRAY_FIELDS:
            arr: np.ndarray = getattr(arrays, name)
            shm = shared_memory.SharedMemory(
                create=True, size=max(arr.nbytes, 1)
            )
            handles.append(shm)
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
            entries.append((name, shm.name, arr.shape, arr.dtype.str))
    except BaseException:
        # never leak the segments already created (e.g. /dev/shm full
        # partway through the export)
        _release_shared(handles)
        raise
    meta = (
        arrays.num_processors,
        arrays.num_groups,
        arrays.num_couplers,
        tuple(entries),
    )
    return meta, handles


def _attach_shared(
    meta,
) -> tuple[_TopologyArrays, list[shared_memory.SharedMemory]]:
    """Worker-side inverse of :func:`_export_shared` (views, not copies)."""
    n, g, m, entries = meta
    handles = []
    kwargs: dict[str, np.ndarray] = {}
    for field_name, shm_name, shape, dtype in entries:
        shm = shared_memory.SharedMemory(name=shm_name)
        handles.append(shm)
        kwargs[field_name] = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=shm.buf
        )
    arrays = _TopologyArrays(
        num_processors=n, num_groups=g, num_couplers=m, **kwargs
    )
    return arrays, handles


def _release_shared(handles: list[shared_memory.SharedMemory]) -> None:
    """Close and unlink parent-owned shared segments (idempotent)."""
    for shm in handles:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


# ----------------------------------------------------------------------
# Worker plumbing shared by the per-sweep and the pooled executors.
# ----------------------------------------------------------------------
def _make_context(plan: _SweepPlan, net=None, arrays=None):
    """The trial-runner context for ``plan`` (builds what it lacks)."""
    if plan.backend == "vectorized":
        if arrays is None:
            if net is None:
                from ..core.spec import NetworkSpec

                net = NetworkSpec.parse(plan.canonical).build()
            arrays = _TopologyArrays.from_network(net)
        return _VectorContext(plan, arrays)
    return _TrialContext(plan, net=net)


# -- chunk observation (fork-aware metrics + shipped timings) ---------
#: Help strings of the sweep metric families, parent- and worker-side.
_CHUNKS_HELP = "Sweep trial chunks executed"
_TRIALS_HELP = "Monte-Carlo trials executed"
_RUN_HELP = "Wall time of one sweep trial chunk"
_WAIT_HELP = "Queue wait between chunk dispatch and worker pickup"
_PATHS_TRIALS_HELP = "Trials scored by the vectorized all-pairs paths kernel"
_PATHS_HOPS_HELP = "BFS frontier expansions per vectorized paths batch"
_DOWNGRADE_HELP = "Sweeps downgraded from their requested backend"


def _observed_range(ctx, start: int, stop: int):
    """``(rows, meta)`` of a trial range, with the worker's obs delta.

    Workers always measure (two clock reads per multi-trial chunk --
    noise) and record into the per-process worker registry; ``meta``
    ships the drained registry delta plus the chunk's wall window home
    with the rows.  The parent merges the delta into the global
    registry and decides whether a tracer turns the timings into
    events -- the tracing flag never propagates to workers, and the
    rows themselves are untouched either way.
    """
    labels = {"backend": ctx.plan.backend}
    registry = worker_registry()
    start_us = now_us()
    rows = ctx.run_range(start, stop)
    duration_us = now_us() - start_us
    registry.counter("repro_sweep_chunks_total", _CHUNKS_HELP, labels).inc()
    registry.counter("repro_sweep_trials_total", _TRIALS_HELP, labels).inc(
        stop - start
    )
    registry.histogram(
        "repro_sweep_chunk_run_seconds", _RUN_HELP, labels
    ).observe(duration_us / 1e6)
    meta = {
        "metrics": registry.drain(),
        "start_us": start_us,
        "dur_us": duration_us,
        "pid": os.getpid(),
        "trials": stop - start,
        "backend": ctx.plan.backend,
    }
    return rows, meta


def _absorb_chunk_metas(metas, dispatched_us: int | None = None) -> None:
    """Merge shipped worker deltas into the parent's global registry.

    Every merge operation is commutative, so the totals are identical
    for any worker count and chunk completion order.  With a dispatch
    timestamp the parent also derives per-chunk queue wait (dispatch
    -> worker pickup); with a tracer active each chunk becomes a
    ``sweep.chunk`` event on the worker's own pid row of the timeline.
    """
    for meta in metas:
        if not meta:
            continue
        REGISTRY.merge(meta["metrics"])
        if dispatched_us is not None:
            wait = max(meta["start_us"] - dispatched_us, 0) / 1e6
            REGISTRY.histogram(
                "repro_sweep_queue_wait_seconds",
                _WAIT_HELP,
                {"backend": meta["backend"]},
            ).observe(wait)
        add_complete_event(
            "sweep.chunk",
            meta["start_us"],
            meta["dur_us"],
            args={"trials": meta["trials"], "backend": meta["backend"]},
            pid=meta["pid"],
            tid=0,
        )


def _observe_inline_run(plan: _SweepPlan, trials: int, seconds: float) -> None:
    """Record one inline (in-parent) run as a single chunk observation."""
    labels = {"backend": plan.backend}
    REGISTRY.counter("repro_sweep_chunks_total", _CHUNKS_HELP, labels).inc()
    REGISTRY.counter("repro_sweep_trials_total", _TRIALS_HELP, labels).inc(
        trials
    )
    REGISTRY.histogram(
        "repro_sweep_chunk_run_seconds", _RUN_HELP, labels
    ).observe(seconds)
    # contexts record kernel-level series (e.g. the vectorized paths
    # kernel counters) into the worker registry regardless of where
    # they run; inline runs drain that delta into the global registry
    # here, exactly as _absorb_chunk_metas does for pool chunks
    REGISTRY.merge(worker_registry().drain())


_WORKER_CTX = None
_WORKER_SHM: list[shared_memory.SharedMemory] = []


def _init_sweep_worker(plan: _SweepPlan, shared_meta=None) -> None:
    """Pool initializer: build the shared trial context once per process."""
    global _WORKER_CTX, _WORKER_SHM
    reset_worker_registry()  # drop fork-inherited parent state
    if shared_meta is not None:
        arrays, _WORKER_SHM = _attach_shared(shared_meta)
        _WORKER_CTX = _VectorContext(plan, arrays)
    else:
        _WORKER_CTX = _make_context(plan)


def _run_sweep_chunk(index_range: tuple[int, int]):
    """Run a contiguous range of trials on the process-local context.

    Returns ``(rows, meta)`` -- the trial rows plus the worker's
    observation delta (see :func:`_observed_range`).
    """
    assert _WORKER_CTX is not None, "sweep worker used before initialization"
    return _observed_range(_WORKER_CTX, *index_range)


_POOL_PLANS: tuple[_SweepPlan, ...] | None = None
_POOL_METAS: tuple | None = None
_POOL_CTXS: dict[int, object] = {}
#: plan index -> ``(arrays, handles)``: shared-memory attachments are
#: kept for the pool's lifetime (views are cheap; the segments are
#: shared) so an evicted vectorized context never re-attaches.
_POOL_SHM: dict[int, tuple] = {}

#: Most sweep contexts a pooled worker keeps alive at once.  Batched
#: contexts hold a whole built network, and a design-search window can
#: span hundreds of candidates; evicting in insertion order keeps each
#: worker at O(1) networks (chunk scheduling is mostly contiguous per
#: candidate, so evicted contexts are rarely rebuilt).
_POOL_CTX_CACHE = 8


def _init_pool_worker(plans: tuple[_SweepPlan, ...], shared_metas) -> None:
    """Pool initializer for the many-sweeps-one-pool executor."""
    global _POOL_PLANS, _POOL_METAS, _POOL_CTXS, _POOL_SHM
    reset_worker_registry()  # drop fork-inherited parent state
    _POOL_PLANS = plans
    _POOL_METAS = shared_metas
    _POOL_CTXS = {}
    _POOL_SHM = {}


def _run_pool_chunk(task: tuple[int, int, int]):
    """Run one sweep's trial range; contexts are cached per process.

    Vectorized plans come with a shared-memory meta: the worker
    attaches the parent's topology arrays (views, not copies) instead
    of rebuilding the candidate's network.  Returns
    ``(plan_index, start, rows, obs_meta)``.
    """
    assert _POOL_PLANS is not None, "pool worker used before initialization"
    plan_index, start, stop = task
    ctx = _POOL_CTXS.get(plan_index)
    if ctx is None:
        meta = _POOL_METAS[plan_index] if _POOL_METAS else None
        if meta is not None:
            attached = _POOL_SHM.get(plan_index)
            if attached is None:
                attached = _POOL_SHM[plan_index] = _attach_shared(meta)
            ctx = _VectorContext(_POOL_PLANS[plan_index], attached[0])
        else:
            ctx = _make_context(_POOL_PLANS[plan_index])
        while len(_POOL_CTXS) >= _POOL_CTX_CACHE:
            _POOL_CTXS.pop(next(iter(_POOL_CTXS)))
        _POOL_CTXS[plan_index] = ctx
    rows, obs_meta = _observed_range(ctx, start, stop)
    return plan_index, start, rows, obs_meta


def _index_chunks(trials: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` trial ranges, ~4 chunks per worker."""
    chunk = max(1, trials // (workers * 4))
    return [(lo, min(lo + chunk, trials)) for lo in range(0, trials, chunk)]


# ----------------------------------------------------------------------
# Persistent executor: one long-lived pool, contexts re-keyed by plan.
# ----------------------------------------------------------------------
#: Most plan contexts a persistent worker (or the inline executor)
#: keeps alive at once; least recently used evicted first.
_PERSIST_CTX_CACHE = 8

_PERSIST_CTXS: OrderedDict = OrderedDict()
_PERSIST_LIMIT = _PERSIST_CTX_CACHE


def _init_persistent_worker(context_cache: int) -> None:
    """Pool initializer: an empty per-process plan-keyed context cache."""
    global _PERSIST_CTXS, _PERSIST_LIMIT
    reset_worker_registry()  # drop fork-inherited parent state
    _PERSIST_CTXS = OrderedDict()
    _PERSIST_LIMIT = context_cache


def _cached_context(cache: OrderedDict, limit: int, plan: _SweepPlan, **kw):
    """The trial context for ``plan``, LRU-cached when the plan hashes.

    Plans are frozen dataclasses, hashable whenever their fault model
    is (every built-in model); an unhashable custom model just skips
    caching and rebuilds per chunk -- correct, only slower.
    """
    try:
        ctx = cache.get(plan)
    except TypeError:
        return _make_context(plan, **kw)
    if ctx is not None:
        cache.move_to_end(plan)
        return ctx
    ctx = _make_context(plan, **kw)
    while len(cache) >= limit:
        cache.popitem(last=False)
    cache[plan] = ctx
    return ctx


def _run_persistent_chunk(task: tuple[int, _SweepPlan, int, int]):
    """Run one sweep's trial range on the persistent worker's context cache.

    Unlike the one-shot initializers, the plan travels with the task,
    so one pool serves any sequence of sweeps: a worker builds the
    context the first time it sees a plan and reuses it for every
    later chunk of that plan.
    """
    index, plan, start, stop = task
    ctx = _cached_context(_PERSIST_CTXS, _PERSIST_LIMIT, plan)
    rows, obs_meta = _observed_range(ctx, start, stop)
    return index, start, rows, obs_meta


class PersistentSweepExecutor:
    """A reusable sweep executor that owns one lazily-started pool.

    The one-shot path pays a full ``multiprocessing`` pool spawn (and
    per-process network build) on every sweep call; this executor
    keeps the pool alive across calls and ships each task its frozen
    :class:`_SweepPlan`, so workers re-initialize their trial context
    only when the plan actually changes.  ``workers`` of
    ``None``/``0``/``1`` runs inline with a parent-side context cache
    (warm repeated sweeps skip context rebuilds there too).

    Row lists are **byte-identical** to the one-shot executor for the
    same plan and worker count -- trial chunking, per-trial seeds and
    row order are shared.  This is what
    :class:`repro.core.session.Session` injects into
    :func:`survivability_sweep`, :func:`pooled_survivability_sweeps`
    and the design search.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        context_cache: int = _PERSIST_CTX_CACHE,
    ) -> None:
        if context_cache < 1:
            raise ValueError(
                f"context_cache must be >= 1, got {context_cache}"
            )
        self.workers = workers if workers is not None and workers > 1 else 0
        self._context_cache = context_cache
        self._pool = None
        self._pool_lock = threading.Lock()
        self._inline_ctxs: OrderedDict = OrderedDict()
        self._inline_lock = threading.Lock()
        self._closed = False
        self._interrupted = False

    @property
    def parallel(self) -> bool:
        """Whether this executor fans trials over a worker pool."""
        return self.workers > 1

    @property
    def pool_started(self) -> bool:
        """Whether the lazily-created pool currently exists."""
        return self._pool is not None

    def _ensure_pool(self):
        if self._closed:
            raise RuntimeError("executor is closed")
        # locked: concurrent server threads must share ONE pool, never
        # race two into existence (Pool itself is thread-safe once built)
        with self._pool_lock:
            if self._pool is None:
                self._pool = multiprocessing.Pool(
                    processes=self.workers,
                    initializer=_init_persistent_worker,
                    initargs=(self._context_cache,),
                )
            return self._pool

    def _pool_map(self, fn, tasks, chunksize=None):
        """``pool.map`` that remembers interrupts for :meth:`close`.

        A ``KeyboardInterrupt``/``SystemExit`` mid-map can leave tasks
        the pool will never drain; marking the executor interrupted
        makes the eventual :meth:`close` terminate the workers instead
        of hanging on (or warning out of) a doomed drain.
        """
        pool = self._ensure_pool()
        try:
            if chunksize is None:
                return pool.map(fn, tasks)
            return pool.map(fn, tasks, chunksize=chunksize)
        except (KeyboardInterrupt, SystemExit):
            self._interrupted = True
            raise

    def run(self, prepared: _PreparedSweep, *, arrays=None) -> list[dict]:
        """All trial rows of one prepared sweep, in trial-index order.

        ``arrays`` (inline vectorized runs only) short-circuits the
        topology export when the caller already holds the spec's
        :class:`_TopologyArrays`.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        plan, trials = prepared.plan, prepared.trials
        if plan.backend == "legacy":
            tasks = _legacy_tasks(plan, trials)
            if not self.parallel:
                return [_run_trial(t) for t in tasks]
            return self._pool_map(
                _run_trial,
                tasks,
                chunksize=max(1, trials // (self.workers * 4)),
            )
        return self.run_range(prepared, 0, trials, arrays=arrays)

    def run_range(
        self, prepared: _PreparedSweep, start: int, stop: int, *, arrays=None
    ) -> list[dict]:
        """Rows of trials ``start .. stop - 1`` of one prepared sweep.

        The adaptive engine's wave primitive: each wave is one
        contiguous index range, so per-trial seeds -- and therefore
        the rows -- are exactly what a fixed run of ``stop`` trials
        would produce for that slice, at any worker count.  Legacy
        plans have no range form (they are excluded from adaptive
        sweeps at validation).
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        plan = prepared.plan
        if plan.backend == "legacy":
            raise ValueError(
                "trial ranges support the batched and vectorized "
                "backends; the legacy reference path runs whole sweeps"
            )
        if start >= stop:
            return []
        if not self.parallel:
            # lock covers only the cache lookup/insert; trial compute
            # runs unlocked (contexts are read-only once built)
            with self._inline_lock:
                ctx = _cached_context(
                    self._inline_ctxs,
                    self._context_cache,
                    plan,
                    net=prepared.net,
                    arrays=arrays,
                )
            start_us = now_us()
            rows = ctx.run_range(start, stop)
            _observe_inline_run(
                plan, stop - start, (now_us() - start_us) / 1e6
            )
            return rows
        tasks = [
            (0, plan, start + lo, start + hi)
            for lo, hi in _index_chunks(stop - start, self.workers)
        ]
        dispatched_us = now_us()
        chunks = self._pool_map(_run_persistent_chunk, tasks)
        _absorb_chunk_metas((meta for _, _, _, meta in chunks), dispatched_us)
        return [row for _, _, rows, _ in chunks for row in rows]

    def run_many(
        self, prepared_list: list[_PreparedSweep], *, arrays_list=None
    ) -> list[list[dict]]:
        """Row lists for many prepared sweeps, scheduled on ONE pool.

        Returns one row list per input sweep, each identical to what
        :meth:`run` would produce for it alone.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        if not self.parallel:
            out = []
            for i, prepared in enumerate(prepared_list):
                arrays = arrays_list[i] if arrays_list else None
                out.append(self.run(prepared, arrays=arrays))
            return out
        tasks = [
            (i, p.plan, lo, hi)
            for i, p in enumerate(prepared_list)
            for lo, hi in _index_chunks(p.trials, self.workers)
        ]
        dispatched_us = now_us()
        results = self._pool_map(_run_persistent_chunk, tasks)
        _absorb_chunk_metas((meta for _, _, _, meta in results), dispatched_us)
        by_sweep: list[dict[int, list[dict]]] = [{} for _ in prepared_list]
        for index, start, rows, _meta in results:
            by_sweep[index][start] = rows
        return [
            [row for start in sorted(g) for row in g[start]] for g in by_sweep
        ]

    def close(self, *, terminate: bool = False) -> None:
        """Shut the pool down and drop cached contexts (idempotent).

        ``terminate=False`` (the default) drains the pool: workers
        finish in-flight chunks and exit.  ``terminate=True`` kills
        them immediately -- the path signal handlers take, where an
        interrupted ``map`` may never return its tasks and a drain
        would hang.  Either way teardown is quiet: a pool whose drain
        fails (workers already dead after a ``KeyboardInterrupt``,
        interpreter shutdown races) falls back to terminate instead of
        leaking ``BrokenProcessPool``/resource-tracker warnings out of
        ``atexit``.
        """
        self._closed = True
        self._inline_ctxs.clear()
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is None:
            return
        terminate = terminate or self._interrupted
        try:
            if terminate:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        except BaseException:
            # last resort: never let teardown noise escape -- kill the
            # workers and swallow whatever state the pool was left in
            try:
                pool.terminate()
                pool.join()
            except BaseException:  # pragma: no cover - interpreter exit
                pass
            if not terminate:
                raise

    def __enter__(self) -> "PersistentSweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Preparation and aggregation shared by every executor.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _PreparedSweep:
    """One validated sweep: the worker plan plus parent-only state."""

    plan: _SweepPlan
    trials: int
    simulate: bool
    net: object  # the built network (parent-side only; never pickled)
    #: why ``plan.backend`` differs from the requested backend
    #: (``None`` when it does not); surfaced on the summary
    downgrade: str | None = None
    #: sequential-stopping half-width target (``None`` = fixed trials)
    ci_target: float | None = None
    #: the requested trial-allocation strategy (``"uniform"``,
    #: ``"stratified"`` or ``"importance"``); the index-aware sampler
    #: itself rides inside ``plan.model``
    sampling: str = "uniform"


def _intact_baseline(
    net,
    family_key: str,
    *,
    workload: str,
    messages: int,
    seed: int,
    max_slots: int,
) -> float:
    """Mean latency of the intact network under one workload config.

    The normalizer for ``metrics="full"`` latency inflation; it
    depends only on ``(workload, messages, seed, max_slots)``, so
    sessions cache it per spec instead of recomputing per sweep.
    """
    from ..core.registry import get_family
    from ..core.workloads import resolve_workload
    from ..simulation.network_sim import run_traffic

    traffic = resolve_workload(workload, net, messages=messages, seed=seed)
    report = run_traffic(
        get_family(family_key).simulator(net), traffic, max_slots=max_slots
    )
    return report.mean_latency


def _prepare_sweep(
    spec,
    model: FaultModel | str = "coupler",
    *,
    faults: int | None = None,
    trials: int = 100,
    seed: int = 0,
    workload: str = "uniform",
    messages: int = 60,
    bound: int | None = None,
    max_slots: int = 100_000,
    metrics: str = "full",
    backend: str = "batched",
    ci_target: float | None = None,
    sampling: str = "uniform",
    _net=None,
    _baseline=None,
) -> _PreparedSweep:
    """Validate one sweep request and freeze its :class:`_SweepPlan`.

    ``_net`` and ``_baseline`` are internal fast paths: callers that
    already hold the built network / the intact-baseline mean latency
    (sessions, the design search) pass them to skip the recompute;
    they MUST match what ``spec`` would produce.  ``_baseline`` may be
    a float or a zero-argument callable producing one -- the callable
    is only invoked after the request validates (so cache-backed
    providers never run for rejected requests).
    """
    from ..core.spec import NetworkSpec

    parsed = NetworkSpec.parse(spec)
    if isinstance(model, str):
        model = make_fault_model(model, 1 if faults is None else faults)
    elif faults is not None:
        raise ValueError(
            "faults applies to string model keys; a FaultModel instance "
            "already carries its intensity"
        )
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if ci_target is not None:
        if not isinstance(ci_target, (int, float)) or isinstance(
            ci_target, bool
        ):
            raise ValueError(
                f"ci_target must be a number > 0 or None, got {ci_target!r}"
            )
        if not ci_target > 0:
            raise ValueError(f"ci_target must be > 0, got {ci_target}")
        ci_target = float(ci_target)
    if sampling not in SAMPLING_MODES:
        known = ", ".join(SAMPLING_MODES)
        raise ValueError(f"unknown sampling mode {sampling!r}; known: {known}")
    if backend == "legacy" and (ci_target is not None or sampling != "uniform"):
        raise ValueError(
            "adaptive sweeps (ci_target=/sampling=) support the batched "
            "and vectorized backends; the legacy reference path runs "
            "fixed uniform sweeps only"
        )
    if metrics not in METRICS_MODES:
        known = ", ".join(sorted(METRICS_MODES))
        raise ValueError(f"unknown metrics mode {metrics!r}; known: {known}")
    if backend not in SWEEP_BACKENDS:
        known = ", ".join(SWEEP_BACKENDS)
        raise ValueError(f"unknown sweep backend {backend!r}; known: {known}")
    if backend == "legacy" and metrics != "full":
        raise ValueError(
            "the legacy backend only supports metrics='full'; use "
            "backend='batched' for connectivity/paths short-circuits "
            "(or 'vectorized' for connectivity/paths at scale)"
        )
    if backend == "vectorized" and metrics == "full":
        raise ValueError(
            "the vectorized backend scores metrics='connectivity' and "
            "'paths'; 'full' (slotted simulation) needs backend='batched'"
        )
    downgrade = None
    if backend == "vectorized" and metrics == "paths":
        from ..core.registry import NetworkFamily, get_family

        family = get_family(parsed.family)
        if type(family).fault_route is not NetworkFamily.fault_route:
            # the kernel's distances equal the generic BFS fallback's
            # route lengths; a structured hook (stack-Kautz word-level
            # routing) can return longer routes, so run those specs on
            # the batched fault_route scan -- recorded, never silent
            downgrade = (
                f"family {parsed.family!r} overrides fault_route with "
                "structured routing the vectorized paths kernel cannot "
                "reproduce byte-for-byte; executed on backend='batched'"
            )
            backend = "batched"
    net = parsed.build() if _net is None else _net
    if sampling != "uniform":
        # the index-aware sampler wrapper rides in the plan's model
        # slot: same key/faults surface, but trial contexts detect
        # scenario_at/sample_faults_at and pass the trial index through
        model = make_sampler(
            model, net, sampling=sampling, trials=trials, ci_target=ci_target
        )
    if (
        downgrade is None
        and backend == "vectorized"
        and metrics == "paths"
        and net.num_groups > 1
        and not hasattr(net, "base_graph")
    ):
        # defensive: stretch denominators come from the base graph;
        # no registered multi-group family lacks one today
        downgrade = (
            f"family {parsed.family!r} exposes no base_graph() for "
            "intact distances; executed on backend='batched'"
        )
        backend = "batched"
    if downgrade is not None:
        REGISTRY.counter(
            "repro_sweep_backend_downgrades_total",
            _DOWNGRADE_HELP,
            {"from": "vectorized", "to": backend},
        ).inc()
    resolved_bound = net.diameter + 2 if bound is None else bound
    simulate = metrics == "full"
    if simulate:
        # The intact baseline depends only on (workload, messages, seed):
        # run it once here instead of once per trial.
        if _baseline is None:
            baseline_mean_latency = _intact_baseline(
                net,
                parsed.family,
                workload=workload,
                messages=messages,
                seed=seed,
                max_slots=max_slots,
            )
        elif callable(_baseline):
            baseline_mean_latency = _baseline()
        else:
            baseline_mean_latency = _baseline
    else:
        baseline_mean_latency = None
    plan = _SweepPlan(
        canonical=parsed.canonical(),
        model=model,
        seed=seed,
        workload=workload,
        messages=messages,
        bound=resolved_bound,
        max_slots=max_slots,
        baseline_mean_latency=baseline_mean_latency,
        metrics=metrics,
        backend=backend,
    )
    return _PreparedSweep(
        plan=plan,
        trials=trials,
        simulate=simulate,
        net=net,
        downgrade=downgrade,
        ci_target=ci_target,
        sampling=sampling,
    )


def _summarize(prepared: _PreparedSweep, rows: list[dict]) -> SweepSummary:
    """Aggregate per-trial rows into the deterministic quantile summary.

    Denominators come from ``len(rows)``, not the requested trial
    count: an adaptive sweep may stop before spending its cap, and the
    summary's ``trials`` then reports what actually ran (the cap
    survives in the ``adaptive`` block's ``trials_requested``).
    """
    plan, trials = prepared.plan, len(rows)
    summarized = METRICS_MODES[plan.metrics]
    quantiles: dict[str, dict[str, float]] = {}
    for key in summarized:
        values = sorted(float(r[key]) for r in rows)
        quantiles[key] = {
            "mean": round(sum(values) / len(values), 6),
            "p05": round(_nearest_rank(values, 0.05), 6),
            "p50": round(_nearest_rank(values, 0.50), 6),
            "p95": round(_nearest_rank(values, 0.95), 6),
            "min": round(values[0], 6),
            "max": round(values[-1], 6),
        }
    if "within_bound" in summarized:
        within_full = sum(1 for r in rows if float(r["within_bound"]) >= 1.0)
        within_bound_fraction = round(within_full / trials, 6)
    else:
        within_bound_fraction = None
    # partitioned == some *surviving* pair severed: dead endpoints are a
    # casualty count, not a partition (alive_connectivity excludes them)
    partitioned = sum(
        1 for r in rows if float(r["alive_connectivity"]) < 1.0
    )
    return SweepSummary(
        spec=plan.canonical,
        model=plan.model.key,
        faults=plan.model.faults,
        trials=trials,
        seed=plan.seed,
        workload=plan.workload,
        messages=plan.messages if prepared.simulate else 0,
        bound=plan.bound,
        quantiles=quantiles,
        within_bound_fraction=within_bound_fraction,
        partitioned_fraction=round(partitioned / trials, 6),
        backend=plan.backend,
        downgrade_reason=prepared.downgrade,
        adaptive=adaptive_summary_block(prepared, rows),
    )


def _legacy_tasks(plan: _SweepPlan, trials: int) -> list[tuple]:
    """The legacy backend's one-task-per-trial argument tuples."""
    return [
        (
            plan.canonical,
            plan.model,
            trial_seed(plan.seed, i),
            plan.workload,
            plan.messages,
            plan.seed,
            plan.bound,
            plan.max_slots,
            plan.baseline_mean_latency,
        )
        for i in range(trials)
    ]


def _execute(
    prepared: _PreparedSweep,
    workers: int | None,
    executor: "PersistentSweepExecutor | None" = None,
    extra_stop=None,
) -> list[dict]:
    """Run one prepared sweep's trials on the plan's backend.

    With ``executor`` the trials run on its (persistent) pool; without
    one, this is the one-shot path that spawns and tears down a pool
    per call.  Row lists are byte-identical either way.  A sweep with
    ``ci_target`` set runs the sequential-stopping wave loop instead
    of one fixed batch (``extra_stop`` is its optional second stopping
    rule -- the design search's early discard).
    """
    plan, trials = prepared.plan, prepared.trials
    if prepared.ci_target is not None:
        if executor is not None:
            return run_adaptive(prepared, executor, extra_stop=extra_stop)
        with PersistentSweepExecutor(workers) as owned:
            return run_adaptive(prepared, owned, extra_stop=extra_stop)
    if executor is not None:
        return executor.run(prepared)
    parallel = workers is not None and workers > 1
    if plan.backend == "legacy":
        tasks = _legacy_tasks(plan, trials)
        if parallel:
            with multiprocessing.Pool(processes=workers) as pool:
                return pool.map(
                    _run_trial, tasks, chunksize=max(1, trials // (workers * 4))
                )
        return [_run_trial(t) for t in tasks]
    if not parallel:
        ctx = _make_context(plan, net=prepared.net)
        start_us = now_us()
        rows = ctx.run_range(0, trials)
        _observe_inline_run(plan, trials, (now_us() - start_us) / 1e6)
        return rows
    dispatched_us = now_us()
    if plan.backend == "vectorized":
        # topology arrays go into shared memory once; workers attach
        meta, handles = _export_shared(
            _TopologyArrays.from_network(prepared.net)
        )
        try:
            with multiprocessing.Pool(
                processes=workers,
                initializer=_init_sweep_worker,
                initargs=(plan, meta),
            ) as pool:
                chunks = pool.map(_run_sweep_chunk, _index_chunks(trials, workers))
        finally:
            _release_shared(handles)
    else:
        with multiprocessing.Pool(
            processes=workers,
            initializer=_init_sweep_worker,
            initargs=(plan,),
        ) as pool:
            chunks = pool.map(_run_sweep_chunk, _index_chunks(trials, workers))
    _absorb_chunk_metas((meta for _, meta in chunks), dispatched_us)
    return [row for rows, _ in chunks for row in rows]


def survivability_sweep(
    spec,
    model: FaultModel | str = "coupler",
    *,
    faults: int | None = None,
    trials: int = 100,
    seed: int = 0,
    workers: int | None = None,
    workload: str = "uniform",
    messages: int = 60,
    bound: int | None = None,
    max_slots: int = 100_000,
    metrics: str = "full",
    backend: str = "batched",
    ci_target: float | None = None,
    sampling: str = "uniform",
    _net=None,
    _executor: PersistentSweepExecutor | None = None,
    _extra_stop=None,
) -> SweepSummary:
    """Monte-Carlo survivability of ``spec`` under ``model`` faults.

    ``model`` is a :class:`FaultModel` instance or a registered key
    (``"coupler"``, ``"processor"``, ``"link"``, ``"adversarial"``,
    ``"group"``); string keys get intensity ``faults`` (default 1).
    Passing ``faults`` alongside a :class:`FaultModel` instance is an
    error -- the instance already carries its intensity.  ``workers``
    counts ``multiprocessing`` processes (``None``/``0``/``1`` runs
    inline); the aggregate is identical for every worker count.

    ``metrics`` selects scoring depth: ``"full"`` (everything,
    including the degraded slotted simulation), ``"paths"``
    (connectivity + route quality, no simulation) or
    ``"connectivity"`` (surviving-base reachability only -- the
    design-search fast path).  ``backend`` selects the executor:
    ``"batched"`` (default; shared built network per process),
    ``"vectorized"`` (shared-memory topology arrays + batched numpy
    scoring; ``connectivity`` and ``paths`` metrics, byte-identical to
    ``batched`` -- the 10^5-10^6-trial path) or ``"legacy"`` (the
    original rebuild-per-trial path, ``full`` metrics only).  All
    backends produce byte-identical JSON for the same seed wherever
    their metrics modes overlap.  Vectorized ``paths`` requests for
    families with structured ``fault_route`` hooks (stack-Kautz) run
    on ``batched`` instead, with the reason recorded on the summary's
    ``downgrade_reason``/``backend`` attributes -- identical numbers,
    never a silent divergence.  ``_net`` is internal: callers that
    already built the spec's network (the design search evaluates
    shape filters on it first) pass it to skip the rebuild; it MUST
    be the machine ``spec`` names.  ``_executor`` (internal, session
    plumbing) runs the trials on an injected
    :class:`PersistentSweepExecutor` instead of a one-shot pool.

    ``ci_target`` switches the sweep to sequential stopping: trials
    run in deterministic waves until the 95% confidence interval on
    the survival probability has half-width at most ``ci_target`` (or
    the ``trials`` cap is hit); the summary's ``adaptive`` block then
    reports ``trials_spent`` vs ``trials_requested`` and the final CI.
    ``sampling`` picks the trial-allocation strategy: ``"uniform"``
    (default, the plain sampler), ``"stratified"`` (trials allocated
    across fault-cardinality strata, mass-reweighted estimator) or
    ``"importance"`` (cardinality draws biased toward the rare
    high-fault tail, likelihood-ratio reweighted).  Both knobs
    preserve byte-identity at any worker count; non-uniform sampling
    needs a fault model with a known cardinality distribution
    (``coupler``, ``processor`` or ``bernoulli``).  ``_extra_stop``
    (internal, design-search plumbing) is a second stopping predicate
    evaluated per wave.

    >>> s = survivability_sweep("pops(2,2)", "coupler", trials=4, seed=1,
    ...                         messages=8)
    >>> s.trials
    4
    >>> c = survivability_sweep("pops(2,2)", "coupler", trials=4, seed=1,
    ...                         metrics="connectivity")
    >>> sorted(c.quantiles)
    ['alive_connectivity', 'connectivity', 'reachable_groups']
    >>> v = survivability_sweep("pops(2,2)", "coupler", trials=4, seed=1,
    ...                         metrics="connectivity", backend="vectorized")
    >>> v.to_json() == c.to_json()
    True
    """
    with span("sweep.prepare", spec=str(spec), trials=trials,
              backend=backend):
        prepared = _prepare_sweep(
            spec,
            model,
            faults=faults,
            trials=trials,
            seed=seed,
            workload=workload,
            messages=messages,
            bound=bound,
            max_slots=max_slots,
            metrics=metrics,
            backend=backend,
            ci_target=ci_target,
            sampling=sampling,
            _net=_net,
        )
    with span("sweep.execute", spec=prepared.plan.canonical, trials=trials,
              backend=prepared.plan.backend, metrics=prepared.plan.metrics):
        rows = _execute(prepared, workers, _executor, extra_stop=_extra_stop)
    with span("sweep.summarize", spec=prepared.plan.canonical, trials=trials):
        return _summarize(prepared, rows)


def _reject_legacy_pooled(prepared: _PreparedSweep) -> None:
    """The legacy reference executor deliberately has no pooled form."""
    if prepared.plan.backend == "legacy":
        raise ValueError(
            "pooled sweeps support the batched and vectorized backends; "
            "the legacy reference path runs per-sweep only"
        )


def pooled_survivability_sweeps(
    requests,
    *,
    workers: int | None = None,
    executor: PersistentSweepExecutor | None = None,
) -> list[SweepSummary]:
    """Run many survivability sweeps on ONE shared worker pool.

    ``requests`` is an iterable of dicts of
    :func:`survivability_sweep` keyword arguments (``spec`` required,
    same defaults; ``backend`` may be ``"batched"`` or
    ``"vectorized"`` -- ``"legacy"`` has no pooled form, and
    per-request ``workers`` is rejected since the pool is shared).
    Instead of
    opening one pool per sweep, every sweep's trial-index chunks are
    scheduled onto a single pool, so many small sweeps -- the design
    search's candidates -- keep all workers busy at once.  Workers
    build each sweep's context lazily and cache it per process.

    Returns the summaries in request order; each is **byte-identical**
    to what :func:`survivability_sweep` returns for the same request,
    whatever ``workers`` is (``None``/``0``/``1`` runs inline).
    ``executor`` (session plumbing) schedules the same chunks on an
    injected :class:`PersistentSweepExecutor` instead of a one-shot
    pool; ``workers`` is ignored in that case.

    >>> a, b = pooled_survivability_sweeps(
    ...     [dict(spec="pops(2,2)", trials=3, metrics="connectivity"),
    ...      dict(spec="sk(2,2,2)", trials=3, metrics="connectivity")])
    >>> (a.spec, b.spec)
    ('pops(2,2)', 'sk(2,2,2)')
    """
    requests = list(requests)
    for request in requests:
        if "workers" in request:
            raise ValueError(
                "per-request 'workers' is not supported; the pool is "
                "shared -- pass workers= to pooled_survivability_sweeps"
            )
    if executor is not None:
        # session plumbing: the injected executor owns pool lifetime.
        # Inline executors run one request at a time (networks released
        # as the context cache turns over); parallel ones drop the
        # parent-side nets and let workers build plan contexts lazily.
        if not executor.parallel:
            summaries = []
            for request in requests:
                p = _prepare_sweep(**request)
                _reject_legacy_pooled(p)
                if p.ci_target is not None:
                    rows = run_adaptive(p, executor)
                else:
                    rows = executor.run(p)
                summaries.append(_summarize(p, rows))
            return summaries
        prepared_list: list[_PreparedSweep] = []
        for request in requests:
            p = _prepare_sweep(**request)
            _reject_legacy_pooled(p)
            prepared_list.append(replace(p, net=None))
        if any(p.ci_target is not None for p in prepared_list):
            # adaptive requests need their per-wave stop decisions, so
            # a mixed batch runs request-by-request on the shared pool
            # (losing cross-sweep chunk interleaving, never bytes)
            return [
                _summarize(
                    p,
                    run_adaptive(p, executor)
                    if p.ci_target is not None
                    else executor.run(p),
                )
                for p in prepared_list
            ]
        rows_lists = executor.run_many(prepared_list)
        return [
            _summarize(p, rows)
            for p, rows in zip(prepared_list, rows_lists)
        ]
    if any(r.get("ci_target") is not None for r in requests):
        # one-shot adaptive batches borrow a temporary persistent pool:
        # wave scheduling needs an executor that survives across waves
        with PersistentSweepExecutor(workers) as owned:
            return pooled_survivability_sweeps(requests, executor=owned)
    if workers is None or workers <= 1:
        # prepare-and-execute one request at a time so each built
        # network is released before the next candidate's is built
        summaries = []
        for request in requests:
            p = _prepare_sweep(**request)
            _reject_legacy_pooled(p)
            summaries.append(_summarize(p, _execute(p, None)))
        return summaries
    # vectorized plans ship their topology through shared memory here
    # too: the parent exports each candidate's arrays once and releases
    # the built network immediately (workers attach the arrays, and
    # batched workers rebuild from the canonical spec).  Built Python
    # networks are held one at a time; the flat shm segments -- much
    # smaller -- do stay allocated for the whole pool run
    prepared: list[_PreparedSweep] = []
    metas: list = []
    handles: list[shared_memory.SharedMemory] = []
    try:
        for request in requests:
            p = _prepare_sweep(**request)
            _reject_legacy_pooled(p)
            if p.plan.backend == "vectorized":
                meta, owned = _export_shared(
                    _TopologyArrays.from_network(p.net)
                )
                metas.append(meta)
                handles.extend(owned)
            else:
                metas.append(None)
            prepared.append(replace(p, net=None))
        tasks = [
            (index, start, stop)
            for index, p in enumerate(prepared)
            for start, stop in _index_chunks(p.trials, workers)
        ]
        plans = tuple(p.plan for p in prepared)
        dispatched_us = now_us()
        with multiprocessing.Pool(
            processes=workers,
            initializer=_init_pool_worker,
            initargs=(plans, tuple(metas)),
        ) as pool:
            results = pool.map(_run_pool_chunk, tasks)
    finally:
        _release_shared(handles)
    _absorb_chunk_metas((meta for _, _, _, meta in results), dispatched_us)
    rows_by_sweep: list[dict[int, list[dict]]] = [{} for _ in prepared]
    for plan_index, start, rows, _meta in results:
        rows_by_sweep[plan_index][start] = rows
    summaries = []
    for index, p in enumerate(prepared):
        ordered = [
            row
            for start in sorted(rows_by_sweep[index])
            for row in rows_by_sweep[index][start]
        ]
        summaries.append(_summarize(p, ordered))
    return summaries
