"""Parallel Monte-Carlo survivability sweeps.

Fan ``trials`` independent fault scenarios over ``multiprocessing``
workers and aggregate the per-trial
:class:`~repro.resilience.metrics.ResilienceMetrics` rows into quantile
summaries.  Determinism is a hard requirement here: per-trial seeds
come from :func:`~repro.resilience.faults.trial_seed` (a function of
the sweep seed and the trial index only), rows are re-ordered by trial
index, and quantiles use exact nearest-rank selection -- so the same
seed produces **byte-identical** JSON for any worker count.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass, field

from .degrade import DegradedNetwork
from .faults import FaultModel, make_fault_model, trial_seed
from .metrics import measure

__all__ = ["SweepSummary", "survivability_sweep"]

#: Per-trial metric keys that get quantile summaries.
_SUMMARIZED = (
    "connectivity",
    "alive_connectivity",
    "reachable_groups",
    "max_path_length",
    "mean_stretch",
    "within_bound",
    "delivery_ratio",
    "latency_inflation",
    "mean_latency",
    "dropped",
    "slots",
)


@dataclass(frozen=True)
class SweepSummary:
    """Aggregated result of one survivability sweep."""

    spec: str
    model: str
    faults: int
    trials: int
    seed: int
    workload: str
    messages: int
    bound: int
    #: metric -> {"mean": .., "p05": .., "p50": .., "p95": .., "min": .., "max": ..}
    quantiles: dict[str, dict[str, float]] = field(default_factory=dict)
    #: fraction of trials in which every routed pair met the bound
    within_bound_fraction: float = 1.0
    #: fraction of trials in which some surviving pair was severed
    partitioned_fraction: float = 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view (stable key order via ``to_json``)."""
        return {
            "spec": self.spec,
            "model": self.model,
            "faults": self.faults,
            "trials": self.trials,
            "seed": self.seed,
            "workload": self.workload,
            "messages": self.messages,
            "bound": self.bound,
            "quantiles": self.quantiles,
            "within_bound_fraction": self.within_bound_fraction,
            "partitioned_fraction": self.partitioned_fraction,
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent, rounded floats.

        The byte-identity contract of the sweep: same spec/model/seed
        gives the same string regardless of worker count.
        """
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def formatted(self) -> str:
        """Human-readable quantile table."""
        lines = [
            f"{self.spec} under {self.faults} {self.model} fault(s): "
            f"{self.trials} trials, seed {self.seed}, "
            f"workload {self.workload} x{self.messages}",
            f"  path-length bound diameter+2 = {self.bound}: "
            f"{100 * self.within_bound_fraction:.1f}% of trials within; "
            f"{100 * self.partitioned_fraction:.1f}% partitioned",
            f"  {'metric':<18} {'mean':>9} {'p05':>9} {'p50':>9} {'p95':>9}",
        ]
        for key in _SUMMARIZED:
            q = self.quantiles.get(key)
            if q is None:
                continue
            lines.append(
                f"  {key:<18} {q['mean']:>9.4f} {q['p05']:>9.4f} "
                f"{q['p50']:>9.4f} {q['p95']:>9.4f}"
            )
        return "\n".join(lines)


def _nearest_rank(sorted_values: list[float], q: float) -> float:
    """Exact nearest-rank quantile (no interpolation, no float fuzz).

    ``q`` is interpreted in exact hundredths so the rank computation
    is pure integer arithmetic: ``rank = ceil(pct * n / 100)``.
    """
    if not sorted_values:
        return 0.0
    pct = round(q * 100)
    rank = max(1, -(-pct * len(sorted_values) // 100))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _run_trial(task) -> dict[str, object]:
    """One Monte-Carlo trial; top-level so it pickles to workers."""
    (
        canonical,
        model,
        tseed,
        workload,
        messages,
        wseed,
        bound,
        max_slots,
        baseline_mean_latency,
    ) = task
    from ..core.spec import NetworkSpec

    net = NetworkSpec.parse(canonical).build()
    scenario = model.scenario(canonical, net, tseed)
    degraded = DegradedNetwork(net, scenario)
    row = measure(
        degraded,
        workload=workload,
        messages=messages,
        seed=wseed,
        bound=bound,
        max_slots=max_slots,
        baseline_mean_latency=baseline_mean_latency,
    )
    return row.as_dict()


def survivability_sweep(
    spec,
    model: FaultModel | str = "coupler",
    *,
    faults: int | None = None,
    trials: int = 100,
    seed: int = 0,
    workers: int | None = None,
    workload: str = "uniform",
    messages: int = 60,
    bound: int | None = None,
    max_slots: int = 100_000,
) -> SweepSummary:
    """Monte-Carlo survivability of ``spec`` under ``model`` faults.

    ``model`` is a :class:`FaultModel` instance or a registered key
    (``"coupler"``, ``"processor"``, ``"link"``, ``"adversarial"``,
    ``"group"``); string keys get intensity ``faults`` (default 1).
    Passing ``faults`` alongside a :class:`FaultModel` instance is an
    error -- the instance already carries its intensity.  ``workers``
    counts ``multiprocessing`` processes (``None``/``0``/``1`` runs
    inline); the aggregate is identical for every worker count.

    >>> s = survivability_sweep("pops(2,2)", "coupler", trials=4, seed=1,
    ...                         messages=8)
    >>> s.trials
    4
    """
    from ..core.spec import NetworkSpec
    from ..core.workloads import resolve_workload
    from ..simulation.network_sim import run_traffic

    parsed = NetworkSpec.parse(spec)
    if isinstance(model, str):
        model = make_fault_model(model, 1 if faults is None else faults)
    elif faults is not None:
        raise ValueError(
            "faults applies to string model keys; a FaultModel instance "
            "already carries its intensity"
        )
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    net = parsed.build()
    resolved_bound = net.diameter + 2 if bound is None else bound
    canonical = parsed.canonical()
    # The intact baseline depends only on (workload, messages, seed):
    # run it once here instead of once per trial.
    from ..core.registry import get_family

    traffic = resolve_workload(workload, net, messages=messages, seed=seed)
    baseline = run_traffic(
        get_family(parsed.family).simulator(net), traffic, max_slots=max_slots
    )
    tasks = [
        (
            canonical,
            model,
            trial_seed(seed, i),
            workload,
            messages,
            seed,
            resolved_bound,
            max_slots,
            baseline.mean_latency,
        )
        for i in range(trials)
    ]
    if workers is not None and workers > 1:
        with multiprocessing.Pool(processes=workers) as pool:
            rows = pool.map(
                _run_trial, tasks, chunksize=max(1, trials // (workers * 4))
            )
    else:
        rows = [_run_trial(t) for t in tasks]

    quantiles: dict[str, dict[str, float]] = {}
    for key in _SUMMARIZED:
        values = sorted(float(r[key]) for r in rows)
        quantiles[key] = {
            "mean": round(sum(values) / len(values), 6),
            "p05": round(_nearest_rank(values, 0.05), 6),
            "p50": round(_nearest_rank(values, 0.50), 6),
            "p95": round(_nearest_rank(values, 0.95), 6),
            "min": round(values[0], 6),
            "max": round(values[-1], 6),
        }
    within_full = sum(1 for r in rows if float(r["within_bound"]) >= 1.0)
    # partitioned == some *surviving* pair severed: dead endpoints are a
    # casualty count, not a partition (alive_connectivity excludes them)
    partitioned = sum(
        1 for r in rows if float(r["alive_connectivity"]) < 1.0
    )
    return SweepSummary(
        spec=canonical,
        model=model.key,
        faults=model.faults,
        trials=trials,
        seed=seed,
        workload=workload,
        messages=messages,
        bound=resolved_bound,
        quantiles=quantiles,
        within_bound_fraction=round(within_full / trials, 6),
        partitioned_fraction=round(partitioned / trials, 6),
    )
