"""Slotted discrete-event simulator for multi-OPS networks.

The paper designs networks but never runs them; this simulator closes
that gap (simpy is unavailable offline, so the engine is self-
contained).  The model matches the paper's hardware assumptions:

* time advances in synchronous *slots* (single-wavelength OPS couplers
  carry one message per slot);
* a coupler is a hyperarc: the slot's single transmission is heard by
  *every* target processor;
* a processor owns one transmitter per out-coupler, so it may drive
  several *different* couplers in one slot, but never one coupler
  twice;
* contention on a coupler is resolved by a pluggable arbitration
  policy (:mod:`repro.simulation.protocol`).

Routing is delegated to a ``next_coupler(processor, message)`` callback
so the same engine executes POPS (always one hop) and stack-Kautz
(label-induced multi-hop) -- or any future topology.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..hypergraphs.hypergraph import DirectedHypergraph
from .protocol import ArbitrationPolicy, OldestFirst

__all__ = ["Message", "SlotStats", "SlottedSimulator"]


@dataclass
class Message:
    """One message flowing through the simulated network."""

    ident: int
    src: int
    dst: int
    inject_slot: int
    current: int = -1  # processor currently holding the message
    hops: int = 0
    deliver_slot: int = -1
    drop_slot: int = -1
    trace: list[int] = field(default_factory=list)  # couplers used

    def __post_init__(self) -> None:
        if self.current < 0:
            self.current = self.src

    @property
    def delivered(self) -> bool:
        """Whether the message has reached its destination."""
        return self.deliver_slot >= 0

    @property
    def dropped(self) -> bool:
        """Whether the message was dropped (no surviving route)."""
        return self.drop_slot >= 0

    @property
    def settled(self) -> bool:
        """Delivered or dropped: the message needs no further slots."""
        return self.delivered or self.dropped

    @property
    def latency(self) -> int:
        """Slots from injection to delivery (valid once delivered)."""
        if not self.delivered:
            raise ValueError(f"message {self.ident} not delivered")
        return self.deliver_slot - self.inject_slot


@dataclass(frozen=True)
class SlotStats:
    """Per-slot accounting."""

    slot: int
    transmissions: int
    contended_couplers: int
    delivered: int
    dropped: int = 0


class SlottedSimulator:
    """Execute message batches over a hypergraph of OPS couplers.

    Parameters
    ----------
    network:
        The hypergraph: node ids are processors, hyperarcs are
        couplers.
    next_coupler:
        ``(holder, message) -> coupler index``; must return a hyperarc
        in which ``holder`` is a source.  Called only while
        ``holder != message.dst``.
    relay_of:
        ``(coupler, message) -> processor``: which of the coupler's
        targets picks the message up.  Default: the destination if it
        is a target, else the target with the same in-group offset as
        the destination (works for stack-graphs where groups are
        contiguous equal blocks).
    policy:
        Arbitration among same-coupler requests (default: oldest
        injection first, ties by message id -- deterministic).
    disabled_couplers:
        Hyperarc indices that are *dead* (failed OPS couplers).
        Passing this (even an empty set) opts the engine into
        degraded mode: a message routed onto a dead coupler -- or for
        which ``next_coupler`` returns ``-1``, meaning "no surviving
        route" -- is dropped and counted in :class:`SlotStats`, and
        the run still terminates.  Left at ``None`` (the default) the
        behaviour is exactly the historical engine: an out-of-range
        coupler from the router is a loud ``RuntimeError``, never a
        silent drop.
    """

    def __init__(
        self,
        network: DirectedHypergraph,
        next_coupler: Callable[[int, Message], int],
        relay_of: Callable[[int, Message], int] | None = None,
        policy: ArbitrationPolicy | None = None,
        disabled_couplers: frozenset[int] | None = None,
    ) -> None:
        self.network = network
        self.next_coupler = next_coupler
        self.relay_of = relay_of if relay_of is not None else self._default_relay
        self.policy = policy if policy is not None else OldestFirst()
        self._allow_drops = disabled_couplers is not None
        self.disabled_couplers = frozenset(disabled_couplers or ())
        self.messages: list[Message] = []
        self.slot_log: list[SlotStats] = []
        self.coupler_busy = [0] * network.num_hyperarcs
        self._now = 0

    # ------------------------------------------------------------------
    def _default_relay(self, coupler: int, msg: Message) -> int:
        targets = self.network.hyperarc(coupler).targets
        if msg.dst in targets:
            return msg.dst
        # Same offset within the target block as the destination has in
        # its own block (keeps relays spread across group members).
        return targets[msg.dst % len(targets)]

    # ------------------------------------------------------------------
    def inject(self, traffic: Sequence[tuple[int, int, int]]) -> None:
        """Add messages: ``(src, dst, inject_slot)`` triples."""
        base = len(self.messages)
        for i, (src, dst, slot) in enumerate(traffic):
            if slot < self._now:
                raise ValueError(
                    f"cannot inject into past slot {slot} (now {self._now})"
                )
            self.messages.append(Message(base + i, src, dst, slot))

    def run(self, max_slots: int = 100_000) -> None:
        """Advance slots until every message is settled (or the cap).

        Settled means delivered, or dropped on a dead coupler.  Raises
        ``RuntimeError`` on the cap -- a stuck message means a routing
        bug, and silence would hide it.
        """
        while not self.all_settled():
            if self._now >= max_slots:
                stuck = [m.ident for m in self.messages if not m.settled]
                raise RuntimeError(
                    f"slot cap {max_slots} reached with messages stuck: {stuck[:10]}"
                )
            self.step()

    def step(self) -> SlotStats:
        """Execute one slot."""
        now = self._now
        # Messages delivered at injection (src == dst) cost zero slots.
        for m in self.messages:
            if not m.settled and m.inject_slot <= now and m.current == m.dst:
                m.deliver_slot = max(m.inject_slot, now)

        # Gather requests: active messages ask for their next coupler.
        requests: dict[int, list[Message]] = {}
        dropped = 0
        for m in self.messages:
            if m.settled or m.inject_slot > now:
                continue
            coupler = self.next_coupler(m.current, m)
            if coupler < 0 or coupler in self.disabled_couplers:
                if not self._allow_drops:
                    # intact engine: a bad coupler is a routing bug
                    raise RuntimeError(
                        f"routing returned invalid coupler {coupler} "
                        f"for message {m.ident} at {m.current}"
                    )
                m.drop_slot = now
                dropped += 1
                continue
            ha = self.network.hyperarc(coupler)
            if m.current not in ha.sources:
                raise RuntimeError(
                    f"routing returned coupler {coupler} not sourced at {m.current}"
                )
            requests.setdefault(coupler, []).append(m)

        transmissions = 0
        contended = 0
        delivered = 0
        for coupler, msgs in requests.items():
            # One transmitter per (processor, coupler): a processor
            # holding several messages for one coupler still sends one.
            winner = self.policy.pick(msgs, now)
            if len(msgs) > 1:
                contended += 1
            transmissions += 1
            self.coupler_busy[coupler] += 1
            relay = self.relay_of(coupler, winner)
            ha = self.network.hyperarc(coupler)
            if relay not in ha.targets:
                raise RuntimeError(
                    f"relay {relay} is not a target of coupler {coupler}"
                )
            winner.current = relay
            winner.hops += 1
            winner.trace.append(coupler)
            if relay == winner.dst:
                winner.deliver_slot = now
                delivered += 1

        stats = SlotStats(now, transmissions, contended, delivered, dropped)
        self.slot_log.append(stats)
        self._now += 1
        return stats

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current slot number."""
        return self._now

    def all_delivered(self) -> bool:
        """Whether every injected message has arrived."""
        return all(m.delivered for m in self.messages)

    def all_settled(self) -> bool:
        """Whether every message is delivered or dropped."""
        return all(m.settled for m in self.messages)

    def num_dropped(self) -> int:
        """How many messages were dropped on dead couplers."""
        return sum(1 for m in self.messages if m.dropped)

    def verify_conservation(self) -> bool:
        """No message lost or duplicated: every message settled exactly
        once, with hop count == trace length and a coupler-connected
        trace from src to dst (dropped messages are exempt from the
        trace walk but must not also claim delivery)."""
        for m in self.messages:
            if m.dropped:
                if m.delivered:
                    return False
                continue
            if not m.delivered:
                return False
            if m.hops != len(m.trace):
                return False
            cur = m.src
            for c in m.trace:
                ha = self.network.hyperarc(c)
                if cur not in ha.sources:
                    return False
                nxt = [t for t in ha.targets]
                # the relay recorded by the run is implicit; re-walk via dst
                cur = m.dst if m.dst in nxt else nxt[m.dst % len(nxt)]
            if cur != m.dst:
                return False
        return True
