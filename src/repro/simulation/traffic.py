"""Workload generators for the simulator.

Each generator returns ``(src, dst, inject_slot)`` triples.  Seeds are
explicit everywhere: a benchmark run is a pure function of its
parameters.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_traffic",
    "permutation_traffic",
    "hotspot_traffic",
    "broadcast_traffic",
    "group_local_traffic",
    "bernoulli_stream",
]


def uniform_traffic(
    num_processors: int, num_messages: int, seed: int = 0
) -> list[tuple[int, int, int]]:
    """``num_messages`` one-shot messages with uniform random src != dst."""
    if num_processors < 2:
        raise ValueError("need at least 2 processors")
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(num_messages):
        src = int(rng.integers(num_processors))
        dst = int(rng.integers(num_processors - 1))
        if dst >= src:
            dst += 1
        out.append((src, dst, 0))
    return out


def permutation_traffic(
    num_processors: int, seed: int = 0
) -> list[tuple[int, int, int]]:
    """One message per processor along a random fixed-point-free-ish
    permutation (fixed points are re-targeted to the next processor)."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(num_processors)
    out = []
    for src in range(num_processors):
        dst = int(perm[src])
        if dst == src:
            dst = (src + 1) % num_processors
        out.append((src, dst, 0))
    return out


def hotspot_traffic(
    num_processors: int,
    num_messages: int,
    hotspot: int = 0,
    fraction: float = 0.5,
    seed: int = 0,
) -> list[tuple[int, int, int]]:
    """Uniform traffic with ``fraction`` of messages aimed at ``hotspot``.

    The classic stress test for broadcast media: the hotspot's inbound
    couplers serialize, and multi-hop topologies feel it more.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(num_messages):
        src = int(rng.integers(num_processors))
        if rng.random() < fraction and src != hotspot:
            dst = hotspot
        else:
            dst = int(rng.integers(num_processors - 1))
            if dst >= src:
                dst += 1
        out.append((src, dst, 0))
    return out


def broadcast_traffic(
    num_processors: int, src: int = 0
) -> list[tuple[int, int, int]]:
    """One message from ``src`` to every other processor (unicast fan-out).

    Collectives in :mod:`repro.comm` do this in O(diameter) slots by
    exploiting the one-to-many couplers; pushing it through unicast
    routing measures what that optimization is worth.
    """
    return [(src, dst, 0) for dst in range(num_processors) if dst != src]


def group_local_traffic(
    num_processors: int,
    group_size: int,
    num_messages: int,
    local_fraction: float = 0.8,
    seed: int = 0,
) -> list[tuple[int, int, int]]:
    """Traffic with locality: most messages stay within the source group.

    Models the workload multi-OPS groups are designed for -- tight
    clusters with occasional global exchange.
    """
    if num_processors % group_size:
        raise ValueError("group_size must divide num_processors")
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(num_messages):
        src = int(rng.integers(num_processors))
        base = (src // group_size) * group_size
        if rng.random() < local_fraction and group_size > 1:
            dst = base + int(rng.integers(group_size - 1))
            if dst >= src:
                dst += 1
        else:
            dst = int(rng.integers(num_processors - 1))
            if dst >= src:
                dst += 1
        out.append((src, dst, 0))
    return out


def bernoulli_stream(
    num_processors: int,
    num_slots: int,
    rate: float,
    seed: int = 0,
) -> list[tuple[int, int, int]]:
    """Open-loop arrivals: each processor injects w.p. ``rate`` per slot.

    The load knob for throughput/saturation curves (EXT-2): offered
    load is ``rate`` messages/processor/slot.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    rng = np.random.default_rng(seed)
    out = []
    for slot in range(num_slots):
        for src in range(num_processors):
            if rng.random() < rate:
                dst = int(rng.integers(num_processors - 1))
                if dst >= src:
                    dst += 1
                out.append((src, dst, slot))
    return out
