"""Arbitration policies for single-wavelength OPS couplers.

When several processors want the same coupler in the same slot, the
distributed control protocol must pick one (the paper's companion work
[11] argues distributed control is practical on these topologies; [25]
studies age/distance priorities).  Policies here are deterministic
given their inputs, so simulations are reproducible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import Message

__all__ = [
    "ArbitrationPolicy",
    "OldestFirst",
    "RoundRobin",
    "RandomChoice",
    "FurthestFirst",
]


class ArbitrationPolicy(Protocol):
    """Picks the winning message among same-coupler requests."""

    def pick(self, candidates: "list[Message]", slot: int) -> "Message":
        """Return the message that transmits this slot."""
        ...


class OldestFirst:
    """Oldest injection wins; ties broken by message id (age priority)."""

    def pick(self, candidates: "list[Message]", slot: int) -> "Message":
        _ = slot
        return min(candidates, key=lambda m: (m.inject_slot, m.ident))


class RoundRobin:
    """Cycle priority over source processors slot by slot.

    Guarantees starvation freedom: the processor with id congruent to
    the slot (mod a rotating offset) gets first claim.
    """

    def pick(self, candidates: "list[Message]", slot: int) -> "Message":
        return min(
            candidates,
            key=lambda m: ((m.current - slot) % (max(c.current for c in candidates) + 1), m.ident),
        )


class RandomChoice:
    """Uniform random winner from a seeded generator (reproducible)."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)

    def pick(self, candidates: "list[Message]", slot: int) -> "Message":
        _ = slot
        ordered = sorted(candidates, key=lambda m: m.ident)
        return ordered[int(self.rng.integers(len(ordered)))]


class FurthestFirst:
    """Distance priority: the message injected longest ago wins, then
    the one with more hops already taken (it has consumed more network
    resources -- dropping it now would waste them), then id."""

    def pick(self, candidates: "list[Message]", slot: int) -> "Message":
        _ = slot
        return min(
            candidates, key=lambda m: (m.inject_slot, -m.hops, m.ident)
        )
