"""Adapters wiring the paper's networks into the slotted simulator.

Each adapter builds the hypergraph, precomputes the next-coupler
function from the network's own routing algorithm, and hands back a
ready :class:`~repro.simulation.engine.SlottedSimulator`.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..networks.pops import POPSNetwork
from ..networks.stack_imase_itoh import StackImaseItohNetwork
from ..networks.stack_kautz import StackKautzNetwork
from ..routing.tables import build_routing_table
from .engine import Message, SlottedSimulator
from .metrics import SimulationReport, summarize
from .protocol import ArbitrationPolicy

__all__ = [
    "pops_simulator",
    "stack_kautz_simulator",
    "stack_imase_itoh_simulator",
    "simulator_for",
    "run_traffic",
]


def simulator_for(net, policy: ArbitrationPolicy | None = None) -> SlottedSimulator:
    """A ready simulator for *any* registered network, by instance.

    Dispatches through the family registry
    (:func:`repro.core.registry.family_for_network`), so a newly
    registered family is simulatable here with no edits to this module.

    >>> from repro.networks import POPSNetwork
    >>> simulator_for(POPSNetwork(4, 2)).network.num_hyperarcs
    4
    """
    from ..core.registry import family_for_network

    return family_for_network(net).simulator(net, policy)


def pops_simulator(
    net: POPSNetwork, policy: ArbitrationPolicy | None = None
) -> SlottedSimulator:
    """Simulator over ``POPS(t, g)``: every route is the single coupler
    ``(group(src), group(dst))``.

    Hyperarc order in the stack-graph model is the CSR arc order of
    ``K+_g``, i.e. coupler ``(i, j)`` is hyperarc ``g*i + j``.
    """
    model = net.stack_graph_model()
    g = net.num_groups

    def next_coupler(holder: int, msg: Message) -> int:
        i = net.group_of(holder)
        j = net.group_of(msg.dst)
        return g * i + j

    return SlottedSimulator(model, next_coupler, policy=policy)


def stack_kautz_simulator(
    net: StackKautzNetwork, policy: ArbitrationPolicy | None = None
) -> SlottedSimulator:
    """Simulator over ``SK(s, d, k)`` with label-induced group routing.

    The next-hop group is resolved by an exact routing table over the
    loopless base graph (identical to label routing -- the equivalence
    is itself a test), then mapped to the hyperarc of that base arc;
    same-group delivery uses the loop coupler.
    """
    base = net.base_graph()
    model = net.stack_graph_model()
    table = build_routing_table(base.without_loops())
    arc_index = _arc_index_map(base)
    s = net.stacking_factor

    def next_coupler(holder: int, msg: Message) -> int:
        u = holder // s
        v_final = msg.dst // s
        if u == v_final:
            return arc_index[(u, u)]  # loop coupler: sibling delivery
        nxt = table.next_hop(u, v_final)
        return arc_index[(u, nxt)]

    return SlottedSimulator(model, next_coupler, policy=policy)


def stack_imase_itoh_simulator(
    net: StackImaseItohNetwork, policy: ArbitrationPolicy | None = None
) -> SlottedSimulator:
    """Simulator over ``SII(s, d, n)`` using table routing on the base."""
    base = net.base_graph()
    model = net.stack_graph_model()
    # Route over the full base (II arcs may include useful loops);
    # delivery to a sibling still uses the dedicated loop coupler.
    table = build_routing_table(base.without_loops())
    arc_index = _arc_index_map(base)
    s = net.stacking_factor

    def next_coupler(holder: int, msg: Message) -> int:
        u = holder // s
        v_final = msg.dst // s
        if u == v_final:
            return arc_index[(u, u)]
        nxt = table.next_hop(u, v_final)
        return arc_index[(u, nxt)]

    return SlottedSimulator(model, next_coupler, policy=policy)


def _arc_index_map(base) -> dict[tuple[int, int], int]:
    """Map base arc (u, v) -> hyperarc index (first of parallels)."""
    index: dict[tuple[int, int], int] = {}
    for idx, (u, v) in enumerate(base.arc_array().tolist()):
        index.setdefault((u, v), idx)
    return index


def run_traffic(
    sim: SlottedSimulator,
    traffic: Sequence[tuple[int, int, int]],
    max_slots: int = 100_000,
) -> SimulationReport:
    """Inject, run to completion, verify conservation, summarize."""
    sim.inject(traffic)
    sim.run(max_slots=max_slots)
    if not sim.verify_conservation():
        raise RuntimeError("conservation check failed: message lost or corrupted")
    return summarize(sim)
