"""Post-run statistics for simulator executions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .engine import SlottedSimulator

__all__ = ["SimulationReport", "summarize"]


@dataclass(frozen=True)
class SimulationReport:
    """Aggregate results of one simulation run."""

    num_messages: int
    slots: int
    mean_latency: float
    p95_latency: float
    max_latency: int
    mean_hops: float
    max_hops: int
    throughput: float  # delivered messages per slot
    coupler_utilization: float  # mean busy fraction over couplers
    max_coupler_utilization: float
    contended_slot_fraction: float
    num_dropped: int = 0  # messages dropped on dead couplers
    delivery_ratio: float = 1.0  # delivered / injected (1.0 when intact)

    def row(self) -> str:
        """One formatted results row (benchmark table output)."""
        return (
            f"msgs={self.num_messages:>6}  slots={self.slots:>6}  "
            f"lat(mean/p95/max)={self.mean_latency:6.2f}/{self.p95_latency:6.2f}/{self.max_latency:>4}  "
            f"hops(mean/max)={self.mean_hops:5.2f}/{self.max_hops}  "
            f"thr={self.throughput:6.3f}  util(mean/max)={self.coupler_utilization:5.3f}/{self.max_coupler_utilization:5.3f}"
        )


def summarize(sim: SlottedSimulator) -> SimulationReport:
    """Build a :class:`SimulationReport` from a completed run.

    Raises ``ValueError`` when messages remain unsettled (reports on
    partial runs would silently mix latencies of unfinished traffic).
    Latency and hop statistics cover *delivered* messages; drops --
    possible only when the network carries dead couplers -- show up in
    ``num_dropped`` and ``delivery_ratio``.
    """
    if not sim.all_settled():
        raise ValueError("cannot summarize: unsettled messages remain")
    delivered = [m for m in sim.messages if m.delivered]
    lat = np.asarray([m.latency for m in delivered], dtype=np.float64)
    hops = np.asarray([m.hops for m in delivered], dtype=np.float64)
    slots = max(sim.now, 1)
    busy = np.asarray(sim.coupler_busy, dtype=np.float64) / slots
    contended = sum(1 for s in sim.slot_log if s.contended_couplers > 0)
    total = len(sim.messages)
    return SimulationReport(
        num_messages=total,
        slots=sim.now,
        mean_latency=float(lat.mean()) if lat.size else 0.0,
        p95_latency=float(np.percentile(lat, 95)) if lat.size else 0.0,
        max_latency=int(lat.max()) if lat.size else 0,
        mean_hops=float(hops.mean()) if hops.size else 0.0,
        max_hops=int(hops.max()) if hops.size else 0,
        throughput=len(delivered) / slots,
        coupler_utilization=float(busy.mean()) if busy.size else 0.0,
        max_coupler_utilization=float(busy.max()) if busy.size else 0.0,
        contended_slot_fraction=contended / slots,
        num_dropped=total - len(delivered),
        delivery_ratio=len(delivered) / total if total else 1.0,
    )
