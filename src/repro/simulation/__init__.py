"""Slotted discrete-event simulation of multi-OPS networks.

* :class:`SlottedSimulator` -- the engine (single-wavelength couplers,
  pluggable arbitration);
* :mod:`repro.simulation.traffic` -- workload generators;
* :mod:`repro.simulation.network_sim` -- adapters for POPS /
  stack-Kautz / stack-Imase-Itoh;
* :func:`summarize` -- latency/throughput/utilization reports.
"""

from .deflection import DeflectionSimulator, stack_kautz_deflection_simulator
from .engine import Message, SlotStats, SlottedSimulator
from .metrics import SimulationReport, summarize
from .network_sim import (
    pops_simulator,
    run_traffic,
    simulator_for,
    stack_imase_itoh_simulator,
    stack_kautz_simulator,
)
from .protocol import (
    ArbitrationPolicy,
    FurthestFirst,
    OldestFirst,
    RandomChoice,
    RoundRobin,
)
from .traffic import (
    bernoulli_stream,
    broadcast_traffic,
    group_local_traffic,
    hotspot_traffic,
    permutation_traffic,
    uniform_traffic,
)

__all__ = [
    "ArbitrationPolicy",
    "DeflectionSimulator",
    "FurthestFirst",
    "Message",
    "OldestFirst",
    "RandomChoice",
    "RoundRobin",
    "SimulationReport",
    "SlotStats",
    "SlottedSimulator",
    "bernoulli_stream",
    "broadcast_traffic",
    "group_local_traffic",
    "hotspot_traffic",
    "permutation_traffic",
    "pops_simulator",
    "run_traffic",
    "simulator_for",
    "stack_imase_itoh_simulator",
    "stack_kautz_deflection_simulator",
    "stack_kautz_simulator",
    "summarize",
    "uniform_traffic",
]
