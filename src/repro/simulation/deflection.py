"""Hot-potato (deflection) routing on multi-OPS networks (ref [25]).

Zhang and Acampora's hot-potato multihop lightwave networks ([25] in
the paper) never buffer: a message that loses arbitration for its
preferred coupler is *deflected* onto any free coupler of its current
group and re-routed from wherever it lands.  On Kautz-style topologies
deflections cost extra hops but remove queueing memory -- the classic
latency/hardware trade, and a natural ablation against the
store-and-forward engine of :mod:`repro.simulation.engine`.

:class:`DeflectionSimulator` reuses the same hypergraph, traffic and
policy machinery.  Each slot:

1. every active message requests its preferred coupler (shortest-path
   next hop from its current group);
2. per coupler, the arbitration policy picks a winner;
3. losers holding a transmitter whose coupler went *unused* this slot
   are deflected through it (hot potato: the message moves anyway);
4. messages that cannot move at all stay put -- with ``strict_hot_potato``
   they raise instead, modeling bufferless hardware.

A deflection ceiling (``max_hops_factor`` times the diameter bound)
guards against livelock; hitting it is reported, not hidden.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..hypergraphs.hypergraph import DirectedHypergraph
from .engine import Message, SlotStats
from .protocol import ArbitrationPolicy, OldestFirst

__all__ = ["DeflectionSimulator"]


class DeflectionSimulator:
    """Bufferless hot-potato execution over OPS couplers.

    Parameters
    ----------
    network:
        Hypergraph of couplers (as for
        :class:`~repro.simulation.engine.SlottedSimulator`).
    preferred_coupler:
        ``(holder, message) -> coupler``: the shortest-path choice.
    out_couplers:
        ``holder -> sequence of couplers`` the holder can transmit
        into; deflections pick from these (in order) when the
        preference is lost.
    relay_of:
        ``(coupler, message) -> target processor`` receiving the
        message (default: destination if present, else offset-matched
        member).
    policy:
        Arbitration among same-coupler requests.
    max_hops_factor:
        Livelock guard: a message exceeding
        ``max_hops_factor * network diameter-ish bound`` raises.
    """

    def __init__(
        self,
        network: DirectedHypergraph,
        preferred_coupler: Callable[[int, Message], int],
        out_couplers: Callable[[int], Sequence[int]],
        relay_of: Callable[[int, Message], int] | None = None,
        policy: ArbitrationPolicy | None = None,
        max_hops: int = 1000,
    ) -> None:
        self.network = network
        self.preferred_coupler = preferred_coupler
        self.out_couplers = out_couplers
        self.relay_of = relay_of if relay_of is not None else self._default_relay
        self.policy = policy if policy is not None else OldestFirst()
        self.max_hops = max_hops
        self.messages: list[Message] = []
        self.slot_log: list[SlotStats] = []
        self.deflections = 0
        self.coupler_busy = [0] * network.num_hyperarcs
        self._now = 0

    def _default_relay(self, coupler: int, msg: Message) -> int:
        targets = self.network.hyperarc(coupler).targets
        if msg.dst in targets:
            return msg.dst
        return targets[msg.dst % len(targets)]

    # ------------------------------------------------------------------
    def inject(self, traffic: Sequence[tuple[int, int, int]]) -> None:
        """Add ``(src, dst, inject_slot)`` messages."""
        base = len(self.messages)
        for i, (src, dst, slot) in enumerate(traffic):
            if slot < self._now:
                raise ValueError(f"cannot inject into past slot {slot}")
            self.messages.append(Message(base + i, src, dst, slot))

    def run(self, max_slots: int = 100_000) -> None:
        """Advance until every message is delivered (or the caps trip)."""
        while not self.all_delivered():
            if self._now >= max_slots:
                stuck = [m.ident for m in self.messages if not m.delivered]
                raise RuntimeError(f"slot cap reached; stuck: {stuck[:10]}")
            self.step()

    def step(self) -> SlotStats:
        """One hot-potato slot."""
        now = self._now
        for m in self.messages:
            if not m.delivered and m.inject_slot <= now and m.current == m.dst:
                m.deliver_slot = max(m.inject_slot, now)

        active = [
            m
            for m in self.messages
            if not m.delivered and m.inject_slot <= now
        ]
        # Round 1: preferred couplers.
        requests: dict[int, list[Message]] = {}
        for m in active:
            requests.setdefault(self.preferred_coupler(m.current, m), []).append(m)

        winners: dict[int, Message] = {}
        contended = 0
        losers: list[Message] = []
        for coupler, msgs in requests.items():
            win = self.policy.pick(msgs, now)
            winners[coupler] = win
            if len(msgs) > 1:
                contended += 1
                losers.extend(mm for mm in msgs if mm is not win)

        # Round 2: deflect losers onto free couplers of their group.
        for m in losers:
            for alt in self.out_couplers(m.current):
                if alt not in winners:
                    winners[alt] = m
                    self.deflections += 1
                    break
            # else: no free transmitter -- the message waits one slot
            # (a real bufferless node would misroute on *some* port;
            # with one port per coupler and all busy, waiting is the
            # only option left and costs one slot of latency).

        delivered = 0
        for coupler, m in winners.items():
            ha = self.network.hyperarc(coupler)
            if m.current not in ha.sources:
                raise RuntimeError(
                    f"coupler {coupler} is not sourced at {m.current}"
                )
            relay = self.relay_of(coupler, m)
            m.current = relay
            m.hops += 1
            m.trace.append(coupler)
            self.coupler_busy[coupler] += 1
            if m.hops > self.max_hops:
                raise RuntimeError(f"message {m.ident} livelocked ({m.hops} hops)")
            if relay == m.dst:
                m.deliver_slot = now
                delivered += 1

        stats = SlotStats(now, len(winners), contended, delivered)
        self.slot_log.append(stats)
        self._now += 1
        return stats

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current slot."""
        return self._now

    def all_delivered(self) -> bool:
        """Whether every injected message has arrived."""
        return all(m.delivered for m in self.messages)

    def deflection_rate(self) -> float:
        """Deflections per delivered message."""
        done = sum(1 for m in self.messages if m.delivered)
        return self.deflections / done if done else 0.0


def stack_kautz_deflection_simulator(net, policy: ArbitrationPolicy | None = None):
    """Hot-potato simulator over ``SK(s, d, k)``.

    Preferred coupler = label-routing next hop (as in the
    store-and-forward adapter); deflection alternatives = the group's
    other couplers, loop last (a loop deflection wastes a slot without
    progress but keeps the potato moving).
    """
    from ..networks.stack_kautz import StackKautzNetwork
    from ..routing.tables import build_routing_table

    assert isinstance(net, StackKautzNetwork)
    base = net.base_graph()
    model = net.stack_graph_model()
    table = build_routing_table(base.without_loops())
    s = net.stacking_factor

    arc_index: dict[tuple[int, int], int] = {}
    for idx, (u, v) in enumerate(base.arc_array().tolist()):
        arc_index.setdefault((u, v), idx)

    group_couplers: dict[int, list[int]] = {}
    for u in range(net.num_groups):
        non_loop = [
            arc_index[(u, int(v))]
            for v in sorted(set(base.successors(u).tolist()))
            if int(v) != u
        ]
        group_couplers[u] = non_loop + [arc_index[(u, u)]]

    def preferred(holder: int, msg: Message) -> int:
        u = holder // s
        v_final = msg.dst // s
        if u == v_final:
            return arc_index[(u, u)]
        return arc_index[(u, table.next_hop(u, v_final))]

    def outs(holder: int) -> list[int]:
        return group_couplers[holder // s]

    return DeflectionSimulator(model, preferred, outs, policy=policy)
