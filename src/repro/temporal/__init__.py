"""Temporal dynamics: fault processes, trace replay, traffic matrices.

The subsystem that moves the survivability story from frozen one-shot
fault scenarios to *processes* unfolding in slot time:

* :mod:`~repro.temporal.processes` -- seeded MTBF/MTTR renewal
  processes (exponential and deterministic laws) and correlated
  cascades, compiled into deterministic per-slot event traces;
* :mod:`~repro.temporal.replay` -- the replay engine scoring a trace
  against the connectivity/paths kernels (piecewise-constant masks)
  and the slotted simulator (views swapped between slots), with the
  availability-over-time / repair-aware survivability /
  mean-time-to-disconnect / delivery-under-churn metric family;
* :mod:`~repro.temporal.traffic` -- demand matrices, per-coupler
  utilization, dimensioning and overload-driven degraded routing.
"""

from .processes import (
    FAULT_PROCESSES,
    RENEWAL_LAWS,
    CascadeCouplerProcess,
    ComponentEvent,
    CouplerRenewalProcess,
    FaultProcess,
    FaultTrace,
    ProcessorRenewalProcess,
    fault_process_keys,
    make_fault_process,
    stream_seed,
)
from .replay import (
    DEFAULT_HORIZON,
    TEMPORAL_METRICS_MODES,
    TemporalSummary,
    execute_temporal,
    prepare_temporal_sweep,
    replay_trace,
    summarize_temporal,
)
from .traffic import (
    TrafficMatrix,
    UtilizationReport,
    dimension,
    overload_scenario,
    reroute_overloaded,
    route_demands,
    served_fraction,
    utilization,
)

__all__ = [
    "RENEWAL_LAWS",
    "ComponentEvent",
    "FaultTrace",
    "FaultProcess",
    "CouplerRenewalProcess",
    "ProcessorRenewalProcess",
    "CascadeCouplerProcess",
    "FAULT_PROCESSES",
    "make_fault_process",
    "fault_process_keys",
    "stream_seed",
    "DEFAULT_HORIZON",
    "TEMPORAL_METRICS_MODES",
    "TemporalSummary",
    "replay_trace",
    "prepare_temporal_sweep",
    "execute_temporal",
    "summarize_temporal",
    "TrafficMatrix",
    "UtilizationReport",
    "route_demands",
    "utilization",
    "dimension",
    "overload_scenario",
    "reroute_overloaded",
    "served_fraction",
]
