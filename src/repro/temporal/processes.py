"""Seeded time-varying fault processes compiled to event traces.

The resilience sweeps score *frozen* fault scenarios -- one draw, one
broken machine.  Real optical interconnects fail and repair
continuously: a coupler's laser ages out and is swapped, a whole OTIS
block browns out and comes back.  This module makes that temporal
dimension first class.

A :class:`FaultProcess` describes per-component alternating renewal
processes -- mean time between failures (``mtbf``) up, mean time to
repair (``mttr``) down, with exponential or deterministic inter-event
laws -- plus correlated cascade triggers.  :meth:`FaultProcess.trace`
compiles the process into a :class:`FaultTrace`: a deterministic,
slot-stamped event list that is a pure function of
``(process, spec, seed, horizon)``.

Determinism contract: every random draw flows through
:func:`stream_seed` -- the SHA-256 discipline of
:func:`~repro.resilience.faults.trial_seed`, extended to named
sub-streams -- so a component's failure history is independent of how
many workers replay the trace and of which other components churn.

>>> from repro.core import build
>>> net = build("pops(2,2)")
>>> p = CouplerRenewalProcess(faults=1, mtbf=40, mttr=10)
>>> t = p.trace("pops(2,2)", net, seed=3, horizon=200)
>>> t.events == p.trace("pops(2,2)", net, seed=3, horizon=200).events
True
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import ClassVar

from ..resilience.faults import FaultScenario, coupler_endpoints

__all__ = [
    "RENEWAL_LAWS",
    "ComponentEvent",
    "FaultTrace",
    "FaultProcess",
    "CouplerRenewalProcess",
    "ProcessorRenewalProcess",
    "CascadeCouplerProcess",
    "FAULT_PROCESSES",
    "make_fault_process",
    "fault_process_keys",
    "stream_seed",
]

#: Supported inter-event laws for up/down durations.
RENEWAL_LAWS = ("exponential", "deterministic")


def stream_seed(seed: int, *parts: object) -> int:
    """Deterministic, platform-stable seed for a named sub-stream.

    SHA-256 of ``"seed:part:part:..."``: each (component, purpose)
    pair gets its own independent stream, so adding a component or
    resharding trials over workers never perturbs another component's
    failure history.
    """
    payload = ":".join([str(seed), *(str(p) for p in parts)])
    digest = hashlib.sha256(payload.encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class ComponentEvent:
    """One state transition of one component at one slot."""

    slot: int
    kind: str  # "fail" | "repair"
    component: str  # "coupler" | "processor"
    index: int

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view."""
        return {
            "slot": self.slot,
            "kind": self.kind,
            "component": self.component,
            "index": self.index,
        }


@dataclass(frozen=True)
class FaultTrace:
    """A compiled per-slot event trace over ``[0, horizon)`` slots.

    Events are sorted by ``(slot, component, index, kind)`` -- a total
    order, so the trace serializes and replays byte-identically.  The
    machine starts intact; every fault injected before the horizon is
    also repaired before it or stays down to the end.
    """

    spec: str
    process: str
    seed: int
    horizon: int
    events: tuple[ComponentEvent, ...]

    def segments(self):
        """Yield ``(start, stop, dead_couplers, dead_processors)``.

        The piecewise-constant fault mask: within ``[start, stop)``
        the dead sets do not change.  Segments partition
        ``[0, horizon)`` exactly and come out in time order.
        """
        dead_c: set[int] = set()
        dead_p: set[int] = set()
        prev = 0
        i, ev = 0, self.events
        while i < len(ev):
            slot = ev[i].slot
            if slot > prev:
                yield prev, slot, frozenset(dead_c), frozenset(dead_p)
                prev = slot
            while i < len(ev) and ev[i].slot == slot:
                e = ev[i]
                target = dead_c if e.component == "coupler" else dead_p
                if e.kind == "fail":
                    target.add(e.index)
                else:
                    target.discard(e.index)
                i += 1
        if prev < self.horizon:
            yield prev, self.horizon, frozenset(dead_c), frozenset(dead_p)

    def scenario_for(self, dead_couplers, dead_processors) -> FaultScenario:
        """One segment's dead sets as a frozen :class:`FaultScenario`."""
        return FaultScenario(
            spec=self.spec,
            model=self.process,
            seed=self.seed,
            couplers=frozenset(dead_couplers),
            processors=frozenset(dead_processors),
        )

    def component_downtime(self, component: str, index: int) -> int:
        """Total slots the component spends dead over the horizon."""
        return sum(
            stop - start
            for start, stop, dead_c, dead_p in self.segments()
            if index in (dead_c if component == "coupler" else dead_p)
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view (events in trace order)."""
        return {
            "spec": self.spec,
            "process": self.process,
            "seed": self.seed,
            "horizon": self.horizon,
            "events": [e.as_dict() for e in self.events],
        }


def _merge_intervals(
    intervals: list[tuple[int, int]],
) -> list[tuple[int, int]]:
    """Union of half-open intervals, sorted and non-overlapping."""
    merged: list[tuple[int, int]] = []
    for start, stop in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], stop))
        else:
            merged.append((start, stop))
    return merged


@dataclass(frozen=True)
class FaultProcess:
    """Base class: a picklable, seeded generator of fault traces.

    ``faults`` components (couplers or processors, per subclass) churn
    as independent alternating renewal processes: up for a draw of
    mean ``mtbf`` slots, down for a draw of mean ``mttr`` slots,
    repeating to the horizon.  ``law`` picks the inter-event law --
    ``"exponential"`` (memoryless; the 2-state Markov process whose
    stationary availability is ``mtbf / (mtbf + mttr)``) or
    ``"deterministic"`` (fixed durations; periodic maintenance).

    Durations are rounded to whole slots with a floor of one, so every
    failure is visible to the slotted simulator.
    """

    faults: int = 1
    mtbf: float = 400.0
    mttr: float = 100.0
    law: str = "exponential"
    key: ClassVar[str] = ""

    def __post_init__(self) -> None:
        if self.faults < 0:
            raise ValueError(f"faults must be >= 0, got {self.faults}")
        if self.mtbf <= 0 or self.mttr <= 0:
            raise ValueError(
                f"mtbf and mttr must be > 0, got {self.mtbf}/{self.mttr}"
            )
        if self.law not in RENEWAL_LAWS:
            known = ", ".join(RENEWAL_LAWS)
            raise ValueError(f"unknown law {self.law!r}; known laws: {known}")

    # -- component domain ----------------------------------------------
    def component_pool(self, net) -> tuple[tuple[str, int], ...]:
        """All ``(component, index)`` pairs the process may churn."""
        raise NotImplementedError

    def max_faults(self, net) -> int | None:
        """Largest churn population fully injectable into ``net``.

        Mirrors :meth:`~repro.resilience.faults.FaultModel.max_faults`:
        the capacity accounting that lets temporal sweeps *skip*
        machines too small to absorb the requested churn instead of
        scoring them immune.
        """
        return None

    def churning(self, net, seed: int) -> list[tuple[str, int]]:
        """The deterministic churn population for ``(net, seed)``."""
        pool = sorted(self.component_pool(net))
        rng = random.Random(stream_seed(seed, self.key, "members"))
        return sorted(rng.sample(pool, min(self.faults, len(pool))))

    # -- renewal machinery ---------------------------------------------
    def _draw(self, rng: random.Random, mean: float) -> int:
        if self.law == "deterministic":
            return max(1, round(mean))
        return max(1, round(rng.expovariate(1.0 / mean)))

    def down_intervals(
        self, component: str, index: int, seed: int, horizon: int
    ) -> list[tuple[int, int]]:
        """Half-open ``[fail, repair)`` intervals of one component.

        Seeded per ``(process key, component, index)``: the history is
        the same whatever other components the process touches.
        """
        rng = random.Random(stream_seed(seed, self.key, component, index))
        out: list[tuple[int, int]] = []
        t = 0
        while True:
            t += self._draw(rng, self.mtbf)
            if t >= horizon:
                break
            down = self._draw(rng, self.mttr)
            out.append((t, min(t + down, horizon)))
            t += down
            if t >= horizon:
                break
        return out

    def _component_intervals(
        self, net, seed: int, horizon: int
    ) -> dict[tuple[str, int], list[tuple[int, int]]]:
        """Raw down intervals per churning component (pre-merge)."""
        return {
            (component, index): self.down_intervals(
                component, index, seed, horizon
            )
            for component, index in self.churning(net, seed)
        }

    def trace(self, spec, net, seed: int, horizon: int) -> FaultTrace:
        """Compile the deterministic trace for ``(spec, seed, horizon)``."""
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        events: list[ComponentEvent] = []
        for (component, index), intervals in self._component_intervals(
            net, seed, horizon
        ).items():
            for start, stop in _merge_intervals(intervals):
                events.append(
                    ComponentEvent(start, "fail", component, index)
                )
                if stop < horizon:
                    events.append(
                        ComponentEvent(stop, "repair", component, index)
                    )
        events.sort(key=lambda e: (e.slot, e.component, e.index, e.kind))
        return FaultTrace(
            spec=str(spec),
            process=self.key,
            seed=int(seed),
            horizon=int(horizon),
            events=tuple(events),
        )


@dataclass(frozen=True)
class CouplerRenewalProcess(FaultProcess):
    """``faults`` couplers churn as independent renewal processes."""

    key: ClassVar[str] = "coupler-renewal"

    def component_pool(self, net):
        return tuple(("coupler", c) for c in range(net.num_couplers))

    def max_faults(self, net) -> int:
        # same cap as the frozen UniformCouplerFaults: at least one
        # coupler must be able to stay alive at the worst instant
        return max(net.num_couplers - 1, 0)


@dataclass(frozen=True)
class ProcessorRenewalProcess(FaultProcess):
    """``faults`` processors churn as independent renewal processes."""

    key: ClassVar[str] = "processor-renewal"

    def component_pool(self, net):
        return tuple(("processor", p) for p in range(net.num_processors))

    def max_faults(self, net) -> int:
        return max(net.num_processors - 2, 0)


@dataclass(frozen=True)
class CascadeCouplerProcess(CouplerRenewalProcess):
    """Correlated churn: a primary failure drags siblings down with it.

    Each primary failure of a churning coupler triggers, with
    probability ``spread`` per sibling, a sympathetic failure of the
    couplers sharing its source group (a failing laser bank stresses
    its whole OTIS block).  Secondaries fail one slot after the
    trigger and are repaired with the primary.  The cascade draw is
    seeded per ``(primary, fail slot)``, so it is as deterministic as
    the primaries themselves.
    """

    key: ClassVar[str] = "cascade"

    spread: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.spread <= 1.0:
            raise ValueError(
                f"spread must be a probability in [0, 1], got {self.spread}"
            )

    def _component_intervals(self, net, seed: int, horizon: int):
        intervals = super()._component_intervals(net, seed, horizon)
        ends = coupler_endpoints(net)
        siblings: dict[int, list[int]] = {}
        for idx, (u, _v) in enumerate(ends):
            siblings.setdefault(u, []).append(idx)
        for (component, index), downs in sorted(intervals.items()):
            if component != "coupler":
                continue
            src_group = ends[index][0]
            for start, stop in downs:
                rng = random.Random(
                    stream_seed(seed, self.key, "spread", index, start)
                )
                for sib in siblings.get(src_group, ()):
                    if sib == index:
                        continue
                    if rng.random() < self.spread and start + 1 < stop:
                        intervals.setdefault(("coupler", sib), []).append(
                            (start + 1, stop)
                        )
        return intervals


FAULT_PROCESSES: dict[str, type[FaultProcess]] = {
    cls.key: cls
    for cls in (
        CouplerRenewalProcess,
        ProcessorRenewalProcess,
        CascadeCouplerProcess,
    )
}


def fault_process_keys() -> tuple[str, ...]:
    """All registered fault-process keys, sorted."""
    return tuple(sorted(FAULT_PROCESSES))


def make_fault_process(key: str, faults: int = 1, **options) -> FaultProcess:
    """The fault process named ``key`` with intensity ``faults``.

    ``options`` pass through to the process constructor (``mtbf``,
    ``mttr``, ``law``, and ``spread`` for the cascade).

    >>> make_fault_process("coupler-renewal", 2).faults
    2
    """
    try:
        cls = FAULT_PROCESSES[key.strip().lower()]
    except KeyError:
        known = ", ".join(fault_process_keys())
        raise ValueError(
            f"unknown fault process {key!r}; known processes: {known}"
        ) from None
    return cls(faults=faults, **options)
