"""Replay engine: step a fault trace against the kernels and simulator.

A :class:`~repro.temporal.processes.FaultTrace` is piecewise constant:
between events the dead sets do not change, so the replay walks the
trace's *segments*, scoring each one with the connectivity/paths
kernels of :mod:`repro.resilience.metrics` weighted by segment length
-- and, in ``full`` mode, drives one slotted simulation across the
whole horizon through :class:`~repro.resilience.degrade.DegradedNetwork`
views that swap at segment boundaries (messages in flight experience
the churn).

Per-trial metrics:

* ``availability`` -- time-weighted mean alive-pair connectivity;
* ``survivability`` -- repair-aware survivability: the fraction of the
  horizon the surviving machine stays *fully* connected;
* ``time_to_disconnect`` -- first slot at which some surviving pair is
  severed (the horizon when none ever is);
* ``events`` -- trace length (fail + repair transitions);
* ``paths`` mode adds ``within_bound_time`` / ``mean_stretch_time``
  (time-weighted bounded-path fraction and stretch);
* ``full`` mode adds ``delivery_ratio`` / ``dropped`` /
  ``mean_latency`` / ``slots`` from the churned slotted run.

Determinism contract: trial ``i`` compiles its trace from
``trial_seed(seed, i)`` and trials never share state, so the summary
is byte-identical for any worker count and any chunking of the trial
index range (property-tested in ``tests/test_temporal.py``).
"""

from __future__ import annotations

import json
import math
import multiprocessing
from dataclasses import dataclass

from ..resilience.degrade import DegradedNetwork
from ..resilience.faults import trial_seed
from ..resilience.metrics import connectivity_metrics, path_survival
from ..resilience.sweep import _index_chunks, _nearest_rank
from ..simulation.engine import SlottedSimulator
from .processes import FaultProcess, FaultTrace, make_fault_process
from .traffic import TrafficMatrix, served_fraction

__all__ = [
    "DEFAULT_HORIZON",
    "TEMPORAL_METRICS_MODES",
    "TemporalSummary",
    "replay_trace",
    "prepare_temporal_sweep",
    "execute_temporal",
    "summarize_temporal",
]

#: Default replay horizon in slots (used by the Experiment grid too).
DEFAULT_HORIZON = 1000

#: Per-trial metric keys by metrics mode (quantile-summarized).
TEMPORAL_METRICS_MODES: dict[str, tuple[str, ...]] = {
    "connectivity": (
        "availability",
        "survivability",
        "time_to_disconnect",
        "events",
    ),
    "paths": (
        "availability",
        "survivability",
        "time_to_disconnect",
        "events",
        "within_bound_time",
        "mean_stretch_time",
    ),
    "full": (
        "availability",
        "survivability",
        "time_to_disconnect",
        "events",
        "within_bound_time",
        "mean_stretch_time",
        "delivery_ratio",
        "dropped",
        "mean_latency",
        "slots",
    ),
}


# ----------------------------------------------------------------------
# Plan / prepared request
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _TemporalPlan:
    """Everything a trial needs, frozen once and shipped to workers."""

    canonical: str
    process: FaultProcess
    seed: int
    horizon: int
    workload: object  # name, callable or TrafficMatrix (picklable)
    workload_name: str
    messages: int
    bound: int
    metrics: str
    curve_points: int
    traffic: TrafficMatrix | None


@dataclass(frozen=True)
class _PreparedTemporal:
    """A validated temporal sweep: plan + parent-only network handle."""

    plan: _TemporalPlan
    trials: int
    skipped: bool  # capacity accounting said the machine is too small
    net: object = None  # parent-process convenience; never pickled


def _resolve_process(process, faults, mtbf, mttr, law) -> FaultProcess:
    if isinstance(process, FaultProcess):
        if any(v is not None for v in (faults, mtbf, mttr, law)):
            raise ValueError(
                "pass either a FaultProcess instance or keyword process "
                "parameters (faults/mtbf/mttr/law), not both"
            )
        return process
    if not isinstance(process, str):
        raise ValueError(
            f"process must be a FaultProcess or a registry key, "
            f"got {type(process).__name__}"
        )
    return make_fault_process(
        process,
        faults if faults is not None else 1,
        mtbf=mtbf if mtbf is not None else 400.0,
        mttr=mttr if mttr is not None else 100.0,
        law=law if law is not None else "exponential",
    )


def prepare_temporal_sweep(
    spec,
    process="coupler-renewal",
    *,
    faults: int | None = None,
    mtbf: float | None = None,
    mttr: float | None = None,
    law: str | None = None,
    horizon: int = DEFAULT_HORIZON,
    trials: int = 20,
    seed: int = 0,
    workload="uniform",
    messages: int = 60,
    bound: int | None = None,
    metrics: str = "connectivity",
    curve_points: int = 16,
    traffic: TrafficMatrix | None = None,
    _net=None,
) -> _PreparedTemporal:
    """Validate one temporal sweep request into a frozen plan.

    Raises ``ValueError`` on a bad request *before* any replay work;
    applies the process's ``max_faults`` capacity accounting (a machine
    too small for the requested churn population is *skipped*, never
    scored immune).
    """
    from ..core.spec import NetworkSpec

    resolved = _resolve_process(process, faults, mtbf, mttr, law)
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    if not 1 <= curve_points <= 512:
        raise ValueError(
            f"curve_points must be in [1, 512], got {curve_points}"
        )
    if metrics not in TEMPORAL_METRICS_MODES:
        known = ", ".join(sorted(TEMPORAL_METRICS_MODES))
        raise ValueError(
            f"unknown metrics mode {metrics!r}; known modes: {known}"
        )
    if metrics == "full" and messages < 1:
        raise ValueError(
            f"messages must be >= 1 for full metrics, got {messages}"
        )
    if traffic is not None and not isinstance(traffic, TrafficMatrix):
        raise ValueError(
            f"traffic must be a TrafficMatrix, got {type(traffic).__name__}"
        )
    parsed = NetworkSpec.parse(spec)
    net = _net if _net is not None else parsed.build()
    cap = resolved.max_faults(net)
    skipped = cap is not None and resolved.faults > cap
    workload_name = (
        workload
        if isinstance(workload, str)
        else getattr(workload, "name", getattr(workload, "__name__", "custom"))
    )
    plan = _TemporalPlan(
        canonical=parsed.canonical(),
        process=resolved,
        seed=int(seed),
        horizon=int(horizon),
        workload=workload,
        workload_name=str(workload_name),
        messages=int(messages),
        bound=net.diameter + 2 if bound is None else int(bound),
        metrics=metrics,
        curve_points=int(curve_points),
        traffic=traffic,
    )
    return _PreparedTemporal(
        plan=plan, trials=int(trials), skipped=skipped, net=net
    )


# ----------------------------------------------------------------------
# Per-trial replay
# ----------------------------------------------------------------------
def _bin_curve(segvals, horizon: int, points: int) -> list[float]:
    """Time-weighted mean of a piecewise-constant signal per bin."""
    curve = []
    for b in range(points):
        lo = horizon * b / points
        hi = horizon * (b + 1) / points
        acc = math.fsum(
            max(0.0, min(stop, hi) - max(start, lo)) * value
            for start, stop, value in segvals
        )
        curve.append(acc / (hi - lo))
    return curve


def _slotted_metrics(ctx, starts, views) -> dict[str, float]:
    """One churned slotted run: the delivery story under repair."""
    plan = ctx.plan
    cursor = {"segment": 0}

    def _advance(now: int) -> None:
        while (
            cursor["segment"] + 1 < len(starts)
            and now >= starts[cursor["segment"] + 1]
        ):
            cursor["segment"] += 1

    def _next_coupler(holder: int, msg) -> int:
        view = views[cursor["segment"]]
        if holder in view.dead_processors:
            return -1  # the holder itself died: the message is lost
        return view.next_coupler(holder, msg)

    def _relay(coupler: int, msg) -> int:
        return views[cursor["segment"]].relay(coupler, msg)

    sim = SlottedSimulator(
        ctx.model,
        _next_coupler,
        relay_of=_relay,
        disabled_couplers=frozenset(),
    )
    sim.inject(ctx.triples)
    while not sim.all_settled() and sim.now < plan.horizon:
        _advance(sim.now)
        sim.step()
    total = len(sim.messages)
    delivered = [m for m in sim.messages if m.delivered]
    mean_latency = (
        math.fsum(m.latency for m in delivered) / len(delivered)
        if delivered
        else 0.0
    )
    return {
        "delivery_ratio": len(delivered) / total if total else 1.0,
        "dropped": float(total - len(delivered)),
        "mean_latency": mean_latency,
        "slots": float(sim.now),
    }


def replay_trace(ctx, trace: FaultTrace) -> dict[str, object]:
    """Score one compiled trace; the per-trial metrics row.

    ``ctx`` is a :class:`_TemporalContext` (network + family + plan
    shared across the trials of one process)."""
    plan = ctx.plan
    horizon = plan.horizon
    segments = list(trace.segments())
    views = [
        DegradedNetwork(
            ctx.net,
            trace.scenario_for(dead_c, dead_p),
            family=ctx.family,
        )
        for _start, _stop, dead_c, dead_p in segments
    ]
    starts = [start for start, _stop, _c, _p in segments]

    alive_segs = []
    survival_weight = 0.0
    time_to_disconnect = float(horizon)
    disconnected = False
    for (start, stop, _c, _p), view in zip(segments, views):
        alive = connectivity_metrics(view, with_reachable=False)[
            "alive_connectivity"
        ]
        weight = stop - start
        alive_segs.append((start, stop, float(alive)))
        if alive >= 1.0:
            survival_weight += weight
        elif not disconnected:
            disconnected = True
            time_to_disconnect = float(start)
    row: dict[str, object] = {
        "availability": math.fsum(
            (stop - start) * v for start, stop, v in alive_segs
        )
        / horizon,
        "survivability": survival_weight / horizon,
        "time_to_disconnect": time_to_disconnect,
        "events": float(len(trace.events)),
        "_curve": _bin_curve(alive_segs, horizon, plan.curve_points),
    }
    if plan.metrics in ("paths", "full"):
        within_acc = 0.0
        stretch_acc = 0.0
        for (start, stop, _c, _p), view in zip(segments, views):
            _reach, _max_len, stretch, within = path_survival(
                view, plan.bound
            )
            within_acc += (stop - start) * within
            stretch_acc += (stop - start) * stretch
        row["within_bound_time"] = within_acc / horizon
        row["mean_stretch_time"] = stretch_acc / horizon
    if plan.traffic is not None:
        row["demand_served"] = (
            math.fsum(
                (stop - start) * served_fraction(plan.traffic, view)
                for (start, stop, _c, _p), view in zip(segments, views)
            )
            / horizon
        )
    if plan.metrics == "full":
        row.update(_slotted_metrics(ctx, starts, views))
    return row


class _TemporalContext:
    """Per-process trial runner over one shared built network."""

    def __init__(self, plan: _TemporalPlan, net=None, family=None) -> None:
        from ..core.registry import get_family
        from ..core.spec import NetworkSpec
        from ..core.workloads import resolve_workload

        self.plan = plan
        parsed = NetworkSpec.parse(plan.canonical)
        self.net = net if net is not None else parsed.build()
        self.family = family if family is not None else get_family(parsed.family)
        self.model = self.net.hypergraph_model()
        self.triples = (
            resolve_workload(
                plan.workload,
                self.net,
                messages=plan.messages,
                seed=plan.seed,
            )
            if plan.metrics == "full"
            else None
        )

    def run_trial(self, index: int) -> dict[str, object]:
        """The metrics row of trial ``index``."""
        plan = self.plan
        trace = plan.process.trace(
            plan.canonical, self.net, trial_seed(plan.seed, index), plan.horizon
        )
        return replay_trace(self, trace)

    def run_range(self, start: int, stop: int) -> list[dict[str, object]]:
        """Rows of trials ``start .. stop - 1``, in index order."""
        return [self.run_trial(i) for i in range(start, stop)]


# ----------------------------------------------------------------------
# Execution: inline or over a one-shot worker pool
# ----------------------------------------------------------------------
_WORKER_CTX: _TemporalContext | None = None


def _init_temporal_worker(plan: _TemporalPlan) -> None:
    """Pool initializer: build the shared trial context once per process."""
    global _WORKER_CTX
    _WORKER_CTX = _TemporalContext(plan)


def _run_temporal_chunk(index_range: tuple[int, int]) -> list[dict]:
    assert _WORKER_CTX is not None, "temporal worker used before init"
    return _WORKER_CTX.run_range(*index_range)


def execute_temporal(
    prepared: _PreparedTemporal, workers: int = 1
) -> list[dict[str, object]]:
    """All trial rows, in trial-index order.

    Trials are pure functions of their index, so sharding the index
    range over ``workers`` processes returns byte-identical rows for
    every worker count (chunks are merged back in index order).
    """
    if prepared.skipped:
        return []
    if workers <= 1:
        ctx = _TemporalContext(prepared.plan, net=prepared.net)
        return ctx.run_range(0, prepared.trials)
    chunks = _index_chunks(prepared.trials, workers)
    with multiprocessing.Pool(
        workers,
        initializer=_init_temporal_worker,
        initargs=(prepared.plan,),
    ) as pool:
        parts = pool.map(_run_temporal_chunk, chunks)
    return [row for part in parts for row in part]


# ----------------------------------------------------------------------
# Summary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TemporalSummary:
    """Deterministic aggregate of one temporal sweep.

    ``quantiles`` maps each scored metric to the same
    ``mean/p05/p50/p95/min/max`` cell shape as
    :class:`~repro.resilience.sweep.SweepSummary`;
    ``availability_curve`` is the across-trials mean availability per
    horizon bin -- the availability-over-time curve.  A sweep skipped
    by capacity accounting reports ``skipped_underfaulted=True`` with
    zero trials instead of perfect scores.
    """

    spec: str
    process: str
    faults: int
    mtbf: float
    mttr: float
    law: str
    horizon: int
    trials: int
    seed: int
    workload: str
    messages: int
    bound: int
    quantiles: dict[str, dict[str, float]]
    availability_curve: tuple[float, ...]
    disconnected_fraction: float | None
    skipped_underfaulted: bool

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view (key set pinned by the CLI golden schema)."""
        return {
            "spec": self.spec,
            "process": self.process,
            "faults": self.faults,
            "mtbf": self.mtbf,
            "mttr": self.mttr,
            "law": self.law,
            "horizon": self.horizon,
            "trials": self.trials,
            "seed": self.seed,
            "workload": self.workload,
            "messages": self.messages,
            "bound": self.bound,
            "quantiles": self.quantiles,
            "availability_curve": list(self.availability_curve),
            "disconnected_fraction": self.disconnected_fraction,
            "skipped_underfaulted": self.skipped_underfaulted,
        }

    def to_json(self) -> str:
        """Stable JSON (sorted keys, indent 2)."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def formatted(self) -> str:
        """Human-readable report."""
        head = (
            f"temporal sweep: {self.spec}  process={self.process} "
            f"faults={self.faults}  mtbf={self.mtbf} mttr={self.mttr} "
            f"law={self.law}"
        )
        if self.skipped_underfaulted:
            return (
                f"{head}\n  skipped: machine too small for "
                f"{self.faults} churning components"
            )
        lines = [
            head,
            f"  horizon={self.horizon} slots, {self.trials} trials, "
            f"seed={self.seed}",
            f"  disconnected in {self.disconnected_fraction:.1%} of trials",
            "",
            f"  {'metric':<20} {'mean':>10} {'p05':>10} {'p50':>10} "
            f"{'p95':>10}",
        ]
        for key, cell in self.quantiles.items():
            lines.append(
                f"  {key:<20} {cell['mean']:>10.4f} {cell['p05']:>10.4f} "
                f"{cell['p50']:>10.4f} {cell['p95']:>10.4f}"
            )
        curve = " ".join(f"{v:.3f}" for v in self.availability_curve)
        lines += ["", f"  availability curve: {curve}"]
        return "\n".join(lines)


def summarize_temporal(
    prepared: _PreparedTemporal, rows: list[dict]
) -> TemporalSummary:
    """Aggregate per-trial rows into the deterministic summary."""
    plan = prepared.plan
    process = plan.process
    base = {
        "spec": plan.canonical,
        "process": process.key,
        "faults": process.faults,
        "mtbf": float(process.mtbf),
        "mttr": float(process.mttr),
        "law": process.law,
        "horizon": plan.horizon,
        "seed": plan.seed,
        "workload": plan.workload_name,
        "messages": plan.messages if plan.metrics == "full" else 0,
        "bound": plan.bound,
    }
    if prepared.skipped or not rows:
        return TemporalSummary(
            trials=0,
            quantiles={},
            availability_curve=(),
            disconnected_fraction=None,
            skipped_underfaulted=True,
            **base,
        )
    trials = len(rows)
    summarized = list(TEMPORAL_METRICS_MODES[plan.metrics])
    if plan.traffic is not None:
        summarized.append("demand_served")
    quantiles: dict[str, dict[str, float]] = {}
    for key in summarized:
        values = sorted(float(r[key]) for r in rows)
        quantiles[key] = {
            "mean": round(sum(values) / len(values), 6),
            "p05": round(_nearest_rank(values, 0.05), 6),
            "p50": round(_nearest_rank(values, 0.50), 6),
            "p95": round(_nearest_rank(values, 0.95), 6),
            "min": round(values[0], 6),
            "max": round(values[-1], 6),
        }
    curve = tuple(
        round(
            math.fsum(r["_curve"][b] for r in rows) / trials,
            6,
        )
        for b in range(plan.curve_points)
    )
    disconnected = sum(
        1 for r in rows if float(r["time_to_disconnect"]) < plan.horizon
    )
    return TemporalSummary(
        trials=trials,
        quantiles=quantiles,
        availability_curve=curve,
        disconnected_fraction=round(disconnected / trials, 6),
        skipped_underfaulted=False,
        **base,
    )
