"""Traffic-matrix engineering: demands, utilization, dimensioning.

A :class:`TrafficMatrix` is a set of group-level demands
``(src_group, dst_group, rate)`` -- the long-run offered load, in
messages per slot, between OTIS groups.  The layer maps demands onto
routed group paths, accumulates per-coupler utilization, dimensions
coupler capacity for a target load, and closes the loop with
*overload-driven degraded routing*: couplers pushed past capacity are
treated as faults and the demands re-routed on the surviving machine.

A matrix is also a *workload*: calling it with the standard workload
signature ``(net, *, messages, seed)`` expands the demands into
deterministic ``(src, dst, slot)`` triples (largest-remainder
apportioning by rate), so a matrix can drive the slotted simulator,
the resilience sweeps and the temporal replay anywhere a named
workload can.

>>> from repro.core import build
>>> net = build("pops(2,2)")
>>> m = TrafficMatrix.uniform(2, rate=4.0)
>>> len(m(net, messages=8, seed=0))
8
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..resilience.degrade import DegradedNetwork
from ..resilience.faults import FaultScenario, coupler_endpoints, group_of

__all__ = [
    "TrafficMatrix",
    "UtilizationReport",
    "route_demands",
    "utilization",
    "dimension",
    "overload_scenario",
    "reroute_overloaded",
    "served_fraction",
]


@dataclass(frozen=True)
class TrafficMatrix:
    """Group-level demand matrix: ``(src_group, dst_group, rate)`` rows."""

    demands: tuple[tuple[int, int, float], ...]
    name: str = "traffic"

    def __post_init__(self) -> None:
        if not self.demands:
            raise ValueError("a traffic matrix needs at least one demand")
        for src, dst, rate in self.demands:
            if src < 0 or dst < 0:
                raise ValueError(f"negative group in demand ({src}, {dst})")
            if rate <= 0:
                raise ValueError(
                    f"demand rate must be > 0, got {rate} for ({src}, {dst})"
                )

    @property
    def total_rate(self) -> float:
        """Sum of all demand rates (messages per slot)."""
        return sum(rate for _s, _d, rate in self.demands)

    # -- constructors --------------------------------------------------
    @classmethod
    def uniform(cls, groups: int, rate: float = 1.0) -> "TrafficMatrix":
        """All-to-all: ``rate`` split evenly over ordered group pairs."""
        pairs = [(u, v) for u in range(groups) for v in range(groups) if u != v]
        if not pairs:
            raise ValueError("uniform matrix needs at least two groups")
        share = rate / len(pairs)
        return cls(
            demands=tuple((u, v, share) for u, v in pairs),
            name=f"uniform({groups})",
        )

    @classmethod
    def hotspot(
        cls,
        groups: int,
        hot: int = 0,
        fraction: float = 0.5,
        rate: float = 1.0,
    ) -> "TrafficMatrix":
        """``fraction`` of the load converges on group ``hot``.

        The hot share splits evenly over the other groups' demands
        toward ``hot``; the rest is uniform over every other pair.
        """
        if not 0 <= hot < groups:
            raise ValueError(f"hot group {hot} out of range [0, {groups})")
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        toward = [(u, hot) for u in range(groups) if u != hot]
        if not toward:
            raise ValueError("hotspot matrix needs at least two groups")
        rest = [
            (u, v)
            for u in range(groups)
            for v in range(groups)
            if u != v and v != hot
        ]
        demands = [(u, v, rate * fraction / len(toward)) for u, v in toward]
        if rest:
            demands += [
                (u, v, rate * (1.0 - fraction) / len(rest)) for u, v in rest
            ]
        return cls(
            demands=tuple(demands),
            name=f"hotspot({groups},{hot})",
        )

    # -- (de)serialization ---------------------------------------------
    def as_dict(self) -> dict[str, object]:
        """JSON-ready view."""
        return {
            "name": self.name,
            "demands": [[s, d, r] for s, d, r in self.demands],
        }

    @classmethod
    def from_dict(cls, data) -> "TrafficMatrix":
        """Inverse of :meth:`as_dict`."""
        return cls(
            demands=tuple(
                (int(s), int(d), float(r)) for s, d, r in data["demands"]
            ),
            name=str(data.get("name", "traffic")),
        )

    # -- workload protocol ---------------------------------------------
    def __call__(self, net, *, messages: int, seed: int, **_options):
        """Expand into ``(src, dst, slot)`` triples (workload protocol).

        ``messages`` are apportioned to demands by largest remainder
        on rate; endpoints are drawn uniformly from each group's
        processors under the sweep's seed discipline.
        """
        from .processes import stream_seed

        members: dict[int, list[int]] = {}
        for p in range(net.num_processors):
            members.setdefault(group_of(net, p), []).append(p)
        total = self.total_rate
        shares = [
            (messages * rate / total, i)
            for i, (_s, _d, rate) in enumerate(self.demands)
        ]
        counts = [int(share) for share, _i in shares]
        leftover = messages - sum(counts)
        for _frac, i in sorted(
            ((share - int(share), i) for share, i in shares),
            key=lambda t: (-t[0], t[1]),
        )[:leftover]:
            counts[i] += 1
        triples = []
        for i, (src_g, dst_g, _rate) in enumerate(self.demands):
            srcs = members.get(src_g)
            dsts = members.get(dst_g)
            if not srcs or not dsts:
                raise ValueError(
                    f"demand ({src_g}, {dst_g}) names a group missing "
                    f"from the network"
                )
            rng = random.Random(stream_seed(seed, "traffic", self.name, i))
            for _k in range(counts[i]):
                triples.append((rng.choice(srcs), rng.choice(dsts), 0))
        return triples


def _degraded_view(net, degraded) -> DegradedNetwork:
    if degraded is not None:
        return degraded
    return DegradedNetwork(
        net, FaultScenario(spec="intact", model="none", seed=0)
    )


def route_demands(net, matrix: TrafficMatrix, degraded=None):
    """Group path per demand: ``(src, dst, rate, path-or-None)`` rows.

    Paths come from the family's fault-aware routing hook on the
    (possibly degraded) machine; ``None`` marks a severed demand.
    """
    view = _degraded_view(net, degraded)
    return [
        (src, dst, rate, view.fault_route(src, dst))
        for src, dst, rate in matrix.demands
    ]


@dataclass(frozen=True)
class UtilizationReport:
    """Per-coupler load accounting for one matrix on one machine."""

    loads: tuple[float, ...]  # offered messages/slot per coupler
    capacity: float
    unserved_rate: float  # rate of demands with no surviving route

    @property
    def max_utilization(self) -> float:
        """Peak coupler load over capacity."""
        return max(self.loads, default=0.0) / self.capacity

    @property
    def mean_utilization(self) -> float:
        """Mean coupler load over capacity."""
        if not self.loads:
            return 0.0
        return sum(self.loads) / len(self.loads) / self.capacity

    @property
    def overloaded(self) -> tuple[int, ...]:
        """Couplers loaded past capacity, ascending."""
        return tuple(
            c for c, load in enumerate(self.loads) if load > self.capacity
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view (loads rounded for stable output)."""
        return {
            "loads": [round(x, 6) for x in self.loads],
            "capacity": self.capacity,
            "unserved_rate": round(self.unserved_rate, 6),
            "max_utilization": round(self.max_utilization, 6),
            "mean_utilization": round(self.mean_utilization, 6),
            "overloaded": list(self.overloaded),
        }


def utilization(
    net,
    matrix: TrafficMatrix,
    *,
    capacity: float = 1.0,
    degraded=None,
) -> UtilizationReport:
    """Per-coupler utilization of ``matrix`` routed on the machine.

    Each demand's rate flows along its routed group path; on every
    group hop the load splits evenly over the surviving parallel
    couplers of that arc (a single-wavelength OPS coupler carries one
    message per slot, so ``capacity`` defaults to 1.0).
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be > 0, got {capacity}")
    view = _degraded_view(net, degraded)
    arc_couplers: dict[tuple[int, int], list[int]] = {}
    for c, (u, v) in enumerate(coupler_endpoints(net)):
        if c not in view.dead_couplers:
            arc_couplers.setdefault((u, v), []).append(c)
    loads = [0.0] * net.num_couplers
    unserved = 0.0
    for _src, _dst, rate, path in route_demands(net, matrix, view):
        if path is None:
            unserved += rate
            continue
        hops = [
            arc_couplers.get((u, v), ()) for u, v in zip(path, path[1:])
        ]
        if any(not share for share in hops):
            # structured reroute walked an arc with no surviving coupler
            unserved += rate
            continue
        for share in hops:
            for c in share:
                loads[c] += rate / len(share)
    return UtilizationReport(
        loads=tuple(loads), capacity=capacity, unserved_rate=unserved
    )


def dimension(
    net, matrix: TrafficMatrix, *, target_utilization: float = 0.8
) -> dict[str, object]:
    """Per-coupler capacity needed to keep load under the target.

    The dimensioning rule of thumb: provision every coupler to run at
    ``target_utilization`` of its capacity under the offered matrix.
    """
    if not 0.0 < target_utilization <= 1.0:
        raise ValueError(
            f"target_utilization must be in (0, 1], got {target_utilization}"
        )
    report = utilization(net, matrix)
    required = [load / target_utilization for load in report.loads]
    return {
        "target_utilization": target_utilization,
        "per_coupler": [round(x, 6) for x in required],
        "max_capacity": round(max(required, default=0.0), 6),
        "total_capacity": round(sum(required), 6),
    }


def overload_scenario(
    net, matrix: TrafficMatrix, *, capacity: float = 1.0
) -> FaultScenario:
    """The overloaded couplers as a frozen fault scenario."""
    report = utilization(net, matrix, capacity=capacity)
    return FaultScenario(
        spec=getattr(net, "name", "net"),
        model="overload",
        seed=0,
        couplers=frozenset(report.overloaded),
    )


def reroute_overloaded(
    net, matrix: TrafficMatrix, *, capacity: float = 1.0
) -> dict[str, object]:
    """Overload-driven degraded routing: shed hot couplers, re-route.

    Treats every coupler past ``capacity`` as failed and routes the
    matrix again on the surviving machine -- the congestion-avoidance
    analogue of a fault sweep.  Reports utilization before and after
    plus the demand fraction still served.
    """
    before = utilization(net, matrix, capacity=capacity)
    scenario = overload_scenario(net, matrix, capacity=capacity)
    view = DegradedNetwork(net, scenario)
    after = utilization(net, matrix, capacity=capacity, degraded=view)
    total = matrix.total_rate
    return {
        "overloaded": list(before.overloaded),
        "before": before.as_dict(),
        "after": after.as_dict(),
        "served_fraction": round(served_fraction(matrix, view), 6),
        "total_rate": round(total, 6),
    }


def served_fraction(matrix: TrafficMatrix, degraded: DegradedNetwork) -> float:
    """Rate-weighted fraction of demands with a surviving route."""
    total = matrix.total_rate
    served = sum(
        rate
        for _src, _dst, rate, path in route_demands(
            degraded.net, matrix, degraded
        )
        if path is not None
    )
    return served / total if total else 1.0
