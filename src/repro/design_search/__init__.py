"""Design-search subsystem: pick a topology by survivability per cost.

PR 2 made survivability measurable; this package makes it a *design
criterion*.  The paper's Section-4 comparison (POPS vs stack-Kautz at
equal ``N``) is a two-point special case of the question answered
here: over every registered family's candidate window, which designs
give the most surviving connectivity per unit of optical hardware?

* :mod:`~repro.design_search.costing` --
  :class:`~repro.design_search.costing.CostModel`, unit prices over a
  design's bill of materials;
* :mod:`~repro.design_search.search` -- candidate enumeration (the
  :meth:`~repro.core.registry.NetworkFamily.candidate_specs` hook),
  per-candidate batched survivability sweeps, ranking and the
  (cost, survivability, diameter) Pareto front.

Facade: :func:`repro.design_search`; CLI: ``python -m repro
design-search --max-processors 48 --faults 2 --trials 200 --json``.
"""

import sys as _sys
import types as _types

from . import prices
from .costing import DEFAULT_COST_MODEL, CostModel, price_spec
from .search import (
    PARALLELISM_MODES,
    RANKINGS,
    DesignCandidate,
    DesignSearchResult,
    design_search,
    enumerate_candidates,
)

__all__ = [
    "DEFAULT_COST_MODEL",
    "PARALLELISM_MODES",
    "RANKINGS",
    "CostModel",
    "DesignCandidate",
    "DesignSearchResult",
    "design_search",
    "enumerate_candidates",
    "price_spec",
    "prices",
]


class _CallableModule(_types.ModuleType):
    """Make ``repro.design_search`` usable as the facade verb itself.

    The ISSUE-mandated names collide: the *package*
    ``repro.design_search`` and the facade *verb*
    ``repro.design_search(...)``.  Rather than letting the function
    shadow the module (which breaks ``import repro.design_search as
    ds; ds.CostModel``), the module is callable -- both
    ``repro.design_search(max_processors=...)`` and attribute access
    work, under every import form.
    """

    def __call__(self, **kwargs):
        # route through the facade verb so callable-module calls share
        # the default session's caches and persistent pools
        from repro.core.facade import design_search as _verb

        return _verb(**kwargs)


_sys.modules[__name__].__class__ = _CallableModule
