"""Published late-1990s component prices behind the default cost model.

The original :class:`~repro.design_search.costing.CostModel` defaults
were qualitative ("transceivers dominate"); these constants calibrate
them to representative catalog/survey prices of the paper's era
(WOCS/IPPS '99), in US dollars:

* ``TRANSMITTER_USD`` / ``RECEIVER_USD`` -- short-reach optical
  transmitter (laser/VCSEL driver module) and PIN receiver module
  prices, the dominant per-processor cost in multi-OPS machines; see
  R. Ramaswami & K. N. Sivarajan, *Optical Networks: A Practical
  Perspective* (Morgan Kaufmann, 1998), ch. 5 and the transceiver
  cost discussion in A. V. Krishnamoorthy & D. A. B. Miller,
  "Scaling optoelectronic-VLSI circuits into the 21st century",
  IEEE JSTQE 2(1), 1996.
* ``LENS_USD`` -- molded-glass aspheric collimating lenses of the
  kind the OTIS free-space stages array; catalog pricing c. 1999
  (Geltech/Thorlabs molded aspheres, tens of dollars per lens).
* ``BEAM_SPLITTER_USD`` -- cube beam splitters, Melles Griot optics
  catalog (1999), ~$100 class.
* ``MULTIPLEXER_USD`` -- small-port-count passive optical mux units;
  J. Hecht, *Understanding Fiber Optics* (3rd ed., 1999), passive
  component price ranges.
* ``COUPLER_USD`` -- fused star-coupler packaging on top of its mux/
  splitter halves (the BOM counts those separately); same source.
* ``LOOP_FIBER_USD`` -- multimode fiber patch cords, catalog
  commodity pricing.
* ``OTIS_STAGE_USD`` -- not a catalog part: a per-stage
  opto-mechanical alignment/assembly charge, the "free-space optics
  are cheap per lens but each stage must be aligned" term argued in
  Marsden, Marchand, Harvey & Esener, "Optical transpose
  interconnection system architectures", Optics Letters 18(13), 1993.

Absolute dollars matter less than ratios -- the search ranks by
survivability per cost, so only relative prices move the table -- but
the ratios here follow the published ordering: transceivers dominate,
mux/splitter parts sit mid-range, lenses and fiber jumpers are cheap,
and every OTIS stage pays an assembly charge.

>>> TRANSMITTER_USD > RECEIVER_USD > MULTIPLEXER_USD > LENS_USD
True
"""

from __future__ import annotations

__all__ = [
    "LENS_USD",
    "OTIS_STAGE_USD",
    "MULTIPLEXER_USD",
    "BEAM_SPLITTER_USD",
    "LOOP_FIBER_USD",
    "TRANSMITTER_USD",
    "RECEIVER_USD",
    "COUPLER_USD",
]

#: Molded-glass aspheric collimating lens (catalog, c. 1999).
LENS_USD = 35.0

#: Per-OTIS-stage opto-mechanical alignment/assembly charge
#: (modeled; Marsden et al. 1993 argue stages, not lenses, carry the
#: free-space cost).
OTIS_STAGE_USD = 140.0

#: Small-port-count passive optical multiplexer unit (Hecht 1999).
MULTIPLEXER_USD = 190.0

#: Cube beam splitter (Melles Griot catalog, 1999).
BEAM_SPLITTER_USD = 110.0

#: Multimode fiber patch cord used as a loop-back fiber.
LOOP_FIBER_USD = 20.0

#: Short-reach optical transmitter module (Ramaswami & Sivarajan
#: 1998; Krishnamoorthy & Miller 1996).
TRANSMITTER_USD = 310.0

#: PIN photodiode receiver module (same sources as the transmitter).
RECEIVER_USD = 230.0

#: Fused star-coupler packaging, priced on top of its mux/splitter
#: halves (Hecht 1999).
COUPLER_USD = 85.0
