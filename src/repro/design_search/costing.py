"""Pricing a design's bill of materials.

The paper argues POPS vs stack-Kautz in hardware counts (Figs. 11-12);
this module turns those counts into one scalar so designs can be
*ranked*.  A :class:`CostModel` assigns a unit price to every
:class:`~repro.networks.design.BillOfMaterials` line item -- lenses
(the OTIS stages' real estate), multiplexers, beam-splitters, loop
fibers, transceivers and OPS couplers -- plus a per-OTIS-stage
assembly charge.  The defaults are calibrated to published
late-1990s component prices (USD) from
:mod:`repro.design_search.prices` -- see that module for the cited
sources; only price *ratios* move the search's ranking, and the
published ratios keep the paper's qualitative ordering (transceivers
dominate, free-space lens stages are cheap per lens but add up).

>>> from repro.core import design
>>> DEFAULT_COST_MODEL.price(design("pops(4,2)").bill_of_materials()) > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from . import prices

__all__ = ["CostModel", "DEFAULT_COST_MODEL", "price_spec"]


@dataclass(frozen=True)
class CostModel:
    """Unit prices per bill-of-materials line item.

    Defaults are the cited late-1990s USD prices of
    :mod:`repro.design_search.prices`; pass your own values to re-rank
    under different hardware economics.
    """

    lens: float = prices.LENS_USD
    otis_stage: float = prices.OTIS_STAGE_USD  # per-stage assembly charge
    multiplexer: float = prices.MULTIPLEXER_USD
    beam_splitter: float = prices.BEAM_SPLITTER_USD
    loop_fiber: float = prices.LOOP_FIBER_USD
    transmitter: float = prices.TRANSMITTER_USD
    receiver: float = prices.RECEIVER_USD
    coupler: float = prices.COUPLER_USD

    def price(self, bom) -> float:
        """The scalar cost of one bill of materials, rounded to cents.

        Couplers are priced *on top of* their multiplexer/splitter
        halves (the BOM counts those separately); the coupler line is
        the packaging of the pair.
        """
        total = (
            self.lens * bom.total_lenses
            + self.otis_stage * bom.total_otis_stages
            + self.multiplexer * bom.multiplexers
            + self.beam_splitter * bom.beam_splitters
            + self.loop_fiber * bom.loop_fibers
            + self.transmitter * bom.transmitters
            + self.receiver * bom.receivers
            + self.coupler * bom.couplers
        )
        return round(total, 2)

    def as_dict(self) -> dict[str, float]:
        """Unit prices keyed by line item (JSON-ready)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: The search's default pricing; pass your own :class:`CostModel` to
#: re-rank under different hardware economics.
DEFAULT_COST_MODEL = CostModel()


def price_spec(spec, cost_model: CostModel | None = None) -> float:
    """The cost of the design named by ``spec``.

    >>> price_spec("sops(4)") < price_spec("sops(8)")
    True
    """
    from ..core.spec import NetworkSpec

    model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    return model.price(NetworkSpec.parse(spec).design().bill_of_materials())
