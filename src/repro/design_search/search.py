"""Resilience-aware design search: rank specs by survivability per cost.

The loop the ROADMAP asks for: enumerate candidate
:class:`~repro.core.spec.NetworkSpec`s across every registered family
(via the :meth:`~repro.core.registry.NetworkFamily.candidate_specs`
hook), price each through its optical design's bill of materials
(:mod:`~repro.design_search.costing`), score survivability with the
batched Monte-Carlo sweep
(:func:`~repro.resilience.sweep.survivability_sweep`), and return the
candidates ranked by survivability per cost together with the Pareto
front over (cost, survivability, diameter).

Determinism: candidates are enumerated and evaluated in sorted spec
order, every sweep is seeded, and ties rank by (cost, spec) -- the
same seed always produces byte-identical
:meth:`DesignSearchResult.to_json` output.

>>> r = design_search(max_processors=12, families=("pops",), trials=8)
>>> r.best().spec == r.candidates[0].spec and len(r.pareto) >= 1
True
>>> all(s.endswith(",1)") for s in r.skipped_underfaulted)  # single-group
True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace

from ..core.registry import family_keys, get_family
from ..core.spec import NetworkSpec
from ..obs.metrics import REGISTRY
from ..obs.trace import span
from ..resilience.sweep import (
    METRICS_MODES,
    SWEEP_BACKENDS,
    pooled_survivability_sweeps,
    survivability_sweep,
)
from .costing import DEFAULT_COST_MODEL, CostModel

#: How candidate sweeps are scheduled over the worker budget.
PARALLELISM_MODES = ("sweeps", "candidates")

#: Candidate orderings.  ``within-bound`` and ``mean-stretch`` rank on
#: path quality under faults (the paper's ``k + 2`` bound and route
#: stretch) and need ``metrics="paths"``/``"full"`` sweeps -- with the
#: vectorized ``paths`` kernel those are affordable at 10^5-trial
#: precision.
RANKINGS = ("survivability-per-cost", "within-bound", "mean-stretch")

__all__ = [
    "DesignCandidate",
    "DesignSearchResult",
    "PARALLELISM_MODES",
    "RANKINGS",
    "enumerate_candidates",
    "design_search",
]


def enumerate_candidates(
    *,
    max_processors: int,
    min_processors: int = 2,
    families=None,
) -> list[NetworkSpec]:
    """Every candidate spec in the window, deduplicated and sorted.

    ``families`` is an iterable of family keys (default: all
    registered).  Order is deterministic: sorted by family key, then
    parameter tuple.

    >>> [str(s) for s in enumerate_candidates(max_processors=4,
    ...                                       families=("sops",))]
    ['sops(2)', 'sops(3)', 'sops(4)']
    """
    if max_processors < 1:
        raise ValueError(f"max_processors must be >= 1, got {max_processors}")
    if min_processors < 1:
        raise ValueError(f"min_processors must be >= 1, got {min_processors}")
    keys = tuple(family_keys()) if families is None else tuple(families)
    seen: set[NetworkSpec] = set()
    for key in keys:
        family = get_family(key)
        for spec in family.candidate_specs(
            max_processors=max_processors, min_processors=min_processors
        ):
            seen.add(spec)
    return sorted(seen, key=lambda s: (s.family, s.params))


@dataclass(frozen=True)
class DesignCandidate:
    """One evaluated design: shape, price tag, survivability, rank score."""

    spec: str
    family: str
    processors: int
    groups: int
    coupler_degree: int
    diameter: int
    cost: float
    link_margin_db: float
    #: mean all-pairs connectivity under the fault model (the
    #: ``connectivity`` quantile mean of the sweep)
    survivability: float
    partitioned_fraction: float
    #: ``None`` when the sweep ran in ``connectivity`` mode
    within_bound_fraction: float | None
    #: mean degraded-route stretch over intact distances (the sweep's
    #: ``mean_stretch`` quantile mean); ``None`` in ``connectivity`` mode
    mean_stretch: float | None
    #: the ranking score: survivability per 1000 cost units
    survivability_per_kilocost: float
    #: on the (cost, survivability, diameter) Pareto front?
    pareto: bool = False
    #: trials actually run for this candidate (equals the requested
    #: count unless sequential stopping / early discard ended early)
    trials_spent: int = 0
    #: stopped early because its CI could no longer overlap the
    #: leader's score (only under ci_target with the default ranking)
    early_discarded: bool = False

    def as_dict(self) -> dict[str, object]:
        """Field name -> value mapping (JSON-ready)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def formatted(self) -> str:
        """Fixed-width ranked-table row."""
        flag = "*" if self.pareto else " "
        within = (
            "   -  "
            if self.within_bound_fraction is None
            else f"{100 * self.within_bound_fraction:5.1f}%"
        )
        stretch = (
            "  -  "
            if self.mean_stretch is None
            else f"{self.mean_stretch:5.3f}"
        )
        return (
            f"{flag} {self.spec:<14} N={self.processors:<5} "
            f"diam={self.diameter:<2} deg={self.coupler_degree:<4} "
            f"cost={self.cost:>10.2f} surv={self.survivability:6.4f} "
            f"part={100 * self.partitioned_fraction:5.1f}% "
            f"within={within} stretch={stretch} "
            f"surv/k$={self.survivability_per_kilocost:8.5f}"
        )

    @staticmethod
    def header() -> str:
        """Column legend (``*`` marks Pareto-front designs)."""
        return (
            "* spec           N       diam deg      cost       surv      "
            "part   within  stretch      surv-per-kilocost"
        )


@dataclass(frozen=True)
class DesignSearchResult:
    """Ranked candidates + Pareto front of one :func:`design_search`."""

    max_processors: int
    min_processors: int
    families: tuple[str, ...]
    model: str
    faults: int
    trials: int
    seed: int
    metrics: str
    rank_by: str
    candidates: tuple[DesignCandidate, ...]
    #: canonical specs on the (cost, survivability, diameter) front,
    #: in ranked order over the FULL evaluated set (``top`` truncates
    #: ``candidates`` only, never this)
    pareto: tuple[str, ...] = ()
    #: specs skipped because the machine is too small to absorb the
    #: requested fault intensity (sweeping them would crown designs
    #: that were never actually faulted)
    skipped_underfaulted: tuple[str, ...] = ()
    cost_model: dict[str, float] = field(default_factory=dict)
    #: sequential-stopping half-width target of the candidate sweeps
    ci_target: float | None = None
    #: trial-allocation strategy of the candidate sweeps
    sampling: str = "uniform"

    def __iter__(self):
        return iter(self.candidates)

    def __len__(self) -> int:
        return len(self.candidates)

    def best(self) -> DesignCandidate:
        """The top-ranked candidate; raises when the search came up empty."""
        if not self.candidates:
            raise ValueError("design search produced no candidates")
        return self.candidates[0]

    def candidate(self, spec) -> DesignCandidate:
        """The evaluated candidate for ``spec``; ``KeyError`` if absent."""
        key = str(NetworkSpec.parse(spec))
        for c in self.candidates:
            if c.spec == key:
                return c
        raise KeyError(f"no design-search candidate for {key}")

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view of the whole search."""
        return {
            "max_processors": self.max_processors,
            "min_processors": self.min_processors,
            "families": list(self.families),
            "model": self.model,
            "faults": self.faults,
            "trials": self.trials,
            "seed": self.seed,
            "metrics": self.metrics,
            "rank_by": self.rank_by,
            "ci_target": self.ci_target,
            "sampling": self.sampling,
            "cost_model": self.cost_model,
            "pareto": list(self.pareto),
            "skipped_underfaulted": list(self.skipped_underfaulted),
            "candidates": [c.as_dict() for c in self.candidates],
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent.

        Deterministic: the same search parameters and seed produce the
        same string, regardless of worker count.
        """
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def formatted(self) -> str:
        """Ranked table, Pareto-front designs starred."""
        lines = [
            f"design search: N in [{self.min_processors}, "
            f"{self.max_processors}], families {'/'.join(self.families)}, "
            f"{self.faults} {self.model} fault(s), {self.trials} trials, "
            f"seed {self.seed}, metrics {self.metrics}, "
            f"ranked by {self.rank_by}",
            f"pareto front (cost x survivability x diameter): "
            f"{', '.join(self.pareto) if self.pareto else '(empty)'}",
        ]
        if self.skipped_underfaulted:
            lines.append(
                f"skipped (cannot absorb {self.faults} {self.model} "
                f"fault(s)): {len(self.skipped_underfaulted)} candidate(s)"
            )
        lines.append(DesignCandidate.header())
        lines += [c.formatted() for c in self.candidates]
        return "\n".join(lines)


def _dominates(a: DesignCandidate, b: DesignCandidate) -> bool:
    """``a`` Pareto-dominates ``b``: no worse everywhere, better somewhere.

    Objectives: minimize cost, maximize survivability, minimize
    diameter.
    """
    no_worse = (
        a.cost <= b.cost
        and a.survivability >= b.survivability
        and a.diameter <= b.diameter
    )
    better = (
        a.cost < b.cost
        or a.survivability > b.survivability
        or a.diameter < b.diameter
    )
    return no_worse and better


def _pareto_front(candidates: list[DesignCandidate]) -> set[str]:
    """Specs of the non-dominated candidates."""
    return {
        c.spec
        for c in candidates
        if not any(_dominates(other, c) for other in candidates)
    }


def _rank_key(rank_by: str):
    """The deterministic sort key realizing one of :data:`RANKINGS`.

    Path-quality rankings break ties on survivability per cost, then
    cheaper first, then spec order -- so the table stays byte-identical
    across backends and worker counts like everything else here.
    """
    if rank_by == "within-bound":
        return lambda c: (
            -(c.within_bound_fraction or 0.0),
            -c.survivability_per_kilocost,
            c.cost,
            c.spec,
        )
    if rank_by == "mean-stretch":
        return lambda c: (
            c.mean_stretch if c.mean_stretch is not None else float("inf"),
            -c.survivability_per_kilocost,
            c.cost,
            c.spec,
        )
    return lambda c: (-c.survivability_per_kilocost, c.cost, c.spec)


def design_search(
    *,
    max_processors: int,
    min_processors: int = 2,
    families=None,
    model="coupler",
    faults: int | None = None,
    trials: int = 100,
    seed: int = 0,
    workers: int | None = None,
    metrics: str = "connectivity",
    workload: str = "uniform",
    messages: int = 60,
    cost_model: CostModel | None = None,
    max_coupler_degree: int | None = None,
    min_groups: int | None = None,
    max_groups: int | None = None,
    max_diameter: int | None = None,
    min_margin_db: float | None = None,
    top: int | None = None,
    parallelism: str = "sweeps",
    backend: str = "batched",
    rank_by: str = "survivability-per-cost",
    ci_target: float | None = None,
    sampling: str = "uniform",
    _executor=None,
    _enumerator=None,
) -> DesignSearchResult:
    """Search the candidate window for survivability-per-cost winners.

    Enumerates every buildable spec with ``min_processors <= N <=
    max_processors`` across ``families`` (default: all registered),
    drops candidates outside the shape windows (``max_coupler_degree``,
    ``min_groups``/``max_groups`` -- ``min_groups=2`` excludes the
    degenerate single-star machines -- and ``max_diameter``) or below
    ``min_margin_db`` of
    optical link margin, skips machines too small to absorb the
    requested fault intensity (the fault models cap their draws, so
    sweeping those would crown never-faulted designs -- they are
    reported in ``skipped_underfaulted`` instead), prices the rest via
    their bill of materials,
    and runs one seeded survivability sweep per candidate
    (``metrics="connectivity"`` by default -- the fast path; pass
    ``"paths"`` or ``"full"`` for deeper scoring).  Candidates come
    back ranked by survivability per 1000 cost units (ties: cheaper
    first, then spec order), with the (cost, survivability, diameter)
    Pareto front marked.  ``top`` truncates the report to the best
    ``top`` candidates after ranking (the Pareto front is computed
    over the full set first).

    ``parallelism`` picks how the worker budget is spent:
    ``"sweeps"`` (default) opens one ``workers``-process pool *per
    candidate sweep*, serializing candidates; ``"candidates"``
    schedules every candidate's trial batches onto ONE shared pool,
    so small per-candidate sweeps no longer leave workers idle.
    ``backend`` selects the trial executor per sweep (``"batched"``
    default, ``"vectorized"`` for connectivity/paths metrics at
    scale).  ``rank_by`` picks the candidate ordering:
    ``"survivability-per-cost"`` (default), or the path-quality
    orderings ``"within-bound"`` (highest fraction of trials meeting
    the ``k + 2`` bound first) and ``"mean-stretch"`` (lowest degraded
    route stretch first), both requiring ``metrics="paths"``/``"full"``
    -- with ``backend="vectorized"`` those rank at 10^5-trial
    precision in seconds.
    The ranked table is byte-identical across all parallelism modes,
    backends and worker counts.  ``ci_target`` arms sequential
    stopping per candidate sweep and -- under the default ranking --
    early discard: a candidate whose score confidence interval
    ``(1000 / cost) * survival CI`` can no longer overlap the current
    leader's lower bound stops sweeping immediately (it stays in the
    table, marked ``early_discarded``, with whatever trials it spent).
    Needs ``parallelism="sweeps"`` (candidates must run in order for
    the leader bound to exist); deterministic because candidate order,
    wave schedules and estimates all are.  ``sampling`` selects the
    trial-allocation strategy of every candidate sweep (see
    :func:`~repro.resilience.sweep.survivability_sweep`).
    ``_executor`` (internal, session
    plumbing) reuses an injected
    :class:`~repro.resilience.sweep.PersistentSweepExecutor` for every
    candidate sweep instead of spawning pools per call; ``_enumerator``
    (same plumbing) swaps :func:`enumerate_candidates` for a memoized
    equivalent -- :meth:`repro.core.cache.SpecCache.candidate_specs` --
    which MUST return the same specs in the same order.

    >>> r = design_search(max_processors=8, families=("pops", "sops"),
    ...                   trials=6, seed=3)
    >>> r.best().survivability_per_kilocost >= r.candidates[-1].survivability_per_kilocost
    True
    """
    if metrics not in METRICS_MODES:
        known = ", ".join(sorted(METRICS_MODES))
        raise ValueError(f"unknown metrics mode {metrics!r}; known: {known}")
    if parallelism not in PARALLELISM_MODES:
        known = ", ".join(PARALLELISM_MODES)
        raise ValueError(
            f"unknown parallelism mode {parallelism!r}; known: {known}"
        )
    if backend not in SWEEP_BACKENDS:
        known = ", ".join(SWEEP_BACKENDS)
        raise ValueError(f"unknown sweep backend {backend!r}; known: {known}")
    if rank_by not in RANKINGS:
        known = ", ".join(RANKINGS)
        raise ValueError(f"unknown ranking {rank_by!r}; known: {known}")
    if rank_by != "survivability-per-cost" and metrics == "connectivity":
        raise ValueError(
            f"rank_by={rank_by!r} ranks on path metrics; run with "
            "metrics='paths' (vectorized-backend fast) or 'full'"
        )
    if ci_target is not None and parallelism == "candidates":
        raise ValueError(
            "ci_target needs parallelism='sweeps': early discard "
            "compares each candidate's CI against the leader's as the "
            "candidates run in order, which the shared-pool candidate "
            "scheduling cannot do"
        )
    from ..resilience.faults import FaultModel, make_fault_model

    # same contract as repro.degrade / resilience_sweep: a string key
    # takes intensity `faults` (default 1), an instance already
    # carries its own
    if isinstance(model, FaultModel):
        if faults is not None:
            raise ValueError(
                "faults applies to string model keys; a FaultModel "
                "instance already carries its intensity"
            )
        fault_model = model
    else:
        fault_model = make_fault_model(model, 1 if faults is None else faults)
    pricing = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    keys = tuple(family_keys()) if families is None else tuple(
        get_family(k).key for k in families
    )
    sweep_kw = dict(
        trials=trials,
        seed=seed,
        workload=workload,
        messages=messages,
        metrics=metrics,
        backend=backend,
        ci_target=ci_target,
        sampling=sampling,
    )
    pooled = parallelism == "candidates"
    #: (spec, (N, groups, degree, diameter), cost, margin) per eligible
    #: candidate -- shape scalars, not the built networks, so sweeps
    #: mode releases each net right after its sweep
    records: list[tuple[NetworkSpec, tuple[int, int, int, int], float, float]] = []
    requests: list[dict] = []
    summaries = []
    discarded_specs: set[str] = set()
    #: best score-CI lower bound seen so far: (1000 / cost) * survival
    #: CI low of the leading candidate (default ranking only)
    leader_low = float("-inf")
    discard_armed = (
        ci_target is not None and rank_by == "survivability-per-cost"
    )
    skipped_underfaulted: list[str] = []
    def _count(outcome: str) -> None:
        REGISTRY.counter(
            "repro_design_candidates_total",
            "Design-search candidates by outcome",
            {"outcome": outcome},
        ).inc()

    enumerator = enumerate_candidates if _enumerator is None else _enumerator
    with span("design_search.enumerate", max_processors=max_processors,
              families=",".join(keys)):
        window = enumerator(
            max_processors=max_processors,
            min_processors=min_processors,
            families=keys,
        )
    for spec in window:
        with span("design_search.candidate", spec=spec.canonical()):
            net = spec.build()
            if (
                max_coupler_degree is not None
                and net.coupler_degree > max_coupler_degree
                or min_groups is not None and net.num_groups < min_groups
                or max_groups is not None and net.num_groups > max_groups
                or max_diameter is not None and net.diameter > max_diameter
            ):
                _count("filtered")
                continue
            # a machine too small to absorb the requested intensity
            # would be swept with silently capped (even zero) faults
            # and score as immune -- skip it instead of letting it
            # dominate the front
            capacity = fault_model.max_faults(net)
            if capacity is not None and capacity < fault_model.faults:
                skipped_underfaulted.append(spec.canonical())
                _count("underfaulted")
                continue
            dsg = spec.design()
            margin = round(dsg.worst_case_power_budget().margin_db(), 4)
            if min_margin_db is not None and margin < min_margin_db:
                _count("filtered")
                continue
            cost = pricing.price(dsg.bill_of_materials())
            if cost <= 0:
                raise ValueError(
                    f"cost model prices {spec} at {cost}; survivability-"
                    f"per-cost ranking needs every candidate priced > 0"
                )
            shape = (
                net.num_processors,
                net.num_groups,
                net.coupler_degree,
                net.diameter,
            )
            records.append((spec, shape, cost, margin))
            _count("evaluated")
            if pooled:
                # no _net here: the pooled executor rebuilds (and, for
                # the vectorized backend, exports + releases) each
                # candidate's network one at a time, so no side retains
                # the window's built networks (vectorized shm arrays,
                # far smaller, live for the pool run)
                requests.append(
                    dict(spec=spec, model=fault_model, **sweep_kw)
                )
            else:
                extra_stop = None
                if discard_armed:
                    # candidates run in deterministic order, so the
                    # leader bound -- and therefore every discard --
                    # replays identically at any worker count
                    def extra_stop(
                        estimate, _cost=cost, _spec=spec.canonical()
                    ):
                        if 1000.0 * estimate["ci_high"] / _cost < leader_low:
                            discarded_specs.add(_spec)
                            _count("early_discarded")
                            return True
                        return False
                summary = survivability_sweep(
                    spec,
                    fault_model,
                    workers=workers,
                    _net=net,
                    _executor=_executor,
                    _extra_stop=extra_stop,
                    **sweep_kw,
                )
                if discard_armed and summary.adaptive is not None:
                    leader_low = max(
                        leader_low,
                        1000.0 * summary.adaptive["ci_low"] / cost,
                    )
                summaries.append(summary)

    if pooled:
        # one shared pool over every candidate's trial batches: the
        # summaries are byte-identical to per-sweep execution, only
        # the scheduling changes
        with span("design_search.pooled_sweeps", candidates=len(requests)):
            summaries = pooled_survivability_sweeps(
                requests, workers=workers, executor=_executor
            )

    evaluated: list[DesignCandidate] = []
    for (spec, shape, cost, margin), summary in zip(records, summaries):
        processors, groups, coupler_degree, diameter = shape
        survivability = summary.quantiles["connectivity"]["mean"]
        evaluated.append(
            DesignCandidate(
                spec=spec.canonical(),
                family=spec.family,
                processors=processors,
                groups=groups,
                coupler_degree=coupler_degree,
                diameter=diameter,
                cost=cost,
                link_margin_db=margin,
                survivability=survivability,
                partitioned_fraction=summary.partitioned_fraction,
                within_bound_fraction=summary.within_bound_fraction,
                mean_stretch=(
                    summary.quantiles["mean_stretch"]["mean"]
                    if "mean_stretch" in summary.quantiles
                    else None
                ),
                survivability_per_kilocost=round(
                    1000.0 * survivability / cost, 6
                ),
                trials_spent=summary.trials,
                early_discarded=spec.canonical() in discarded_specs,
            )
        )
    with span("design_search.rank", candidates=len(evaluated)):
        front = _pareto_front(evaluated)
        ranked = sorted(
            (replace(c, pareto=c.spec in front) for c in evaluated),
            key=_rank_key(rank_by),
        )
    # the front is reported over the FULL evaluated set; `top` only
    # trims the candidate table
    pareto = tuple(c.spec for c in ranked if c.pareto)
    if top is not None:
        ranked = ranked[: max(top, 0)]
    return DesignSearchResult(
        max_processors=max_processors,
        min_processors=min_processors,
        families=keys,
        model=fault_model.key,
        faults=fault_model.faults,
        trials=trials,
        seed=seed,
        metrics=metrics,
        rank_by=rank_by,
        candidates=tuple(ranked),
        pareto=pareto,
        skipped_underfaulted=tuple(skipped_underfaulted),
        cost_model=pricing.as_dict(),
        ci_target=ci_target,
        sampling=sampling,
    )
