"""repro.serve: the async serving tier over a shared Session.

A stdlib-only HTTP front for the library's expensive verbs, built from
four pieces:

- :mod:`~repro.serve.protocol` -- JSON request validation and the
  canonical request keys;
- :mod:`~repro.serve.coalesce` -- single-flight execution of identical
  concurrent requests;
- :mod:`~repro.serve.app` -- the asyncio server: admission control,
  thread-pool execution against one warm Session, NDJSON streaming;
- :mod:`~repro.serve.shard` -- deterministic experiment sharding
  across worker subprocesses (byte-identical merges at any shard
  count);
- :mod:`~repro.serve.client` -- a blocking client and the in-thread
  server harness used by tests and benchmarks.

Start one from the command line::

    python -m repro serve --port 8000 --workers 4 --queue-depth 8
"""

from .app import ReproServer, run_server
from .client import ServeClient, run_in_thread
from .coalesce import RequestCoalescer
from .protocol import SERVE_VERBS, ServeError, request_key
from .shard import (
    ShardError,
    iter_sharded_cells,
    partition_indices,
    run_sharded_experiment,
    sharded_to_json,
)

__all__ = [
    "SERVE_VERBS",
    "ReproServer",
    "RequestCoalescer",
    "ServeClient",
    "ServeError",
    "ShardError",
    "iter_sharded_cells",
    "partition_indices",
    "request_key",
    "run_server",
    "run_sharded_experiment",
    "run_in_thread",
    "sharded_to_json",
]
