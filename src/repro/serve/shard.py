"""Deterministic experiment sharding across worker Session processes.

An :class:`~repro.core.experiment.Experiment` compiles to a flat,
deterministically ordered list of grid cells, and every cell's summary
is byte-identical to a standalone :func:`repro.resilience_sweep` with
the cell's parameters -- which makes the grid embarrassingly
partitionable: a front process deals cell *indices* round-robin across
``N`` worker subprocesses, each worker rebuilds the plan from its
JSON-safe payload (:meth:`Experiment.from_payload`) inside its own
warm :class:`~repro.core.session.Session`, streams finished cells back
tagged with their index, and the front releases them **in index
order** -- so both the streamed NDJSON sequence and the merged report
are byte-identical to a single-host
:meth:`ExperimentResult.to_json` at ANY shard count, including 1.

>>> from repro.core.experiment import Experiment, ExperimentResult
>>> exp = Experiment(specs=("pops(2,2)", "sk(2,2,2)"), trials=4)
>>> partition_indices(5, 2)
[[0, 2, 4], [1, 3]]
>>> merged = run_sharded_experiment(exp, shards=2)
>>> merged == exp.run(workers=0).as_dict()
True
"""

from __future__ import annotations

import json
import multiprocessing
import queue as queue_mod
import signal
import traceback

__all__ = [
    "ShardError",
    "partition_indices",
    "iter_sharded_cells",
    "run_sharded_experiment",
    "sharded_to_json",
]

#: Seconds without any worker message before the front gives up.
SHARD_TIMEOUT = 600.0


class ShardError(RuntimeError):
    """A shard worker failed or died; carries the worker's traceback."""


def partition_indices(n_cells: int, shards: int) -> list[list[int]]:
    """Deal cell indices ``0..n_cells-1`` round-robin over ``shards``.

    Round-robin (not contiguous blocks) so a grid whose early cells
    are cheap and late cells expensive still spreads the expensive
    tail across workers.  Deterministic by construction.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return [list(range(shard, n_cells, shards)) for shard in range(shards)]


def _run_cells(session, requests, indices):
    """Run the given cells on ``session``, yielding ``(index, dict)``.

    The dict mirrors :meth:`ExperimentCell.as_dict` exactly -- same
    keys, same values -- because the summary comes from the same
    prepared sweep the single-host path would run.
    """
    from ..temporal.processes import FaultProcess

    for i in indices:
        request = requests[i]
        model = request["model"]
        if isinstance(model, FaultProcess):
            # process cells replay through the temporal engine, exactly
            # as the single-host run_experiment path does
            summary = session.temporal_sweep(
                request["spec"],
                process=model,
                trials=request["trials"],
                seed=request["seed"],
                workload=request["workload"],
                messages=request["messages"],
                bound=request["bound"],
                metrics=request["metrics"],
            )
            yield i, {
                "spec": request["spec"],
                "model": model.key,
                "faults": model.faults,
                "metrics": request["metrics"],
                "backend": request["backend"],
                "sampling": request.get("sampling", "uniform"),
                "summary": summary.as_dict(),
            }
            continue
        summary = session.resilience_sweep(
            request["spec"],
            model=model,
            trials=request["trials"],
            seed=request["seed"],
            workload=request["workload"],
            messages=request["messages"],
            bound=request["bound"],
            max_slots=request["max_slots"],
            metrics=request["metrics"],
            backend=request["backend"],
            ci_target=request.get("ci_target"),
            sampling=request.get("sampling", "uniform"),
        )
        yield i, {
            "spec": request["spec"],
            "model": model.key,
            "faults": model.faults,
            "metrics": request["metrics"],
            "backend": request["backend"],
            "sampling": request.get("sampling", "uniform"),
            "summary": summary.as_dict(),
        }


def _shard_worker(shard, payload, indices, workers, out) -> None:
    """Subprocess body: rebuild the plan, run assigned cells, report.

    Message protocol on ``out``: ``("cell", index, cell_dict)`` per
    finished cell, then ``("metrics", shard, snapshot)`` with the
    worker's drained metrics registry, then ``("done", shard)``; any
    failure short-circuits to ``("error", shard, traceback_text)``.
    """
    from ..core.experiment import Experiment
    from ..core.session import Session
    from ..obs.metrics import REGISTRY

    try:
        # Fork-inherited signal plumbing must go FIRST.  When the front
        # is an asyncio server, its loop routes signals through a
        # wakeup-fd socketpair the child inherits -- so a SIGTERM
        # delivered to the child (e.g. the front reaping a straggler)
        # would be WRITTEN INTO THE PARENT'S LOOP and read back there
        # as "the server got SIGTERM", triggering a spurious graceful
        # shutdown.  Detach the fd and restore default dispositions.
        signal.set_wakeup_fd(-1)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    try:
        # The worker's global registry starts as a fork-copy of the
        # front's -- reset it so the drained snapshot shipped back
        # carries only THIS shard's activity.
        REGISTRY.reset()
        experiment = Experiment.from_payload(payload)
        requests = experiment.compile()
        with Session(workers=workers) as session:
            for i, cell in _run_cells(session, requests, indices):
                out.put(("cell", i, cell))
        out.put(("metrics", shard, REGISTRY.drain()))
        out.put(("done", shard))
    except BaseException:
        out.put(("error", shard, traceback.format_exc()))


def iter_sharded_cells(experiment, *, shards: int, workers: int = 0):
    """Run the plan on ``shards`` subprocesses, yield cells in order.

    Yields ``(index, cell_dict)`` strictly in index order: finished
    cells arriving early are held until every lower-index cell has
    been released, so consumers (the NDJSON stream, the merge) see one
    deterministic sequence regardless of worker timing.  ``shards``
    is capped at the cell count; ``shards <= 1`` runs in-process on a
    private Session -- same sequence, no subprocesses.  ``workers``
    sizes each worker Session's own pool (default 0: inline trials --
    sharding IS the parallelism).
    """
    requests = experiment.compile()
    n_cells = len(requests)
    shards = max(1, min(shards, n_cells))
    if shards == 1:
        from ..core.session import Session

        with Session(workers=workers) as session:
            yield from _run_cells(session, requests, range(n_cells))
        return

    ctx = multiprocessing.get_context()
    out = ctx.Queue()
    payload = experiment.to_payload()
    parts = partition_indices(n_cells, shards)
    procs = [
        ctx.Process(
            target=_shard_worker,
            args=(shard, payload, parts[shard], workers, out),
            daemon=True,
        )
        for shard in range(shards)
    ]
    for proc in procs:
        proc.start()
    held: dict[int, dict] = {}
    next_index = 0
    done = 0
    completed = False
    try:
        while done < shards or next_index < n_cells:
            try:
                message = out.get(timeout=SHARD_TIMEOUT)
            except queue_mod.Empty:
                raise ShardError(
                    f"no shard output for {SHARD_TIMEOUT:.0f}s "
                    f"({done}/{shards} shards done, "
                    f"{next_index}/{n_cells} cells merged)"
                ) from None
            tag = message[0]
            if tag == "cell":
                held[message[1]] = message[2]
            elif tag == "metrics":
                from ..obs.metrics import REGISTRY

                REGISTRY.merge(message[2])
            elif tag == "done":
                done += 1
            else:
                raise ShardError(
                    f"shard {message[1]} failed:\n{message[2]}"
                )
            while next_index in held:
                yield next_index, held.pop(next_index)
                next_index += 1
        completed = True
    finally:
        if completed:
            # happy path: every shard reported "done" -- give workers
            # a moment to flush and exit before reaping stragglers
            for proc in procs:
                proc.join(timeout=10)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join()
        out.close()


def run_sharded_experiment(experiment, *, shards: int, workers: int = 0):
    """The merged report dict -- equal to ``experiment.run().as_dict()``.

    Cells collected from :func:`iter_sharded_cells` (already in index
    order) under the plan's own header, so serializing the result with
    sorted keys and 2-space indent reproduces
    :meth:`ExperimentResult.to_json` byte for byte.
    """
    cells = [
        cell
        for _, cell in iter_sharded_cells(
            experiment, shards=shards, workers=workers
        )
    ]
    return {**experiment.as_dict(), "cells": cells}


def sharded_to_json(merged: dict) -> str:
    """Canonical JSON of a merged report (sorted keys, 2-space indent)."""
    return json.dumps(merged, indent=2, sort_keys=True)
