"""A small blocking client for the serving tier (tests, benchmarks).

Pure stdlib (``http.client``); one connection per request, which
matches the server's ``Connection: close`` discipline.  Also home of
:func:`run_in_thread`, the harness that boots a
:class:`~repro.serve.app.ReproServer` on a background thread with its
own event loop -- tests and benchmarks drive a real socket without
managing a subprocess.

>>> from repro.serve.client import run_in_thread
>>> with run_in_thread(concurrency=2) as client:
...     client.healthz()["ok"]
True
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from contextlib import contextmanager

from .protocol import ServeError

__all__ = ["ServeClient", "ServeHTTPError", "run_in_thread"]


class ServeHTTPError(RuntimeError):
    """A non-2xx response; carries status and the structured payload."""

    def __init__(self, status: int, payload) -> None:
        error = (
            payload.get("error", {}) if isinstance(payload, dict) else {}
        )
        super().__init__(
            f"HTTP {status}: {error.get('message', payload)}"
        )
        self.status = status
        self.payload = payload
        self.code = error.get("code")


class ServeClient:
    """Blocking JSON client bound to one server address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8000, *,
        timeout: float = 120.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str, payload=None):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None if payload is None else json.dumps(payload)
            conn.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            data = response.read()
            parsed = json.loads(data) if data else None
            if response.status >= 400:
                raise ServeHTTPError(response.status, parsed)
            return parsed, dict(response.getheaders())
        finally:
            conn.close()

    def get(self, path: str):
        payload, _ = self._request("GET", path)
        return payload

    def get_text(self, path: str):
        """GET a non-JSON endpoint; returns ``(text, headers)``."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            data = response.read()
            if response.status >= 400:
                raise ServeHTTPError(
                    response.status, json.loads(data or b"null")
                )
            return data.decode("utf-8"), dict(response.getheaders())
        finally:
            conn.close()

    def post(self, verb: str, payload):
        """POST ``/v1/<verb>``; returns ``(result, coalesced_role)``."""
        result, headers = self._request("POST", f"/v1/{verb}", payload)
        return result, headers.get("X-Repro-Coalesced")

    # -- convenience verbs -------------------------------------------------
    def healthz(self):
        return self.get("/healthz")

    def stats(self):
        return self.get("/stats")

    def metrics(self):
        """The ``GET /metrics`` Prometheus exposition body (text)."""
        return self.get_text("/metrics")[0]

    def describe(self, spec):
        return self.post("describe", {"spec": spec})[0]

    def sweep(self, spec, **fields):
        return self.post("sweep", {"spec": spec, **fields})

    def design_search(self, **fields):
        return self.post("design-search", fields)

    def experiment(self, payload):
        return self.post("experiment", payload)

    def temporal(self, spec, **fields):
        return self.post("temporal", {"spec": spec, **fields})

    def stream_experiment(self, payload):
        """POST a streaming experiment; yield each parsed NDJSON line.

        Lines: the header (``{"experiment": ...}``), then one
        ``{"index": i, "cell": ...}`` per grid cell in index order,
        then the footer (``{"done": true, "cells": n}``).
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(
                "POST", "/v1/experiment",
                body=json.dumps({**payload, "stream": True}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            if response.status >= 400:
                raise ServeHTTPError(
                    response.status, json.loads(response.read() or b"null")
                )
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()


@contextmanager
def run_in_thread(**server_kwargs):
    """Boot a server on a daemon thread; yield a bound :class:`ServeClient`.

    The server gets its own event loop and an ephemeral port
    (``port=0`` unless overridden).  On exit the server stops
    gracefully -- thread pool drained, owned Session closed -- and the
    thread is joined, so tests leak neither sockets nor pools.  The
    yielded client exposes the live server as ``client.server`` for
    white-box assertions (coalescer counters, admission state).
    """
    from .app import ReproServer

    server_kwargs.setdefault("port", 0)
    ready = threading.Event()
    state: dict[str, object] = {}

    def target() -> None:
        async def main() -> None:
            server = ReproServer(**server_kwargs)
            await server.start()
            state["server"] = server
            state["loop"] = asyncio.get_running_loop()
            ready.set()
            await server.serve_forever()

        try:
            asyncio.run(main())
        except BaseException as exc:  # surface boot failures to the waiter
            state["boot_error"] = exc
            ready.set()

    thread = threading.Thread(
        target=target, name="repro-serve-harness", daemon=True
    )
    thread.start()
    if not ready.wait(timeout=60) or "boot_error" in state:
        raise ServeError(
            f"server failed to start: {state.get('boot_error', 'timeout')}",
            code="internal",
            status=500,
        )
    server = state["server"]
    loop = state["loop"]
    client = ServeClient("127.0.0.1", server.port)
    client.server = server
    try:
        yield client
    finally:
        loop.call_soon_threadsafe(server._stopping.set)
        thread.join(timeout=60)
