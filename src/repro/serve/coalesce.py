"""In-flight request coalescing: identical concurrent work runs once.

A serving tier in front of Monte-Carlo sweeps sees bursts of identical
requests -- a dashboard refreshing, N clients asking for the same
``(spec, model, metrics, trials, seed, backend)`` sweep at once.  The
:class:`~repro.core.cache.SpecCache` already deduplicates *topologies*
across requests; this module deduplicates the *work itself* while it
is still running: the first request with a given canonical key becomes
the **leader** and executes, every concurrent duplicate becomes a
**follower** that awaits the leader's future, and all of them receive
the same result object.  Followers never touch the worker pool, never
occupy an admission slot, and -- because results are deterministic --
are indistinguishable from having run themselves.

The coalescer is a pure asyncio object (no locks): :meth:`join` and
:meth:`lead`/:meth:`resolve` run on the event loop, and the
check-then-register step in the server never awaits between the two,
so there is no window where two leaders can start for one key.

>>> import asyncio
>>> async def demo():
...     c = RequestCoalescer()
...     assert c.join("k") is None          # nobody in flight: lead it
...     fut = c.lead("k")
...     follower = c.join("k")              # duplicate joins the flight
...     c.resolve("k", fut, result=42)
...     return await follower, c.stats()
>>> asyncio.run(demo())
(42, {'leaders': 1, 'followers': 1, 'in_flight': 0})
"""

from __future__ import annotations

import asyncio

__all__ = ["RequestCoalescer"]


class RequestCoalescer:
    """Single-flight execution keyed by canonical request strings.

    Usage from a handler (all on the event loop, no await between
    :meth:`join` returning ``None`` and :meth:`lead`)::

        existing = coalescer.join(key)
        if existing is not None:
            return await existing           # follower
        future = coalescer.lead(key)        # leader
        try:
            result = await run_the_work()
        ...
        coalescer.resolve(key, future, result=result)  # or error=exc
        return result
    """

    def __init__(self) -> None:
        self._in_flight: dict[str, asyncio.Future] = {}
        self._leaders = 0
        self._followers = 0

    def join(self, key: str) -> asyncio.Future | None:
        """The in-flight future for ``key``, or ``None`` (caller leads).

        Counts a follower only when there IS a flight to join, so
        ``stats()['followers']`` is exactly the number of requests that
        skipped execution.
        """
        future = self._in_flight.get(key)
        if future is not None:
            self._followers += 1
        return future

    def lead(self, key: str) -> asyncio.Future:
        """Register the caller as the leader for ``key``.

        Raises ``RuntimeError`` if a flight already exists -- that
        means the caller awaited between :meth:`join` and here, which
        would silently duplicate work.
        """
        if key in self._in_flight:
            raise RuntimeError(
                f"flight already in progress for {key!r}; "
                f"join() must be checked without awaiting before lead()"
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._in_flight[key] = future
        self._leaders += 1
        return future

    def resolve(self, key, future, *, result=None, error=None) -> None:
        """Complete the flight: wake every follower, clear the key."""
        if self._in_flight.get(key) is future:
            del self._in_flight[key]
        if not future.done():
            if error is not None:
                future.set_exception(error)
                # the leader re-raises its own exception; if no
                # follower ever awaited, don't warn about it unseen
                future.exception()
            else:
                future.set_result(result)

    def stats(self) -> dict[str, int]:
        """Counters: flights led, duplicates absorbed, currently open."""
        return {
            "leaders": self._leaders,
            "followers": self._followers,
            "in_flight": len(self._in_flight),
        }
