"""Request/response schemas of the serving tier.

Every verb the server exposes (``describe``, ``sweep``,
``design-search``, ``experiment``, ``temporal``) has one validator
here that turns a
raw JSON payload into a **normalized request**: spec strings are
canonicalized through :class:`~repro.core.spec.NetworkSpec`, fault
models resolve to their registered ``(key, faults)`` form, defaults
are filled in explicitly, and unknown or ill-typed fields raise a
:class:`ServeError` carrying a structured error payload -- requests
fail loud at the door, never halfway into a pool.

Normalization is also what makes request coalescing exact:
:func:`request_key` serializes the normalized request canonically
(sorted keys, no whitespace), so ``{"spec": "sk 2 2 2"}`` and
``{"spec": "sk(2,2,2)", "trials": 100}`` -- textually different,
semantically identical -- map to the SAME in-flight key and execute
once.

>>> validate_describe({"spec": "sk 2 2 2"})
{'spec': 'sk(2,2,2)'}
>>> a = validate_sweep({"spec": "sk 2 2 2", "metrics": "connectivity"})
>>> b = validate_sweep({"spec": "sk(2,2,2)", "metrics": "connectivity",
...                     "trials": 100})
>>> request_key("sweep", a) == request_key("sweep", b)
True
"""

from __future__ import annotations

import json

from ..core.spec import NetworkSpec, SpecError

__all__ = [
    "SERVE_VERBS",
    "ServeError",
    "request_key",
    "validate_describe",
    "validate_sweep",
    "validate_design_search",
    "validate_experiment",
    "validate_temporal",
]

#: The verbs the serving tier exposes (each one POST endpoint).
SERVE_VERBS = ("describe", "sweep", "design-search", "experiment", "temporal")


class ServeError(Exception):
    """A rejected request: HTTP status + structured JSON error payload.

    ``code`` is a stable machine-readable tag (``"bad_request"``,
    ``"invalid_spec"``, ``"overloaded"``, ``"not_found"``,
    ``"internal"``); ``details`` is an optional JSON-safe dict of
    extra context (e.g. the admission queue's capacity on a 429).
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = "bad_request",
        status: int = 400,
        details: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.status = status
        self.details = dict(details or {})

    def payload(self) -> dict:
        """The JSON body a handler sends for this error."""
        error: dict[str, object] = {"code": self.code, "message": str(self)}
        if self.details:
            error["details"] = self.details
        return {"error": error}


def request_key(verb: str, normalized: dict) -> str:
    """The canonical coalescing key of one normalized request.

    Canonical JSON (sorted keys, no whitespace) of the *normalized*
    request, prefixed by the verb -- requests that differ only in
    spelling (loose vs canonical spec form, omitted vs explicit
    defaults) share a key; requests that differ in any semantic field
    never do.
    """
    return f"{verb} " + json.dumps(
        normalized, sort_keys=True, separators=(",", ":")
    )


# ----------------------------------------------------------------------
# Field plumbing shared by the validators.
# ----------------------------------------------------------------------
def _require_object(payload, verb: str) -> dict:
    if not isinstance(payload, dict):
        raise ServeError(
            f"{verb} request body must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    return payload


def _reject_unknown(payload: dict, allowed, verb: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ServeError(
            f"unknown {verb} field(s): {', '.join(unknown)}",
            code="unknown_field",
            details={"allowed": sorted(allowed)},
        )


def _canonical_spec(payload: dict, verb: str) -> str:
    if "spec" not in payload:
        raise ServeError(f"{verb} request needs a 'spec' field")
    try:
        return NetworkSpec.parse(payload["spec"]).canonical()
    except (SpecError, TypeError) as exc:
        raise ServeError(str(exc), code="invalid_spec") from None


def _int_field(payload, name, default, *, minimum=None, optional=False):
    value = payload.get(name, default)
    if value is None and (optional or default is None):
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServeError(
            f"'{name}' must be an integer, got {value!r}"
        )
    if minimum is not None and value < minimum:
        raise ServeError(f"'{name}' must be >= {minimum}, got {value}")
    return value


def _str_field(payload, name, default):
    value = payload.get(name, default)
    if not isinstance(value, str):
        raise ServeError(f"'{name}' must be a string, got {value!r}")
    return value


def _ci_target_field(payload) -> float | None:
    """Optional ``ci_target``: a number > 0, or ``None``/absent."""
    value = payload.get("ci_target")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServeError(
            f"'ci_target' must be a number > 0, got {value!r}"
        )
    if not value > 0:
        raise ServeError(f"'ci_target' must be > 0, got {value}")
    return float(value)


def _sampling_field(payload) -> str:
    """``sampling``: one of the registered trial-allocation modes."""
    from ..resilience.sweep import SAMPLING_MODES

    sampling = _str_field(payload, "sampling", "uniform")
    if sampling not in SAMPLING_MODES:
        raise ServeError(
            f"unknown sampling mode {sampling!r}",
            details={"known": list(SAMPLING_MODES)},
        )
    return sampling


def _fault_model(payload) -> tuple[str, int]:
    """Normalize ``model``/``faults`` to the registered ``(key, n)``."""
    from ..resilience.faults import make_fault_model

    model = _str_field(payload, "model", "coupler")
    faults = _int_field(payload, "faults", None, minimum=0, optional=True)
    try:
        resolved = make_fault_model(model, 1 if faults is None else faults)
    except (KeyError, ValueError) as exc:
        raise ServeError(str(exc), code="invalid_model") from None
    return resolved.key, resolved.faults


def _metrics_backend(payload, *, default_metrics: str) -> tuple[str, str]:
    """Validate the metrics/backend pair including the combo rules."""
    from ..resilience.sweep import METRICS_MODES, SWEEP_BACKENDS

    metrics = _str_field(payload, "metrics", default_metrics)
    if metrics not in METRICS_MODES:
        raise ServeError(
            f"unknown metrics mode {metrics!r}",
            details={"known": sorted(METRICS_MODES)},
        )
    backend = _str_field(payload, "backend", "batched")
    if backend not in SWEEP_BACKENDS:
        raise ServeError(
            f"unknown sweep backend {backend!r}",
            details={"known": list(SWEEP_BACKENDS)},
        )
    if backend == "legacy" and metrics != "full":
        raise ServeError(
            "the legacy backend only supports metrics='full'"
        )
    if backend == "vectorized" and metrics == "full":
        raise ServeError(
            "the vectorized backend scores metrics='connectivity' and "
            "'paths'; 'full' needs backend='batched'"
        )
    return metrics, backend


# ----------------------------------------------------------------------
# Verb validators.
# ----------------------------------------------------------------------
def validate_describe(payload) -> dict:
    """``describe`` request -> ``{"spec": canonical}``."""
    payload = _require_object(payload, "describe")
    _reject_unknown(payload, ("spec",), "describe")
    return {"spec": _canonical_spec(payload, "describe")}


#: Every field a ``sweep`` request may carry (all others rejected).
_SWEEP_FIELDS = (
    "spec",
    "model",
    "faults",
    "trials",
    "seed",
    "workload",
    "messages",
    "bound",
    "max_slots",
    "metrics",
    "backend",
    "ci_target",
    "sampling",
)


def validate_sweep(payload) -> dict:
    """``sweep`` request -> normalized survivability-sweep arguments.

    Field-for-field the :func:`repro.resilience_sweep` signature minus
    ``workers`` (pool sizing belongs to the server, never the caller).
    The result is defaults-complete: every field present, spec
    canonical, model resolved -- the exact tuple the ISSUE's coalescing
    key names, ``(spec, model, metrics, trials, seed, backend)``, plus
    the workload knobs that also shape the answer.
    """
    payload = _require_object(payload, "sweep")
    _reject_unknown(payload, _SWEEP_FIELDS, "sweep")
    spec = _canonical_spec(payload, "sweep")
    model, faults = _fault_model(payload)
    metrics, backend = _metrics_backend(payload, default_metrics="full")
    return {
        "spec": spec,
        "model": model,
        "faults": faults,
        "trials": _int_field(payload, "trials", 100, minimum=1),
        "seed": _int_field(payload, "seed", 0),
        "workload": _str_field(payload, "workload", "uniform"),
        "messages": _int_field(payload, "messages", 60, minimum=1),
        "bound": _int_field(payload, "bound", None, minimum=0, optional=True),
        "max_slots": _int_field(payload, "max_slots", 100_000, minimum=1),
        "metrics": metrics,
        "backend": backend,
        "ci_target": _ci_target_field(payload),
        "sampling": _sampling_field(payload),
    }


#: Every field a ``design-search`` request may carry.
_DESIGN_SEARCH_FIELDS = (
    "max_processors",
    "min_processors",
    "families",
    "model",
    "faults",
    "trials",
    "seed",
    "metrics",
    "workload",
    "messages",
    "max_coupler_degree",
    "min_groups",
    "max_groups",
    "max_diameter",
    "min_margin_db",
    "top",
    "parallelism",
    "backend",
    "rank_by",
    "ci_target",
    "sampling",
)


def validate_design_search(payload) -> dict:
    """``design-search`` request -> normalized search arguments."""
    from ..core.registry import get_family
    from ..design_search.search import PARALLELISM_MODES, RANKINGS

    payload = _require_object(payload, "design-search")
    _reject_unknown(payload, _DESIGN_SEARCH_FIELDS, "design-search")
    if "max_processors" not in payload:
        raise ServeError(
            "design-search request needs a 'max_processors' field"
        )
    families = payload.get("families")
    if families is not None:
        if isinstance(families, str) or not isinstance(families, list):
            raise ServeError(
                f"'families' must be a list of family keys, got {families!r}"
            )
        try:
            families = [get_family(k).key for k in families]
        except (KeyError, SpecError) as exc:
            raise ServeError(str(exc), code="invalid_family") from None
    model, faults = _fault_model(payload)
    metrics, backend = _metrics_backend(
        payload, default_metrics="connectivity"
    )
    parallelism = _str_field(payload, "parallelism", "sweeps")
    if parallelism not in PARALLELISM_MODES:
        raise ServeError(
            f"unknown parallelism mode {parallelism!r}",
            details={"known": list(PARALLELISM_MODES)},
        )
    rank_by = _str_field(payload, "rank_by", "survivability-per-cost")
    if rank_by not in RANKINGS:
        raise ServeError(
            f"unknown ranking {rank_by!r}",
            details={"known": list(RANKINGS)},
        )
    if rank_by != "survivability-per-cost" and metrics == "connectivity":
        raise ServeError(
            f"rank_by={rank_by!r} ranks on path metrics; request "
            "metrics='paths' or 'full'"
        )
    margin = payload.get("min_margin_db")
    if margin is not None and not isinstance(margin, (int, float)):
        raise ServeError(
            f"'min_margin_db' must be a number, got {margin!r}"
        )
    ci_target = _ci_target_field(payload)
    if ci_target is not None and parallelism == "candidates":
        raise ServeError(
            "ci_target needs parallelism='sweeps' (early discard runs "
            "candidates in order)"
        )
    return {
        "max_processors": _int_field(
            payload, "max_processors", None, minimum=1
        ),
        "min_processors": _int_field(
            payload, "min_processors", 2, minimum=1
        ),
        "families": families,
        "model": model,
        "faults": faults,
        "trials": _int_field(payload, "trials", 100, minimum=1),
        "seed": _int_field(payload, "seed", 0),
        "metrics": metrics,
        "workload": _str_field(payload, "workload", "uniform"),
        "messages": _int_field(payload, "messages", 60, minimum=1),
        "max_coupler_degree": _int_field(
            payload, "max_coupler_degree", None, minimum=1, optional=True
        ),
        "min_groups": _int_field(
            payload, "min_groups", None, minimum=1, optional=True
        ),
        "max_groups": _int_field(
            payload, "max_groups", None, minimum=1, optional=True
        ),
        "max_diameter": _int_field(
            payload, "max_diameter", None, minimum=0, optional=True
        ),
        "min_margin_db": None if margin is None else float(margin),
        "top": _int_field(payload, "top", None, minimum=0, optional=True),
        "parallelism": parallelism,
        "backend": backend,
        "rank_by": rank_by,
        "ci_target": ci_target,
        "sampling": _sampling_field(payload),
    }


#: Every field a ``temporal`` request may carry (all others rejected).
_TEMPORAL_FIELDS = (
    "spec",
    "process",
    "faults",
    "mtbf",
    "mttr",
    "law",
    "horizon",
    "trials",
    "seed",
    "workload",
    "messages",
    "bound",
    "metrics",
    "curve_points",
)


def _positive_float_field(payload, name, default) -> float:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServeError(f"'{name}' must be a number > 0, got {value!r}")
    if not value > 0:
        raise ServeError(f"'{name}' must be > 0, got {value}")
    return float(value)


def validate_temporal(payload) -> dict:
    """``temporal`` request -> normalized temporal-sweep arguments.

    Field-for-field the :func:`repro.temporal_sweep` signature minus
    ``workers`` (pool sizing belongs to the server) and ``traffic``
    (matrix objects don't cross the JSON boundary yet).  The process
    resolves through the registry so unknown keys and capacity-free
    parameter combos fail at the door, and the normalized dict is
    defaults-complete for exact coalescing.
    """
    from ..temporal.processes import make_fault_process
    from ..temporal.replay import TEMPORAL_METRICS_MODES

    payload = _require_object(payload, "temporal")
    _reject_unknown(payload, _TEMPORAL_FIELDS, "temporal")
    spec = _canonical_spec(payload, "temporal")
    process = _str_field(payload, "process", "coupler-renewal")
    faults = _int_field(payload, "faults", None, minimum=1, optional=True)
    mtbf = _positive_float_field(payload, "mtbf", 400.0)
    mttr = _positive_float_field(payload, "mttr", 100.0)
    law = _str_field(payload, "law", "exponential")
    try:
        resolved = make_fault_process(
            process, 1 if faults is None else faults,
            mtbf=mtbf, mttr=mttr, law=law,
        )
    except (KeyError, ValueError) as exc:
        raise ServeError(str(exc), code="invalid_process") from None
    metrics = _str_field(payload, "metrics", "connectivity")
    if metrics not in TEMPORAL_METRICS_MODES:
        raise ServeError(
            f"unknown metrics mode {metrics!r}",
            details={"known": sorted(TEMPORAL_METRICS_MODES)},
        )
    return {
        "spec": spec,
        "process": resolved.key,
        "faults": resolved.faults,
        "mtbf": resolved.mtbf,
        "mttr": resolved.mttr,
        "law": resolved.law,
        "horizon": _int_field(payload, "horizon", 1000, minimum=1),
        "trials": _int_field(payload, "trials", 20, minimum=1),
        "seed": _int_field(payload, "seed", 0),
        "workload": _str_field(payload, "workload", "uniform"),
        "messages": _int_field(payload, "messages", 60, minimum=1),
        "bound": _int_field(payload, "bound", None, minimum=0, optional=True),
        "metrics": metrics,
        "curve_points": _int_field(
            payload, "curve_points", 16, minimum=1
        ),
    }


#: Transport-level experiment fields that are NOT plan fields.
_EXPERIMENT_TRANSPORT = ("shards", "stream")


def validate_experiment(payload) -> tuple[object, dict]:
    """``experiment`` request -> ``(Experiment plan, normalized dict)``.

    Plan fields go through
    :meth:`~repro.core.experiment.Experiment.from_payload` (strict:
    unknown fields raise), so the plan a shard worker reconstructs on
    the far side of the JSON hop equals the one validated here.
    ``shards`` (transport, not plan) rides along in the normalized
    dict: it never changes the merged bytes -- sharding is
    deterministic -- so it deliberately keeps requests coalescible
    only when their shard counts also agree (a streaming/sharded run
    and a single-host run hold different server resources).
    """
    from ..core.experiment import Experiment

    payload = _require_object(payload, "experiment")
    plan_fields = {
        k: v for k, v in payload.items() if k not in _EXPERIMENT_TRANSPORT
    }
    try:
        experiment = Experiment.from_payload(plan_fields)
    except (SpecError, ValueError, TypeError) as exc:
        raise ServeError(str(exc), code="invalid_experiment") from None
    shards = _int_field(payload, "shards", 0, minimum=0)
    normalized = {**experiment.to_payload(), "shards": shards}
    return experiment, normalized
